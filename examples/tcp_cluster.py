#!/usr/bin/env python3
"""The same protocol objects over real TCP sockets (asyncio runtime).

Starts a 2-groups x 3-replicas WbCast cluster on localhost ephemeral
ports and drives it through the first-class :class:`repro.AmcastClient`
session — the exact code path the simulator's workload clients use:
submissions coalesce client-side into MULTICAST_BATCH wire messages,
leaders ack them, and after a leader kill the session retransmits with
stable message ids (no manual resend API) until the new leader registers
them — exactly once.

    python examples/tcp_cluster.py
"""

import asyncio

from repro import AmcastClientOptions, BatchingOptions, ClusterConfig
from repro import WbCastOptions, WbCastProcess, check_all
from repro.failure.detector import MonitorOptions
from repro.net import LocalCluster


async def main() -> None:
    config = ClusterConfig.build(num_groups=2, group_size=3, num_clients=1)
    cluster = LocalCluster(
        config,
        WbCastProcess,
        options=WbCastOptions(retry_interval=0.2),
        attach_fd=True,
        fd_options=MonitorOptions(
            heartbeat_interval=0.03, suspect_timeout=0.12, stagger=0.06
        ),
        client_options=AmcastClientOptions(
            retry_timeout=0.2,
            ingress=BatchingOptions(max_batch=8, max_linger=0.002),
        ),
    )
    await cluster.start()
    try:
        print("cluster up:", {pid: addr for pid, addr in sorted(cluster.addresses.items())})

        first = [cluster.multicast({0, 1}, payload=f"msg-{i}") for i in range(5)]
        for handle in first:
            ok = await cluster.wait_partial(handle.mid, timeout=5.0)
            print(f"  {handle.payload}: delivered={ok} acked_by={sorted(handle.acked_groups)}")

        print("\nkilling pid 0 (leader of group 0) ...")
        await cluster.kill(0)
        await asyncio.sleep(0.6)  # failure detection + recovery

        handle = cluster.multicast({0, 1}, payload="after-failover")
        ok = await cluster.wait_partial(handle.mid, timeout=10.0)
        print(f"  after-failover: delivered={ok} after {handle.retries} retransmissions")
        print(f"  session leader map (learned from acks/redirects): "
              f"{dict(cluster.client.cur_leader)}")

        leaders = [
            pid for pid, proc in cluster.processes.items()
            if pid not in cluster.killed and proc.is_leader()
        ]
        print(f"  current leaders: {sorted(leaders)}")

        failed = [c.describe() for c in check_all(cluster.history(), quiescent=False)
                  if not c.ok]
        print(f"\nproperty checks: {'all OK' if not failed else failed}")
    finally:
        await cluster.stop()


if __name__ == "__main__":
    asyncio.run(main())
