#!/usr/bin/env python3
"""Quickstart: atomic multicast across replicated groups in 30 lines.

Runs the paper's white-box protocol (WbCast) on a simulated cluster of
3 groups x 3 replicas, drives it with two closed-loop clients, verifies
the four atomic-multicast properties, and prints the observed latencies
(in units of the one-way delay δ: the paper's Theorem 3 says 3δ).

    python examples/quickstart.py
"""

from repro import ConstantDelay, WbCastProcess, check_all, run_workload

DELTA = 0.001  # one-way message delay: 1 ms


def main() -> None:
    result = run_workload(
        WbCastProcess,
        num_groups=3,
        group_size=3,
        num_clients=2,
        messages_per_client=10,
        dest_k=2,  # each message goes to 2 random groups
        network=ConstantDelay(DELTA),
        seed=42,
    )

    print(f"multicasts completed : {result.completed}/{result.expected}")
    for check in result.check():
        print(f"property check       : {check.describe()}")

    latencies = result.latencies()
    print(f"latency (min/max)    : {min(latencies)/DELTA:.2f}δ / {max(latencies)/DELTA:.2f}δ")
    print("paper's Theorem 3    : collision-free delivery in 3δ at the leaders")

    # Every process delivered the messages addressed to it in one total order:
    leader_of_g0 = result.members[0]
    order = [d.m.mid for d in result.trace.deliveries if d.pid == 0]
    print(f"group 0 leader saw   : {len(order)} messages, first five: {order[:5]}")


if __name__ == "__main__":
    main()
