#!/usr/bin/env python3
"""Sharded multi-leader groups: splitting a group's ordering across lanes.

After batching removed the per-message wire costs (PRs 1–3), the one
leader per group remains the wall every multicast touching that group
serialises through.  Sharding runs ``S`` independent *ordering lanes*
per group — each lane a full WbCast instance with its own leader (dealt
round-robin over the members), clock partition, batcher and recovery —
and every member merges its lanes' delivery streams back into one total
order, gated by quorum-replicated lane watermarks.

This script runs the same workload at S=1 and S=2, verifies the full
atomic-multicast contract for both, and shows what sharding changes
(who leads what; which lanes messages rode) and what it must not change
(the delivered message sets, the total order).

The CLI equivalent of the S=2 run:

    python -m repro run --protocol wbcast --shards 2 --clients 4 \
        --messages 10 --batch-size 8 --batch-linger 0.002 --ingress-batch 8

and the recorded throughput ablation (results/sharding.txt):

    python -m repro bench-batching --protocol wbcast --shards 1,4 \
        --group-size 5 --client-window 16 --ingress-batch 16 \
        --batch-sizes 1,16 --clients 300,600,1000
"""

from repro import ConstantDelay, run_workload
from repro.checking.total_order import lane_statistics, witness_order
from repro.config import ClusterConfig
from repro.protocols import WbCastProcess

DELTA = 0.001  # one-way message delay: 1 ms


def run(shards: int):
    config = ClusterConfig.build(
        num_groups=3, group_size=3, num_clients=4, shards_per_group=shards
    )
    return run_workload(
        WbCastProcess,
        config=config,
        messages_per_client=10,
        dest_k=2,
        network=ConstantDelay(DELTA),
        seed=42,
    )


def main() -> None:
    results = {shards: run(shards) for shards in (1, 2)}

    for shards, result in results.items():
        print(f"=== shards_per_group = {shards} ===")
        print(f"completed            : {result.completed}/{result.expected}")
        for check in result.check():
            print(f"property check       : {check.describe()}")
        # Who leads what in group 0?
        member0 = result.members[0]
        if shards == 1:
            print(f"group 0 leadership   : pid 0 leads everything "
                  f"(type: {type(member0).__name__})")
        else:
            leads = {
                lane.lane: lane.cur_leader[0] for lane in member0.lanes
            }
            print(f"group 0 leadership   : lane -> leader {leads} "
                  f"(type: {type(member0).__name__})")
            print(f"messages per lane    : {lane_statistics(result.history())}")
        print()

    # Sharding must not change WHAT is delivered — only who coordinates it.
    sets = {
        shards: {
            pid: frozenset(res.trace.delivery_order_at(pid))
            for pid in res.config.all_members
        }
        for shards, res in results.items()
    }
    assert sets[1] == sets[2], "sharding changed the delivered message sets!"
    print("delivered sets       : identical at S=1 and S=2 (as they must be)")

    # ...and each run is totally ordered (a witness order exists).
    for shards, res in results.items():
        order = witness_order(res.history())
        print(f"witness order (S={shards}) : {len(order)} messages, "
              f"first five {order[:5]}")


if __name__ == "__main__":
    main()
