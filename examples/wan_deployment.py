#!/usr/bin/env python3
"""Protocol shoot-out on the paper's WAN topology (Fig. 8 setting).

Three data centres (Oregon, N. Virginia, England; RTTs 60/75/130 ms),
every group with one replica per region.  Message-delay budgets dominate
in a WAN, so the protocols separate exactly as the theory says:
WbCast ~ 1 quorum RTT, FastCast ~ a bit more, FT-Skeen ~ two consensus
round trips plus the timestamp exchange.

    python examples/wan_deployment.py
"""

from repro import ClusterConfig, FastCastProcess, FtSkeenProcess, WbCastProcess, run_workload
from repro.bench.topologies import wan_testbed


def main() -> None:
    print("WAN: Oregon / N. Virginia / England, RTTs 60/75/130 ms")
    print("10 groups, replicas spread one-per-region, leaders rotated across")
    print("regions (so leader-to-leader hops pay real WAN latency)\n")
    protocols = [
        ("WbCast  (paper)", WbCastProcess),
        ("FastCast (DSN'17)", FastCastProcess),
        ("FT-Skeen (black box)", FtSkeenProcess),
    ]
    for label, cls in protocols:
        config = ClusterConfig.build(num_groups=10, group_size=3, num_clients=20)
        result = run_workload(
            cls,
            config=config,
            messages_per_client=5,
            dest_k=2,
            network=wan_testbed(config, spread_leaders=True),
            seed=1,
            record_sends=False,
        )
        lats = result.latencies()
        mean = sum(lats) / len(lats)
        print(f"{label:22s} mean latency {mean*1000:7.1f} ms   "
              f"(min {min(lats)*1000:6.1f}, max {max(lats)*1000:6.1f})")
    print("\npaper's Fig. 8: WbCast < FastCast < Skeen, with ~2x between ends")


if __name__ == "__main__":
    main()
