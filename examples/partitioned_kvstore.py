#!/usr/bin/env python3
"""A partitioned, replicated key-value store on atomic multicast.

The paper's motivating deployment (Section I): service state partitioned
across groups, each group replicated; atomic multicast keeps every replica
of every partition consistent, including *cross-partition* writes, which
are applied atomically at one point of the global total order.

    python examples/partitioned_kvstore.py
"""

import random

from repro.apps import KvStoreCluster
from repro.apps.kvstore import partition_of


def main() -> None:
    store = KvStoreCluster(num_groups=3, group_size=3, seed=7)
    print("cluster: 3 partitions x 3 replicas, keys hash-partitioned\n")

    # Single-partition writes: multicast to one group.
    store.put("user:alice", {"credit": 100})
    store.put("user:bob", {"credit": 50})

    # A cross-partition transactional write: multicast to all involved
    # groups, applied atomically in total order everywhere.
    store.multi_put({"user:alice": {"credit": 70}, "user:bob": {"credit": 80}})
    store.sync()

    for key in ("user:alice", "user:bob"):
        gid = partition_of(key, 3)
        values = [store.get(key, replica_index=i) for i in range(3)]
        assert values[0] == values[1] == values[2]
        print(f"{key:12s} partition {gid}: {values[0]} (all 3 replicas agree)")

    # Hammer it with interleaved writes and check convergence.
    rng = random.Random(0)
    keys = [f"item:{i}" for i in range(10)]
    for step in range(100):
        if rng.random() < 0.3:
            a, b = rng.sample(keys, 2)
            store.multi_put({a: step, b: step})
        else:
            store.put(rng.choice(keys), step)
    store.sync()

    print(f"\nafter 100 more writes: replicas converged = {store.replicas_converged()}")
    print("every replica of every partition applied the same commands in the same order")


if __name__ == "__main__":
    main()
