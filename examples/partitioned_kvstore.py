#!/usr/bin/env python3
"""A partitioned KV store served the way deployments actually serve.

The paper's motivating deployment (Section I) partitions service state
across replicated groups and orders the *writes* with atomic multicast.
The serving layer (`repro.serving`) adds the missing production half:
reads are answered locally by whichever replica the session picked, at
the session's watermark — zero ordering traffic per read — and fall
back to an ordered read command only when the replica cannot prove
freshness.

    python examples/partitioned_kvstore.py
"""

from repro.checking.linearizability import check_linearizability, serving_records
from repro.config import ClusterConfig
from repro.protocols import WbCastProcess
from repro.serving import (
    ServingSession,
    attach_kv_replicas,
    run_serving_workload,
)
from repro.sim import ConstantDelay, Simulator, Trace
from repro.workload import DeliveryTracker


def hand_driven_session() -> None:
    """One session, step by step: write, then read locally."""
    config = ClusterConfig.build(num_groups=2, group_size=3, num_clients=1)
    trace = Trace()
    sim = Simulator(ConstantDelay(0.001), seed=7, trace=trace)
    tracker = DeliveryTracker(config, sim=sim)
    trace.attach(tracker)

    members = {}
    for gid in config.group_ids:
        for pid in config.members(gid):
            members[pid] = sim.add_process(
                pid, lambda rt, p=pid: WbCastProcess(p, config, rt)
            )
    attach_kv_replicas(members, config.num_groups)

    client = config.clients[0]
    session = sim.add_process(
        client,
        lambda rt: ServingSession(
            client, config, rt, WbCastProcess, tracker, read_timeout=0.05
        ),
    )

    # A write is an ordinary atomic multicast to the key's partition;
    # the session acks it once every replica applied it.
    session.put("user:alice", {"credit": 100})
    sim.run()

    # The read goes to ONE replica and is answered from its local store
    # — no multicast, no ordering round.  The reply carries the replica's
    # applied delivery index: the read's coordinate in the total order.
    read = session.get("user:alice")
    sim.run()
    print(
        f"read path={read.path!r} index={read.index} "
        f"-> {read.value('user:alice')} (v{read.version('user:alice')})"
    )


def production_shape() -> None:
    """Many sessions, 90% reads, skewed keys — and the receipts."""
    result = run_serving_workload(
        WbCastProcess,
        num_groups=2,
        group_size=3,
        num_sessions=4,
        ops_per_session=100,
        read_ratio=0.9,
        skew=0.99,  # YCSB-style hot keys
        window=2,
        read_timeout=0.05,
        seed=7,
    )
    split = result.monitor.snapshot()
    print(
        f"{result.reads_completed} reads: {result.reads_local} local, "
        f"{result.reads_fallback} fallback; "
        f"read-attributable ordering messages: {split['fallback_ordering']}"
    )
    reads, writes = serving_records(result.sessions)
    for check in check_linearizability(result.history(), reads, writes):
        print(f"  {check.name}: {'ok' if check.ok else 'VIOLATED'}")


def main() -> None:
    print("== one session, hand-driven ==")
    hand_driven_session()
    print("\n== production shape: 90% reads, hot keys, 4 sessions ==")
    production_shape()


if __name__ == "__main__":
    main()
