#!/usr/bin/env python3
"""The convoy effect (Fig. 2) and how the white-box protocol tames it.

A committed message cannot be delivered while an earlier-timestamped
message is still in flight.  An adversarially timed conflicting message
therefore stretches delivery latency — up to double in Skeen-family
protocols (the paper's Eq. 4: FFL = CFL + C).  This demo sweeps the
conflict timing and prints the latency curve for Skeen's protocol, then
the measured worst case for every protocol against the paper's numbers.

    python examples/convoy_effect.py
"""

from repro.bench.convoy import format_convoy, run_convoy
from repro.bench.latency_table import (
    build_latency_table,
    format_latency_table,
)


def main() -> None:
    print(format_convoy(run_convoy()))
    print()
    print("Sweeping the same adversarial collision against every protocol:")
    print()
    print(format_latency_table(build_latency_table()))
    print()
    print("WbCast caps the degradation at 5δ (CFL 3δ + convoy window 2δ): the")
    print("speculative clock advance closes the window two hops earlier than")
    print("the consensus-as-a-black-box designs.")


if __name__ == "__main__":
    main()
