#!/usr/bin/env python3
"""Leader crash and white-box recovery, step by step.

Crashes the leader of group 0 mid-run.  The heartbeat failure detector
elects a follower, which runs the paper's two-stage recovery
(NEWLEADER/NEWLEADER_ACK to rebuild state from a quorum, then
NEW_STATE/NEWSTATE_ACK to sync followers), re-delivers committed messages
(duplicates suppressed via max_delivered_gts) and resumes multicast.
The run then completes with every Section II property intact.

    python examples/leader_failover.py
"""

from repro import ClusterConfig, ConstantDelay, WbCastOptions, WbCastProcess, run_workload
from repro.failure.detector import MonitorOptions
from repro.protocols.wbcast import NewLeaderMsg, NewStateMsg
from repro.sim.faults import CrashSpec, FaultPlan
from repro.workload import ClientOptions

DELTA = 0.001


def main() -> None:
    result = run_workload(
        WbCastProcess,
        num_groups=2,
        group_size=3,
        num_clients=2,
        messages_per_client=15,
        dest_k=2,
        network=ConstantDelay(DELTA),
        seed=3,
        protocol_options=WbCastOptions(retry_interval=0.05),
        client_options=ClientOptions(num_messages=15, retry_timeout=0.08),
        fault_plan=FaultPlan(crashes=[CrashSpec(pid=0, at=0.012)]),
        attach_fd=True,
        fd_options=MonitorOptions(
            heartbeat_interval=0.005, suspect_timeout=0.02, stagger=0.01
        ),
        drain_grace=0.3,
    )

    print("timeline of group 0:")
    print("  t=0.000  pid 0 leads group 0 at ballot (0,0)")
    crash_t = result.trace.crashes[0][0]
    print(f"  t={crash_t:.3f}  pid 0 crashes")
    for rec in result.trace.sends:
        if isinstance(rec.msg, NewLeaderMsg) and rec.src == rec.dst:
            print(f"  t={rec.t_send:.3f}  pid {rec.src} stands for election "
                  f"with ballot {rec.msg.bal}")
    for rec in result.trace.sends:
        if isinstance(rec.msg, NewStateMsg):
            print(f"  t={rec.t_send:.3f}  pid {rec.src} pushes recovered state "
                  f"to pid {rec.dst}")
            break

    survivors = {pid: p for pid, p in result.members.items()
                 if p.gid == 0 and result.sim.alive(pid)}
    for pid, proc in sorted(survivors.items()):
        print(f"  final    pid {pid}: {proc.status.value} at ballot {proc.cballot}")

    print(f"\ncompleted {result.completed}/{result.expected} multicasts "
          f"through the failover")
    for check in result.check():
        print(f"  {check.describe()}")


if __name__ == "__main__":
    main()
