#!/usr/bin/env python3
"""The AmcastClient session API, in the deterministic simulator.

One session submits a burst of multicasts with client-side ingress
coalescing and a backpressure window: submissions past the window queue
locally, every handle resolves in two stages (acked by each destination
group's leader, then completed at partial delivery), and the session's
leader map is maintained by the ack traffic itself.

The very same session class fronts the asyncio TCP runtime — see
examples/tcp_cluster.py for the sockets version of this script.

    python examples/client_session.py
"""

from repro import BatchingOptions, ClusterConfig, ConstantDelay, Simulator, Trace
from repro import WbCastProcess
from repro.client import AmcastClient, AmcastClientOptions
from repro.workload import DeliveryTracker

DELTA = 0.001


def main() -> None:
    config = ClusterConfig.build(num_groups=3, group_size=3, num_clients=1)
    trace = Trace()
    sim = Simulator(ConstantDelay(DELTA), seed=0, trace=trace)
    tracker = DeliveryTracker(config, sim=sim)
    trace.attach(tracker)
    for pid in config.all_members:
        sim.add_process(pid, lambda rt, p=pid: WbCastProcess(p, config, rt))

    client_pid = config.clients[0]
    session = sim.add_process(
        client_pid,
        lambda rt: AmcastClient(
            client_pid, config, rt, WbCastProcess, tracker,
            AmcastClientOptions(
                window=4,                      # backpressure: 4 in flight
                retry_timeout=0.05,            # retransmit stragglers
                ingress=BatchingOptions(       # coalesce per ingress leader
                    max_batch=8, max_linger=2 * DELTA
                ),
            ),
        ),
    )

    handles = [session.submit({i % 3, (i + 1) % 3}, payload=f"op-{i}") for i in range(12)]
    print(f"submitted 12, launched {session.outstanding}, queued {session.backlog_size}")

    sim.run()

    for h in handles[:4]:
        print(
            f"  {h.payload}: acked_by={sorted(h.acked_groups)} "
            f"at {h.acked_at / DELTA:.1f}d, completed at {h.completed_at / DELTA:.1f}d"
        )
    print(f"all completed: {all(h.completed for h in handles)}")
    print(f"leader map learned from acks: {dict(session.cur_leader)}")


if __name__ == "__main__":
    main()
