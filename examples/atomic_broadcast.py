#!/usr/bin/env python3
"""Atomic broadcast as the single-group special case (Section II).

With one group of 2f+1 replicas, atomic multicast degenerates to atomic
broadcast, and the white-box protocol follows exactly the flow of Paxos
(ACCEPT to the group, quorum of acks, DELIVER): a replicated append-only
log with total-order semantics — state machine replication from the same
code base.

    python examples/atomic_broadcast.py
"""

from repro.apps import ReplicatedLog


def main() -> None:
    log = ReplicatedLog(group_size=5)  # f=2
    print("one group of 5 replicas: atomic multicast == atomic broadcast\n")

    for i in range(10):
        log.append(f"entry-{i}")
    log.sync()

    for replica in range(5):
        entries = log.read(replica_index=replica)
        print(f"replica {replica}: {len(entries)} entries, "
              f"head={entries[:3]}")
    assert log.replicas_converged()
    print("\nall replicas hold the identical totally ordered log")
    print("(WbCast on a single group = the Paxos message flow, at 3δ)")


if __name__ == "__main__":
    main()
