"""The command-line interface and the flow renderer."""

import pytest

from repro.bench.flow import flow_events, flow_report, lane_diagram
from repro.bench.harness import run_workload
from repro.cli import main
from repro.protocols import WbCastProcess
from repro.sim import ConstantDelay

from tests.conftest import DELTA


class TestCli:
    def test_run_wbcast(self, capsys):
        code = main(["run", "--protocol", "wbcast", "--groups", "2",
                     "--clients", "1", "--messages", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "validity: OK" in out
        assert "3.00δ" in out

    def test_run_skeen_forces_singleton_groups(self, capsys):
        code = main(["run", "--protocol", "skeen", "--groups", "3",
                     "--clients", "1", "--messages", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "x 1" in out

    def test_run_all_protocols(self, capsys):
        for name in ("ftskeen", "fastcast", "sequencer"):
            code = main(["run", "--protocol", name, "--groups", "2",
                         "--clients", "1", "--messages", "2"])
            assert code == 0, capsys.readouterr().out

    def test_run_lan_topology(self, capsys):
        code = main(["run", "--topology", "lan", "--clients", "1", "--messages", "2"])
        assert code == 0

    @pytest.mark.parametrize("protocol", ["wbcast", "ftskeen", "fastcast"])
    def test_run_batched_protocols(self, capsys, protocol):
        """Every batching-capable protocol accepts the batching knobs."""
        code = main(["run", "--protocol", protocol, "--groups", "2",
                     "--clients", "2", "--messages", "4",
                     "--batch-size", "4", "--batch-linger", "0.002",
                     "--pipeline-depth", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "max_batch=4" in out
        assert "ignored" not in out

    def test_run_adaptive_linger(self, capsys):
        code = main(["run", "--protocol", "wbcast", "--groups", "2",
                     "--clients", "2", "--messages", "4",
                     "--batch-size", "4", "--batch-linger", "0.002",
                     "--linger-mode", "adaptive", "--min-linger", "0.0005"])
        out = capsys.readouterr().out
        assert code == 0
        assert "linger=adaptive[0.0005s, 0.002s]" in out

    def test_bench_batching_quick(self, capsys):
        """The CI smoke path: one protocol, tiny grid, table + headline."""
        code = main(["bench-batching", "--protocol", "ftskeen", "--quick"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ftskeen" in out and "batch" in out
        assert "x over per-message" in out

    def test_flow_command(self, capsys):
        code = main(["flow", "--protocol", "wbcast", "--dest-k", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Multicast" in out and "Accept" in out and "deliver(m)" in out

    def test_flow_lanes(self, capsys):
        code = main(["flow", "--protocol", "wbcast", "--dest-k", "2", "--lanes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "t=" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestFlowRenderer:
    @pytest.fixture
    def run(self):
        return run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=1,
                            messages_per_client=1, dest_k=2, seed=0,
                            network=ConstantDelay(DELTA))

    def test_events_are_attributed(self, run):
        mid = run.clients[0].sent[0]
        events = flow_events(run.trace, mid)
        assert events
        names = {type(r.msg).__name__ for r in events}
        assert {"MulticastMsg", "AcceptMsg", "AcceptAckMsg", "DeliverMsg"} <= names

    def test_report_mentions_deliveries(self, run):
        mid = run.clients[0].sent[0]
        text = flow_report(run.trace, mid, DELTA)
        assert text.count("deliver(m)") == 6  # all members of both groups
        assert "(times in δ)" in text

    def test_lane_diagram_has_a_lane_per_process(self, run):
        mid = run.clients[0].sent[0]
        text = lane_diagram(run.trace, mid, DELTA)
        header = text.splitlines()[0]
        for pid in range(6):
            assert f"p{pid}" in header

    def test_unknown_mid_is_graceful(self, run):
        assert "no traffic" in lane_diagram(run.trace, (99, 99), DELTA)
