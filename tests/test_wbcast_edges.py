"""White-box protocol edge cases, driven message by message."""

import pytest

from repro.config import ClusterConfig
from repro.protocols import WbCastProcess
from repro.protocols.base import MulticastMsg
from repro.protocols.wbcast import (
    AcceptAckMsg,
    AcceptMsg,
    DeliverMsg,
    GcPruneMsg,
    GcReadyMsg,
    NewLeaderAckMsg,
    NewLeaderMsg,
    NewStateMsg,
    Phase,
    Status,
    WbCastOptions,
)
from repro.protocols.wbcast.messages import make_vector
from repro.sim import ConstantDelay, Simulator, Trace
from repro.types import Ballot, Timestamp, make_message

from tests.conftest import DELTA
from tests.test_wbcast_normal import build, submit


@pytest.fixture
def cluster():
    config = ClusterConfig.build(2, 3, 1)
    sim, trace, tracker, procs, client = build(config)
    return config, sim, trace, tracker, procs, client


class TestAcceptHandling:
    def test_accept_buffered_until_all_groups_present(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        m = make_message(client, 0, {0, 1})
        # Inject only group 1's ACCEPT at a group-0 follower.
        accept = AcceptMsg(m, 1, Ballot(0, 3), Timestamp(1, 1))
        sim.schedule(0.0, lambda: sim.transmit(3, 1, accept))
        sim.run()
        follower = procs[1]
        assert m.mid in follower._accepts
        assert m.mid not in follower.records  # no action yet
        acks = [r for r in trace.sends if isinstance(r.msg, AcceptAckMsg)]
        assert not acks

    def test_own_group_accept_with_stale_ballot_not_acked(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        m = make_message(client, 0, {0, 1})
        stale = AcceptMsg(m, 0, Ballot(-1, 0), Timestamp(1, 0))
        fresh_remote = AcceptMsg(m, 1, Ballot(0, 3), Timestamp(1, 1))
        sim.schedule(0.0, lambda: sim.transmit(0, 1, stale))
        sim.schedule(0.0, lambda: sim.transmit(3, 1, fresh_remote))
        sim.run()
        acks = [r for r in trace.sends if isinstance(r.msg, AcceptAckMsg) and r.src == 1]
        assert not acks

    def test_remote_accept_updates_leader_guess(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        m = make_message(client, 0, {0, 1})
        newer = AcceptMsg(m, 1, Ballot(5, 4), Timestamp(1, 1))
        sim.schedule(0.0, lambda: sim.transmit(4, 1, newer))
        sim.run()
        assert procs[1].cur_leader[1] == 4

    def test_higher_ballot_accept_replaces_buffered(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        m = make_message(client, 0, {0, 1})
        old = AcceptMsg(m, 1, Ballot(0, 3), Timestamp(1, 1))
        new = AcceptMsg(m, 1, Ballot(2, 4), Timestamp(7, 1))
        sim.schedule(0.0, lambda: sim.transmit(3, 1, old))
        sim.schedule(0.001, lambda: sim.transmit(4, 1, new))
        sim.run()
        assert procs[1]._accepts[m.mid][1].lts == Timestamp(7, 1)

    def test_duplicate_accept_reacks_idempotently(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        m = make_message(client, 0, {0, 1})
        sim.schedule(0.0, lambda: submit(sim, config, client, m))
        sim.run()
        # Re-deliver group 1's ACCEPT to follower 1: it must re-ack with
        # the same vector, and nothing double-delivers.
        accept = procs[1]._accepts[m.mid][1]
        before = len(trace.deliveries)
        sim.schedule(0.0, lambda: sim.transmit(3, 1, accept))
        sim.run()
        assert len(trace.deliveries) == before


class TestAckHandling:
    def test_ack_with_foreign_ballot_vector_ignored(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        m = make_message(client, 0, {0, 1})
        sim.schedule(0.0, lambda: submit(sim, config, client, m))
        sim.run(until=1.5 * DELTA)  # proposal made, acks not yet in
        vector = make_vector({0: Ballot(9, 9), 1: Ballot(0, 3)})
        rogue = AcceptAckMsg(m.mid, 0, vector)
        sim.schedule(0.0, lambda: sim.transmit(1, 0, rogue))
        sim.run(until=1.6 * DELTA)
        rec = procs[0].records[m.mid]
        assert rec.phase is not Phase.COMMITTED

    def test_acks_for_unknown_message_ignored(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        vector = make_vector({0: procs[0].cballot, 1: Ballot(0, 3)})
        ghost = AcceptAckMsg((77, 77), 0, vector)
        sim.schedule(0.0, lambda: sim.transmit(1, 0, ghost))
        sim.run()
        assert (77, 77) not in procs[0].records


class TestDeliverHandling:
    def test_non_monotone_deliver_dropped(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        m1 = make_message(client, 0, {0, 1})
        sim.schedule(0.0, lambda: submit(sim, config, client, m1))
        sim.run()
        follower = procs[1]
        high_gts = follower.max_delivered_gts
        stale = DeliverMsg(
            make_message(client, 9, {0}),
            follower.cballot,
            Timestamp(0, 0),
            Timestamp(0, 0),
        )
        before = len(trace.deliveries)
        sim.schedule(0.0, lambda: sim.transmit(0, 1, stale))
        sim.run()
        assert len(trace.deliveries) == before
        assert follower.max_delivered_gts == high_gts

    def test_deliver_from_wrong_ballot_dropped(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        msg = DeliverMsg(
            make_message(client, 9, {0}), Ballot(9, 9), Timestamp(1, 0), Timestamp(1, 0)
        )
        before = len(trace.deliveries)
        sim.schedule(0.0, lambda: sim.transmit(0, 1, msg))
        sim.run()
        assert len(trace.deliveries) == before


class TestRetry:
    def test_retry_ignores_unknown_and_committed(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        m = make_message(client, 0, {0, 1})
        sim.schedule(0.0, lambda: submit(sim, config, client, m))
        sim.run()
        sends_before = trace.send_count
        procs[0].retry((42, 42))  # unknown
        procs[0].retry(m.mid)  # committed: not retriable
        sim.run()
        assert trace.send_count == sends_before

    def test_retry_resends_multicast_for_stuck_message(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        m = make_message(client, 0, {0, 1})
        # Only group 0's leader hears about m: it stays PROPOSED.
        sim.record_multicast(client, m)
        sim.schedule(0.0, lambda: sim.transmit(client, 0, MulticastMsg(m)))
        sim.run()
        assert procs[0].records[m.mid].phase in (Phase.PROPOSED, Phase.ACCEPTED)
        procs[0].retry(m.mid)
        sim.run()
        # The retry re-multicasts to group 1 too, unblocking everything.
        assert procs[0].records[m.mid].phase is Phase.COMMITTED
        assert len(trace.deliveries_of(m.mid)) == 6


class TestRecoveryEdges:
    def test_multicast_during_recovery_dropped(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        leader = procs[0]
        leader.status = Status.RECOVERING
        m = make_message(client, 0, {0, 1})
        sim.schedule(0.0, lambda: sim.transmit(client, 0, MulticastMsg(m)))
        sim.run(until=2 * DELTA)
        assert m.mid not in leader.records

    def test_duplicate_newleader_acks_do_not_double_rebuild(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        sim.schedule(0.0, lambda: procs[1].recover())
        sim.run()
        assert procs[1].status is Status.LEADER
        clock = procs[1].clock
        # A late duplicate vote must not re-run the rebuild.
        dup = NewLeaderAckMsg(procs[1].cballot, Ballot(0, 0), 99, {}, None)
        sim.schedule(0.0, lambda: sim.transmit(2, 1, dup))
        sim.run()
        assert procs[1].clock == clock

    def test_new_state_with_wrong_ballot_ignored(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        follower = procs[1]
        rogue = NewStateMsg(Ballot(9, 9), 42, {})
        sim.schedule(0.0, lambda: sim.transmit(2, 1, rogue))
        sim.run()
        assert follower.status is Status.FOLLOWER
        assert follower.clock == 0

    def test_newleader_with_lower_ballot_rejected(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        sim.schedule(0.0, lambda: procs[1].recover())  # ballot (1,1)
        sim.run()
        low = NewLeaderMsg(Ballot(0, 2))
        sim.schedule(0.0, lambda: sim.transmit(2, 1, low))
        sim.run()
        assert procs[1].status is Status.LEADER  # unimpressed

    def test_recover_bumps_past_both_ballot_and_cballot(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        sim.schedule(0.0, lambda: procs[1].recover())
        sim.run()
        sim.schedule(0.0, lambda: procs[2].recover())
        sim.run()
        assert procs[2].cballot.round == 2
        assert procs[2].status is Status.LEADER


class TestGcEdges:
    def test_gc_ready_keeps_max_watermark(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        leader = procs[0]
        sim.schedule(0.0, lambda: sim.transmit(3, 0, GcReadyMsg(1, Timestamp(5, 1))))
        sim.schedule(0.001, lambda: sim.transmit(3, 0, GcReadyMsg(1, Timestamp(3, 1))))
        sim.run()
        assert leader._group_watermarks[1] == Timestamp(5, 1)

    def test_prune_for_undelivered_mid_ignored(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        m = make_message(client, 0, {0, 1})
        sim.schedule(0.0, lambda: submit(sim, config, client, m))
        sim.run()
        follower = procs[1]
        ghost = GcPruneMsg(((123, 456),))
        sim.schedule(0.0, lambda: sim.transmit(0, 1, ghost))
        sim.run()
        assert m.mid in follower.records  # untouched

    def test_introspection_helpers(self, cluster):
        config, sim, trace, tracker, procs, client = cluster
        m = make_message(client, 0, {0, 1})
        sim.schedule(0.0, lambda: submit(sim, config, client, m))
        sim.run()
        assert procs[0].record_of(m.mid).phase is Phase.COMMITTED
        assert procs[0].record_of((5, 5)) is None
        assert procs[0].live_record_count() == 1
