"""The reconfiguration acceptance battery (the PR's headline bar).

A scripted join + leave + lane-reweight under active closed-loop load
completes with zero total-order / genuineness / invariant violations,
randomized across wbcast sharded and unsharded clusters; the joiner
serves reads of pre-join messages after its state transfer; and the
``set_shards`` command (the one case whose lane hash changes, exercising
epoch fencing end to end) holds the same bar.

Every run re-verifies the full contract with the epoch-aware checkers:
elastic validity / integrity / ordering / core termination, joiner
coverage pinned by activation indices, genuineness over the epoch
chain's union membership, and (in the dedicated scenarios) the Fig. 6
invariant monitors keyed per configuration epoch.
"""

import random

import pytest

from repro.checking import WbCastInvariantMonitor
from repro.config import ClusterConfig
from repro.protocols import WbCastProcess
from repro.protocols.wbcast import WbCastOptions
from repro.reconfig.harness import run_elastic_workload
from repro.sim import UniformDelay
from repro.sim.faults import (
    CrashSpec,
    FaultPlan,
    JoinSpec,
    LaneWeightSpec,
    LeaveSpec,
    ReconfigPlan,
    ShardSpec,
)

NETWORK = lambda: UniformDelay(0.0002, 0.002)  # noqa: E731

#: The standard mixed script: grow group 0, shrink group 1, re-deal lanes.
def mixed_plan(config):
    weights = tuple((pid, 3 if pid == config.members(0)[0] else 1)
                    for pid in config.all_members if pid != 4)
    return ReconfigPlan(
        events=[
            JoinSpec(0.02, 0),
            LeaveSpec(0.05, config.members(1)[1]),
            LaneWeightSpec(0.08, weights),
        ]
    )


def run_and_verify(config, plan, seed, monitors=(), **kw):
    kw.setdefault("messages_per_client", 10)
    kw.setdefault("protocol_options", WbCastOptions(retry_interval=0.05))
    res = run_elastic_workload(
        WbCastProcess,
        config,
        plan,
        seed=seed,
        network=NETWORK(),
        attach_genuineness=True,
        monitors=monitors,
        **kw,
    )
    assert res.completed == res.expected, (
        f"completed {res.completed}/{res.expected} at t={res.sim.now:.3f}"
    )
    failed = [c.describe() for c in res.check_elastic() if not c.ok]
    assert not failed, failed
    assert res.genuineness.is_genuine, res.genuineness.violations[:3]
    coverage = res.joiner_coverage_violations()
    assert not coverage, coverage
    return res


class TestAcceptanceBattery:
    """Join + leave + reweight under load, sharded and unsharded."""

    @pytest.mark.parametrize("shards", [1, 2])
    @pytest.mark.parametrize("seed", range(4))
    def test_mixed_script_under_load(self, shards, seed):
        config = ClusterConfig.build(3, 3, 3, shards_per_group=shards)
        run_and_verify(config, mixed_plan(config), seed)

    @pytest.mark.parametrize("seed", range(2))
    def test_mixed_script_with_invariant_monitor(self, seed):
        config = ClusterConfig.build(3, 3, 3, shards_per_group=2)
        monitor = WbCastInvariantMonitor(config)
        res = run_and_verify(config, mixed_plan(config), 100 + seed,
                             monitors=[monitor])
        stats = monitor.stats()
        assert stats["proposals"] > 0 and stats["delivers_checked"] > 0

    @pytest.mark.parametrize("seed", range(3))
    def test_randomized_scripts(self, seed):
        """Randomized event mix, times and shapes (the fuzz leg)."""
        rng = random.Random(7000 + seed)
        shards = rng.choice([1, 2])
        config = ClusterConfig.build(3, 3, 3, shards_per_group=shards)
        events = [JoinSpec(rng.uniform(0.01, 0.03), rng.randrange(3))]
        leaver_gid = rng.randrange(3)
        events.append(
            LeaveSpec(rng.uniform(0.04, 0.06), config.members(leaver_gid)[-1])
        )
        if rng.random() < 0.5:
            events.append(
                LaneWeightSpec(
                    rng.uniform(0.07, 0.09),
                    tuple(
                        (pid, rng.choice([1, 2]))
                        for pid in config.all_members
                        if pid != config.members(leaver_gid)[-1]
                    ),
                )
            )
        config_plan = ReconfigPlan(events=events)
        run_and_verify(
            config, config_plan, seed,
            messages_per_client=rng.choice([8, 12]),
        )

    def test_joiner_serves_pre_join_reads(self):
        config = ClusterConfig.build(2, 3, 2, shards_per_group=2)
        plan = ReconfigPlan(events=[JoinSpec(0.03, 0)])
        res = run_and_verify(config, plan, seed=11)
        (joiner,) = res.joiners.values()
        assert joiner.installed
        core = res.managers[0]
        join_idx = core.activation_index(1)
        assert join_idx is not None and join_idx > 1  # load preceded the join
        pre_join = core.app_log[: join_idx - 1]
        assert pre_join, "expected pre-join traffic"
        for m in pre_join:
            got = joiner.read(m.mid)
            assert got is not None and got.payload == m.payload

    def test_joiner_takes_over_a_lane_via_weights(self):
        """Join then reweight toward the joiner: the joiner ends up
        leading a lane it recovered through the epoch handoff."""
        config = ClusterConfig.build(2, 3, 2, shards_per_group=2)
        joiner_pid = max(config.all_processes) + 1
        weights = tuple((p, 1) for p in config.all_members) + ((joiner_pid, 3),)
        plan = ReconfigPlan(
            events=[JoinSpec(0.02, 0, joiner_pid), LaneWeightSpec(0.06, weights)]
        )
        res = run_and_verify(config, plan, seed=13, messages_per_client=12)
        joiner = res.joiners[joiner_pid]
        assert joiner.installed
        final = res.epochs()[-1]
        owned = [l for l in range(2) if final.lane_leader(0, l) == joiner_pid]
        assert owned, "reweight should hand the joiner a lane"
        assert any(joiner.protocol.lanes[l].is_leader() for l in owned)

    @pytest.mark.parametrize("seed", range(3))
    def test_set_shards_fencing(self, seed):
        """Dial active lanes down and back up under load: the lane hash
        changes across epochs, so this only stays consistent if epoch
        fencing keeps every group's admissions aligned."""
        config = ClusterConfig.build(3, 3, 3, shards_per_group=4)
        plan = ReconfigPlan(events=[ShardSpec(0.03, 2), ShardSpec(0.08, 4)])
        monitor = WbCastInvariantMonitor(config)
        run_and_verify(
            config, plan, seed, messages_per_client=12, monitors=[monitor]
        )

    @pytest.mark.parametrize("seed", range(2))
    def test_leave_of_crash_elected_leader(self, seed):
        """Regression: pid 0 (deal leader of lane 0) crashes, pid 1 wins
        the election, then pid 1 *leaves*.  The new deal still names the
        dead pid 0, so no epoch handoff fires — the failure detector must
        re-elect around it, which requires the retired leaver's monitor
        to fall silent (it used to keep heartbeating as 'leader')."""
        from tests.conftest import FAST_FD

        config = ClusterConfig.build(2, 5, 2, shards_per_group=2)
        plan = ReconfigPlan(events=[LeaveSpec(0.08, 1)])
        crash = FaultPlan(crashes=[CrashSpec(0, 0.01)])
        res = run_elastic_workload(
            WbCastProcess,
            config,
            plan,
            seed=seed,
            network=NETWORK(),
            attach_genuineness=True,
            protocol_options=WbCastOptions(retry_interval=0.05),
            fault_plan=crash,
            attach_fd=True,
            fd_options=FAST_FD,
            messages_per_client=8,
            max_time=10.0,
        )
        assert res.completed == res.expected, (
            f"{res.completed}/{res.expected} at t={res.sim.now:.2f}"
        )
        failed = [
            c.describe() for c in res.check_elastic(quiescent=False) if not c.ok
        ]
        assert not failed, failed

    def test_reconfig_with_concurrent_crash(self):
        """A follower crash overlapping the reconfiguration script."""
        config = ClusterConfig.build(3, 3, 3, shards_per_group=2)
        plan = ReconfigPlan(events=[JoinSpec(0.02, 0), LeaveSpec(0.06, 4)])
        crash = FaultPlan(crashes=[CrashSpec(8, 0.04)])  # group 2 follower
        res = run_elastic_workload(
            WbCastProcess,
            config,
            plan,
            seed=17,
            network=NETWORK(),
            attach_genuineness=True,
            protocol_options=WbCastOptions(retry_interval=0.05),
            fault_plan=crash,
            messages_per_client=8,
        )
        assert res.completed == res.expected
        failed = [
            c.describe()
            for c in res.check_elastic(quiescent=False)
            if not c.ok
        ]
        assert not failed, failed
        assert res.genuineness.is_genuine


class TestEpochSemantics:
    def test_group_members_activate_at_same_delivery_index(self):
        """The epoch boundary IS the delivery index: all members of one
        group flip each epoch at the same position of their (shared)
        delivery sequence.  Different groups deliver different message
        subsets, so indices only compare within a group."""
        config = ClusterConfig.build(3, 3, 3, shards_per_group=2)
        res = run_and_verify(config, mixed_plan(config), seed=23)
        by_key = {}
        for pid, mgr in res.managers.items():
            if pid in res.joiners:
                continue  # the joiner's log starts at its snapshot seed
            gid = config.group_of(pid) if config.is_member(pid) else None
            for act in mgr.activations:
                by_key.setdefault((gid, act.epoch), set()).add(act.delivery_index)
        assert by_key, "expected activations"
        for (gid, epoch), indices in by_key.items():
            # Members that retire mid-script (the leaver) stop before
            # later epochs; every member that DID activate an epoch did
            # so at the same index as its group-mates.
            assert len(indices) == 1, f"group {gid} epoch {epoch}: {indices}"

    def test_lowest_pid_member_leaving_keeps_verification_sound(self):
        """Regression: the epoch chain must come from a manager whose log
        is complete — a leaver's truncates at its own leave, and member 0
        leaving first used to yield a chain missing the later join."""
        config = ClusterConfig.build(2, 3, 2)
        plan = ReconfigPlan(events=[LeaveSpec(0.02, 0), JoinSpec(0.05, 0)])
        res = run_and_verify(config, plan, seed=37, messages_per_client=8)
        assert [c.epoch for c in res.epochs()] == [0, 1, 2]
        final = res.epochs()[-1]
        assert 0 not in final.all_members
        assert set(res.joiners) <= set(final.members(0))

    def test_leaver_retires_and_quorums_shrink(self):
        config = ClusterConfig.build(2, 3, 2)
        leaver = config.members(1)[1]
        plan = ReconfigPlan(events=[LeaveSpec(0.03, leaver)])
        res = run_and_verify(config, plan, seed=29)
        assert res.members[leaver].retired
        final = res.epochs()[-1]
        assert leaver not in final.all_members
        assert final.quorum_size(1) == 2
        survivors = [p for p in config.members(1) if p != leaver]
        for pid in survivors:
            assert res.managers[pid].config.epoch == final.epoch

    def test_stale_epoch_submission_is_fenced_with_refresh(self):
        """A session left on an old epoch gets fenced and refreshed, and
        its submission still completes exactly once."""
        config = ClusterConfig.build(2, 3, 2, shards_per_group=2)
        plan = ReconfigPlan(events=[LeaveSpec(0.03, config.members(1)[-1])])
        res = run_and_verify(config, plan, seed=31)
        # Every workload session converged on the final epoch via fences.
        final_epoch = res.epochs()[-1].epoch
        assert all(c.config.epoch == final_epoch for c in res.clients)
