"""Cross-protocol differential battery: one workload, every implementation.

The per-protocol suites each probe their own corner cases; this file runs
*identical seeded workloads* through WbCast, FtSkeen and FastCast (each
batched and unbatched, through the shared protocol-agnostic Batcher) plus
Skeen, and asserts the full checking contract for every one of them.  A
regression that slips past a protocol's own tests — say an ordering bug
only visible under a workload shape another protocol's suite happens to
use — trips here, because every variant faces the exact same scenarios.
"""

import random

import pytest

from repro.bench.harness import run_workload
from repro.checking.total_order import verify_witness, witness_order
from repro.config import BatchingOptions
from repro.protocols import (
    FastCastProcess,
    FtSkeenProcess,
    SkeenProcess,
    WbCastProcess,
)
from repro.sim import UniformDelay
from repro.workload import ClientOptions

from tests.conftest import DELTA, checks_ok

#: Batching knobs shared by every batched variant: the harness folds the
#: same ``batching`` argument into WbCast, FtSkeen and FastCast options
#: (protocols without Batcher support ignore it), so one parameter grid
#: covers the whole family.
BATCHED = BatchingOptions(max_batch=8, max_linger=2 * DELTA, pipeline_depth=2)

#: An adaptive-linger flavour of the same knobs for the WbCast variant.
ADAPTIVE = BatchingOptions(
    max_batch=8, max_linger=2 * DELTA, pipeline_depth=2, linger_mode="adaptive"
)

VARIANTS = [
    pytest.param(SkeenProcess, 1, None, id="skeen"),
    pytest.param(WbCastProcess, 3, None, id="wbcast"),
    pytest.param(WbCastProcess, 3, BATCHED, id="wbcast-batched"),
    pytest.param(WbCastProcess, 3, ADAPTIVE, id="wbcast-adaptive"),
    pytest.param(FtSkeenProcess, 3, None, id="ftskeen"),
    pytest.param(FtSkeenProcess, 3, BATCHED, id="ftskeen-batched"),
    pytest.param(FastCastProcess, 3, None, id="fastcast"),
    pytest.param(FastCastProcess, 3, BATCHED, id="fastcast-batched"),
]


def run_variant(protocol_cls, group_size, batching, seed, **overrides):
    kwargs = dict(
        num_groups=3,
        group_size=group_size,
        num_clients=3,
        messages_per_client=6,
        dest_k=2,
        seed=seed,
        network=UniformDelay(0.0002, 2 * DELTA),
        batching=batching,
        attach_genuineness=True,
    )
    kwargs.update(overrides)
    res = run_workload(protocol_cls, **kwargs)
    assert res.all_done, (
        f"{protocol_cls.__name__} completed {res.completed}/{res.expected}"
    )
    return res


@pytest.mark.parametrize("protocol_cls,group_size,batching", VARIANTS)
class TestDifferential:
    @pytest.mark.parametrize("seed", range(5))
    def test_seeded_workload_full_contract(self, protocol_cls, group_size, batching, seed):
        """Same seeds for every variant: total order, integrity,
        termination and genuineness must hold across the board."""
        res = run_variant(protocol_cls, group_size, batching, seed)
        checks_ok(res)
        assert res.genuineness.is_genuine, res.genuineness.violations

    @pytest.mark.parametrize("seed", [0, 1])
    def test_witness_order_verifies(self, protocol_cls, group_size, batching, seed):
        res = run_variant(protocol_cls, group_size, batching, seed)
        h = res.history()
        assert not verify_witness(h, witness_order(h), quiescent=True)

    def test_randomized_shape(self, protocol_cls, group_size, batching):
        """A randomly drawn workload shape, identical across variants."""
        rng = random.Random(99)
        clients = rng.choice([2, 4])
        messages = rng.choice([4, 8])
        dest_k = rng.randint(1, 3)
        window = rng.choice([1, 3])
        res = run_variant(
            protocol_cls, group_size, batching, seed=99,
            num_clients=clients, messages_per_client=messages, dest_k=dest_k,
            client_options=ClientOptions(num_messages=messages, window=window),
        )
        checks_ok(res)


class TestOpaquePayloads:
    """Payloads are opaque (need not be hashable): batching must buffer
    by message id, never by hashing whole ``(m, ...)`` items."""

    @pytest.mark.parametrize(
        "protocol_cls",
        [WbCastProcess, FtSkeenProcess, FastCastProcess],
        ids=["wbcast", "ftskeen", "fastcast"],
    )
    def test_unhashable_payload_batches_fine(self, protocol_cls):
        from repro.config import ClusterConfig
        from repro.sim import ConstantDelay
        from repro.types import make_message

        from tests.conftest import build_cluster

        config = ClusterConfig.build(2, 3, 1)
        options = protocol_cls.OPTIONS_CLS(batching=BATCHED)
        sim, trace, tracker, members = build_cluster(
            protocol_cls, config, network=ConstantDelay(DELTA), options=options
        )
        client = config.clients[0]

        class _Null:
            def on_message(self, sender, msg):
                pass

        sim.add_process(client, lambda rt: _Null())
        from repro.protocols.base import MulticastMsg

        for i in range(4):
            m = make_message(client, i, {0, 1}, payload={"k": i})  # unhashable
            sim.record_multicast(client, m)
            for g in (0, 1):
                sim.schedule(
                    0.0,
                    lambda mm=m, t=config.default_leader(g): sim.transmit(
                        client, t, MulticastMsg(mm)
                    ),
                )
        sim.run()
        delivered = {d.m.mid for d in trace.deliveries}
        assert len(delivered) == 4


class TestBatchedMatchesUnbatched:
    """The batched wire protocol is observably the per-message protocol —
    for every implementation that batches, not just WbCast."""

    @pytest.mark.parametrize(
        "protocol_cls",
        [WbCastProcess, FtSkeenProcess, FastCastProcess],
        ids=["wbcast", "ftskeen", "fastcast"],
    )
    @pytest.mark.parametrize("seed", range(3))
    def test_same_delivery_sets(self, protocol_cls, seed):
        sets = {}
        for label, batching in (("unbatched", None), ("batched", BATCHED)):
            res = run_variant(protocol_cls, 3, batching, seed)
            checks_ok(res)
            sets[label] = {
                pid: frozenset(res.trace.delivery_order_at(pid))
                for pid in res.config.all_members
            }
        assert sets["unbatched"] == sets["batched"]
