"""The timestamp-ordered delivery queue shared by all Skeen-family protocols."""

import random

from hypothesis import given, settings, strategies as st

from repro.protocols.ordering import DeliveryQueue
from repro.types import Timestamp, make_message


def ts(t, g=0):
    return Timestamp(t, g)


def msg(i):
    return make_message(0, i, {0})


class TestDeliveryQueue:
    def test_commit_then_deliver_in_gts_order(self):
        q = DeliveryQueue()
        q.commit(msg(2), ts(5))
        q.commit(msg(1), ts(3))
        out = [m.mid for m, _ in q.pop_deliverable()]
        assert out == [(0, 1), (0, 2)]

    def test_pending_blocks_higher_committed(self):
        q = DeliveryQueue()
        q.set_pending((0, 9), ts(2))
        q.commit(msg(1), ts(4))  # gts 4 > pending lts 2: blocked
        assert list(q.pop_deliverable()) == []
        q.clear_pending((0, 9))
        assert [m.mid for m, _ in q.pop_deliverable()] == [(0, 1)]

    def test_pending_does_not_block_lower_committed(self):
        q = DeliveryQueue()
        q.set_pending((0, 9), ts(10))
        q.commit(msg(1), ts(4))
        assert [m.mid for m, _ in q.pop_deliverable()] == [(0, 1)]

    def test_commit_clears_own_pending(self):
        q = DeliveryQueue()
        q.set_pending((0, 1), ts(4))
        q.commit(msg(1), ts(4))
        assert [m.mid for m, _ in q.pop_deliverable()] == [(0, 1)]

    def test_unblocking_mid_iteration(self):
        """Delivering the blocker releases messages behind it in one pass."""
        q = DeliveryQueue()
        q.set_pending((0, 1), ts(1))
        q.commit(msg(2), ts(2))
        q.commit(msg(3), ts(3))
        assert list(q.pop_deliverable()) == []
        q.commit(msg(1), ts(1))  # blocker commits with the lowest gts
        out = [m.mid for m, _ in q.pop_deliverable()]
        assert out == [(0, 1), (0, 2), (0, 3)]

    def test_duplicate_commit_ignored(self):
        q = DeliveryQueue()
        q.commit(msg(1), ts(1))
        q.commit(msg(1), ts(9))  # same mid again: ignored
        out = list(q.pop_deliverable())
        assert len(out) == 1 and out[0][1] == ts(1)

    def test_is_committed_and_counts(self):
        q = DeliveryQueue()
        q.set_pending((0, 5), ts(9))
        q.commit(msg(1), ts(1))
        assert q.is_committed((0, 1))
        assert not q.is_committed((0, 5))
        assert q.pending_count == 1 and q.committed_count == 1

    def test_peek_blocked(self):
        q = DeliveryQueue()
        q.set_pending((0, 9), ts(1))
        q.commit(msg(1), ts(5))
        assert q.peek_blocked() == [(0, 1)]


@given(st.lists(st.integers(1, 100), min_size=1, max_size=40, unique=True),
       st.integers(0, 2**30))
@settings(max_examples=50, deadline=None)
def test_random_interleavings_deliver_in_timestamp_order(times, seed):
    """Whatever the interleaving of pending/commit ops, every message is
    delivered exactly once and deliveries are globally in gts order."""
    rng = random.Random(seed)
    q = DeliveryQueue()
    mids = {t: make_message(0, t, {0}) for t in times}
    pendings = list(times)
    rng.shuffle(pendings)
    delivered = []
    to_commit = list(times)
    rng.shuffle(to_commit)
    for t in pendings:
        q.set_pending((0, t), ts(t))
    for t in to_commit:
        q.commit(mids[t], ts(t))
        delivered.extend(g.time for _, g in q.pop_deliverable())
    delivered.extend(g.time for _, g in q.pop_deliverable())
    assert sorted(delivered) == sorted(times)
    assert delivered == sorted(delivered)
