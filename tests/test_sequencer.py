"""Non-genuine sequencer baseline (for the genuineness ablation)."""

import pytest

from repro.bench.harness import run_workload
from repro.config import ClusterConfig
from repro.protocols import SequencerProcess
from repro.protocols.sequencer import SEQUENCER_GROUP, SequencerOptions
from repro.sim import ConstantDelay
from repro.sim.faults import CrashSpec, FaultPlan
from repro.types import make_message
from repro.workload import ClientOptions, DisjointPairs

from tests.conftest import DELTA, FAST_FD, checks_ok


class TestNormalOperation:
    def test_end_to_end_properties(self):
        res = run_workload(SequencerProcess, num_groups=3, group_size=3, num_clients=3,
                           messages_per_client=10, dest_k=2, seed=1,
                           network=ConstantDelay(DELTA))
        assert res.all_done
        checks_ok(res)

    def test_targets_are_the_sequencer_leader(self):
        config = ClusterConfig.build(3, 3, 1)
        m = make_message(9, 0, {1, 2})
        targets = SequencerProcess.multicast_targets(config, config.default_leaders(), m)
        assert targets == [config.default_leader(SEQUENCER_GROUP)]

    def test_not_genuine_by_construction(self):
        """Messages not addressed to group 0 are still ordered by group 0:
        the genuineness monitor must flag this protocol."""
        res = run_workload(
            SequencerProcess, num_groups=4, group_size=3, num_clients=2,
            messages_per_client=8, seed=2, network=ConstantDelay(DELTA),
            chooser_factory=lambda config, i: DisjointPairs(config, 1),  # {2, 3}
            attach_genuineness=True,
        )
        assert res.all_done
        assert not res.genuineness.is_genuine

    def test_sequencer_group_as_destination(self):
        res = run_workload(SequencerProcess, num_groups=2, group_size=3, num_clients=2,
                           messages_per_client=6, dest_k=2, seed=3,
                           network=ConstantDelay(DELTA))
        assert res.all_done
        checks_ok(res)

    def test_projection_order_matches_global_sequence(self):
        res = run_workload(SequencerProcess, num_groups=3, group_size=3, num_clients=2,
                           messages_per_client=10, dest_k=2, seed=4,
                           network=ConstantDelay(DELTA))
        checks_ok(res)  # ordering check covers projections


class TestFailover:
    def test_sequencer_leader_crash(self):
        res = run_workload(
            SequencerProcess, num_groups=2, group_size=3, num_clients=2,
            messages_per_client=10, dest_k=2, seed=4,
            network=ConstantDelay(DELTA),
            protocol_options=SequencerOptions(retry_interval=0.05),
            client_options=ClientOptions(num_messages=10, retry_timeout=0.08),
            fault_plan=FaultPlan(crashes=[CrashSpec(0, 0.0117)]),
            attach_fd=True, fd_options=FAST_FD, drain_grace=0.3, max_time=10.0,
        )
        assert res.all_done
        checks_ok(res)

    def test_destination_leader_crash(self):
        res = run_workload(
            SequencerProcess, num_groups=2, group_size=3, num_clients=2,
            messages_per_client=10, dest_k=2, seed=5,
            network=ConstantDelay(DELTA),
            protocol_options=SequencerOptions(retry_interval=0.05),
            client_options=ClientOptions(num_messages=10, retry_timeout=0.08),
            fault_plan=FaultPlan(crashes=[CrashSpec(3, 0.0117)]),  # leader of group 1
            attach_fd=True, fd_options=FAST_FD, drain_grace=0.3, max_time=10.0,
        )
        assert res.all_done
        checks_ok(res)
