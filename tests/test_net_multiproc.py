"""MultiProcCluster: each group hosted in its own OS process over TCP."""

import asyncio

import pytest

from repro.checking import check_all
from repro.client import AmcastClientOptions
from repro.config import ClusterConfig
from repro.net import MultiProcCluster, TransportOptions
from repro.protocols import WbCastProcess

pytestmark = pytest.mark.net


def test_multiproc_end_to_end_delivery():
    config = ClusterConfig.build(num_groups=2, group_size=3, num_clients=1)

    async def scenario():
        cluster = MultiProcCluster(
            config,
            WbCastProcess,
            client_options=AmcastClientOptions(window=16),
            transport_options=TransportOptions(),
        )
        await cluster.start()
        try:
            handles = [
                cluster.sessions[0].submit(frozenset({0, 1}), payload=i)
                for i in range(10)
            ]
            done = asyncio.Event()
            remaining = len(handles)

            def completed(_handle):
                nonlocal remaining
                remaining -= 1
                if remaining == 0:
                    done.set()

            for handle in handles:
                handle.on_complete(completed)
            await asyncio.wait_for(done.wait(), timeout=60.0)
            # Completion fires at delivery quorum; wait for the trailing
            # replica deliveries before terminating the workers.
            assert await cluster.wait_quiescent(60, timeout=30.0)
        finally:
            await cluster.stop()
        return cluster

    cluster = asyncio.run(scenario())
    # Every multicast reaches all six replicas of its two destination groups.
    assert len(cluster.deliveries) == 60
    for check in check_all(cluster.history()):
        assert check.ok, check.describe()


def test_multiproc_rejects_unsupported_features():
    config = ClusterConfig.build(num_groups=1, group_size=3, num_clients=1)
    with pytest.raises(ValueError, match="attach_fd"):
        MultiProcCluster(config, WbCastProcess, attach_fd=True)

    cluster = MultiProcCluster(config, WbCastProcess)
    with pytest.raises(NotImplementedError):
        asyncio.run(cluster.kill(0))
    with pytest.raises(NotImplementedError):
        asyncio.run(cluster.add_member(0, 99))
