"""FastCast baseline: speculative consensus pipelining (Coelho et al.)."""

import pytest

from repro.bench.harness import run_workload
from repro.protocols import FastCastProcess
from repro.protocols.fastcast import ConfirmMsg, FastCastOptions, FcDeliverMsg
from repro.protocols.skeen import ProposeMsg
from repro.sim import ConstantDelay
from repro.sim.faults import CrashSpec, FaultPlan
from repro.workload import ClientOptions

from tests.conftest import DELTA, FAST_FD, checks_ok


class TestNormalOperation:
    def test_end_to_end_properties(self):
        res = run_workload(FastCastProcess, num_groups=3, group_size=3, num_clients=3,
                           messages_per_client=10, dest_k=2, seed=1,
                           network=ConstantDelay(DELTA))
        assert res.all_done
        checks_ok(res)

    def test_genuine(self):
        res = run_workload(FastCastProcess, num_groups=4, group_size=3, num_clients=2,
                           messages_per_client=8, dest_k=2, seed=2,
                           network=ConstantDelay(DELTA), attach_genuineness=True)
        assert res.genuineness.is_genuine

    def test_propose_is_speculative(self):
        """The defining FastCast property: PROPOSE leaves the leader
        immediately (1δ), before consensus #1 finishes."""
        res = run_workload(FastCastProcess, num_groups=2, group_size=3, num_clients=1,
                           messages_per_client=1, dest_k=2, seed=0,
                           network=ConstantDelay(DELTA))
        proposes = [r for r in res.trace.sends if isinstance(r.msg, ProposeMsg)]
        assert proposes
        assert min(r.t_send for r in proposes) == pytest.approx(DELTA)

    def test_confirms_exchanged_after_consensus1(self):
        res = run_workload(FastCastProcess, num_groups=2, group_size=3, num_clients=1,
                           messages_per_client=1, dest_k=2, seed=0,
                           network=ConstantDelay(DELTA))
        confirms = [r for r in res.trace.sends if isinstance(r.msg, ConfirmMsg)]
        assert confirms
        # Consensus #1 executes at 3δ; confirms go out then.
        assert min(r.t_send for r in confirms) == pytest.approx(3 * DELTA)

    def test_delivery_times_4_and_5_delta(self):
        res = run_workload(FastCastProcess, num_groups=2, group_size=3, num_clients=1,
                           messages_per_client=1, dest_k=2, seed=0,
                           network=ConstantDelay(DELTA))
        times = {d.pid: d.t for d in res.trace.deliveries}
        assert times[0] == pytest.approx(4 * DELTA)
        assert times[1] == pytest.approx(5 * DELTA)

    def test_deliver_messages_carry_unique_gts(self):
        res = run_workload(FastCastProcess, num_groups=3, group_size=3, num_clients=3,
                           messages_per_client=8, dest_k=2, seed=5,
                           network=ConstantDelay(DELTA))
        owner = {}
        for r in res.trace.sends:
            if isinstance(r.msg, FcDeliverMsg):
                assert owner.setdefault(r.msg.gts, r.msg.m.mid) == r.msg.m.mid
                assert owner.setdefault(r.msg.m.mid, r.msg.gts) == r.msg.gts


class TestFailover:
    def test_leader_crash_completes_with_retries(self):
        res = run_workload(
            FastCastProcess, num_groups=2, group_size=3, num_clients=2,
            messages_per_client=10, dest_k=2, seed=4,
            network=ConstantDelay(DELTA),
            protocol_options=FastCastOptions(retry_interval=0.05),
            client_options=ClientOptions(num_messages=10, retry_timeout=0.08),
            fault_plan=FaultPlan(crashes=[CrashSpec(0, 0.0117)]),
            attach_fd=True, fd_options=FAST_FD, drain_grace=0.3, max_time=10.0,
        )
        assert res.all_done
        checks_ok(res)

    def test_crash_mid_speculation(self):
        """Crash the leader between sending its speculative PROPOSE and
        consensus #1 finishing: the tentative timestamp dies with it and
        retries reassign a fresh one without breaking agreement."""
        res = run_workload(
            FastCastProcess, num_groups=2, group_size=3, num_clients=2,
            messages_per_client=8, dest_k=2, seed=6,
            network=ConstantDelay(DELTA),
            protocol_options=FastCastOptions(retry_interval=0.05),
            client_options=ClientOptions(num_messages=8, retry_timeout=0.08),
            # 1.5δ after start: MULTICASTs arrived at 1δ, consensus #1
            # completes at 3δ — the crash lands mid-speculation.
            fault_plan=FaultPlan(crashes=[CrashSpec(0, 1.5 * DELTA)]),
            attach_fd=True, fd_options=FAST_FD, drain_grace=0.3, max_time=10.0,
        )
        assert res.all_done
        checks_ok(res)
