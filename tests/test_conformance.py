"""Protocol conformance battery: one specification, five implementations.

Every atomic multicast implementation in the library must satisfy the
same observable contract.  This file runs an identical scenario battery
against all of them — a cheap way to keep the baselines honest as the
code evolves (a baseline that quietly stopped satisfying the spec would
invalidate every comparison benchmark).
"""

import pytest

from repro.bench.harness import run_workload
from repro.checking.total_order import verify_witness, witness_order
from repro.config import ClusterConfig
from repro.protocols import (
    FastCastProcess,
    FtSkeenProcess,
    SequencerProcess,
    SkeenProcess,
    WbCastProcess,
)
from repro.sim import ConstantDelay, UniformDelay
from repro.workload import FixedDestinations

from tests.conftest import DELTA, checks_ok

ALL_PROTOCOLS = [
    pytest.param(SkeenProcess, 1, id="skeen"),
    pytest.param(WbCastProcess, 3, id="wbcast"),
    pytest.param(FtSkeenProcess, 3, id="ftskeen"),
    pytest.param(FastCastProcess, 3, id="fastcast"),
    pytest.param(SequencerProcess, 3, id="sequencer"),
]


@pytest.mark.parametrize("protocol_cls,group_size", ALL_PROTOCOLS)
class TestConformance:
    def test_basic_spec(self, protocol_cls, group_size):
        res = run_workload(protocol_cls, num_groups=3, group_size=group_size,
                           num_clients=2, messages_per_client=6, dest_k=2,
                           seed=1, network=ConstantDelay(DELTA))
        assert res.all_done
        checks_ok(res)

    def test_witness_order_exists_and_verifies(self, protocol_cls, group_size):
        res = run_workload(protocol_cls, num_groups=3, group_size=group_size,
                           num_clients=2, messages_per_client=6, dest_k=2,
                           seed=2, network=ConstantDelay(DELTA))
        h = res.history()
        order = witness_order(h)
        assert not verify_witness(h, order, quiescent=True)

    def test_single_group_destinations(self, protocol_cls, group_size):
        res = run_workload(protocol_cls, num_groups=3, group_size=group_size,
                           num_clients=2, messages_per_client=6, dest_k=1,
                           seed=3, network=ConstantDelay(DELTA))
        assert res.all_done
        checks_ok(res)

    def test_all_groups_destination(self, protocol_cls, group_size):
        res = run_workload(protocol_cls, num_groups=3, group_size=group_size,
                           num_clients=2, messages_per_client=5, dest_k=3,
                           seed=4, network=ConstantDelay(DELTA))
        assert res.all_done
        checks_ok(res)

    def test_random_delays(self, protocol_cls, group_size):
        res = run_workload(protocol_cls, num_groups=3, group_size=group_size,
                           num_clients=3, messages_per_client=6, dest_k=2,
                           seed=5, network=UniformDelay(0.0002, 0.003))
        assert res.all_done
        checks_ok(res)

    def test_hot_spot_contention(self, protocol_cls, group_size):
        """Every client hammers the same two groups: maximal conflict rate;
        ordering agreement must hold at both groups."""
        res = run_workload(
            protocol_cls, num_groups=3, group_size=group_size,
            num_clients=4, messages_per_client=8, seed=6,
            network=UniformDelay(0.0002, 0.002),
            chooser_factory=lambda config, i: FixedDestinations([0, 1]),
        )
        assert res.all_done
        checks_ok(res)
        # Both groups delivered all 32 messages in the same relative order.
        orders = []
        for gid in (0, 1):
            pid = res.config.members(gid)[0]
            orders.append([mid for mid in res.trace.delivery_order_at(pid)])
        assert orders[0] == orders[1]

    def test_latencies_are_bounded_by_worst_case(self, protocol_cls, group_size):
        """No delivery should exceed the protocol's failure-free bound
        (with a collision-free workload, even the CFL bound holds)."""
        bounds = {
            "SkeenProcess": 2, "WbCastProcess": 3, "FastCastProcess": 4,
            "FtSkeenProcess": 6, "SequencerProcess": 6,
        }
        res = run_workload(protocol_cls, num_groups=3, group_size=group_size,
                           num_clients=1, messages_per_client=6, dest_k=2,
                           seed=7, network=ConstantDelay(DELTA))
        bound = bounds[protocol_cls.__name__] * DELTA
        for latency in res.latencies():
            assert latency <= bound + 1e-12
