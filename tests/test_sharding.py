"""Sharded multi-leader groups: conformance, recovery and differential tests.

The sharding battery covers the three ways lanes can go wrong:

* **routing** — a message handled by the wrong lane (or a client batch
  split across lane leaders) breaks per-lane timestamp uniqueness;
* **merging** — members interleaving their lanes' DELIVER streams
  differently breaks total order, which the randomized cross-lane
  conformance tests (mixed destination sets, S ∈ {1, 2, 4}, batched and
  not) would trip;
* **recovery** — a lane-leader crash must re-elect *that lane only*, and
  the quorum-replicated lane watermarks must survive the change (a stale
  promise after failover is exactly the cross-member divergence the
  differential checks hunt).

Plus the acceptance bar: shard-1 runs are *byte-identical* to the
unsharded protocols — same classes, same timestamps, same delivery
sequences.
"""

import random

import pytest

from repro.bench.harness import run_workload
from repro.checking import WbCastInvariantMonitor
from repro.checking.total_order import (
    lane_statistics,
    projection_by_lane,
    verify_lane_projections,
    verify_witness,
    witness_order,
)
from repro.config import BatchingOptions, ClusterConfig
from repro.errors import ConfigError
from repro.protocols import (
    FastCastProcess,
    FtSkeenProcess,
    SkeenProcess,
    WbCastProcess,
)
from repro.protocols.base import MulticastBatchMsg
from repro.protocols.wbcast import (
    LaneMergeQueue,
    LaneMsg,
    ShardedWbCastProcess,
    WbCastOptions,
)
from repro.sim import UniformDelay
from repro.sim.faults import CrashSpec, FaultPlan
from repro.types import TS_BOTTOM, Timestamp
from repro.workload import ClientOptions

from tests.conftest import DELTA, FAST_FD, checks_ok

BATCHED = BatchingOptions(max_batch=8, max_linger=2 * DELTA, pipeline_depth=2)
INGRESS = BatchingOptions(max_batch=8, max_linger=2 * DELTA)


def run_sharded(shards, seed, batching=None, ingress=None, **overrides):
    config = ClusterConfig.build(3, 3, 3, shards_per_group=shards)
    kwargs = dict(
        config=config,
        messages_per_client=6,
        dest_k=2,
        seed=seed,
        network=UniformDelay(0.0002, 2 * DELTA),
        batching=batching,
        attach_genuineness=True,
    )
    if ingress is not None:
        kwargs["client_options"] = ClientOptions(
            num_messages=6, window=4, ingress=ingress
        )
    kwargs.update(overrides)
    res = run_workload(WbCastProcess, **kwargs)
    assert res.all_done, f"S={shards}: completed {res.completed}/{res.expected}"
    return res


class TestLaneConfig:
    def test_lane_of_is_stable_and_spreads(self):
        config = ClusterConfig.build(2, 3, 2, shards_per_group=4)
        lanes = [config.lane_of((100, seq)) for seq in range(64)]
        assert lanes == [config.lane_of((100, seq)) for seq in range(64)]
        assert set(lanes) == {0, 1, 2, 3}  # four blocks hit every lane
        # Block-sticky: a window burst of consecutive seqs shares a lane.
        block = ClusterConfig.LANE_BLOCK
        assert len({config.lane_of((100, s)) for s in range(block)}) == 1
        # Distinct origins spread even within one block.
        assert len({config.lane_of((o, 0)) for o in range(8)}) == 4

    def test_one_shard_degenerates_to_unsharded_layout(self):
        config = ClusterConfig.build(2, 3, 2)
        assert config.lane_of((7, 3)) == 0
        assert config.lane_leaders(0) == config.default_leaders()
        assert config.lane_timestamp_group(1, 0) == 1

    def test_lane_leaders_round_robin(self):
        config = ClusterConfig.build(2, 3, 0, shards_per_group=4)
        assert [config.lane_leader(0, lane) for lane in range(4)] == [0, 1, 2, 0]
        assert [config.lane_leader(1, lane) for lane in range(4)] == [3, 4, 5, 3]

    def test_shards_validated(self):
        with pytest.raises(ConfigError):
            ClusterConfig.build(2, 3, 0, shards_per_group=0)

    def test_sharded_construction_dispatches_to_host(self, config_2x3):
        from tests.conftest import build_cluster

        sharded = ClusterConfig.build(2, 3, 0, shards_per_group=2)
        sim, trace, tracker, members = build_cluster(WbCastProcess, sharded)
        assert all(isinstance(p, ShardedWbCastProcess) for p in members.values())
        assert all(len(p.lanes) == 2 for p in members.values())
        # One shard: the plain per-lane class, no host, no envelopes.
        sim, trace, tracker, members = build_cluster(WbCastProcess, config_2x3)
        assert all(type(p) is WbCastProcess for p in members.values())


class TestLaneMergeQueue:
    def ts(self, t, g=0):
        return Timestamp(t, g)

    def test_single_lane_passes_through(self):
        q = LaneMergeQueue(1)
        q.push(0, "a", self.ts(1))
        q.push(0, "b", self.ts(2))
        assert q.drain() == (["a", "b"], [])

    def test_empty_lane_blocks_until_watermark(self):
        q = LaneMergeQueue(2)
        q.push(0, "a", self.ts(5, 0))
        out, blockers = q.drain()
        assert out == [] and blockers == [1]
        assert q.blocked_need(1) == self.ts(5, 0)
        q.advance(1, self.ts(4, 99))  # not enough: future of lane 1 > (4,99) < (5,0)
        assert q.drain() == ([], [1])
        q.advance(1, self.ts(5, 99))
        assert q.drain() == (["a"], [])
        assert q.blocked_need(1) is None

    def test_merge_releases_in_gts_order_across_lanes(self):
        q = LaneMergeQueue(2)
        q.push(0, "a", self.ts(1, 0))
        q.push(1, "b", self.ts(2, 1))
        q.push(0, "c", self.ts(3, 0))
        q.push(1, "d", self.ts(4, 1))
        out, blockers = q.drain()
        # "d" stays queued: lane 0 is empty with floor (3,0) < (4,1).
        assert out == ["a", "b", "c"] and blockers == [0]
        q.advance(0, self.ts(4, 99))
        assert q.drain() == (["d"], [])

    def test_floor_tracks_own_deliveries(self):
        q = LaneMergeQueue(2)
        q.push(0, "a", self.ts(1, 0))
        q.push(1, "b", self.ts(2, 1))
        # "b" still blocks: lane 0's floor (1,0) does not rule out a
        # future lane-0 delivery at (2,0) < (2,1).
        assert q.drain() == (["a"], [0])
        q.push(0, "c", self.ts(2, 0))
        # Lane 1's queued head (2,1) bounds lane 1, so "c" releases; then
        # lane 0's own floor (2,0) has moved past nothing — "b" waits on
        # a watermark strictly covering it.
        assert q.drain() == (["c"], [0])
        q.advance(0, self.ts(2, 99))
        assert q.drain() == (["b"], [])
        assert q._floor[1] > TS_BOTTOM


@pytest.mark.parametrize("shards", [1, 2, 4])
class TestShardedConformance:
    """Randomized cross-lane total order: mixed destination sets, every
    check of the contract, at one, two and four lanes per group."""

    @pytest.mark.parametrize("seed", range(4))
    def test_full_contract_unbatched(self, shards, seed):
        res = run_sharded(shards, seed)
        checks_ok(res)
        assert res.genuineness.is_genuine, res.genuineness.violations
        h = res.history()
        order = witness_order(h)
        assert not verify_witness(h, order, quiescent=True)
        assert not verify_lane_projections(h, order)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_full_contract_batched_with_ingress(self, shards, seed):
        res = run_sharded(shards, seed, batching=BATCHED, ingress=INGRESS)
        checks_ok(res)
        assert res.genuineness.is_genuine, res.genuineness.violations
        h = res.history()
        assert not verify_lane_projections(h, witness_order(h))

    def test_lanes_actually_share_the_load(self, shards):
        res = run_sharded(shards, seed=7)
        stats = lane_statistics(res.history())
        assert sum(stats.values()) == res.completed
        # Lanes are block-sticky per origin (LANE_BLOCK): three sessions
        # of six messages each occupy one block apiece, so at most three
        # distinct lanes can appear — and the hash must not collide them.
        assert len(stats) == min(shards, len(res.config.clients))

    def test_randomized_shape(self, shards):
        rng = random.Random(1000 + shards)
        messages = rng.choice([4, 8])
        dest_k = rng.randint(1, 3)
        res = run_sharded(
            shards,
            seed=11,
            messages_per_client=messages,
            dest_k=dest_k,
            client_options=ClientOptions(num_messages=messages, window=rng.choice([1, 3])),
        )
        checks_ok(res)


class TestShardedInvariants:
    def test_fig6_invariants_hold_across_lanes(self):
        config = ClusterConfig.build(3, 3, 3, shards_per_group=2)
        monitor = WbCastInvariantMonitor(config)
        res = run_workload(
            WbCastProcess,
            config=config,
            messages_per_client=6,
            dest_k=2,
            seed=13,
            network=UniformDelay(0.0002, 2 * DELTA),
            monitors=[monitor],
        )
        assert res.all_done
        stats = monitor.stats()
        # The monitor must actually see through the lane envelopes.
        assert stats["proposals"] > 0
        assert stats["delivers_checked"] > 0

    def test_lane_timestamps_partition(self):
        """Every delivered witness position belongs to exactly one lane."""
        res = run_sharded(4, seed=17)
        h = res.history()
        order = witness_order(h)
        per_lane = [projection_by_lane(h, order, lane) for lane in range(4)]
        assert sorted(mid for lane in per_lane for mid in lane) == sorted(order)


class TestClientLaneRouting:
    def test_ingress_batches_are_single_lane_projections(self):
        """Client-coalesced wire batches must never mix lanes: a mixed
        batch would land entries at a leader that does not own them."""
        res = run_sharded(2, seed=19, ingress=INGRESS)
        config = res.config
        batches = [
            rec
            for rec in res.trace.sends
            if isinstance(rec.msg, MulticastBatchMsg)
            and not config.is_member(rec.src)
        ]
        assert batches, "expected client-side MULTICAST_BATCH coalescing"
        for rec in batches:
            lanes = {config.lane_of(m.mid) for m in rec.msg.entries}
            assert len(lanes) == 1
            (lane,) = lanes
            # ...and they land at that lane's believed leader-side member.
            assert config.is_member(rec.dst)

    def test_session_learns_lane_leaders_from_acks(self):
        res = run_sharded(2, seed=23)
        client = res.clients[0]
        assert client.shards == 2
        config = res.config
        for (gid, lane), leader in client.lane_leader.items():
            assert leader in config.members(gid)


class TestLaneRecovery:
    """A lane-leader crash is a single-lane event."""

    def crash_run(self, victim, at, shards=2, seed=29, batching=None, **overrides):
        config = ClusterConfig.build(2, 3, 2, shards_per_group=shards)
        kwargs = dict(
            config=config,
            messages_per_client=8,
            dest_k=2,
            seed=seed,
            network=UniformDelay(0.0002, 2 * DELTA),
            protocol_options=WbCastOptions(
                retry_interval=0.05, batching=batching
            ),
            client_options=ClientOptions(num_messages=8, retry_timeout=0.08),
            fault_plan=FaultPlan(crashes=[CrashSpec(victim, at)]),
            attach_fd=True,
            fd_options=FAST_FD,
            max_time=6.0,
            drain_grace=0.1,
        )
        kwargs.update(overrides)
        res = run_workload(WbCastProcess, **kwargs)
        assert res.all_done, f"completed {res.completed}/{res.expected}"
        return res

    def test_lane_leader_crash_reelects_only_that_lane(self):
        # pid 1 initially leads lane 1 of group 0 (round-robin deal).
        res = self.crash_run(victim=1, at=0.004)
        checks_ok(res, quiescent=False)
        survivor = res.members[0]  # pid 0: leads lane 0, follows lane 1
        assert survivor.lanes[0].cballot.round == 0  # lane 0 undisturbed
        assert survivor.lanes[1].cballot.round > 0  # lane 1 re-elected
        assert survivor.lanes[1].cur_leader[0] != 1

    def test_lane_leader_crash_mid_batch(self):
        """Crash while ACCEPT batches are buffered/in flight: the committed
        prefix survives per message, the tail is re-driven by retries."""
        res = self.crash_run(victim=1, at=0.0035, batching=BATCHED, seed=31)
        checks_ok(res, quiescent=False)
        h = res.history()
        assert not verify_lane_projections(h, witness_order(h))

    def test_cross_group_same_lane_crash(self):
        """Kill the same lane's leader in *both* groups simultaneously."""
        config = ClusterConfig.build(2, 3, 2, shards_per_group=2)
        res = self.crash_run(
            victim=1,
            at=0.004,
            seed=37,
            fault_plan=FaultPlan(crashes=[CrashSpec(1, 0.004), CrashSpec(4, 0.004)]),
            config=config,
        )
        checks_ok(res, quiescent=False)

    @pytest.mark.parametrize("seed", range(3))
    def test_randomized_crashes_under_sharding(self, seed):
        rng = random.Random(seed)
        config = ClusterConfig.build(3, 3, 2, shards_per_group=2)
        plan = FaultPlan.random_crashes(
            config, rng, max_total=2, window=(0.003, 0.01)
        )
        res = self.crash_run(
            victim=0,
            at=0.004,
            seed=41 + seed,
            config=config,
            fault_plan=plan,
        )
        checks_ok(res, quiescent=False)


class TestShard1Differential:
    """The acceptance bar: one shard must be *byte-identical* to the
    unsharded protocol — same process classes, same wire behaviour, same
    per-process delivery sequences."""

    def delivery_sequences(self, res):
        return {
            pid: tuple(res.trace.delivery_order_at(pid))
            for pid in res.config.all_members
        }

    @pytest.mark.parametrize(
        "protocol_cls",
        [WbCastProcess, FtSkeenProcess, FastCastProcess, SkeenProcess],
        ids=["wbcast", "ftskeen", "fastcast", "skeen"],
    )
    @pytest.mark.parametrize("seed", range(3))
    def test_shard1_equals_unsharded(self, protocol_cls, seed):
        group_size = 1 if protocol_cls is SkeenProcess else 3
        sequences = {}
        for label, shards in (("unsharded", None), ("shard-1", 1)):
            config = ClusterConfig.build(
                3, group_size, 3, shards_per_group=shards or 1
            )
            res = run_workload(
                protocol_cls,
                config=config,
                messages_per_client=6,
                dest_k=2,
                seed=seed,
                network=UniformDelay(0.0002, 2 * DELTA),
            )
            assert res.all_done
            checks_ok(res)
            sequences[label] = self.delivery_sequences(res)
        assert sequences["unsharded"] == sequences["shard-1"]

    @pytest.mark.parametrize("seed", range(2))
    def test_shard1_batched_equals_unsharded_batched(self, seed):
        sequences = {}
        for label, shards in (("unsharded", 1), ("shard-1", 1)):
            config = ClusterConfig.build(3, 3, 3, shards_per_group=shards)
            res = run_workload(
                WbCastProcess,
                config=config,
                messages_per_client=6,
                dest_k=2,
                seed=seed,
                network=UniformDelay(0.0002, 2 * DELTA),
                batching=BATCHED,
                client_options=ClientOptions(num_messages=6, window=4, ingress=INGRESS),
            )
            assert res.all_done
            sequences[label] = self.delivery_sequences(res)
        assert sequences["unsharded"] == sequences["shard-1"]

    def test_sharded_delivers_same_message_sets_as_unsharded(self):
        """S=2 cannot be order-identical to S=1 (different timestamps) but
        must deliver exactly the same message sets at every process."""
        sets = {}
        for shards in (1, 2):
            config = ClusterConfig.build(3, 3, 3, shards_per_group=shards)
            res = run_workload(
                WbCastProcess,
                config=config,
                messages_per_client=6,
                dest_k=2,
                seed=3,
                network=UniformDelay(0.0002, 2 * DELTA),
            )
            assert res.all_done
            checks_ok(res)
            sets[shards] = {
                pid: frozenset(res.trace.delivery_order_at(pid))
                for pid in config.all_members
            }
        assert sets[1] == sets[2]


class TestLaneEnvelope:
    def test_lane_msg_forwards_accounting_attributes(self):
        from repro.protocols.wbcast.messages import AcceptBatchMsg
        from repro.types import Ballot, make_message

        m = make_message(9, 0, {0, 1})
        inner = AcceptBatchMsg(0, Ballot(0, 0), ((m, Timestamp(1, 0)),))
        wrapped = LaneMsg(1, inner)
        assert wrapped.entries == inner.entries
        assert wrapped.size == inner.size
        assert wrapped.mids() == [m.mid]
        with pytest.raises(AttributeError):
            wrapped.no_such_attribute

    def test_lane_msg_pickles_without_consulting_inner(self):
        import pickle

        from repro.protocols.wbcast.messages import LaneProbeMsg

        wrapped = LaneMsg(2, LaneProbeMsg(2, Timestamp(5, 1)))
        clone = pickle.loads(pickle.dumps(wrapped))
        assert isinstance(clone, LaneMsg)
        assert clone.lane == 2 and clone.inner == wrapped.inner
