"""Conflict-aware delivery battery (``conflict={total,keys}``).

Three layers of coverage:

* **footprint plumbing** — the conflict-relation helpers, the apps'
  :class:`~repro.conflict.ConflictSpec` declarations, and the keys-mode
  routing/validation inside :class:`LaneMergeQueue`;
* **differential** — ``conflict="total"`` must be byte-identical to the
  pre-conflict protocols: a footprinted run and a footprint-stripped run
  of the same workload (same RNG draws) produce the same per-member
  delivery sequences, sharded and not;
* **conformance** — randomized ``conflict="keys"`` runs (mixed keyed /
  multi-key / fenced traffic, lane-leader crash included) satisfy the
  partial-order checkers, and the serving stack stays linearizable.

Plus the satellite regressions: the lane-merge head cache keeps the
release order of a naive per-pop scan, suspected-replica avoidance
expires, and ``DeliveryQueue.clear_pending`` compacts its lazy heap.
"""

import itertools
import random
import zlib

import pytest

from tests.conftest import DELTA, FAST_FD, checks_ok
from repro.apps.bank import BANK_CONFLICT, Transfer
from repro.apps.kvstore import KV_CONFLICT, KvCommand
from repro.apps.replicated_log import LOG_CONFLICT
from repro.bench.harness import run_workload
from repro.checking import check_conflict_ordering, check_ordering
from repro.checking.conflict_order import check_domain_agreement
from repro.config import ClusterConfig
from repro.conflict import (
    domain_of,
    domains_conflict,
    footprint_domains,
    footprints_conflict,
    single_domain,
    stable_key_hash,
)
from repro.errors import ConfigError, ProtocolError
from repro.protocols import WbCastProcess
from repro.protocols.ordering import DeliveryQueue
from repro.protocols.wbcast import LaneMergeQueue, WbCastOptions
from repro.serving import run_serving_workload
from repro.sim import UniformDelay
from repro.sim.faults import CrashSpec, FaultPlan
from repro.types import Timestamp, make_message
from repro.workload import ClientOptions
from repro.workload.clients import ClosedLoopClient


def wbcast_run(conflict, shards=1, key_universe=16, seed=7, mpc=6, **kw):
    config = ClusterConfig.build(
        3, 3, 3, shards_per_group=shards, conflict=conflict
    )
    kw.setdefault(
        "client_options",
        ClientOptions(num_messages=mpc, key_universe=key_universe),
    )
    res = run_workload(
        WbCastProcess,
        config=config,
        messages_per_client=mpc,
        dest_k=2,
        seed=seed,
        network=UniformDelay(0.0002, 2 * DELTA),
        attach_genuineness=True,
        drain_grace=0.2,
        **kw,
    )
    assert res.all_done
    return res


def delivery_seqs(res):
    return {
        pid: tuple(res.trace.delivery_order_at(pid))
        for pid in res.config.all_members
    }


# -- conflict-relation helpers ------------------------------------------------


class TestConflictHelpers:
    def test_stable_key_hash_is_crc32_of_str(self):
        for key in ("k1", 42, ("a", 3)):
            assert stable_key_hash(key) == zlib.crc32(str(key).encode("utf-8"))
        assert 0 <= domain_of("k1", 16) < 16

    def test_footprint_domains(self):
        assert footprint_domains(None, 4) is None
        doms = footprint_domains(("a", "b"), 4)
        assert doms == frozenset({domain_of("a", 4), domain_of("b", 4)})

    def test_single_domain(self):
        assert single_domain(None, 4) is None
        assert single_domain((), 4) is None  # empty: no keyed claim
        assert single_domain(("a",), 4) == domain_of("a", 4)
        # Two keys in one domain collapse; keys spanning domains fence.
        same = [k for k in (f"k{i}" for i in range(64)) if domain_of(k, 4) == 0]
        assert single_domain(tuple(same[:2]), 4) == 0
        other = next(k for k in (f"k{i}" for i in range(64)) if domain_of(k, 4) == 1)
        assert single_domain((same[0], other), 4) is None

    def test_footprints_conflict(self):
        assert footprints_conflict(("a", "b"), ("b", "c"))
        assert not footprints_conflict(("a",), ("b",))
        assert footprints_conflict(None, ("a",))
        assert footprints_conflict(("a",), None)
        assert footprints_conflict(None, None)

    def test_domains_conflict(self):
        assert domains_conflict(frozenset({1, 2}), frozenset({2}))
        assert not domains_conflict(frozenset({1}), frozenset({2}))
        assert domains_conflict(None, frozenset({2}))

    def test_app_conflict_specs(self):
        cmd = KvCommand(op="put", items=(("x", 1), ("y", 2)))
        assert KV_CONFLICT.footprint(cmd) == ("x", "y")
        assert KV_CONFLICT.footprint(object()) is None  # unknown payload fences
        t = Transfer(src="acct-a", dst="acct-b", amount=5)
        assert BANK_CONFLICT.footprint(t) == ("acct-a", "acct-b")
        # The replicated log is inherently totally ordered: every entry
        # claims the same key, so nothing commutes.
        fa = LOG_CONFLICT.footprint("entry-1")
        fb = LOG_CONFLICT.footprint("entry-2")
        assert footprints_conflict(fa, fb)


# -- differential: conflict="total" is byte-identical -------------------------


class TestTotalModeDifferential:
    """``conflict="total"`` must not change delivery behaviour at all.

    Footprint key draws consume client RNG, so the legacy baseline is the
    *same* run with the footprints stripped at submission: identical
    submission stream, no conflict metadata on the wire.
    """

    def _run(self, shards, seed, strip):
        orig = ClosedLoopClient.submit
        if strip:
            def stripped(self, dests, payload=None, size=None, footprint=None):
                return orig(self, dests, payload=payload, size=size)

            ClosedLoopClient.submit = stripped
        try:
            return wbcast_run("total", shards=shards, seed=seed)
        finally:
            ClosedLoopClient.submit = orig

    @pytest.mark.parametrize("shards", [1, 3])
    @pytest.mark.parametrize("seed", [7, 21])
    def test_total_ignores_footprints(self, shards, seed):
        footprinted = self._run(shards, seed, strip=False)
        baseline = self._run(shards, seed, strip=True)
        assert delivery_seqs(footprinted) == delivery_seqs(baseline)
        checks_ok(footprinted)
        checks_ok(baseline)

    def test_keys_all_fence_matches_total_unsharded(self):
        # Unfootprinted keys-mode traffic is all fences: the partial order
        # degenerates to the total order, delivery sequences included.
        # (Sharded keys mode routes fences to lane 0 instead of dealing
        # them round-robin, so sequence equality is unsharded-only.)
        total = wbcast_run("total", key_universe=0, seed=13)
        keys = wbcast_run("keys", key_universe=0, seed=13)
        assert delivery_seqs(total) == delivery_seqs(keys)
        assert check_ordering(keys.history()).ok

    @pytest.mark.parametrize("shards", [1, 3])
    def test_keys_all_fence_is_totally_ordered(self, shards):
        keys = wbcast_run("keys", shards=shards, key_universe=0, seed=17)
        assert check_ordering(keys.history()).ok


# -- conformance: randomized keys-mode runs -----------------------------------


def _mixed_footprints():
    """Patch submissions so keys-mode traffic mixes single-key, multi-key
    (often domain-spanning) and fenced messages."""
    orig = ClosedLoopClient.submit
    counter = itertools.count()

    def mixed(self, dests, payload=None, size=None, footprint=None):
        i = next(counter)
        if i % 5 == 4:
            footprint = None  # an unkeyable command: fences
        elif i % 3 == 2 and footprint:
            footprint = footprint + ("k-shared",)  # a multi-key op
        return orig(self, dests, payload=payload, size=size, footprint=footprint)

    return orig, mixed


class TestKeysConformance:
    @pytest.mark.parametrize("shards", [1, 3])
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_randomized_keys_runs_satisfy_partial_order(self, shards, seed):
        res = wbcast_run("keys", shards=shards, key_universe=8, seed=seed)
        checks_ok(res)  # dispatches the conflict-aware checkers
        h = res.history()
        assert check_conflict_ordering(h).ok
        assert check_domain_agreement(h).ok

    @pytest.mark.parametrize("shards", [1, 3])
    def test_mixed_fence_and_multikey_traffic(self, shards):
        orig, mixed = _mixed_footprints()
        ClosedLoopClient.submit = mixed
        try:
            res = wbcast_run("keys", shards=shards, key_universe=8, seed=5, mpc=8)
        finally:
            ClosedLoopClient.submit = orig
        checks_ok(res)
        h = res.history()
        fps = {m.footprint for _, _, m in h.multicasts.values()}
        assert None in fps  # the mix really exercised fences
        assert any(fp is not None and len(fp) > 1 for fp in fps)


# -- keys-mode recovery -------------------------------------------------------


class TestKeysRecovery:
    def test_lane_leader_crash_in_keys_mode(self):
        config = ClusterConfig.build(
            2, 3, 2, shards_per_group=2, conflict="keys"
        )
        victim = config.lane_leader(0, 1)
        res = run_workload(
            WbCastProcess,
            config=config,
            messages_per_client=8,
            dest_k=2,
            seed=29,
            network=UniformDelay(0.0002, 2 * DELTA),
            protocol_options=WbCastOptions(retry_interval=0.05),
            client_options=ClientOptions(
                num_messages=8, retry_timeout=0.08, key_universe=8
            ),
            fault_plan=FaultPlan(crashes=[CrashSpec(victim, 0.004)]),
            attach_fd=True,
            fd_options=FAST_FD,
            max_time=6.0,
            drain_grace=0.1,
        )
        assert res.all_done
        checks_ok(res, quiescent=False)
        assert check_conflict_ordering(res.history()).ok

    def test_reconfiguration_is_rejected_in_keys_mode(self):
        config = ClusterConfig.build(2, 3, 1, conflict="keys")
        with pytest.raises(ConfigError, match="reconfiguration"):
            config.with_join(0, 999)

    def test_unknown_conflict_mode_is_rejected(self):
        with pytest.raises(ConfigError, match="conflict"):
            ClusterConfig.build(2, 3, 1, conflict="generic")


# -- keys-mode serving --------------------------------------------------------


class TestServingKeys:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_serving_stays_linearizable(self, shards):
        config = ClusterConfig.build(
            2, 3, 4, shards_per_group=shards, conflict="keys"
        )
        result = run_serving_workload(
            WbCastProcess,
            config=config,
            ops_per_session=25,
            read_ratio=0.4,
            read_timeout=0.05,
            seed=9,
        )
        assert all(s.done for s in result.sessions)
        failed = [c.describe() for c in result.check() if not c.ok]
        assert not failed, failed
        lin = result.check_serving()
        assert all(c.ok for c in lin), [c.describe() for c in lin if not c.ok]
        assert result.reads_local > 0
        # Keys-mode freshness gates run on per-domain applied indices.
        assert any(s.domain_watermarks for s in result.sessions)


# -- LaneMergeQueue: keys-mode routing and release rules ----------------------


def _key_in_domain(d, lanes):
    return next(k for k in (f"k{i}" for i in range(256)) if domain_of(k, lanes) == d)


def _msg(seq, footprint):
    return make_message(origin=900, seq=seq, dests={0}, footprint=footprint)


class TestLaneMergeQueueKeys:
    def setup_method(self):
        self.k0 = _key_in_domain(0, 2)
        self.k1 = _key_in_domain(1, 2)

    def test_push_validates_routing(self):
        q = LaneMergeQueue(2, conflict_keys=True)
        with pytest.raises(ProtocolError, match="fence lane"):
            q.push(1, _msg(1, None), Timestamp(1.0, 1))
        with pytest.raises(ProtocolError, match="conflict domain"):
            q.push(0, _msg(2, (self.k1,)), Timestamp(2.0, 0))

    def test_single_domain_head_on_fence_lane_releases_immediately(self):
        q = LaneMergeQueue(2, conflict_keys=True)
        m = _msg(1, (self.k0,))
        q.push(0, m, Timestamp(1.0, 0))
        # Lane 1's floor is still bottom, but nothing there can conflict.
        released, blockers = q.drain()
        assert released == [m] and blockers == []

    def test_keyed_lane_waits_for_fence_floor(self):
        q = LaneMergeQueue(2, conflict_keys=True)
        m = _msg(1, (self.k1,))
        q.push(1, m, Timestamp(2.0, 1))
        got, blockers = q.pop_next()
        assert got is None and blockers == [0]  # probe the fence lane
        q.advance(0, Timestamp(2.0, 1))
        got, blockers = q.pop_next()
        assert got is m and blockers == []

    def test_fence_orders_between_keyed_messages(self):
        q = LaneMergeQueue(2, conflict_keys=True)
        early = _msg(1, (self.k1,))
        fence = _msg(2, None)
        late = _msg(3, (self.k1,))
        q.push(0, fence, Timestamp(5.0, 0))
        q.push(1, early, Timestamp(3.0, 1))
        q.push(1, late, Timestamp(7.0, 1))
        # The keyed head below the fence releases (fence lane's floor at
        # 5.0 proves no smaller fenced message is coming), then the fence,
        # then the keyed head above it once the fence floor covers it.
        released, blockers = q.drain()
        assert released == [early, fence] and blockers == [0]
        q.advance(0, Timestamp(7.0, 1))
        released, blockers = q.drain()
        assert released == [late] and blockers == []

    def test_same_domain_messages_keep_stream_order(self):
        q = LaneMergeQueue(2, conflict_keys=True)
        first = _msg(1, (self.k1,))
        second = _msg(2, (self.k1,))
        q.push(1, first, Timestamp(1.0, 1))
        q.push(1, second, Timestamp(2.0, 1))
        q.advance(0, Timestamp(9.0, 0))
        released, _ = q.drain()
        assert released == [first, second]


# -- LaneMergeQueue: total-mode head cache (satellite) ------------------------


class NaiveMerge:
    """Reference implementation: full O(lanes) scan on every pop."""

    def __init__(self, lanes):
        self.queues = [[] for _ in range(lanes)]
        self.floor = [Timestamp(0.0, -1)] * lanes

    def push(self, lane, m, gts):
        self.queues[lane].append((m, gts))
        if gts > self.floor[lane]:
            self.floor[lane] = gts

    def advance(self, lane, watermark):
        if watermark > self.floor[lane]:
            self.floor[lane] = watermark

    def drain(self):
        out = []
        while True:
            heads = [(q[0][1], lane) for lane, q in enumerate(self.queues) if q]
            if not heads:
                return out
            best_gts, best = min(heads)
            if any(
                not q and self.floor[lane] < best_gts
                for lane, q in enumerate(self.queues)
                if lane != best
            ):
                return out
            out.append(self.queues[best].pop(0)[0])


class TestLaneMergeHeadCache:
    @pytest.mark.parametrize("seed", [1, 8, 23])
    def test_release_order_matches_naive_scan(self, seed):
        lanes = 8
        rng = random.Random(seed)
        fast = LaneMergeQueue(lanes)
        naive = NaiveMerge(lanes)
        clock = itertools.count(1)
        released = []
        for step in range(300):
            lane = rng.randrange(lanes)
            if rng.random() < 0.7:
                gts = Timestamp(float(next(clock)), lane)
                label = f"m{step}"
                fast.push(lane, label, gts)
                naive.push(lane, label, gts)
            else:
                wm = Timestamp(float(next(clock)), lane)
                fast.advance(lane, wm)
                naive.advance(lane, wm)
            if rng.random() < 0.3:
                got, _ = fast.drain()
                released.extend(got)
                assert got == naive.drain()
        # Final advance on every lane flushes both queues completely.
        top = Timestamp(float(next(clock)), lanes)
        for lane in range(lanes):
            fast.advance(lane, top)
            naive.advance(lane, top)
        got, blockers = fast.drain()
        released.extend(got)
        assert got == naive.drain()
        assert blockers == []
        assert len(released) == len(set(released))

    def test_duplicate_gts_heads_raise(self):
        q = LaneMergeQueue(2)
        q.push(0, "a", Timestamp(1.0, 0))
        q.push(1, "b", Timestamp(1.0, 0))
        with pytest.raises(ProtocolError, match="duplicate global timestamp"):
            q.pop_next()

    def test_dense_tiebreak_makes_equal_gts_impossible(self):
        config = ClusterConfig.build(3, 3, 2, shards_per_group=4)
        stamps = [
            config.lane_timestamp_group(gid, lane)
            for gid in config.group_ids
            for lane in range(config.shards_per_group)
        ]
        assert len(stamps) == len(set(stamps))
        # With one shard the encoding degenerates to the plain group id.
        flat = ClusterConfig.build(3, 3, 2)
        assert [
            flat.lane_timestamp_group(gid, 0) for gid in flat.group_ids
        ] == list(flat.group_ids)


# -- DeliveryQueue: clear_pending compaction (satellite) ----------------------


class TestDeliveryQueueCompaction:
    def test_stale_entries_are_compacted(self):
        dq = DeliveryQueue()
        for i in range(200):
            dq.set_pending(("c", i), Timestamp(float(i + 1), 0))
        assert dq.pending_heap_size == 200
        # Below both thresholds nothing compacts ...
        for i in range(60):
            dq.clear_pending(("c", i))
        assert dq.pending_heap_size == 200
        # ... but once stale entries dominate, the heap is rebuilt from
        # the live set instead of carrying every cleared proposal forever.
        # (Compaction fires the moment stale > live — at 101 cleared with
        # 99 live — and later clears accrue lazily until the next one.)
        for i in range(60, 150):
            dq.clear_pending(("c", i))
        assert dq.pending_heap_size == 99

    def test_compaction_in_keys_mode_rebuilds_domain_heaps(self):
        dq = DeliveryQueue(conflict_domains=4)
        for i in range(200):
            dq.set_pending(
                ("c", i), Timestamp(float(i + 1), 0), domains=frozenset({i % 4})
            )
        for i in range(150):
            dq.clear_pending(("c", i))
        assert dq.pending_heap_size == 99
        # The surviving pendings still resolve: clearing them all leaves
        # nothing pending and further compactions are no-ops.
        for i in range(150, 200):
            dq.clear_pending(("c", i))
        dq.set_pending(("d", 0), Timestamp(500.0, 0), domains=frozenset({0}))
        assert dq.pending_heap_size >= 1


# -- ServingSession: suspected-replica avoidance expires (satellite) ----------


class TestAvoidExpiry:
    def _crashed_run(self):
        config = ClusterConfig.build(num_groups=1, group_size=3, num_clients=2)
        victim = config.members(0)[0]
        result = run_serving_workload(
            WbCastProcess,
            config=config,
            ops_per_session=30,
            read_ratio=0.9,
            read_timeout=0.02,
            retry_timeout=0.05,
            seed=5,
            fault_plan=FaultPlan(crashes=[CrashSpec(victim, 0.02)]),
            attach_fd=True,
            fd_options=FAST_FD,
            max_time=60.0,
        )
        avoided = [s for s in result.sessions if victim in s._avoid]
        assert avoided
        return victim, avoided

    def test_default_ttl_scales_with_read_timeout(self):
        victim, avoided = self._crashed_run()
        for s in avoided:
            assert s.avoid_ttl == pytest.approx(10 * 0.02)

    def test_recovered_replica_rejoins_rotation(self):
        victim, avoided = self._crashed_run()
        s = avoided[0]
        # While the suspicion is fresh the victim stays out of rotation.
        s._avoid[victim] = s.now()
        assert s._pick_replica(0) != victim
        assert victim in s._avoid
        # Once the entry outlives the TTL the next pick expires it, so a
        # recovered replica rejoins the read rotation.
        s._avoid[victim] = s.now() - s.avoid_ttl - 1.0
        s._pick_replica(0)
        assert victim not in s._avoid
