"""The run_workload harness and benchmark support modules."""

import math

import pytest

from repro.bench.harness import run_workload
from repro.bench.metrics import LatencySummary, in_delta_units, percentile, summarize_latencies
from repro.bench.report import render_table
from repro.bench.topologies import LAN_ONE_WAY, lan_testbed, wan_testbed
from repro.config import ClusterConfig
from repro.protocols import SkeenProcess, WbCastProcess
from repro.sim import ConstantDelay, UniformCpu

from tests.conftest import DELTA, checks_ok


class TestRunWorkload:
    def test_returns_complete_result(self):
        res = run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=2,
                           messages_per_client=4, dest_k=2, seed=0,
                           network=ConstantDelay(DELTA))
        assert res.all_done
        assert res.completed == res.expected == 8
        assert len(res.latencies()) == 8
        assert res.throughput() > 0
        assert len(res.members) == 6
        assert len(res.clients) == 2

    def test_history_round_trip(self):
        res = run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=1,
                           messages_per_client=3, dest_k=1, seed=1,
                           network=ConstantDelay(DELTA))
        history = res.history()
        assert len(history.multicasts) == 3
        assert set(history.deliveries) <= set(res.config.all_members)

    def test_record_sends_off_keeps_counters(self):
        res = run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=1,
                           messages_per_client=3, dest_k=2, seed=1,
                           network=ConstantDelay(DELTA), record_sends=False)
        assert res.trace.sends == []
        assert res.trace.send_count > 0

    def test_cpu_model_increases_latency(self):
        base = run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=4,
                            messages_per_client=5, dest_k=2, seed=2,
                            network=ConstantDelay(DELTA))
        loaded = run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=4,
                              messages_per_client=5, dest_k=2, seed=2,
                              network=ConstantDelay(DELTA),
                              cpu=UniformCpu(0.0005))
        assert sum(loaded.latencies()) > sum(base.latencies())

    def test_same_seed_reproducible(self):
        a = run_workload(SkeenProcess, num_groups=3, group_size=1, num_clients=2,
                         messages_per_client=5, dest_k=2, seed=7)
        b = run_workload(SkeenProcess, num_groups=3, group_size=1, num_clients=2,
                         messages_per_client=5, dest_k=2, seed=7)
        assert a.latencies() == b.latencies()
        assert [r.m.mid for r in a.trace.deliveries] == [r.m.mid for r in b.trace.deliveries]


class TestMetrics:
    def test_percentiles(self):
        values = sorted(float(i) for i in range(1, 101))
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0

    def test_summary(self):
        summary = summarize_latencies([3.0, 1.0, 2.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.max == 3.0

    def test_empty_summary_is_none(self):
        assert summarize_latencies([]) is None

    def test_scaled(self):
        summary = summarize_latencies([2.0]).scaled(0.5)
        assert summary.mean == 1.0 and summary.count == 1

    def test_delta_units(self):
        assert in_delta_units(0.004, 0.001) == pytest.approx(4.0)
        assert math.isnan(in_delta_units(1.0, 0.0))


class TestTopologies:
    def test_lan_uniform(self):
        config = ClusterConfig.build(2, 3, 1)
        topo = lan_testbed(config)
        import random

        assert topo.delay(0, 5, 20, 0.0, random.Random(0)) == pytest.approx(LAN_ONE_WAY)

    def test_wan_places_replicas_across_sites(self):
        config = ClusterConfig.build(2, 3, 2)
        topo = wan_testbed(config)
        # Member i of each group sits in DC i; leaders share DC 0.
        assert topo.site_of(0) == 0 and topo.site_of(3) == 0
        assert topo.site_of(1) == 1 and topo.site_of(4) == 1
        assert topo.site_of(2) == 2
        # Clients co-located with leaders in DC 0.
        assert topo.site_of(6) == 0 and topo.site_of(7) == 0

    def test_wan_leader_quorum_costs_nearest_rtt(self):
        import random

        config = ClusterConfig.build(1, 3, 0)
        topo = wan_testbed(config)
        rng = random.Random(0)
        assert topo.delay(0, 1, 20, 0.0, rng) == pytest.approx(0.030)
        assert topo.delay(0, 2, 20, 0.0, rng) == pytest.approx(0.065)


class TestReport:
    def test_render_alignment_and_formats(self):
        table = render_table(
            ["name", "value"],
            [("a", 1.5), ("bbbb", 12345.0)],
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "12,345" in table
        assert "1.50" in table
