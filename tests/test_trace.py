"""Trace recording, monitors and query helpers."""

import pytest

from repro.sim.trace import DeliveryRecord, MulticastRecord, SendRecord, Trace
from repro.types import make_message


M1 = make_message(5, 1, {0})
M2 = make_message(5, 2, {0, 1})


class TestRecording:
    def test_multicast_and_delivery_queries(self):
        trace = Trace()
        trace.on_multicast(0.0, 5, M1)
        trace.on_multicast(0.5, 5, M2)
        trace.on_deliver(1.0, 0, M1)
        trace.on_deliver(1.5, 0, M2)
        trace.on_deliver(2.0, 1, M2)
        assert trace.multicast_times() == {M1.mid: 0.0, M2.mid: 0.5}
        assert [d.pid for d in trace.deliveries_of(M2.mid)] == [0, 1]
        assert trace.delivery_order_at(0) == [M1.mid, M2.mid]

    def test_send_recording_can_be_disabled(self):
        trace = Trace(record_sends=False)
        trace.on_send(SendRecord(0.0, 0.1, 0, 1, "m"))
        assert trace.sends == []
        assert trace.send_count == 1

    def test_crashes(self):
        trace = Trace()
        trace.on_crash(1.0, 7)
        assert trace.crashed_pids() == {7}


class TestMonitors:
    def test_all_hooks_invoked(self):
        calls = []

        class Monitor:
            def on_multicast(self, t, pid, m):
                calls.append(("mc", pid))

            def on_deliver(self, t, pid, m):
                calls.append(("dl", pid))

            def on_send(self, rec):
                calls.append(("tx", rec.src))

            def on_crash(self, t, pid):
                calls.append(("cr", pid))

            def on_handle(self, t, pid, src, msg):
                calls.append(("rx", pid))

        trace = Trace()
        trace.attach(Monitor())
        trace.on_multicast(0.0, 5, M1)
        trace.on_send(SendRecord(0.0, 0.1, 5, 0, "x"))
        trace.on_handle(0.1, 0, 5, "x")
        trace.on_deliver(0.2, 0, M1)
        trace.on_crash(0.3, 2)
        assert calls == [("mc", 5), ("tx", 5), ("rx", 0), ("dl", 0), ("cr", 2)]

    def test_partial_monitors_are_fine(self):
        class OnlyDeliver:
            def on_deliver(self, t, pid, m):
                self.seen = (pid, m.mid)

        trace = Trace()
        monitor = OnlyDeliver()
        trace.attach(monitor)
        trace.on_send(SendRecord(0.0, 0.1, 0, 1, "x"))  # no on_send hook: fine
        trace.on_deliver(0.5, 3, M1)
        assert monitor.seen == (3, M1.mid)

    def test_multiple_monitors_all_called(self):
        hits = []

        class M:
            def __init__(self, tag):
                self.tag = tag

            def on_deliver(self, t, pid, m):
                hits.append(self.tag)

        trace = Trace()
        trace.attach(M("a"))
        trace.attach(M("b"))
        trace.on_deliver(0.0, 0, M1)
        assert hits == ["a", "b"]
