"""End-to-end asyncio runtime battery through the AmcastClient session.

The same session object that drives the simulator fronts a real localhost
TCP cluster here: batched wbcast/ftskeen/fastcast runs with client-side
ingress coalescing, plus the crash case the API redesign exists for —
kill a leader while submissions are in flight, let the session retransmit
with stable message ids, and assert the checker sees every message
delivered exactly once.

Every scenario is timeout-bounded so a hung cluster fails fast instead of
wedging the suite.
"""

import asyncio

import pytest

from repro.checking import check_all
from repro.client import AmcastClientOptions
from repro.config import BatchingOptions, ClusterConfig
from repro.failure.detector import MonitorOptions
from repro.net import LocalCluster
from repro.protocols import FastCastProcess, FtSkeenProcess, WbCastProcess

pytestmark = pytest.mark.net

BATCHED = BatchingOptions(max_batch=8, max_linger=0.002, pipeline_depth=4)
INGRESS = BatchingOptions(max_batch=8, max_linger=0.002)
FD = MonitorOptions(heartbeat_interval=0.03, suspect_timeout=0.12, stagger=0.06)

PROTOCOLS = [
    pytest.param(WbCastProcess, id="wbcast"),
    pytest.param(FtSkeenProcess, id="ftskeen"),
    pytest.param(FastCastProcess, id="fastcast"),
]


def run(coro, timeout=30.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def batched_options(protocol_cls):
    return protocol_cls.OPTIONS_CLS(retry_interval=0.2, batching=BATCHED)


class TestBatchedIngressOverTcp:
    @pytest.mark.parametrize("protocol_cls", PROTOCOLS)
    def test_batched_protocol_through_session(self, protocol_cls):
        """Leader-side batching x client-side ingress coalescing, real
        sockets: everything delivers, handles resolve, history checks."""

        async def scenario():
            config = ClusterConfig.build(2, 3, 1)
            cluster = LocalCluster(
                config,
                protocol_cls,
                options=batched_options(protocol_cls),
                client_options=AmcastClientOptions(
                    retry_timeout=0.25, ingress=INGRESS
                ),
            )
            await cluster.start()
            try:
                handles = [
                    cluster.multicast({i % 2, (i + 1) % 2}, payload=i)
                    for i in range(16)
                ]
                for h in handles:
                    assert await cluster.wait_partial(h.mid, timeout=10.0), h.mid
                await asyncio.sleep(0.3)  # let follower DELIVERs land
                assert all(h.completed for h in handles)
                assert all(h.acked for h in handles)
                failed = [
                    c.describe() for c in check_all(cluster.history()) if not c.ok
                ]
                assert not failed, failed
            finally:
                await cluster.stop()

        run(scenario())

    def test_ingress_batches_actually_coalesce(self):
        """With a long linger and a burst of submissions, the session must
        emit fewer wire messages than submissions (observable by the
        leader's ingress being acked in few SUBMIT_ACKs per group)."""

        async def scenario():
            config = ClusterConfig.build(2, 3, 1)
            cluster = LocalCluster(
                config,
                WbCastProcess,
                options=batched_options(WbCastProcess),
                client_options=AmcastClientOptions(
                    retry_timeout=0.5,
                    ingress=BatchingOptions(max_batch=16, max_linger=0.05),
                ),
            )
            await cluster.start()
            try:
                handles = [cluster.multicast({0, 1}) for _ in range(12)]
                for h in handles:
                    assert await cluster.wait_partial(h.mid, timeout=10.0)
                assert cluster.client.buffered_ingress_count() == 0
                assert all(h.completed for h in handles)
            finally:
                await cluster.stop()

        run(scenario())


class TestCrashResubmitExactlyOnce:
    def test_leader_kill_resubmit_no_duplicate_delivery(self):
        """The acceptance scenario: kill a destination leader while
        submissions are in flight; the session keeps retransmitting the
        same message ids until the new leader registers them.  The checker
        (integrity) plus completion of every handle = exactly once."""

        async def scenario():
            config = ClusterConfig.build(2, 3, 1)
            cluster = LocalCluster(
                config,
                WbCastProcess,
                options=WbCastProcess.OPTIONS_CLS(retry_interval=0.2),
                attach_fd=True,
                fd_options=FD,
                client_options=AmcastClientOptions(
                    retry_timeout=0.2, ingress=INGRESS
                ),
            )
            await cluster.start()
            try:
                warm = cluster.multicast({0, 1})
                assert await cluster.wait_partial(warm.mid, timeout=10.0)
                # Submit a burst and kill g0's leader immediately, so some
                # submissions race the crash and must be retransmitted.
                handles = [cluster.multicast({0, 1}) for _ in range(6)]
                await cluster.kill(0)
                for h in handles:
                    assert await cluster.wait_partial(h.mid, timeout=15.0), (
                        h.mid, h.retries, h.acked_groups,
                    )
                await asyncio.sleep(0.3)
                # No process delivered any message twice, none was lost.
                per_pid = {}
                for pid, m, _t in cluster.deliveries:
                    key = (pid, m.mid)
                    per_pid[key] = per_pid.get(key, 0) + 1
                dups = {k: v for k, v in per_pid.items() if v > 1}
                assert not dups, dups
                failed = [
                    c.describe()
                    for c in check_all(cluster.history(), quiescent=False)
                    if not c.ok
                ]
                assert not failed, failed
                # The session relearned g0's leadership from the traffic.
                assert cluster.client.cur_leader[0] != 0
                # Retry traffic toward the killed member was dropped at
                # the source: no frames pile up behind its dead socket.
                dead_queue = cluster._client_transport._queues.get(0)
                assert dead_queue is None or dead_queue.qsize() == 0
            finally:
                await cluster.stop()

        run(scenario(), timeout=60.0)
