"""Randomized conformance suite for the adaptive linger.

``linger_mode="adaptive"`` scales the batching linger to an EWMA of the
observed inter-arrival times: bursty load grows it toward ``max_linger``,
sparse load shrinks it toward ``min_linger``.  This suite checks the
estimator in isolation (a stub runtime feeding arrivals at controlled
times) and end to end (Poisson arrival schedules through WbCast, FtSkeen
and FastCast), asserting on every run that

* the effective linger stays inside ``[min_linger, max_linger]`` and
  converges toward the right bound for the offered load, and
* the full black-box contract (total order, integrity, termination) and
  wire-level genuineness from :mod:`repro.checking` hold regardless of
  what the estimator decided.
"""

import random

import pytest

from repro.checking import History, check_all
from repro.checking.genuineness import GenuinenessMonitor
from repro.config import BatchingOptions, ClusterConfig
from repro.protocols import FastCastProcess, FtSkeenProcess, WbCastProcess
from repro.protocols.batching import Batcher
from repro.sim import ConstantDelay, UniformDelay
from repro.workload import OneShotClient

from tests.conftest import DELTA, build_cluster

MAX_LINGER = 2 * DELTA
MIN_LINGER = DELTA / 4

ADAPTIVE = BatchingOptions(
    max_batch=8,
    max_linger=MAX_LINGER,
    pipeline_depth=2,
    linger_mode="adaptive",
    min_linger=MIN_LINGER,
)

PROTOCOLS = [
    pytest.param(WbCastProcess, id="wbcast"),
    pytest.param(FtSkeenProcess, id="ftskeen"),
    pytest.param(FastCastProcess, id="fastcast"),
]


# -- estimator in isolation ---------------------------------------------------


class _StubTimer:
    def __init__(self):
        self._cancelled = False

    def cancel(self):
        self._cancelled = True

    @property
    def cancelled(self):
        return self._cancelled


class _StubRuntime:
    """Just enough Runtime for a Batcher: a clock and inert timers."""

    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t

    def set_timer(self, delay, fn):
        return _StubTimer()


def feed(batcher, runtime, gaps, key=frozenset({0, 1})):
    """Add one item per gap, advancing the stub clock between adds."""
    for i, gap in enumerate(gaps):
        runtime.t += gap
        batcher.add(key, ("item", runtime.t, i))
    return key


def make_batcher(**overrides):
    opts = dict(
        max_batch=4,
        max_linger=MAX_LINGER,
        pipeline_depth=2,
        linger_mode="adaptive",
        min_linger=MIN_LINGER,
    )
    opts.update(overrides)
    runtime = _StubRuntime()
    batcher = Batcher(BatchingOptions(**opts), runtime, lambda key, items: None)
    return batcher, runtime


class TestEstimator:
    def test_no_signal_stays_at_max(self):
        """Before two arrivals there is no inter-arrival sample: stay
        patient at max_linger rather than guessing."""
        batcher, runtime = make_batcher()
        key = frozenset({0, 1})
        assert batcher.effective_linger(key) == MAX_LINGER
        feed(batcher, runtime, [0.0])
        assert batcher.effective_linger(key) == MAX_LINGER

    def test_bursty_converges_to_max(self):
        batcher, runtime = make_batcher()
        key = feed(batcher, runtime, [MAX_LINGER / 50] * 40)
        assert batcher.effective_linger(key) >= 0.9 * MAX_LINGER

    def test_sparse_converges_to_min(self):
        batcher, runtime = make_batcher()
        key = feed(batcher, runtime, [10 * MAX_LINGER] * 10)
        assert batcher.effective_linger(key) == MIN_LINGER

    def test_burst_after_sparse_recovers(self):
        """The EWMA tracks load shifts: a burst after a quiet spell pulls
        the linger back up toward max_linger."""
        batcher, runtime = make_batcher(ewma_alpha=0.5)
        key = feed(batcher, runtime, [10 * MAX_LINGER] * 5)
        assert batcher.effective_linger(key) == MIN_LINGER
        feed(batcher, runtime, [MAX_LINGER / 100] * 30, key=key)
        assert batcher.effective_linger(key) >= 0.9 * MAX_LINGER

    def test_fixed_mode_ignores_arrivals(self):
        batcher, runtime = make_batcher(linger_mode="fixed")
        key = feed(batcher, runtime, [10 * MAX_LINGER] * 10)
        assert batcher.effective_linger(key) == MAX_LINGER

    def test_per_key_estimates_are_independent(self):
        batcher, runtime = make_batcher()
        sparse = frozenset({0})
        bursty = frozenset({1})
        for _ in range(20):
            runtime.t += MAX_LINGER / 50
            batcher.add(bursty, ("b", runtime.t, id(object())))
        for _ in range(5):
            runtime.t += 10 * MAX_LINGER
            batcher.add(sparse, ("s", runtime.t, id(object())))
        assert batcher.effective_linger(bursty) >= 0.9 * MAX_LINGER
        assert batcher.effective_linger(sparse) == MIN_LINGER

    def test_cold_key_falls_back_to_shared_estimate_when_sparse(self):
        """ROADMAP follow-up: a key with no EWMA of its own must not start
        at max_linger on a demonstrably sparse node — it adopts the
        shared typical-gap estimate instead."""
        batcher, runtime = make_batcher()
        hot = frozenset({0})
        feed(batcher, runtime, [10 * MAX_LINGER] * 10, key=hot)  # sparse node
        cold = frozenset({1, 2})
        assert batcher.effective_linger(cold) == MIN_LINGER

    def test_cold_key_stays_patient_on_a_hot_node(self):
        """On a bursty node the shared estimate stays small, so a fresh
        key lingers for company just like the established ones."""
        batcher, runtime = make_batcher()
        hot = frozenset({0})
        feed(batcher, runtime, [MAX_LINGER / 100] * 40, key=hot)
        cold = frozenset({1, 2})
        assert batcher.effective_linger(cold) >= 0.9 * MAX_LINGER

    def test_stale_keys_stop_skewing_the_cold_estimate(self):
        """The shared estimator is an EWMA of recent per-key gaps, not a
        count of keys ever seen: after a wide scatter phase goes quiet and
        traffic concentrates on one hot key, a fresh key must linger like
        the hot one rather than flush instantly."""
        batcher, runtime = make_batcher()
        for i in range(50):  # scatter phase: 50 one-shot keys, never again
            runtime.t += MAX_LINGER / 10
            batcher.add(frozenset({100 + i}), ("scatter", runtime.t, i))
        feed(batcher, runtime, [MAX_LINGER / 100] * 40, key=frozenset({0}))
        cold = frozenset({1, 2})
        assert batcher.effective_linger(cold) >= 0.9 * MAX_LINGER

    def test_reset_clears_shared_estimator(self):
        batcher, runtime = make_batcher()
        feed(batcher, runtime, [10 * MAX_LINGER] * 10)
        assert batcher.shared_interarrival_ewma() is not None
        batcher.reset()
        assert batcher.shared_interarrival_ewma() is None
        assert batcher.effective_linger(frozenset({5})) == MAX_LINGER

    @pytest.mark.parametrize("seed", range(8))
    def test_poisson_linger_always_within_bounds(self, seed):
        """Whatever a Poisson process throws at it, the effective linger
        never leaves [min_linger, max_linger]."""
        rng = random.Random(seed)
        mean_gap = rng.choice([MAX_LINGER / 20, MAX_LINGER, 20 * MAX_LINGER])
        batcher, runtime = make_batcher()
        key = frozenset({0, 1})
        for i in range(50):
            runtime.t += rng.expovariate(1.0 / mean_gap)
            batcher.add(key, ("m", runtime.t, i))
            linger = batcher.effective_linger(key)
            assert MIN_LINGER <= linger <= MAX_LINGER, (seed, i, linger)


# -- end to end ---------------------------------------------------------------


def run_poisson(
    protocol_cls,
    mean_gap,
    seed,
    num_msgs=24,
    network=None,
    batching=ADAPTIVE,
):
    """One Poisson-arrival workload on a 3-group cluster, fully checked."""
    config = ClusterConfig.build(num_groups=3, group_size=3, num_clients=1)
    options = protocol_cls.OPTIONS_CLS(batching=batching)
    sim, trace, tracker, members = build_cluster(
        protocol_cls, config, network=network, seed=seed, options=options
    )
    genuineness = GenuinenessMonitor(config)
    trace.attach(genuineness)
    rng = random.Random(seed)
    t = 0.0
    schedule = []
    for _ in range(num_msgs):
        t += rng.expovariate(1.0 / mean_gap)
        schedule.append((t, (0, 1)))  # one key so the estimator converges
    client = config.clients[0]
    sim.add_process(
        client,
        lambda rt: OneShotClient(client, config, rt, protocol_cls, tracker, schedule),
    )
    sim.run()
    history = History.from_trace(config, trace)
    failed = [c.describe() for c in check_all(history, quiescent=True) if not c.ok]
    assert not failed, failed
    assert genuineness.is_genuine, genuineness.violations
    assert trace.deliveries, "nothing was delivered"
    return members


class TestAdaptiveEndToEnd:
    @pytest.mark.parametrize("protocol_cls", PROTOCOLS)
    def test_bursty_load_converges_high(self, protocol_cls):
        """Back-to-back Poisson arrivals: the leader's linger for the hot
        destination set climbs toward max_linger."""
        members = run_poisson(
            protocol_cls, mean_gap=MAX_LINGER / 40, seed=11,
            network=ConstantDelay(DELTA),
        )
        linger = members[0].effective_linger(frozenset({0, 1}))
        assert linger >= 0.75 * MAX_LINGER, linger

    @pytest.mark.parametrize("protocol_cls", PROTOCOLS)
    def test_sparse_load_converges_low(self, protocol_cls):
        """Arrivals far apart: lingering is pointless, so the effective
        linger bottoms out at min_linger."""
        members = run_poisson(
            protocol_cls, mean_gap=25 * MAX_LINGER, seed=13, num_msgs=12,
            network=ConstantDelay(DELTA),
        )
        linger = members[0].effective_linger(frozenset({0, 1}))
        assert linger == pytest.approx(MIN_LINGER), linger

    @pytest.mark.parametrize("protocol_cls", PROTOCOLS)
    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_poisson_full_contract(self, protocol_cls, seed):
        """Seed-randomized Poisson load (bursty, matched or sparse) under
        jittered delays: ordering/genuineness must hold on every run and
        the linger must respect its bounds."""
        rng = random.Random(seed)
        mean_gap = rng.choice([MAX_LINGER / 20, MAX_LINGER, 10 * MAX_LINGER])
        members = run_poisson(
            protocol_cls, mean_gap=mean_gap, seed=seed, num_msgs=16,
            network=UniformDelay(0.0002, 2 * DELTA),
        )
        linger = members[0].effective_linger(frozenset({0, 1}))
        assert MIN_LINGER <= linger <= MAX_LINGER, (seed, linger)
