"""Skeen's protocol (Fig. 1): behaviour, latency, and the convoy effect."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.harness import run_workload
from repro.checking.genuineness import GenuinenessMonitor
from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.protocols.base import MulticastMsg
from repro.protocols.skeen import ProposeMsg, SkeenProcess
from repro.sim import ConstantDelay, Simulator, Trace
from repro.types import Timestamp, make_message
from repro.workload import ClientOptions, DeliveryTracker, OneShotClient

from tests.conftest import DELTA, checks_ok


def singleton_config(groups=3, clients=2):
    return ClusterConfig.build(num_groups=groups, group_size=1, num_clients=clients)


class TestConstruction:
    def test_rejects_replicated_groups(self):
        config = ClusterConfig.build(num_groups=1, group_size=3, num_clients=0)
        sim = Simulator(ConstantDelay(DELTA))
        with pytest.raises(ConfigError):
            sim.add_process(0, lambda rt: SkeenProcess(0, config, rt))

    def test_singleton_member_is_its_own_leader(self):
        config = singleton_config()
        sim = Simulator(ConstantDelay(DELTA))
        proc = sim.add_process(0, lambda rt: SkeenProcess(0, config, rt))
        assert proc.is_leader()


class TestNormalOperation:
    def test_end_to_end_properties(self):
        res = run_workload(SkeenProcess, num_groups=4, group_size=1, num_clients=3,
                           messages_per_client=10, dest_k=2, seed=1,
                           network=ConstantDelay(DELTA))
        assert res.all_done
        checks_ok(res)

    def test_genuine(self):
        res = run_workload(SkeenProcess, num_groups=4, group_size=1, num_clients=2,
                           messages_per_client=8, dest_k=2, seed=2,
                           network=ConstantDelay(DELTA), attach_genuineness=True)
        assert res.genuineness.is_genuine

    def test_collision_free_latency_is_2_delta(self):
        res = run_workload(SkeenProcess, num_groups=3, group_size=1, num_clients=1,
                           messages_per_client=5, dest_k=2, seed=0,
                           network=ConstantDelay(DELTA))
        for latency in res.latencies():
            assert latency == pytest.approx(2 * DELTA)

    def test_single_group_message_still_two_delays(self):
        # MULTICAST + self-PROPOSE exchange (degenerate but uniform).
        res = run_workload(SkeenProcess, num_groups=2, group_size=1, num_clients=1,
                           messages_per_client=3, dest_k=1, seed=0,
                           network=ConstantDelay(DELTA))
        for latency in res.latencies():
            assert latency <= 2 * DELTA + 1e-12

    def test_duplicate_multicast_delivered_once(self):
        config = singleton_config(groups=2, clients=1)
        trace = Trace()
        sim = Simulator(ConstantDelay(DELTA), trace=trace)
        procs = {pid: sim.add_process(pid, lambda rt, p=pid: SkeenProcess(p, config, rt))
                 for pid in config.all_members}
        m = make_message(2, 0, {0, 1})
        sim.add_process(2, lambda rt: type("C", (), {"on_message": staticmethod(lambda *a: None)})())
        sim.schedule(0.0, lambda: sim.transmit(2, 0, MulticastMsg(m)))
        sim.schedule(0.0, lambda: sim.transmit(2, 1, MulticastMsg(m)))
        sim.schedule(0.0005, lambda: sim.transmit(2, 0, MulticastMsg(m)))  # duplicate
        sim.run()
        assert len([d for d in trace.deliveries if d.pid == 0]) == 1
        assert len([d for d in trace.deliveries if d.pid == 1]) == 1

    def test_timestamps_unique_per_message(self):
        """Global timestamps are unique: no two messages share one."""
        res = run_workload(SkeenProcess, num_groups=3, group_size=1, num_clients=3,
                           messages_per_client=10, dest_k=2, seed=5,
                           network=ConstantDelay(DELTA))
        proposals = [r.msg for r in res.trace.sends if isinstance(r.msg, ProposeMsg)]
        by_group = {}
        for p in proposals:
            key = (p.gid, p.lts)
            assert by_group.setdefault(key, p.m.mid) == p.m.mid
