"""Black-box property checks on hand-crafted histories (Section II)."""

import pytest

from repro.checking import (
    History,
    check_integrity,
    check_ordering,
    check_termination,
    check_validity,
)
from repro.checking.genuineness import GenuinenessMonitor, extract_mids
from repro.checking.properties import assert_all
from repro.config import ClusterConfig
from repro.errors import PropertyViolation
from repro.sim.trace import SendRecord
from repro.types import make_message


def history(config, multicasts, deliveries, crashed=()):
    """deliveries: pid -> list of messages (times synthesised)."""
    return History(
        config=config,
        multicasts={m.mid: (origin, t, m) for m, origin, t in multicasts},
        deliveries={
            pid: [(float(i), m) for i, m in enumerate(msgs)]
            for pid, msgs in deliveries.items()
        },
        crashed=set(crashed),
    )


@pytest.fixture
def config():
    # Two singleton groups keep hand-written histories compact.
    return ClusterConfig.build(num_groups=2, group_size=1, num_clients=1)


M1 = make_message(2, 1, {0, 1})
M2 = make_message(2, 2, {0, 1})
M3 = make_message(2, 3, {0})


class TestValidity:
    def test_ok(self, config):
        h = history(config, [(M1, 2, 0.0)], {0: [M1], 1: [M1]})
        assert check_validity(h).ok

    def test_never_multicast(self, config):
        h = history(config, [], {0: [M1]})
        assert not check_validity(h).ok

    def test_wrong_destination(self, config):
        h = history(config, [(M3, 2, 0.0)], {1: [M3]})  # M3 only targets group 0
        assert not check_validity(h).ok

    def test_non_member_delivery(self, config):
        h = history(config, [(M1, 2, 0.0)], {2: [M1]})  # pid 2 is a client
        assert not check_validity(h).ok


class TestIntegrity:
    def test_ok(self, config):
        h = history(config, [(M1, 2, 0.0)], {0: [M1]})
        assert check_integrity(h).ok

    def test_duplicate_delivery(self, config):
        h = history(config, [(M1, 2, 0.0)], {0: [M1, M1]})
        assert not check_integrity(h).ok


class TestOrdering:
    def test_agreement_ok(self, config):
        h = history(config, [(M1, 2, 0.0), (M2, 2, 0.0)],
                    {0: [M1, M2], 1: [M1, M2]})
        assert check_ordering(h).ok

    def test_disagreement_detected(self, config):
        h = history(config, [(M1, 2, 0.0), (M2, 2, 0.0)],
                    {0: [M1, M2], 1: [M2, M1]})
        assert not check_ordering(h).ok

    def test_cycle_through_third_message(self, config):
        a = make_message(2, 10, {0, 1})
        b = make_message(2, 11, {0, 1})
        c = make_message(2, 12, {0, 1})
        # 0 sees a<b<c, 1 sees c<a: cycle a<b<c<a via transitivity.
        h = history(config, [(a, 2, 0.0), (b, 2, 0.0), (c, 2, 0.0)],
                    {0: [a, b, c], 1: [c, a]})
        assert not check_ordering(h).ok

    def test_disjoint_destinations_uncontrained(self, config):
        a = make_message(2, 10, {0})
        b = make_message(2, 11, {1})
        h = history(config, [(a, 2, 0.0), (b, 2, 0.0)], {0: [a], 1: [b]})
        assert check_ordering(h).ok


class TestTermination:
    def test_ok(self, config):
        h = history(config, [(M1, 2, 0.0)], {0: [M1], 1: [M1]})
        assert check_termination(h).ok

    def test_missing_delivery_at_correct_member(self, config):
        h = history(config, [(M1, 2, 0.0)], {0: [M1]})  # group 1 never delivers
        assert not check_termination(h).ok

    def test_crashed_member_excused(self, config):
        h = history(config, [(M1, 2, 0.0)], {0: [M1]}, crashed={1})
        assert check_termination(h).ok

    def test_crashed_sender_excused_unless_delivered(self, config):
        # Sender crashed and nobody delivered: no obligation.
        h = history(config, [(M1, 2, 0.0)], {}, crashed={2})
        assert check_termination(h).ok
        # But a single delivery anywhere obligates everyone correct.
        h2 = history(config, [(M1, 2, 0.0)], {0: [M1]}, crashed={2})
        assert not check_termination(h2).ok

    def test_assert_all_raises(self, config):
        h = history(config, [(M1, 2, 0.0)], {0: [M1, M1]})
        with pytest.raises(PropertyViolation):
            assert_all(h)


class TestGenuineness:
    def test_extract_mids_variants(self):
        class WithM:
            m = M1

        class WithMid:
            mid = (1, 2)

        class WithMids:
            def mids(self):
                return [(3, 4), (5, 6)]

        assert extract_mids(WithM()) == [M1.mid]
        assert extract_mids(WithMid()) == [(1, 2)]
        assert extract_mids(WithMids()) == [(3, 4), (5, 6)]
        assert extract_mids(object()) == []

    def test_flags_outsider(self, config):
        mon = GenuinenessMonitor(config)
        mon.on_multicast(0.0, 2, M3)  # M3 targets group {0} only

        class Tagged:
            m = M3

        # group 1's process participates: not genuine.
        mon.on_send(SendRecord(0.0, 0.1, 1, 0, Tagged()))
        assert not mon.is_genuine
        assert mon.check()

    def test_accepts_destination_traffic(self, config):
        mon = GenuinenessMonitor(config)
        mon.on_multicast(0.0, 2, M1)

        class Tagged:
            m = M1

        mon.on_send(SendRecord(0.0, 0.1, 0, 1, Tagged()))
        mon.on_send(SendRecord(0.0, 0.1, 2, 0, Tagged()))  # sender allowed
        assert mon.is_genuine

    def test_untagged_messages_ignored(self, config):
        mon = GenuinenessMonitor(config)
        mon.on_multicast(0.0, 2, M1)
        mon.on_send(SendRecord(0.0, 0.1, 1, 0, object()))
        assert mon.is_genuine
