"""Garbage collection of delivered messages (mentioned in §VI)."""

import pytest

from repro.bench.harness import run_workload
from repro.config import ClusterConfig
from repro.protocols import WbCastProcess
from repro.protocols.wbcast import WbCastOptions
from repro.sim import ConstantDelay
from repro.sim.faults import CrashSpec, FaultPlan
from repro.workload import ClientOptions

from tests.conftest import DELTA, FAST_FD, checks_ok

GC = WbCastOptions(retry_interval=0.05, gc_interval=0.01)


class TestPruning:
    def test_records_pruned_after_full_delivery(self):
        res = run_workload(WbCastProcess, num_groups=3, group_size=3, num_clients=2,
                           messages_per_client=15, dest_k=2, seed=3,
                           network=ConstantDelay(DELTA), protocol_options=GC,
                           drain_grace=0.5)
        assert res.all_done
        for proc in res.members.values():
            assert proc.live_record_count() == 0
            assert len(proc.delivered_ids) > 0  # ids retained for integrity

    def test_gc_disabled_keeps_records(self):
        res = run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=2,
                           messages_per_client=10, dest_k=2, seed=3,
                           network=ConstantDelay(DELTA),
                           protocol_options=WbCastOptions(), drain_grace=0.2)
        leader = res.members[0]
        assert leader.live_record_count() > 0

    def test_duplicate_multicast_after_prune_is_ignored(self):
        from repro.protocols.base import MulticastMsg
        res = run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=1,
                           messages_per_client=5, dest_k=2, seed=4,
                           network=ConstantDelay(DELTA), protocol_options=GC,
                           drain_grace=0.5)
        assert res.members[0].live_record_count() == 0
        sim = res.sim
        client = res.config.clients[0]
        m = res.trace.multicasts[0].m
        before = len(res.trace.deliveries)
        sim.schedule(0.0, lambda: sim.transmit(client, 0, MulticastMsg(m)))
        sim.run(until=sim.now + 0.2)
        assert len(res.trace.deliveries) == before  # Integrity preserved

    def test_gc_stalls_while_a_member_is_down(self):
        """Watermarks need the whole group: with a crashed follower the
        leader must keep records (a slow process is indistinguishable from
        a dead one, and re-DELIVERs must stay possible)."""
        res = run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=2,
                           messages_per_client=8, dest_k=2, seed=5,
                           network=ConstantDelay(DELTA), protocol_options=GC,
                           fault_plan=FaultPlan(crashes=[CrashSpec(1, 0.001)]),
                           drain_grace=0.5)
        assert res.all_done
        leader = res.members[0]
        assert leader.live_record_count() > 0

    def test_correctness_with_gc_and_failover(self):
        res = run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=2,
                           messages_per_client=10, dest_k=2, seed=6,
                           network=ConstantDelay(DELTA), protocol_options=GC,
                           client_options=ClientOptions(num_messages=10, retry_timeout=0.08),
                           fault_plan=FaultPlan(crashes=[CrashSpec(0, 0.015)]),
                           attach_fd=True, fd_options=FAST_FD, drain_grace=0.5)
        assert res.all_done
        checks_ok(res)
