"""Garbage collection of delivered messages (mentioned in §VI)."""

import pytest

from repro.bench.harness import run_workload
from repro.config import BatchingOptions, ClusterConfig
from repro.protocols import WbCastProcess
from repro.protocols.wbcast import GcPruneMsg, WbCastOptions
from repro.sim import ConstantDelay
from repro.sim.faults import CrashSpec, FaultPlan
from repro.types import make_message
from repro.workload import ClientOptions

from tests.conftest import DELTA, FAST_FD, checks_ok
from tests.test_wbcast_normal import build, submit

GC = WbCastOptions(retry_interval=0.05, gc_interval=0.01)
BATCHED = BatchingOptions(max_batch=8, max_linger=2 * DELTA, pipeline_depth=4)
GC_BATCHED = WbCastOptions(retry_interval=0.05, gc_interval=0.01, batching=BATCHED)


class TestPruning:
    def test_records_pruned_after_full_delivery(self):
        res = run_workload(WbCastProcess, num_groups=3, group_size=3, num_clients=2,
                           messages_per_client=15, dest_k=2, seed=3,
                           network=ConstantDelay(DELTA), protocol_options=GC,
                           drain_grace=0.5)
        assert res.all_done
        for proc in res.members.values():
            assert proc.live_record_count() == 0
            assert len(proc.delivered_ids) > 0  # ids retained for integrity

    def test_gc_disabled_keeps_records(self):
        res = run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=2,
                           messages_per_client=10, dest_k=2, seed=3,
                           network=ConstantDelay(DELTA),
                           protocol_options=WbCastOptions(), drain_grace=0.2)
        leader = res.members[0]
        assert leader.live_record_count() > 0

    def test_duplicate_multicast_after_prune_is_ignored(self):
        from repro.protocols.base import MulticastMsg
        res = run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=1,
                           messages_per_client=5, dest_k=2, seed=4,
                           network=ConstantDelay(DELTA), protocol_options=GC,
                           drain_grace=0.5)
        assert res.members[0].live_record_count() == 0
        sim = res.sim
        client = res.config.clients[0]
        m = res.trace.multicasts[0].m
        before = len(res.trace.deliveries)
        sim.schedule(0.0, lambda: sim.transmit(client, 0, MulticastMsg(m)))
        sim.run(until=sim.now + 0.2)
        assert len(res.trace.deliveries) == before  # Integrity preserved

    def test_gc_stalls_while_a_member_is_down(self):
        """Watermarks need the whole group: with a crashed follower the
        leader must keep records (a slow process is indistinguishable from
        a dead one, and re-DELIVERs must stay possible)."""
        res = run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=2,
                           messages_per_client=8, dest_k=2, seed=5,
                           network=ConstantDelay(DELTA), protocol_options=GC,
                           fault_plan=FaultPlan(crashes=[CrashSpec(1, 0.001)]),
                           drain_grace=0.5)
        assert res.all_done
        leader = res.members[0]
        assert leader.live_record_count() > 0

    def test_correctness_with_gc_and_failover(self):
        res = run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=2,
                           messages_per_client=10, dest_k=2, seed=6,
                           network=ConstantDelay(DELTA), protocol_options=GC,
                           client_options=ClientOptions(num_messages=10, retry_timeout=0.08),
                           fault_plan=FaultPlan(crashes=[CrashSpec(0, 0.015)]),
                           attach_fd=True, fd_options=FAST_FD, drain_grace=0.5)
        assert res.all_done
        checks_ok(res)

class TestBatchAwareGc:
    """Prune rounds coalesce whole replicated batches (batch-aware GC).

    The regression contract: prune must never drop a message whose
    batch-mate is still undelivered at some destination group — the whole
    batch waits and then retires in one ``GcPruneMsg`` round.
    """

    def _delivered_batch(self, n=4):
        """One n-message batch through a 1-group cluster, fully delivered.

        Returns (sim, trace, procs, msgs-in-gts-order); GC timers are off,
        so the test drives ``_prune`` with synthetic group watermarks.
        """
        config = ClusterConfig.build(1, 3, 1)
        options = WbCastOptions(batching=BATCHED)
        sim, trace, tracker, procs, client = build(config, options=options)
        msgs = [make_message(client, i, {0}) for i in range(n)]
        for m in msgs:
            sim.schedule(0.0, lambda mm=m: submit(sim, config, client, mm))
        sim.run()
        leader = procs[0]
        for m in msgs:
            assert m.mid in leader.delivered_ids
        msgs.sort(key=lambda m: leader.records[m.mid].gts)
        return sim, trace, procs, msgs

    def test_partial_watermark_holds_the_whole_batch(self):
        """Group watermark covers only the batch's head: nothing prunes —
        a per-message GC would have dropped the head while its batch-mates
        are still undelivered somewhere."""
        sim, trace, procs, msgs = self._delivered_batch()
        leader = procs[0]
        # The whole submission really formed one replicated batch.
        assert len(leader._gc_batch_members) == 1
        leader._group_watermarks[0] = leader.records[msgs[1].mid].gts
        leader._prune()
        assert leader.live_record_count() == len(msgs)
        assert not [r for r in trace.sends if isinstance(r.msg, GcPruneMsg)]

    def test_full_watermark_prunes_the_batch_in_one_round(self):
        sim, trace, procs, msgs = self._delivered_batch()
        leader = procs[0]
        leader._group_watermarks[0] = leader.records[msgs[-1].mid].gts
        leader._prune()
        assert leader.live_record_count() == 0
        assert not leader._gc_batch_of and not leader._gc_batch_members
        prunes = [r.msg for r in trace.sends if isinstance(r.msg, GcPruneMsg)]
        assert prunes and all(
            set(p.mids) == {m.mid for m in msgs} for p in prunes
        ), prunes
        sim.run()  # let followers process the prune
        for pid in (1, 2):
            assert procs[pid].live_record_count() == 0

    def test_unbatched_prune_stays_per_message(self):
        """Without batching the per-message watermark semantics are
        untouched: a partial watermark prunes exactly the covered prefix."""
        config = ClusterConfig.build(1, 3, 1)
        sim, trace, tracker, procs, client = build(config, options=WbCastOptions())
        msgs = [make_message(client, i, {0}) for i in range(4)]
        for m in msgs:
            sim.schedule(0.0, lambda mm=m: submit(sim, config, client, mm))
        sim.run()
        leader = procs[0]
        msgs.sort(key=lambda m: leader.records[m.mid].gts)
        leader._group_watermarks[0] = leader.records[msgs[1].mid].gts
        leader._prune()
        assert leader.live_record_count() == 2
        assert leader.record_of(msgs[0].mid) is None
        assert leader.record_of(msgs[-1].mid) is not None

    def test_batched_gc_prunes_everything_end_to_end(self):
        """The batched twin of ``test_records_pruned_after_full_delivery``:
        with real GC rounds every record eventually retires everywhere."""
        res = run_workload(WbCastProcess, num_groups=3, group_size=3, num_clients=2,
                           messages_per_client=15, dest_k=2, seed=3,
                           network=ConstantDelay(DELTA), protocol_options=GC_BATCHED,
                           client_options=ClientOptions(num_messages=15, window=4),
                           drain_grace=0.5)
        assert res.all_done
        checks_ok(res)
        for proc in res.members.values():
            assert proc.live_record_count() == 0
            assert len(proc.delivered_ids) > 0  # ids retained for integrity

    def test_batched_gc_with_failover(self):
        """Batch-aware GC state is volatile: after a leader crash the new
        leader still prunes (per message) and correctness holds."""
        res = run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=2,
                           messages_per_client=10, dest_k=2, seed=6,
                           network=ConstantDelay(DELTA), protocol_options=GC_BATCHED,
                           client_options=ClientOptions(num_messages=10,
                                                        retry_timeout=0.08, window=4),
                           fault_plan=FaultPlan(crashes=[CrashSpec(0, 0.015)]),
                           attach_fd=True, fd_options=FAST_FD, drain_grace=0.5)
        assert res.all_done
        checks_ok(res)
