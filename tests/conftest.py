"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig
from repro.failure.detector import MonitorOptions
from repro.sim import ConstantDelay, Simulator, Trace
from repro.workload import DeliveryTracker


#: Fast failure-detector settings for virtual-time tests.
FAST_FD = MonitorOptions(
    heartbeat_interval=0.005, suspect_timeout=0.02, stagger=0.01, max_timeout=0.3
)

#: One simulated message delay used throughout latency-sensitive tests.
DELTA = 0.001


@pytest.fixture
def config_3x3():
    return ClusterConfig.build(num_groups=3, group_size=3, num_clients=2)


@pytest.fixture
def config_2x3():
    return ClusterConfig.build(num_groups=2, group_size=3, num_clients=2)


def build_cluster(protocol_cls, config, network=None, seed=0, options=None, cpu=None):
    """Wire a simulator with one protocol process per group member.

    Returns (sim, trace, tracker, {pid: process}).
    """
    network = network or ConstantDelay(DELTA)
    trace = Trace()
    sim = Simulator(network, seed=seed, trace=trace, cpu=cpu)
    tracker = DeliveryTracker(config, sim=sim)
    trace.attach(tracker)
    members = {}
    for pid in config.all_members:
        members[pid] = sim.add_process(
            pid, lambda rt, p=pid: protocol_cls(p, config, rt, options=options)
        )
    return sim, trace, tracker, members


def checks_ok(result, quiescent=True):
    """Assert helper: all black-box property checks pass."""
    failed = [c.describe() for c in result.check(quiescent=quiescent) if not c.ok]
    assert not failed, failed
    return True
