"""The discrete-event scheduler: determinism, FIFO, timers, crashes, CPU."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim import ConstantDelay, Simulator, Trace, UniformCpu, UniformDelay
from repro.sim.scheduler import CpuModel


class Recorder:
    """Minimal process: records (time, sender, msg) of everything received."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.received = []

    def on_message(self, sender, msg):
        self.received.append((self.runtime.now(), sender, msg))


def two_recorders(network=None, seed=0, cpu=None):
    sim = Simulator(network or ConstantDelay(0.01), seed=seed, cpu=cpu)
    a = sim.add_process(0, Recorder)
    b = sim.add_process(1, Recorder)
    return sim, a, b


class TestEventLoop:
    def test_messages_arrive_after_delay(self):
        sim, a, b = two_recorders()
        sim.schedule(0.0, lambda: sim.transmit(0, 1, "hello"))
        sim.run()
        assert b.received == [(0.01, 0, "hello")]

    def test_same_time_events_run_in_schedule_order(self):
        sim = Simulator(ConstantDelay(0.0))
        order = []
        sim.schedule(0.5, lambda: order.append("first"))
        sim.schedule(0.5, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_run_until_stops_clock(self):
        sim, a, b = two_recorders()
        sim.schedule(5.0, lambda: None)
        assert sim.run(until=1.0) == 1.0
        assert sim.pending_events == 1

    def test_step_executes_one_event(self):
        sim, a, b = two_recorders()
        sim.schedule(0.0, lambda: None)
        sim.schedule(0.0, lambda: None)
        assert sim.step()
        assert sim.events_executed == 1

    def test_cannot_schedule_in_past(self):
        sim, a, b = two_recorders()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_max_events_guard(self):
        sim = Simulator(ConstantDelay(0.0))

        def loop():
            sim.schedule(0.001, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_duplicate_pid_rejected(self):
        sim, a, b = two_recorders()
        with pytest.raises(SimulationError):
            sim.add_process(0, Recorder)

    def test_unknown_destination_rejected(self):
        sim, a, b = two_recorders()
        sim.schedule(0.0, lambda: sim.transmit(0, 99, "x"))
        with pytest.raises(SimulationError):
            sim.run()


class TestFifo:
    def test_fifo_under_random_delays(self):
        """Reliable FIFO channels: arrival order == send order per channel."""
        sim, a, b = two_recorders(network=UniformDelay(0.001, 0.02), seed=3)
        for i in range(50):
            sim.schedule(i * 0.0001, lambda i=i: sim.transmit(0, 1, i))
        sim.run()
        assert [msg for _, _, msg in b.received] == list(range(50))

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_fifo_property(self, seed):
        sim, a, b = two_recorders(network=UniformDelay(0.0, 0.05), seed=seed)
        for i in range(20):
            sim.schedule(i * 0.001, lambda i=i: sim.transmit(0, 1, i))
        sim.run()
        payloads = [msg for _, _, msg in b.received]
        assert payloads == sorted(payloads)

    def test_self_messages_are_instant_and_ordered(self):
        sim, a, b = two_recorders()
        sim.schedule(0.0, lambda: (sim.transmit(0, 0, "x"), sim.transmit(0, 0, "y")))
        sim.run()
        assert [(m, t) for t, _, m in a.received] == [("x", 0.0), ("y", 0.0)]


class TestTimers:
    def test_timer_fires(self):
        sim, a, b = two_recorders()
        fired = []
        sim.set_timer(0, 0.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.5]

    def test_cancelled_timer_does_not_fire(self):
        sim, a, b = two_recorders()
        fired = []
        handle = sim.set_timer(0, 0.5, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == [] and handle.cancelled

    def test_timer_of_crashed_process_does_not_fire(self):
        sim, a, b = two_recorders()
        fired = []
        sim.set_timer(0, 0.5, lambda: fired.append(1))
        sim.crash_at(0, 0.1)
        sim.run()
        assert fired == []


class TestCrashes:
    def test_crashed_process_receives_nothing(self):
        sim, a, b = two_recorders()
        sim.crash_at(1, 0.005)
        sim.schedule(0.0, lambda: sim.transmit(0, 1, "late"))
        sim.run()
        assert b.received == []

    def test_crashed_process_sends_nothing(self):
        sim, a, b = two_recorders()
        sim.crash_at(0, 0.0)
        sim.schedule(0.001, lambda: sim.transmit(0, 1, "ghost"))
        sim.run()
        assert b.received == []

    def test_crash_recorded_in_trace(self):
        sim, a, b = two_recorders()
        sim.crash_at(1, 0.25)
        sim.run()
        assert sim.trace.crashes == [(0.25, 1)]
        assert not sim.alive(1) and sim.alive(0)

    def test_double_crash_is_idempotent(self):
        sim, a, b = two_recorders()
        sim.crash_at(1, 0.1)
        sim.crash_at(1, 0.2)
        sim.run()
        assert sim.trace.crashes == [(0.1, 1)]


class TestCpuModel:
    def test_service_time_serialises_handling(self):
        cpu = UniformCpu(0.010, free_self_messages=False)
        sim, a, b = two_recorders(network=ConstantDelay(0.001), cpu=cpu)
        sim.schedule(0.0, lambda: [sim.transmit(0, 1, i) for i in range(3)])
        sim.run()
        times = [t for t, _, _ in b.received]
        # Arrival at 1ms; each handling occupies 10ms of CPU, in series.
        assert times == pytest.approx([0.011, 0.021, 0.031])

    def test_zero_cost_is_transparent(self):
        sim, a, b = two_recorders(cpu=CpuModel())
        sim.schedule(0.0, lambda: sim.transmit(0, 1, "x"))
        sim.run()
        assert b.received[0][0] == pytest.approx(0.01)

    def test_self_messages_free_by_default(self):
        cpu = UniformCpu(0.010)
        assert cpu.cost(0, "x", random.Random(0), src=0) == 0.0
        assert cpu.cost(0, "x", random.Random(0), src=1) == 0.010

    def test_ack_types_cheaper(self):
        cpu = UniformCpu(0.008)

        class AcceptAckMsg:  # name-based classification
            pass

        assert cpu.cost(0, AcceptAckMsg(), random.Random(0), src=1) == pytest.approx(0.002)

    def test_overrides(self):
        cpu = UniformCpu(0.010, overrides={5: 0.001})
        assert cpu.cost(5, "x", random.Random(0), src=1) == pytest.approx(0.001)


class TestDeterminism:
    def test_same_seed_same_run(self):
        def run(seed):
            sim, a, b = two_recorders(network=UniformDelay(0.001, 0.02), seed=seed)
            for i in range(20):
                sim.schedule(0.0, lambda i=i: sim.transmit(0, 1, i))
            sim.run()
            return [t for t, _, _ in b.received]

        assert run(42) == run(42)
        assert run(42) != run(43)
