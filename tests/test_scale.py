"""Paper-scale integration smoke tests (10 groups, many clients).

The benchmarks run these shapes with CPU models and sweeps; these tests
pin correctness (not performance) at the paper's cluster scale so a
regression that only bites beyond toy sizes cannot hide.
"""

import pytest

from repro.bench.harness import run_workload
from repro.bench.topologies import lan_testbed, wan_testbed
from repro.config import ClusterConfig
from repro.failure.detector import MonitorOptions
from repro.protocols import FastCastProcess, WbCastProcess
from repro.protocols.wbcast import WbCastOptions
from repro.sim.faults import CrashSpec, FaultPlan
from repro.workload import ClientOptions

from tests.conftest import checks_ok


class TestPaperScale:
    def test_ten_groups_fifty_clients_lan(self):
        config = ClusterConfig.build(10, 3, 50)
        res = run_workload(
            WbCastProcess, config=config, messages_per_client=4, dest_k=2,
            network=lan_testbed(config, jitter=0.05), seed=42,
            record_sends=False,
        )
        assert res.all_done
        checks_ok(res)

    def test_ten_groups_wan_with_jitter(self):
        config = ClusterConfig.build(10, 3, 30)
        res = run_workload(
            WbCastProcess, config=config, messages_per_client=3, dest_k=6,
            network=wan_testbed(config, jitter=0.05), seed=7,
            record_sends=False,
            drain_grace=0.5,  # follower DELIVERs cross data centres (~65 ms)
        )
        assert res.all_done
        checks_ok(res)

    def test_fastcast_at_scale(self):
        config = ClusterConfig.build(10, 3, 30)
        res = run_workload(
            FastCastProcess, config=config, messages_per_client=3, dest_k=4,
            network=lan_testbed(config, jitter=0.05), seed=13,
            record_sends=False,
        )
        assert res.all_done
        checks_ok(res)

    def test_crash_at_scale_under_wan_delays(self):
        """A leader crash in a 10-group WAN cluster with the detector's
        timeouts scaled to WAN heartbeat latencies."""
        config = ClusterConfig.build(10, 3, 10)
        fd = MonitorOptions(
            heartbeat_interval=0.08, suspect_timeout=0.4, stagger=0.2,
            max_timeout=2.0,
        )
        res = run_workload(
            WbCastProcess, config=config, messages_per_client=3, dest_k=2,
            network=wan_testbed(config), seed=3,
            protocol_options=WbCastOptions(retry_interval=0.5),
            client_options=ClientOptions(num_messages=3, retry_timeout=1.0),
            fault_plan=FaultPlan(crashes=[CrashSpec(0, 0.2)]),
            attach_fd=True, fd_options=fd,
            record_sends=False, drain_grace=2.0, max_time=60.0,
        )
        assert res.all_done
        checks_ok(res)
