"""Timestamps, ballots and message identities (Section III of the paper)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.types import (
    BALLOT_BOTTOM,
    TS_BOTTOM,
    AmcastMessage,
    Ballot,
    MessageIdAllocator,
    Timestamp,
    make_message,
)

times = st.integers(min_value=0, max_value=10**6)
gids = st.integers(min_value=0, max_value=64)
timestamps = st.builds(Timestamp, time=times, group=gids)
ballots = st.builds(Ballot, round=times, pid=gids)


class TestTimestamp:
    def test_lexicographic_time_dominates(self):
        assert Timestamp(1, 5) < Timestamp(2, 0)

    def test_lexicographic_group_breaks_ties(self):
        assert Timestamp(3, 1) < Timestamp(3, 2)

    def test_bottom_below_everything_issuable(self):
        assert TS_BOTTOM < Timestamp(0, 0)
        assert TS_BOTTOM < Timestamp(1, 0)

    def test_equality_and_hash(self):
        assert Timestamp(4, 2) == Timestamp(4, 2)
        assert hash(Timestamp(4, 2)) == hash(Timestamp(4, 2))
        assert len({Timestamp(4, 2), Timestamp(4, 2), Timestamp(4, 3)}) == 2

    def test_repr_is_compact(self):
        assert repr(Timestamp(7, 1)) == "ts(7,1)"

    @given(timestamps, timestamps)
    def test_total_order(self, a, b):
        assert (a < b) + (b < a) + (a == b) == 1

    @given(timestamps, timestamps, timestamps)
    def test_transitivity(self, a, b, c):
        if a < b and b < c:
            assert a < c

    @given(timestamps, timestamps)
    def test_matches_tuple_order(self, a, b):
        assert (a < b) == ((a.time, a.group) < (b.time, b.group))


class TestBallot:
    def test_round_dominates(self):
        assert Ballot(1, 99) < Ballot(2, 0)

    def test_pid_breaks_ties(self):
        assert Ballot(3, 1) < Ballot(3, 2)

    def test_bottom_is_minimal(self):
        assert BALLOT_BOTTOM < Ballot(0, 0)

    def test_leader(self):
        assert Ballot(5, 17).leader() == 17

    @given(ballots, ballots)
    def test_total_order(self, a, b):
        assert (a < b) + (b < a) + (a == b) == 1


class TestAmcastMessage:
    def test_requires_destinations(self):
        with pytest.raises(ValueError):
            AmcastMessage(mid=(0, 0), dests=frozenset())

    def test_make_message_normalises_dests(self):
        m = make_message(3, 7, [2, 0, 2])
        assert m.dests == frozenset({0, 2})
        assert m.mid == (3, 7)

    def test_default_size_is_paper_payload(self):
        assert make_message(0, 0, {0}).size == 20

    def test_frozen(self):
        m = make_message(0, 0, {0})
        with pytest.raises(Exception):
            m.payload = "x"

    def test_repr_mentions_dests(self):
        assert "[0, 1]" in repr(make_message(5, 1, {1, 0}))


class TestMessageIdAllocator:
    def test_ids_unique_and_ordered(self):
        alloc = MessageIdAllocator(9)
        ids = [alloc.fresh() for _ in range(100)]
        assert len(set(ids)) == 100
        assert all(origin == 9 for origin, _ in ids)
        assert [seq for _, seq in ids] == list(range(100))

    def test_independent_origins_do_not_collide(self):
        a, b = MessageIdAllocator(1), MessageIdAllocator(2)
        assert a.fresh() != b.fresh()
