"""End-to-end behaviour under partial synchrony (the GST model of §II)."""

import pytest

from repro.bench.harness import run_workload
from repro.protocols import FtSkeenProcess, WbCastProcess
from repro.protocols.wbcast import WbCastOptions
from repro.sim import ConstantDelay, PartialSynchrony
from repro.sim.faults import CrashSpec, FaultPlan
from repro.workload import ClientOptions

from tests.conftest import DELTA, FAST_FD, checks_ok


def chaotic_network(gst: float, inflation: float = 8.0):
    return PartialSynchrony(ConstantDelay(DELTA), gst=gst, max_inflation=inflation)


class TestPreGstChaos:
    @pytest.mark.parametrize("seed", range(4))
    def test_wbcast_safe_and_live_through_gst(self, seed):
        """Messages multicast before GST see wildly inflated delays; safety
        must hold throughout and everything must complete after GST."""
        res = run_workload(
            WbCastProcess, num_groups=3, group_size=3, num_clients=3,
            messages_per_client=8, dest_k=2, seed=seed,
            network=chaotic_network(gst=0.05),
            protocol_options=WbCastOptions(retry_interval=0.05),
            client_options=ClientOptions(num_messages=8, retry_timeout=0.1),
            drain_grace=0.3,
        )
        assert res.all_done
        checks_ok(res)

    def test_crash_before_gst(self):
        """A leader crash during the chaotic period: the detector may
        suspect wrongly and elect repeatedly, but once GST passes a single
        leader stabilises and the run completes."""
        res = run_workload(
            WbCastProcess, num_groups=2, group_size=3, num_clients=2,
            messages_per_client=8, dest_k=2, seed=3,
            network=chaotic_network(gst=0.08),
            protocol_options=WbCastOptions(retry_interval=0.05),
            client_options=ClientOptions(num_messages=8, retry_timeout=0.1),
            fault_plan=FaultPlan(crashes=[CrashSpec(0, 0.02)]),
            attach_fd=True, fd_options=FAST_FD, drain_grace=0.5, max_time=20.0,
        )
        assert res.all_done
        checks_ok(res)

    def test_ftskeen_through_gst(self):
        res = run_workload(
            FtSkeenProcess, num_groups=2, group_size=3, num_clients=2,
            messages_per_client=6, dest_k=2, seed=1,
            network=chaotic_network(gst=0.05),
            client_options=ClientOptions(num_messages=6, retry_timeout=0.1),
            drain_grace=0.3,
        )
        assert res.all_done
        checks_ok(res)

    def test_post_gst_latency_returns_to_bound(self):
        """After GST, the latency of fresh messages drops back to 3δ
        (Lemma 1 / Theorem 3 are 'eventually' statements)."""
        res = run_workload(
            WbCastProcess, num_groups=2, group_size=3, num_clients=1,
            messages_per_client=30, dest_k=2, seed=2,
            network=chaotic_network(gst=0.05),
            drain_grace=0.2,
        )
        assert res.all_done
        late = [
            res.tracker.latency(mid)
            for mid, t in res.tracker.multicast_time.items()
            if t >= 0.05
        ]
        assert late
        for latency in late:
            assert latency == pytest.approx(3 * DELTA)
