"""Traffic census and CSV export."""

import pytest

from repro.bench.export import read_csv, sweep_to_csv, write_csv
from repro.bench.harness import run_workload
from repro.bench.stats import census, census_table
from repro.bench.sweep import SweepPoint
from repro.protocols import FtSkeenProcess, WbCastProcess
from repro.sim import ConstantDelay

from tests.conftest import DELTA


class TestCensus:
    @pytest.fixture
    def run(self):
        return run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=2,
                            messages_per_client=5, dest_k=2, seed=0,
                            network=ConstantDelay(DELTA))

    def test_counts_by_type(self, run):
        c = census(run.trace, run.config, run.completed)
        assert c.total == run.trace.send_count
        assert c.by_type["AcceptMsg"] > 0
        assert c.by_type["DeliverMsg"] > 0
        # Every multicast to 2 groups of 3 fans 12 ACCEPTs out.
        assert c.per_multicast("AcceptMsg") == pytest.approx(12.0)

    def test_roles_partition_total(self, run):
        c = census(run.trace, run.config, run.completed)
        assert sum(c.by_receiver_role.values()) == c.total

    def test_table_renders(self, run):
        c = census(run.trace, run.config, run.completed)
        text = census_table("wbcast 2x3", c)
        assert "AcceptMsg" in text and "TOTAL" in text

    def test_ack_traffic_scaling_wbcast_vs_ftskeen(self):
        """WbCast's acks scale Θ(k²n) (every destination process acks every
        destination leader); FT-Skeen's consensus acks scale Θ(k·n).  At
        k=2, n=3 both come to 12 per multicast; at k=4 WbCast doubles
        FT-Skeen's."""
        def acks_per_multicast(cls, ack_type, k):
            res = run_workload(cls, num_groups=4, group_size=3, num_clients=2,
                               messages_per_client=5, dest_k=k, seed=1,
                               network=ConstantDelay(DELTA))
            c = census(res.trace, res.config, res.completed)
            return c.per_multicast(ack_type)

        wb2 = acks_per_multicast(WbCastProcess, "AcceptAckMsg", 2)
        ft2 = acks_per_multicast(FtSkeenProcess, "PaxosAccepted", 2)
        wb4 = acks_per_multicast(WbCastProcess, "AcceptAckMsg", 4)
        ft4 = acks_per_multicast(FtSkeenProcess, "PaxosAccepted", 4)
        assert wb2 == pytest.approx(ft2)           # coincide at k=2, n=3
        assert wb4 == pytest.approx(2 * ft4)       # diverge at k=4


class TestCsvExport:
    POINTS = [
        SweepPoint("WbCastProcess", 2, 100, 0.001, 0.002, 50_000.0, 1000),
        SweepPoint("FastCastProcess", 2, 100, 0.0015, 0.003, 40_000.0, 1000),
    ]

    def test_round_trip(self, tmp_path):
        path = write_csv(self.POINTS, tmp_path / "sweep.csv")
        rows = read_csv(path)
        assert len(rows) == 2
        assert rows[0]["protocol"] == "WbCast"
        assert rows[0]["clients"] == 100
        assert rows[0]["mean_latency_s"] == pytest.approx(0.001)
        assert rows[1]["throughput_msgs_s"] == pytest.approx(40_000.0)

    def test_header(self):
        text = sweep_to_csv(self.POINTS)
        assert text.splitlines()[0].startswith("protocol,dest_k,clients")

    def test_creates_parent_dirs(self, tmp_path):
        path = write_csv(self.POINTS, tmp_path / "deep" / "nested" / "x.csv")
        assert path.exists()
