"""Codec battery: binary frames must decode identically to pickle frames.

The wire vocabulary is auto-enumerated from the protocol modules
(:func:`repro.net.codec.wire_message_types`), so a new wire message that
is neither registered with the binary codec nor declared a cold pickle
type fails these tests loudly — first in classification, then in the
sample-coverage check.

Deliberately NOT marked ``net``: everything here is pure and fast, so it
runs in the main CI matrix where codec regressions surface earliest.
"""

import asyncio
import dataclasses
import random
import struct

import pytest

from repro.config import ClusterConfig
from repro.failure.detector import HeartbeatMsg
from repro.net import codec
from repro.net.codec import (
    COLD_PICKLE_TYPES,
    classify,
    decode_buffer,
    decode_frame,
    encode_frame,
    frame_codec,
    read_frame,
    wire_message_types,
)
from repro.paxos.messages import (
    NOOP,
    PaxosAccept,
    PaxosAccepted,
    PaxosCommit,
    PaxosPrepare,
    PaxosPromise,
)
from repro.protocols.base import (
    MulticastBatchMsg,
    MulticastMsg,
    SubmitAckMsg,
    SubmitRedirectMsg,
)
from repro.protocols.batching import (
    BatchDeliverMsg,
    CmdGlobalBatch,
    CmdLocalBatch,
    ProposeBatchMsg,
)
from repro.protocols.fastcast import (
    ConfirmBatchMsg,
    ConfirmMsg,
    FcDeliverMsg,
    FcGlobal,
    FcLocal,
)
from repro.protocols.ftskeen import CmdGlobal, CmdLocal, FtDeliverMsg
from repro.protocols.sequencer import CmdDeliver, OrderedAckMsg, OrderedMsg, SeqOrder
from repro.protocols.skeen import ProposeMsg
from repro.protocols.wbcast.messages import (
    AcceptAckBatchMsg,
    AcceptAckMsg,
    AcceptBatchMsg,
    AcceptMsg,
    DeliverBatchMsg,
    DeliverMsg,
    DeliveredAckMsg,
    GcPruneMsg,
    GcReadyMsg,
    LaneAdvanceAckMsg,
    LaneAdvanceMsg,
    LaneMsg,
    LaneProbeMsg,
    LaneRelayMsg,
    LaneWatermarkMsg,
    NewLeaderAckMsg,
    NewLeaderMsg,
    NewStateAckMsg,
    NewStateMsg,
)
from repro.protocols.wbcast.state import DeliveredLog, MsgRecord, Phase
from repro.reconfig.messages import (
    EpochFenceMsg,
    JoinInstalledMsg,
    JoinRequestMsg,
    JoinStateMsg,
)
from repro.serving.messages import ReadMsg, ReadReplyMsg
from repro.types import AmcastMessage, Ballot, Timestamp

M1 = AmcastMessage(mid=(7, 0), dests=frozenset({0, 1}), payload=None, size=20)
M2 = AmcastMessage(
    mid=(3, 9),
    dests=frozenset({1}),
    payload={"k": (1, 2.5, "s", b"raw", None, True), "big": 1 << 80},
    size=None,
)
TS = Timestamp(5, 0)
TS2 = Timestamp(8, 1)
BAL = Ballot(0, 1)
BAL2 = Ballot(2, 4)
VEC = ((0, BAL), (1, BAL2))
CONFIG = ClusterConfig.build(num_groups=2, group_size=3, num_clients=1)
RECORD = MsgRecord(m=M1, phase=list(Phase)[0], lts=TS, gts=TS2)


def _delivered_log() -> DeliveredLog:
    return DeliveredLog()


#: At least one representative instance per wire message type.  The
#: coverage test below fails if a type enumerated by wire_message_types()
#: has no sample here, so the differential battery can never silently
#: skip a message.
SAMPLES = [
    MulticastMsg(M1, None),
    MulticastMsg(M2, 3),
    MulticastBatchMsg((M1, M2), None, 1),
    MulticastBatchMsg((M1,), 2, 5),
    SubmitAckMsg(0, 1, ((7, 0), (7, 1)), 0),
    SubmitAckMsg(1, 4, (), 2, (3 << 32) | 7),
    SubmitRedirectMsg(0, 2, ((7, 0),), 1),
    SubmitRedirectMsg(1, 5, ((3, 9),), 0, 1 << 32),
    ReadMsg(1, 0, ("k0001",)),
    ReadMsg(9, 1, ("k0001", "k0002"), 12, (("k0001", (7, 3)),)),
    ReadReplyMsg(1, 0, 42, False, (("k0001", (8, 5), 7), ("k0002", None, 0))),
    ReadReplyMsg(9, 1, 3, True),
    AcceptMsg(M1, 0, BAL, TS, 0),
    AcceptMsg(M2, 1, BAL2, TS2, 4),
    AcceptAckMsg((7, 0), 0, VEC),
    AcceptBatchMsg(0, BAL, ((M1, TS), (M2, TS2)), 0),
    AcceptAckBatchMsg(1, (((7, 0), VEC), ((3, 9), (VEC[1],)))),
    DeliverMsg(M1, BAL, TS, TS2),
    DeliverBatchMsg(BAL, ((M1, TS, TS2), (M2, TS2, TS))),
    LaneMsg(2, AcceptMsg(M1, 0, BAL, TS, 0)),  # binary inner
    LaneRelayMsg(1, (4, 5), AcceptMsg(M1, 0, BAL, TS, 0)),
    LaneRelayMsg(0, (), AcceptBatchMsg(0, BAL, ((M1, TS),), 0)),
    LaneMsg(1, NewStateMsg(BAL, 7, {M1.mid: RECORD})),  # pickled inner
    NewLeaderMsg(BAL2),
    NewStateAckMsg(BAL),
    DeliveredAckMsg(0, TS),
    GcReadyMsg(1, TS2),
    GcPruneMsg(frozenset({(7, 0), (3, 9)})),
    LaneProbeMsg(2, 3),
    LaneAdvanceMsg(BAL, 11),
    LaneAdvanceAckMsg(BAL, 11),
    LaneWatermarkMsg(0, TS, None),
    ProposeBatchMsg(0, ((M1, TS),)),
    CmdLocalBatch(((M1, TS), (M2, TS2))),
    CmdGlobalBatch(((M1, TS, ((0, TS), (1, TS2))),)),
    BatchDeliverMsg(((M1, TS, TS2),)),
    ProposeMsg(M1, 0, TS),
    CmdLocal(M1, TS),
    CmdGlobal(M1, ((0, TS), (1, TS2))),
    FtDeliverMsg(M1, TS2),
    ConfirmMsg((7, 0), 0, TS),
    ConfirmBatchMsg(0, (((7, 0), TS),)),
    FcLocal(M1, TS),
    FcGlobal(M1, ((0, TS),)),
    FcDeliverMsg(M2, TS2),
    SeqOrder(M1),
    OrderedMsg(M1, 4),
    OrderedAckMsg(1, 4),
    CmdDeliver(M1, 4),
    PaxosPrepare(0, BAL),
    PaxosPromise(0, BAL, {0: (BAL, NOOP), 1: (BAL2, CmdLocal(M1, TS))}, 1),
    PaxosAccept(0, BAL, 2, CmdLocalBatch(((M1, TS),))),
    PaxosAccept(1, BAL2, 3, NOOP),
    PaxosAccepted(0, BAL, 2, ((7, 0),)),
    PaxosCommit(0, 2),
    HeartbeatMsg(0, 1),
    # Cold control messages (pickle fallback).
    NewLeaderAckMsg(BAL, BAL2, 9, {M1.mid: RECORD}, TS, _delivered_log()),
    NewStateMsg(BAL, 7, {M1.mid: RECORD}, _delivered_log()),
    EpochFenceMsg(0, 1, CONFIG, ((7, 0),)),
    JoinRequestMsg(0),
    JoinStateMsg(0, 0, 1, CONFIG, BAL, 9, {M1.mid: RECORD}, TS, _delivered_log()),
    JoinInstalledMsg(0, 99),
]


def wire_equal(a, b) -> bool:
    """Structural equality that also covers classes without ``__eq__``
    (DeliveredLog, LaneMsg): compare type and then slots/attributes
    recursively."""
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if dataclasses.is_dataclass(a):
        return all(
            wire_equal(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, (tuple, list)):
        return len(a) == len(b) and all(wire_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(wire_equal(v, b[k]) for k, v in a.items())
    slots = [
        name
        for klass in type(a).__mro__
        for name in getattr(klass, "__slots__", ())
    ]
    if slots:
        return all(wire_equal(getattr(a, n), getattr(b, n)) for n in slots)
    if hasattr(a, "__dict__"):
        return wire_equal(vars(a), vars(b))
    return a == b


class TestRegistry:
    def test_every_wire_type_is_classified(self):
        """A new wire message must be registered binary or declared cold
        pickle; anything else makes classify() raise."""
        for cls in wire_message_types():
            assert classify(cls) in ("binary", "pickle"), cls

    def test_every_wire_type_has_a_sample(self):
        """The differential battery covers the whole enumerated registry."""
        sampled = {type(s) for s in SAMPLES}
        missing = {c.__name__ for c in wire_message_types()} - {
            c.__name__ for c in sampled
        }
        assert not missing, f"no codec sample for: {sorted(missing)}"

    def test_unknown_type_fails_classification(self):
        class StowawayMsg:
            pass

        with pytest.raises(ValueError, match="Stowaway"):
            classify(StowawayMsg)

    def test_cold_types_are_disjoint_from_registry(self):
        binary = {cls for cls in wire_message_types() if classify(cls) == "binary"}
        assert not binary & COLD_PICKLE_TYPES


class TestDifferential:
    @pytest.mark.parametrize(
        "msg", SAMPLES, ids=[type(s).__name__ for s in SAMPLES]
    )
    def test_binary_decodes_identically_to_pickle(self, msg):
        binary = encode_frame(5, msg, codec="binary")
        pickled = encode_frame(5, msg, codec="pickle")
        sender_b, msg_b = decode_frame(binary[4:])
        sender_p, msg_p = decode_frame(pickled[4:])
        assert sender_b == sender_p == 5
        assert wire_equal(msg_b, msg_p), (msg_b, msg_p)
        assert wire_equal(msg_b, msg), (msg_b, msg)

    @pytest.mark.parametrize(
        "msg", SAMPLES, ids=[type(s).__name__ for s in SAMPLES]
    )
    def test_registered_types_actually_take_the_binary_path(self, msg):
        """classify() says which path each type takes; the frame tag must
        agree, so a silently-broken encoder cannot hide behind the
        pickle fallback."""
        frame = encode_frame(5, msg, codec="binary")
        assert frame_codec(frame) == classify(type(msg))

    def test_unregistered_payloads_fall_back_per_frame(self):
        """Arbitrary objects (tests send dicts and strings) ride the
        pickle fallback transparently."""
        for msg in ({"hello": "world"}, "ping", 42, [1, 2, 3], None):
            frame = encode_frame(1, msg, codec="binary")
            assert frame_codec(frame) == "pickle"
            assert decode_frame(frame[4:]) == (1, msg)

    def test_encoder_failure_falls_back_to_pickle(self):
        """A registered message with a field shape its fixed layout cannot
        carry still crosses the wire — via the fallback."""
        weird = SubmitAckMsg(0, "not-a-pid", (), 0)
        frame = encode_frame(1, weird, codec="binary")
        assert frame_codec(frame) == "pickle"
        assert decode_frame(frame[4:]) == (1, weird)

    def test_huge_int_payload_survives(self):
        msg = MulticastMsg(
            AmcastMessage(mid=(1, 1), dests=frozenset({0}), payload=1 << 200), None
        )
        frame = encode_frame(1, msg, codec="binary")
        assert decode_frame(frame[4:])[1] == msg


class TestFuzz:
    def test_truncated_bodies_raise_value_error(self):
        """Every strict prefix of a frame body must raise ValueError —
        never IndexError, struct.error or a pickle exception."""
        for msg in (SAMPLES[0], SAMPLES[7], SAMPLES[14], {"cold": 1}):
            body = encode_frame(5, msg, codec="binary")[4:]
            for cut in range(len(body)):
                with pytest.raises(ValueError):
                    decode_frame(body[:cut])

    def test_corrupted_bodies_raise_only_value_error(self):
        rng = random.Random(0xC0DEC)
        body = bytes(encode_frame(5, AcceptMsg(M2, 1, BAL2, TS2, 4))[4:])
        for _ in range(300):
            mutated = bytearray(body)
            for _ in range(rng.randint(1, 4)):
                mutated[rng.randrange(len(mutated))] = rng.randrange(256)
            try:
                decode_frame(bytes(mutated))
            except ValueError:
                pass  # the only acceptable failure mode

    def test_trailing_garbage_raises(self):
        body = encode_frame(5, SAMPLES[0])[4:]
        with pytest.raises(ValueError, match="trailing"):
            decode_frame(body + b"\x00")

    def test_unknown_message_tag_raises(self):
        body = struct.pack("!q", 5) + bytes([250])
        with pytest.raises(ValueError, match="tag"):
            decode_frame(body)

    def test_oversized_encode_raises(self, monkeypatch):
        """The oversized encode_frame path: a frame whose body exceeds
        MAX_FRAME is refused at the sender."""
        monkeypatch.setattr(codec, "MAX_FRAME", 64)
        big = MulticastMsg(
            AmcastMessage(mid=(1, 1), dests=frozenset({0}), payload="x" * 1024),
            None,
        )
        with pytest.raises(ValueError, match="MAX_FRAME"):
            encode_frame(1, big)
        monkeypatch.setattr(codec, "MAX_FRAME", 64 * 1024 * 1024)
        assert decode_frame(encode_frame(1, big)[4:]) == (1, big)

    def test_oversized_length_prefix_raises_on_read(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack("!I", codec.MAX_FRAME + 1) + b"xx")
            with pytest.raises(ValueError, match="MAX_FRAME"):
                await read_frame(reader)

        asyncio.run(scenario())

    def test_oversized_length_prefix_raises_in_buffer_scan(self):
        buf = bytearray(struct.pack("!I", codec.MAX_FRAME + 1) + b"xx")
        with pytest.raises(ValueError, match="MAX_FRAME"):
            decode_buffer(buf, lambda s, m: None)


class TestDecodeBuffer:
    def test_scans_all_complete_frames_and_keeps_the_tail(self):
        frames = [encode_frame(i, SAMPLES[i % len(SAMPLES)]) for i in range(20)]
        blob = b"".join(frames)
        tail = encode_frame(99, SAMPLES[0])
        buf = bytearray(blob + tail[: len(tail) // 2])
        got = []
        consumed = decode_buffer(buf, lambda s, m: got.append((s, m)))
        assert consumed == len(blob)
        assert [s for s, _ in got] == list(range(20))
        for i, (_, m) in enumerate(got):
            assert wire_equal(m, SAMPLES[i % len(SAMPLES)])

    def test_empty_and_header_only_buffers_consume_nothing(self):
        assert decode_buffer(bytearray(), lambda s, m: None) == 0
        frame = encode_frame(1, "x")
        assert decode_buffer(bytearray(frame[:3]), lambda s, m: None) == 0
