"""Model-based (stateful) testing of the delivery queue.

Hypothesis drives random sequences of set_pending / clear_pending /
commit / pop operations against :class:`DeliveryQueue` and cross-checks
every observable against a brutally simple reference model.  This is the
strongest guarantee we have that the component every protocol's ordering
correctness rests on behaves exactly like its specification.
"""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.protocols.ordering import DeliveryQueue
from repro.types import Timestamp, make_message


class QueueModel:
    """The specification, executable: dictionaries and a sort.

    Contract notes (matching the real component): a commit of a mid that
    is *currently* committed is ignored, but a commit after the mid was
    popped re-queues it — that is deliberate, recovery re-delivers
    committed messages and receivers deduplicate.
    """

    def __init__(self):
        self.pending = {}          # mid -> lts
        self.committed = {}        # mid -> gts (not yet delivered)
        self.delivered = []        # appended on pop

    def set_pending(self, mid, lts):
        self.pending[mid] = lts

    def clear_pending(self, mid):
        self.pending.pop(mid, None)

    def commit(self, mid, gts):
        if mid in self.committed:
            return
        self.pending.pop(mid, None)
        self.committed[mid] = gts

    def pop_deliverable(self):
        out = []
        while self.committed:
            gts, mid = min((g, m) for m, g in self.committed.items())
            floor = min(self.pending.values(), default=None)
            if floor is not None and not gts < floor:
                break
            del self.committed[mid]
            self.delivered.append((mid, gts))
            out.append(mid)
        return out


class DeliveryQueueMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.queue = DeliveryQueue()
        self.model = QueueModel()
        self.next_id = 0
        self.used_ts = set()

    mids = Bundle("mids")

    @rule(target=mids, t=st.integers(1, 50), g=st.integers(0, 3))
    def new_pending(self, t, g):
        ts = Timestamp(t, g)
        if ts in self.used_ts:
            return None  # timestamps are unique in the protocols
        self.used_ts.add(ts)
        mid = (0, self.next_id)
        self.next_id += 1
        # Mirror protocol usage: a mid gets a pending entry only before
        # its commit (set_pending is never called on committed state).
        self.queue.set_pending(mid, ts)
        self.model.set_pending(mid, ts)
        self._ts_of = getattr(self, "_ts_of", {})
        self._ts_of[mid] = ts
        return mid

    @rule(mid=mids)
    def commit_at_own_ts(self, mid):
        if mid is None:
            return
        ts = self._ts_of.get(mid)
        if ts is None:
            return
        m = make_message(0, mid[1], {0})
        self.queue.commit(m, ts)
        self.model.commit(mid, ts)

    @rule(mid=mids, bump=st.integers(1, 30))
    def commit_at_higher_ts(self, mid, bump):
        if mid is None:
            return
        base = self._ts_of.get(mid)
        if base is None:
            return
        gts = Timestamp(base.time + bump, base.group)
        if gts in self.used_ts:
            return
        self.used_ts.add(gts)
        m = make_message(0, mid[1], {0})
        self.queue.commit(m, gts)
        self.model.commit(mid, gts)

    @rule(mid=mids)
    def drop_pending(self, mid):
        if mid is None:
            return
        self.queue.clear_pending(mid)
        self.model.clear_pending(mid)

    @rule()
    def pop(self):
        popped = list(self.queue.pop_deliverable())
        actual = [m.mid for m, _ in popped]
        expected = self.model.pop_deliverable()
        assert actual == expected
        # Each pop run is internally in gts order.
        gts_seq = [g for _, g in popped]
        assert gts_seq == sorted(gts_seq)

    @invariant()
    def counts_agree(self):
        assert self.queue.pending_count == len(self.model.pending)
        assert self.queue.committed_count == len(self.model.committed)


DeliveryQueueMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestDeliveryQueueModel = DeliveryQueueMachine.TestCase
