"""The asyncio TCP runtime: the same protocols over real localhost sockets."""

import asyncio
import pickle

import pytest

from repro.checking import check_all
from repro.config import ClusterConfig
from repro.failure.detector import MonitorOptions
from repro.net import LocalCluster, decode_frame, encode_frame
from repro.protocols import FtSkeenProcess, WbCastProcess
from repro.protocols.wbcast import Status, WbCastOptions
from repro.types import Ballot, Timestamp, make_message

pytestmark = pytest.mark.net


def run(coro):
    return asyncio.run(coro)


class TestCodec:
    def test_round_trip(self):
        msg = make_message(1, 2, {0, 1}, payload={"k": [1, 2, 3]})
        frame = encode_frame(7, msg)
        sender, decoded = decode_frame(frame[4:])
        assert sender == 7 and decoded == msg

    def test_protocol_messages_pickle(self):
        from repro.protocols.wbcast.messages import AcceptMsg, DeliverMsg

        m = make_message(0, 0, {0})
        for msg in (
            AcceptMsg(m, 0, Ballot(1, 2), Timestamp(3, 0)),
            DeliverMsg(m, Ballot(1, 2), Timestamp(3, 0), Timestamp(4, 1)),
        ):
            assert pickle.loads(pickle.dumps(msg)) == msg

    def test_oversized_frame_rejected(self):
        from repro.net.codec import MAX_FRAME

        with pytest.raises(ValueError):
            encode_frame(0, b"x" * (MAX_FRAME + 1))


class TestTcpWbCast:
    def test_multicast_delivers_everywhere(self):
        async def scenario():
            config = ClusterConfig.build(2, 3, 1)
            cluster = LocalCluster(config, WbCastProcess)
            await cluster.start()
            try:
                handle = cluster.multicast({0, 1}, payload="hello")
                assert await cluster.wait_quiescent(6, timeout=5.0)
                history = cluster.history()
                failed = [c.describe() for c in check_all(history) if not c.ok]
                assert not failed, failed
                payloads = {mm.payload for _, mm, _ in cluster.deliveries}
                assert payloads == {"hello"}
                # The session resolved the handle: acked by both destination
                # leaders, completed at partial delivery.
                assert handle.completed
                assert handle.acked_groups == {0, 1}
            finally:
                await cluster.stop()

        run(scenario())

    def test_many_messages_total_order(self):
        async def scenario():
            config = ClusterConfig.build(3, 3, 1)
            cluster = LocalCluster(config, WbCastProcess)
            await cluster.start()
            try:
                mids = []
                for i in range(20):
                    m = cluster.multicast({i % 3, (i + 1) % 3})
                    mids.append(m.mid)
                for mid in mids:
                    assert await cluster.wait_partial(mid, timeout=5.0)
                # Let follower DELIVERs land, then check everything.
                await asyncio.sleep(0.2)
                history = cluster.history()
                failed = [c.describe() for c in check_all(history) if not c.ok]
                assert not failed, failed
            finally:
                await cluster.stop()

        run(scenario())

    def test_leader_crash_failover_over_tcp(self):
        async def scenario():
            config = ClusterConfig.build(2, 3, 1)
            fd = MonitorOptions(
                heartbeat_interval=0.03, suspect_timeout=0.12, stagger=0.06
            )
            cluster = LocalCluster(
                config,
                WbCastProcess,
                options=WbCastOptions(retry_interval=0.2),
                attach_fd=True,
                fd_options=fd,
            )
            await cluster.start()
            try:
                m1 = cluster.multicast({0, 1})
                assert await cluster.wait_partial(m1.mid, timeout=5.0)
                await cluster.kill(0)  # leader of group 0
                await asyncio.sleep(0.6)  # let the detector elect a new one
                # The session retransmits on its own (stable message id,
                # broadcast fallback) — no manual resend API needed.
                m2 = cluster.multicast({0, 1})
                done = await cluster.wait_partial(m2.mid, timeout=8.0)
                assert done
                survivors = [
                    p for pid, p in cluster.processes.items()
                    if pid not in cluster.killed and p.gid == 0
                ]
                assert any(p.status is Status.LEADER for p in survivors)
                history = cluster.history()
                failed = [
                    c.describe()
                    for c in check_all(history, quiescent=False)
                    if not c.ok
                ]
                assert not failed, failed
            finally:
                await cluster.stop()

        run(scenario())


class TestTcpBaseline:
    def test_ftskeen_over_tcp(self):
        async def scenario():
            config = ClusterConfig.build(2, 3, 1)
            cluster = LocalCluster(config, FtSkeenProcess)
            await cluster.start()
            try:
                mids = [cluster.multicast({0, 1}).mid for _ in range(5)]
                for mid in mids:
                    assert await cluster.wait_partial(mid, timeout=5.0)
                await asyncio.sleep(0.2)
                history = cluster.history()
                failed = [c.describe() for c in check_all(history) if not c.ok]
                assert not failed, failed
            finally:
                await cluster.stop()

        run(scenario())
