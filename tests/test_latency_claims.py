"""The paper's headline latency claims, measured (Theorems 3-4, §I, §VI).

These tests execute the same machinery as ``benchmarks/`` but at test
scale, pinning the δ-unit numbers the whole paper is about:

    protocol    collision-free     failure-free
    Skeen       2δ                 4δ
    WbCast      3δ (4δ followers)  5δ
    FastCast    4δ                 8δ
    FT-Skeen    6δ                 12δ
"""

import pytest

from repro.bench.latency_table import measure_cfl, measure_ffl
from repro.protocols import (
    FastCastProcess,
    FtSkeenProcess,
    SkeenProcess,
    WbCastProcess,
)

#: The FFL sweep approaches the supremum from below with step 0.25δ.
STEP = 0.25
TOL = STEP + 1e-6


class TestCollisionFree:
    def test_skeen_2_delta(self):
        leader, everyone = measure_cfl(SkeenProcess)
        assert leader == pytest.approx(2.0)
        assert everyone == pytest.approx(2.0)

    def test_wbcast_3_delta_leaders_4_followers(self):
        leader, everyone = measure_cfl(WbCastProcess)
        assert leader == pytest.approx(3.0)
        assert everyone == pytest.approx(4.0)

    def test_fastcast_4_delta(self):
        leader, everyone = measure_cfl(FastCastProcess)
        assert leader == pytest.approx(4.0)
        assert everyone == pytest.approx(5.0)

    def test_ftskeen_6_delta(self):
        leader, everyone = measure_cfl(FtSkeenProcess)
        assert leader == pytest.approx(6.0)
        assert everyone == pytest.approx(7.0)

    def test_wbcast_strictly_fastest_replicated_protocol(self):
        wb, _ = measure_cfl(WbCastProcess)
        fc, _ = measure_cfl(FastCastProcess)
        ft, _ = measure_cfl(FtSkeenProcess)
        assert wb < fc < ft


class TestFailureFree:
    """FFL = CFL + C (Equation 4), measured via adversarial collisions."""

    def test_skeen_4_delta(self):
        assert measure_ffl(SkeenProcess, step=STEP) == pytest.approx(4.0, abs=TOL)

    def test_wbcast_5_delta(self):
        assert measure_ffl(WbCastProcess, step=STEP) == pytest.approx(5.0, abs=TOL)

    def test_fastcast_8_delta(self):
        assert measure_ffl(FastCastProcess, step=STEP, sweep_to=6.0) == pytest.approx(
            8.0, abs=TOL
        )

    def test_ftskeen_12_delta(self):
        assert measure_ffl(FtSkeenProcess, step=STEP, sweep_to=8.0) == pytest.approx(
            12.0, abs=TOL
        )

    def test_wbcast_narrows_the_2x_gap(self):
        """The paper's selling point: all prior fault-tolerant variants
        double their latency under collisions; WbCast degrades by 2δ/3δ
        (≈1.7x), not 2x."""
        wb_cfl, _ = measure_cfl(WbCastProcess)
        wb_ffl = measure_ffl(WbCastProcess, step=STEP)
        assert wb_ffl / wb_cfl < 2.0
        fc_cfl, _ = measure_cfl(FastCastProcess)
        fc_ffl = measure_ffl(FastCastProcess, step=STEP, sweep_to=6.0)
        assert fc_ffl / fc_cfl > 1.9  # FastCast keeps the 2x degradation


class TestAblation:
    def test_speculative_clock_is_what_buys_5_delta(self):
        """Ablation: disabling the white-box clock advance (Fig. 4 line 14)
        pushes the convoy window from 2δ to 3δ — FFL goes 5δ → 6δ."""
        from repro.protocols.wbcast import WbCastOptions
        from repro.bench.ablation import measure_ffl_with_options

        with_spec = measure_ffl_with_options(WbCastOptions(), step=STEP)
        without = measure_ffl_with_options(
            WbCastOptions(speculative_clock=False), step=STEP
        )
        assert with_spec == pytest.approx(5.0, abs=TOL)
        assert without == pytest.approx(6.0, abs=TOL)
