"""Unit and component tests of the dynamic reconfiguration subsystem.

Covers the pieces below the full elastic battery (test_reconfig_battery):

* config-epoch transforms and the weighted largest-remainder lane deal;
* command payloads and the deterministic transition function;
* LaneMergeQueue epoch edge cases — watermark and head arriving in
  either order across a flip, and incremental pops staying consistent;
* epoch fencing semantics at the ingress (stale rejected with a refresh,
  ahead-of-epoch stashed, member retries never fenced);
* weighted deficit-round-robin ingress service (the PR 4 FIFO fairness
  regression, extended to weighted shares);
* adaptive ``lane_probe_delay`` (EWMA of per-lane inter-DELIVER gaps);
* the no-op reconfiguration bar: attaching managers changes nothing, and
  a no-op command flips the epoch at the same delivery index everywhere
  without a single election.
"""

import pytest

from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.protocols import WbCastProcess
from repro.protocols.wbcast import LaneMergeQueue, WbCastOptions
from repro.reconfig import (
    JoinCmd,
    LeaveCmd,
    ReconfigManager,
    SetLaneWeightsCmd,
    SetShardsCmd,
    apply_command,
    is_config_command,
)
from repro.reconfig.harness import run_elastic_workload
from repro.sim import UniformDelay
from repro.sim.faults import (
    JoinSpec,
    LaneWeightSpec,
    LeaveSpec,
    ReconfigPlan,
    ShardSpec,
)
from repro.types import Timestamp
from repro.workload import ClientOptions

from tests.conftest import DELTA
from repro.bench.harness import run_workload


class TestConfigTransforms:
    def test_join_appends_and_bumps_epoch(self):
        config = ClusterConfig.build(2, 3, 2)
        joined = config.with_join(0, 99)
        assert joined.groups[0] == (0, 1, 2, 99)
        assert joined.epoch == 1
        assert joined.quorum_size(0) == 3  # majority of 4
        assert config.epoch == 0  # immutable original

    def test_leave_shrinks_quorum_at_activation(self):
        config = ClusterConfig.build(2, 3, 0).with_join(0, 99)
        left = config.with_leave(1)
        assert left.groups[0] == (0, 2, 99)
        assert left.quorum_size(0) == 2
        with pytest.raises(ConfigError):
            ClusterConfig(groups=((7,),), allow_even_groups=True).with_leave(7)

    def test_join_rejects_existing_pid(self):
        config = ClusterConfig.build(2, 3, 2)
        with pytest.raises(ConfigError):
            config.with_join(0, 3)  # a member
        with pytest.raises(ConfigError):
            config.with_join(0, 6)  # a client

    def test_even_groups_rejected_unless_allowed(self):
        with pytest.raises(ConfigError):
            ClusterConfig.build(1, 4, 0)

    def test_active_shards_bounded_by_capacity(self):
        config = ClusterConfig.build(2, 3, 0, shards_per_group=4)
        dialed = config.with_active_shards(2)
        assert dialed.effective_shards == 2
        assert dialed.shards_per_group == 4  # capacity (and ts encoding) fixed
        assert dialed.lane_timestamp_group(1, 3) == 1 * 4 + 3
        with pytest.raises(ConfigError):
            config.with_active_shards(5)

    def test_lane_of_spans_active_lanes_only(self):
        config = ClusterConfig.build(2, 3, 0, shards_per_group=4)
        dialed = config.with_active_shards(2)
        lanes = {dialed.lane_of((o, 0)) for o in range(32)}
        assert lanes <= {0, 1}


class TestWeightedLaneDeal:
    def test_equal_weights_reproduce_round_robin(self):
        config = ClusterConfig.build(2, 3, 0, shards_per_group=4)
        weighted = config.with_lane_weights([(0, 1), (1, 1), (2, 1)])
        for gid in config.group_ids:
            assert [weighted.lane_leader(gid, l) for l in range(4)] == [
                config.lane_leader(gid, l) for l in range(4)
            ]

    def test_proportional_counts(self):
        config = ClusterConfig.build(1, 3, 0, shards_per_group=4)
        weighted = config.with_lane_weights([(0, 2), (1, 1), (2, 1)])
        deal = [weighted.lane_leader(0, l) for l in range(4)]
        assert deal.count(0) == 2 and deal.count(1) == 1 and deal.count(2) == 1

    def test_zero_weight_member_leads_nothing(self):
        config = ClusterConfig.build(1, 3, 0, shards_per_group=4)
        weighted = config.with_lane_weights([(0, 0)])
        deal = [weighted.lane_leader(0, l) for l in range(4)]
        assert 0 not in deal

    def test_weights_validated(self):
        config = ClusterConfig.build(1, 3, 0, shards_per_group=2)
        with pytest.raises(ConfigError):
            config.with_lane_weights([(99, 1)])  # non-member
        with pytest.raises(ConfigError):
            config.with_lane_weights([(0, -1)])  # negative

    def test_gs3_s4_reweight_moves_the_double_lane(self):
        """The ROADMAP gs-3 case: the round-robin deal gives member 0 two
        of four lanes; a reweight can hand the extra lane elsewhere."""
        config = ClusterConfig.build(1, 3, 0, shards_per_group=4)
        assert [config.lane_leader(0, l) for l in range(4)].count(0) == 2
        rebalanced = config.with_lane_weights([(0, 1), (1, 2), (2, 1)])
        assert [rebalanced.lane_leader(0, l) for l in range(4)].count(0) == 1


class TestCommands:
    def test_apply_command_matches_transforms(self):
        config = ClusterConfig.build(2, 3, 0, shards_per_group=2)
        assert apply_command(config, JoinCmd(1, 50)).groups[1] == (3, 4, 5, 50)
        assert apply_command(config, LeaveCmd(4)).groups[1] == (3, 5)
        assert apply_command(
            config, SetLaneWeightsCmd(((0, 2),))
        ).member_weight(0) == 2
        assert apply_command(config, SetShardsCmd(1)).effective_shards == 1
        with pytest.raises(ConfigError):
            apply_command(config, SetShardsCmd(3))  # beyond capacity

    def test_is_config_command(self):
        assert is_config_command(JoinCmd(0, 9))
        assert not is_config_command("payload")
        assert not is_config_command(None)

    def test_plan_validation_replays_transforms(self):
        config = ClusterConfig.build(2, 3, 0)
        good = ReconfigPlan(events=[JoinSpec(0.1, 0), LeaveSpec(0.2, 1)])
        good.validate(config)
        bad = ReconfigPlan(events=[LeaveSpec(0.1, 99)])
        with pytest.raises(ConfigError):
            bad.validate(config)

    def test_reordered_concurrent_commands_reject_deterministically(self):
        """A command whose precondition fails against the *delivered*
        order (two concurrent commands arriving in an order the script
        never validated) is rejected at the delivery point — the epoch
        does not advance and the member keeps running — instead of a
        ConfigError escaping the delivery path and crashing the cluster."""
        from repro.types import make_message
        from tests.conftest import build_cluster

        config = ClusterConfig.build(2, 3, 0)
        sim, trace, tracker, members = build_cluster(WbCastProcess, config)
        proc = members[0]
        mgr = ReconfigManager.attach(proc, config)
        mgr.on_local_deliver(proc, make_message(99, 0, {0, 1}, LeaveCmd(4)))
        assert mgr.epoch == 1 and 4 not in mgr.config.all_members
        # The weights command names the already-departed member: rejected.
        mgr.on_local_deliver(
            proc, make_message(99, 1, {0, 1}, SetLaneWeightsCmd(((4, 2),)))
        )
        assert mgr.epoch == 1  # no epoch advance for the rejected command
        assert [type(c) for c in mgr.rejected] == [SetLaneWeightsCmd]
        assert not proc.retired  # the member keeps operating
        # A later valid command still applies normally.
        mgr.on_local_deliver(
            proc, make_message(99, 2, {0, 1}, SetLaneWeightsCmd(((0, 2),)))
        )
        assert mgr.epoch == 2 and mgr.config.member_weight(0) == 2


class TestMergeEpochEdges:
    """Watermark and head racing across an epoch flip, in either order."""

    def ts(self, t, g=0):
        return Timestamp(t, g)

    def _released(self, ops):
        q = LaneMergeQueue(2)
        out = []
        for op in ops:
            kind, args = op[0], op[1:]
            if kind == "push":
                q.push(*args)
            else:
                q.advance(*args)
            released, _ = q.drain()
            out.extend(released)
        return out

    def test_watermark_then_head_equals_head_then_watermark(self):
        """An old-epoch watermark and the new leader's head for the same
        lane release the same sequence whichever arrives first."""
        a = self._released(
            [
                ("push", 0, "m", self.ts(10, 0)),
                ("adv", 1, self.ts(12, 99)),      # old leader's watermark
                ("push", 1, "n", self.ts(13, 1)),  # new leader's head
                ("adv", 0, self.ts(13, 99)),      # lane 0 quiesces
            ]
        )
        b = self._released(
            [
                ("push", 0, "m", self.ts(10, 0)),
                ("push", 1, "n", self.ts(13, 1)),
                ("adv", 1, self.ts(12, 99)),
                ("adv", 0, self.ts(13, 99)),
            ]
        )
        assert a == b == ["m", "n"]

    def test_stale_watermark_below_head_is_inert(self):
        q = LaneMergeQueue(2)
        q.push(1, "n", self.ts(13, 1))
        q.advance(1, self.ts(5, 99))  # stale: far below the queued head
        q.push(0, "m", self.ts(14, 0))
        out, _ = q.drain()
        assert out == ["n"]  # m still gated by lane 1's head bound? no: head popped
        out2, blockers = q.drain()
        assert out2 == [] and blockers == [1]

    def test_pop_next_is_incremental_and_equals_drain(self):
        def build():
            q = LaneMergeQueue(2)
            q.push(0, "a", self.ts(1, 0))
            q.push(1, "b", self.ts(2, 1))
            q.push(0, "c", self.ts(3, 0))
            q.push(1, "d", self.ts(4, 1))
            return q

        q1, q2 = build(), build()
        drained, _ = q1.drain()
        popped = []
        while True:
            m, _ = q2.pop_next()
            if m is None:
                break
            popped.append(m)
        assert drained == popped

    def test_lane_snapshot_reflects_backlog(self):
        q = LaneMergeQueue(2)
        q.push(1, "x", self.ts(9, 1))
        assert [m for m, _ in q.lane_snapshot(1)] == ["x"]
        assert q.lane_snapshot(0) == []


class TestWeightedFlowControl:
    """PR 4's FIFO fairness regression, extended to weighted shares."""

    def test_weighted_sessions_get_proportional_admission(self):
        """Two overlapping ingress backlogs at weights 3:1: the admission
        (timestamp) order serves the heavy session three entries per round
        to the light session's one, and nobody starves."""
        from types import SimpleNamespace

        from repro.protocols.base import MulticastBatchMsg
        from repro.types import make_message
        from tests.conftest import build_cluster

        config = ClusterConfig.build(1, 3, 2)
        sim, trace, tracker, members = build_cluster(WbCastProcess, config)
        leader = members[0]
        heavy_pid, light_pid = config.clients
        for pid in config.clients:  # ack sinks for the fake sessions
            sim.add_process(
                pid, lambda rt: SimpleNamespace(on_message=lambda s, m: None)
            )
        heavy = MulticastBatchMsg(
            tuple(make_message(heavy_pid, i, {0}) for i in range(12)), None, 3
        )
        light = MulticastBatchMsg(
            tuple(make_message(light_pid, i, {0}) for i in range(12)), None, 1
        )
        leader.on_message(heavy_pid, heavy)  # engages DRR (weight 3)
        leader.on_message(light_pid, light)  # overlapping backlog
        sim.run(until=1.0)  # pace timer drains the rest
        stamped = sorted(
            (rec.lts, rec.mid[0])
            for rec in leader.records.values()
            if rec.lts is not None
        )
        order = [origin for _, origin in stamped]
        assert len(order) == 24  # weighted service, not starvation
        # The contended region interleaves 3:1: after the light batch
        # lands, each round admits three heavy + one light.
        contended = order[3:15]
        assert contended.count(heavy_pid) == 9 and contended.count(light_pid) == 3, order

    def test_default_weight_keeps_fifo_path(self):
        """weight=1 everywhere: the DRR queues never engage."""
        res = run_workload(
            WbCastProcess,
            num_groups=1,
            group_size=3,
            num_clients=2,
            messages_per_client=6,
            dest_k=1,
            seed=2,
            network=UniformDelay(0.0002, 2 * DELTA),
        )
        assert res.all_done
        leader = res.members[0]
        assert not leader._drr_queues and not leader._drr_order


class TestAdaptiveLaneProbe:
    def make_host(self):
        config = ClusterConfig.build(1, 3, 0, shards_per_group=2)
        from tests.conftest import build_cluster

        sim, trace, tracker, members = build_cluster(
            WbCastProcess,
            config,
            options=WbCastOptions(
                lane_probe_mode="adaptive",
                lane_probe_min=0.0001,
                lane_probe_max=0.01,
            ),
        )
        return sim, members[0]

    def test_probe_delay_tracks_inter_deliver_ewma(self):
        sim, host = self.make_host()
        from repro.types import make_message

        default = host.options.lane_probe_delay
        assert host.probe_delay(0) == default  # no samples yet
        gts = 0
        t = 0.0
        for i in range(6):
            t += 0.002
            sim.now = t
            gts += 1
            host.lane_delivered(0, make_message(50, i, {0}), Timestamp(gts, 0))
            host.merge.drain()
        est = host.probe_delay(0)
        assert est == pytest.approx(0.002, rel=0.01)
        # Clamped to the configured bounds.
        sim.now = t + 1.0
        host.lane_delivered(0, make_message(50, 99, {0}), Timestamp(gts + 1, 0))
        assert host.probe_delay(0) <= host.options.lane_probe_max

    def test_fixed_mode_unchanged(self):
        config = ClusterConfig.build(1, 3, 0, shards_per_group=2)
        from tests.conftest import build_cluster

        sim, trace, tracker, members = build_cluster(WbCastProcess, config)
        assert members[0].probe_delay(1) == members[0].options.lane_probe_delay

    def test_idle_lane_watermark_latency_tracks_estimate(self):
        """Conformance: with one busy and one idle lane, the blocked
        merge's probe fires after about the busy lane's estimate — the
        idle-lane watermark wait follows the adaptive delay, not the
        fixed default."""
        config = ClusterConfig.build(2, 3, 1, shards_per_group=2)
        res = run_workload(
            WbCastProcess,
            config=config,
            messages_per_client=24,
            dest_k=2,
            seed=9,
            network=UniformDelay(0.0002, 2 * DELTA),
            protocol_options=WbCastOptions(
                lane_probe_mode="adaptive",
                lane_probe_min=0.0001,
                lane_probe_max=0.01,
            ),
        )
        assert res.all_done
        from tests.conftest import checks_ok

        checks_ok(res)
        host = res.members[0]
        # The estimator actually ran on whichever lane carried traffic.
        assert any(e is not None for e in host._lane_gap_ewma)


class TestNoOpReconfiguration:
    def test_manager_attachment_is_inert_without_commands(self):
        """Attaching managers (no commands) must be byte-identical to not
        attaching them: same delivery sequences at every member."""
        sequences = {}
        for label, attach in (("bare", False), ("managed", True)):
            config = ClusterConfig.build(2, 3, 2)
            res = run_workload(
                WbCastProcess,
                config=config,
                messages_per_client=6,
                dest_k=2,
                seed=21,
                network=UniformDelay(0.0002, 2 * DELTA),
            )
            if attach:
                # Attach after the fact is meaningless; rerun with managers.
                from repro.sim import Simulator, Trace
                from repro.workload import DeliveryTracker, RandomKGroups
                from repro.workload.clients import ClosedLoopClient

                trace = Trace()
                sim = Simulator(
                    UniformDelay(0.0002, 2 * DELTA), seed=21, trace=trace
                )
                tracker = DeliveryTracker(config, sim=sim)
                trace.attach(tracker)
                members = {}
                for pid in config.all_members:
                    proc = sim.add_process(
                        pid, lambda rt, p=pid: WbCastProcess(p, config, rt)
                    )
                    ReconfigManager.attach(proc, config)
                    members[pid] = proc
                for i, pid in enumerate(config.clients):
                    ch = RandomKGroups(config, 2)
                    sim.add_process(
                        pid,
                        lambda rt, p=pid, c=ch: ClosedLoopClient(
                            p, config, rt, WbCastProcess, tracker, c,
                            ClientOptions(num_messages=6),
                        ),
                    )
                sim.run(until=5.0)
                sequences[label] = {
                    pid: tuple(trace.delivery_order_at(pid))
                    for pid in config.all_members
                }
            else:
                sequences[label] = {
                    pid: tuple(res.trace.delivery_order_at(pid))
                    for pid in config.all_members
                }
        assert sequences["bare"] == sequences["managed"]

    def test_noop_weights_flip_epoch_without_elections(self):
        """A no-op command (all-1 weights) activates epoch 1 at the same
        delivery index on every member, triggers no elections, and the
        shard-1 data delivery order matches the run without the command."""
        config = ClusterConfig.build(2, 3, 2, shards_per_group=2)
        plan = ReconfigPlan(
            events=[LaneWeightSpec(0.02, tuple((p, 1) for p in config.all_members))]
        )
        res = run_elastic_workload(
            WbCastProcess,
            config,
            plan,
            messages_per_client=8,
            network=UniformDelay(0.0002, 2 * DELTA),
            seed=31,
        )
        assert res.completed == res.expected
        bad = [c.describe() for c in res.check_elastic() if not c.ok]
        assert not bad, bad
        indices = set()
        for pid, mgr in res.managers.items():
            acts = mgr.activations
            assert [a.epoch for a in acts] == [1]
            indices.add(acts[0].delivery_index)
        assert len(indices) == 1, f"epoch flipped at differing indices {indices}"
        for pid in config.all_members:
            host = res.members[pid]
            for lane in host.lanes:
                assert lane.cballot.round == 0  # no handoff elections
