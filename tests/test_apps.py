"""Example applications: the partitioned KV store and the sharded bank."""

import random

import pytest

from repro.apps import BankCluster, KvStoreCluster
from repro.apps.kvstore import KvCommand, partition_of
from repro.apps.bank import shard_of
from repro.protocols import FastCastProcess, FtSkeenProcess, WbCastProcess


class TestKvStore:
    def test_single_key_put_get(self):
        store = KvStoreCluster(num_groups=3)
        store.put("alpha", 1)
        store.put("beta", {"nested": True})
        store.sync()
        assert store.get("alpha") == 1
        assert store.get("beta") == {"nested": True}

    def test_read_from_any_replica(self):
        store = KvStoreCluster(num_groups=2)
        store.put("k", "v")
        store.sync()
        for replica in range(3):
            assert store.get("k", replica_index=replica) == "v"

    def test_delete(self):
        store = KvStoreCluster()
        store.put("gone", 1)
        store.delete("gone")
        store.sync()
        assert store.get("gone") is None

    def test_multi_put_spans_partitions_atomically(self):
        store = KvStoreCluster(num_groups=3)
        # Find two keys living on different partitions.
        keys = [f"key{i}" for i in range(20)]
        a = keys[0]
        b = next(k for k in keys if partition_of(k, 3) != partition_of(a, 3))
        store.multi_put({a: "A", b: "B"})
        store.sync()
        assert store.get(a) == "A" and store.get(b) == "B"

    def test_last_writer_wins_within_total_order(self):
        store = KvStoreCluster(num_groups=2)
        for i in range(10):
            store.put("counter", i)
        store.sync()
        assert store.get("counter") == 9
        assert store.replicas_converged()

    def test_replicas_converge_under_mixed_load(self):
        store = KvStoreCluster(num_groups=3, seed=5)
        rng = random.Random(5)
        keys = [f"k{i}" for i in range(12)]
        for step in range(60):
            if rng.random() < 0.3:
                sample = rng.sample(keys, 2)
                store.multi_put({sample[0]: step, sample[1]: -step})
            else:
                store.put(rng.choice(keys), step)
        store.sync()
        assert store.replicas_converged()

    @pytest.mark.parametrize("protocol_cls", [FtSkeenProcess, FastCastProcess])
    def test_store_is_protocol_agnostic(self, protocol_cls):
        store = KvStoreCluster(num_groups=2, protocol_cls=protocol_cls)
        store.put("x", 1)
        store.multi_put({"x": 2, "y": 3})
        store.sync()
        assert store.get("x") == 2 and store.get("y") == 3
        assert store.replicas_converged()


class TestBank:
    OPENING = {f"acct{i}": 100 for i in range(8)}

    def test_transfer_moves_money(self):
        bank = BankCluster(self.OPENING, num_groups=3)
        bank.transfer("acct0", "acct1", 30)
        bank.settle()
        assert bank.balance("acct0") == 70
        assert bank.balance("acct1") == 130

    def test_conservation_under_random_transfers(self):
        bank = BankCluster(self.OPENING, num_groups=3, seed=11)
        rng = random.Random(11)
        accounts = list(self.OPENING)
        for _ in range(80):
            src, dst = rng.sample(accounts, 2)
            bank.transfer(src, dst, rng.randint(1, 50))
        bank.settle()
        assert bank.conserved()
        assert bank.replicas_converged()

    def test_cross_shard_transfers_exist_in_workload(self):
        """The interesting case: make sure some transfers really span
        two different shards (otherwise the test proves nothing)."""
        accounts = list(self.OPENING)
        pairs = [
            (a, b)
            for a in accounts
            for b in accounts
            if a != b and shard_of(a, 3) != shard_of(b, 3)
        ]
        assert pairs
        bank = BankCluster(self.OPENING, num_groups=3)
        a, b = pairs[0]
        bank.transfer(a, b, 10)
        bank.settle()
        assert bank.conserved()

    def test_chain_of_dependent_transfers(self):
        bank = BankCluster({"a": 100, "b": 0, "c": 0}, num_groups=3)
        bank.transfer("a", "b", 100)
        bank.transfer("b", "c", 100)
        bank.settle()
        assert bank.balance("a") == 0
        assert bank.balance("c") == 100
        assert bank.conserved()
