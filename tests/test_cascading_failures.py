"""Cascading and compound failure scenarios for the white-box protocol."""

import pytest

from repro.bench.harness import run_workload
from repro.config import ClusterConfig
from repro.protocols import WbCastProcess
from repro.protocols.wbcast import Status, WbCastOptions
from repro.sim import ConstantDelay, UniformDelay
from repro.sim.faults import CrashSpec, FaultPlan
from repro.workload import ClientOptions

from tests.conftest import DELTA, FAST_FD, checks_ok

OPTS = WbCastOptions(retry_interval=0.05, gc_interval=0.04)


class TestCascades:
    def test_two_successive_leaders_die_in_five_member_group(self):
        """f=2: the original leader and its successor both crash; the third
        leader finishes the workload."""
        config = ClusterConfig.build(2, 5, 2)
        res = run_workload(
            WbCastProcess, config=config, messages_per_client=10, dest_k=2,
            seed=21, network=ConstantDelay(DELTA), protocol_options=OPTS,
            client_options=ClientOptions(num_messages=10, retry_timeout=0.08),
            fault_plan=FaultPlan(crashes=[CrashSpec(0, 0.01), CrashSpec(1, 0.15)]),
            attach_fd=True, fd_options=FAST_FD, drain_grace=0.5, max_time=20.0,
        )
        assert res.all_done
        checks_ok(res)
        survivors = [p for pid, p in res.members.items()
                     if p.gid == 0 and res.sim.alive(pid)]
        leaders = [p for p in survivors if p.status is Status.LEADER]
        assert len(leaders) == 1
        assert leaders[0].pid in (2, 3, 4)

    def test_all_group_leaders_crash_simultaneously(self):
        config = ClusterConfig.build(3, 3, 2)
        plan = FaultPlan.crash_leaders(config, config.group_ids, at=0.012)
        res = run_workload(
            WbCastProcess, config=config, messages_per_client=8, dest_k=2,
            seed=22, network=ConstantDelay(DELTA), protocol_options=OPTS,
            client_options=ClientOptions(num_messages=8, retry_timeout=0.08),
            fault_plan=plan, attach_fd=True, fd_options=FAST_FD,
            drain_grace=0.5, max_time=20.0,
        )
        assert res.all_done
        checks_ok(res)

    def test_leader_and_follower_crash_in_same_group_is_fatal_only_beyond_f(self):
        """Crashing one leader plus a follower of a different group keeps
        every group at quorum; the run must complete."""
        config = ClusterConfig.build(2, 3, 2)
        res = run_workload(
            WbCastProcess, config=config, messages_per_client=8, dest_k=2,
            seed=23, network=ConstantDelay(DELTA), protocol_options=OPTS,
            client_options=ClientOptions(num_messages=8, retry_timeout=0.08),
            fault_plan=FaultPlan(crashes=[CrashSpec(0, 0.01), CrashSpec(4, 0.02)]),
            attach_fd=True, fd_options=FAST_FD, drain_grace=0.5, max_time=20.0,
        )
        assert res.all_done
        checks_ok(res)

    def test_crash_timed_inside_recovery_window(self):
        """The successor crashes while still RECOVERING (NEWLEADER sent,
        NEW_STATE not yet acknowledged)."""
        config = ClusterConfig.build(1, 5, 1)
        from tests.test_wbcast_normal import build

        sim, trace, tracker, procs, client = build(config)
        sim.crash_at(0, 0.01)
        sim.schedule(0.02, lambda: procs[1].recover())
        sim.crash_at(1, 0.02 + 1.5 * DELTA)  # mid-recovery
        sim.schedule(0.05, lambda: procs[2].recover())
        sim.run()
        assert procs[2].status is Status.LEADER
        followers = [procs[p] for p in (3, 4)]
        assert all(f.cballot == procs[2].cballot for f in followers)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_delays_with_paired_crashes(self, seed):
        config = ClusterConfig.build(3, 3, 3)
        res = run_workload(
            WbCastProcess, config=config, messages_per_client=6, dest_k=2,
            seed=seed, network=UniformDelay(0.0003, 0.0015),
            protocol_options=OPTS,
            client_options=ClientOptions(num_messages=6, retry_timeout=0.08),
            fault_plan=FaultPlan(
                crashes=[CrashSpec(0, 0.008 + seed * 0.003), CrashSpec(3, 0.02)]
            ),
            attach_fd=True, fd_options=FAST_FD, drain_grace=0.5, max_time=20.0,
        )
        assert res.all_done
        checks_ok(res)
