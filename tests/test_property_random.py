"""Randomized end-to-end property tests across all protocols.

Every run — whatever the protocol, delays, workload mix or crash schedule —
must satisfy the Section II specification.  These tests are the library's
main safety net; the scenarios are seeded and deterministic.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.harness import run_workload
from repro.checking.invariants import WbCastInvariantMonitor
from repro.config import ClusterConfig
from repro.protocols import (
    FastCastProcess,
    FtSkeenProcess,
    SequencerProcess,
    SkeenProcess,
    WbCastProcess,
)
from repro.protocols.wbcast import WbCastOptions
from repro.protocols.ftskeen import FtSkeenOptions
from repro.protocols.fastcast import FastCastOptions
from repro.protocols.sequencer import SequencerOptions
from repro.sim import UniformDelay
from repro.sim.faults import FaultPlan
from repro.workload import ClientOptions

from tests.conftest import FAST_FD, checks_ok

REPLICATED = [
    (WbCastProcess, WbCastOptions(retry_interval=0.05)),
    (FtSkeenProcess, FtSkeenOptions(retry_interval=0.05)),
    (FastCastProcess, FastCastOptions(retry_interval=0.05)),
    (SequencerProcess, SequencerOptions(retry_interval=0.05)),
]


@pytest.mark.parametrize("protocol_cls,options", REPLICATED, ids=lambda p: getattr(p, "__name__", ""))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_failure_free_random_delays(protocol_cls, options, seed):
    res = run_workload(
        protocol_cls, num_groups=3, group_size=3, num_clients=3,
        messages_per_client=8, dest_k=2, seed=seed,
        network=UniformDelay(0.0002, 0.002),
    )
    assert res.all_done
    checks_ok(res)


@pytest.mark.parametrize("seed", range(6))
def test_skeen_random_delays(seed):
    res = run_workload(
        SkeenProcess, num_groups=4, group_size=1, num_clients=3,
        messages_per_client=10, dest_k=2, seed=seed,
        network=UniformDelay(0.0002, 0.002),
    )
    assert res.all_done
    checks_ok(res)


@pytest.mark.parametrize("seed", range(8))
def test_wbcast_random_crashes(seed):
    """Random f-bounded crash schedules with the failure detector on and
    the message-level Fig. 6 invariants monitored throughout."""
    rng = random.Random(seed)
    config = ClusterConfig.build(3, 3, 3)
    plan = FaultPlan.random_crashes(config, rng, max_total=3, window=(0.005, 0.05))
    monitor = WbCastInvariantMonitor(config)
    res = run_workload(
        WbCastProcess, config=config, messages_per_client=8, dest_k=2,
        network=UniformDelay(0.0005, 0.002), seed=seed,
        protocol_options=WbCastOptions(retry_interval=0.04, gc_interval=0.03),
        client_options=ClientOptions(num_messages=8, retry_timeout=0.06),
        fault_plan=plan, attach_fd=True, fd_options=FAST_FD,
        monitors=[monitor], drain_grace=0.4, max_time=10.0,
    )
    assert res.all_done, f"completed {res.completed}/{res.expected}"
    checks_ok(res)


@pytest.mark.parametrize("seed", range(4))
def test_wbcast_random_crashes_with_state_probe(seed):
    """Same, with the Invariant 2 state probe inspecting live processes."""
    rng = random.Random(1000 + seed)
    config = ClusterConfig.build(2, 3, 2)
    plan = FaultPlan.random_crashes(config, rng, max_total=2, window=(0.005, 0.04))
    monitor = WbCastInvariantMonitor(config, processes={}, probe_interval=8)
    res = run_workload(
        WbCastProcess, config=config, messages_per_client=8, dest_k=2,
        network=UniformDelay(0.0005, 0.002), seed=seed,
        protocol_options=WbCastOptions(retry_interval=0.04),
        client_options=ClientOptions(num_messages=8, retry_timeout=0.06),
        fault_plan=plan, attach_fd=True, fd_options=FAST_FD,
        monitors=[monitor], drain_grace=0.4, max_time=10.0,
    )
    assert res.all_done
    checks_ok(res)


@given(
    seed=st.integers(0, 10**6),
    dest_k=st.integers(1, 3),
    num_clients=st.integers(1, 4),
)
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_wbcast_hypothesis_workloads(seed, dest_k, num_clients):
    """Hypothesis-driven workload shapes, failure-free."""
    res = run_workload(
        WbCastProcess, num_groups=3, group_size=3, num_clients=num_clients,
        messages_per_client=5, dest_k=dest_k, seed=seed,
        network=UniformDelay(0.0002, 0.003),
    )
    assert res.all_done
    checks_ok(res)


@given(seed=st.integers(0, 10**6))
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_mixed_destination_sizes(seed):
    """Clients with different fan-outs (1..all groups) in the same run."""
    from repro.workload import RandomKGroups

    rng = random.Random(seed)
    ks = [rng.randint(1, 3) for _ in range(3)]
    res = run_workload(
        WbCastProcess, num_groups=3, group_size=3, num_clients=3,
        messages_per_client=5, seed=seed,
        network=UniformDelay(0.0002, 0.002),
        chooser_factory=lambda config, i: RandomKGroups(config, ks[i]),
    )
    assert res.all_done
    checks_ok(res)
