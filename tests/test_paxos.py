"""The Multi-Paxos substrate used by the baseline protocols."""

import pytest

from repro.config import ClusterConfig
from repro.paxos import NOOP, PaxosReplica
from repro.paxos.messages import PaxosAccept, PaxosPrepare
from repro.protocols.base import ProtocolProcess
from repro.sim import ConstantDelay, Simulator
from repro.types import Ballot


class PaxosHost(ProtocolProcess):
    """Minimal host process embedding one replica and logging executions."""

    def __init__(self, pid, config, runtime, options=None):
        super().__init__(pid, config, runtime)
        self.executed = []
        self.replica = PaxosReplica(
            host=self,
            gid=0,
            members=config.members(0),
            quorum=config.quorum_size(0),
            on_execute=lambda idx, v: self.executed.append((idx, v)),
        )
        self._handlers = {}

    def on_message(self, sender, msg):
        self.replica.handle(sender, msg)


def build_group(group_size=3, delta=0.001, seed=0):
    config = ClusterConfig.build(1, group_size, 0)
    sim = Simulator(ConstantDelay(delta), seed=seed)
    hosts = {
        pid: sim.add_process(pid, lambda rt, p=pid: PaxosHost(p, config, rt))
        for pid in config.members(0)
    }
    return sim, config, hosts


class TestSteadyState:
    def test_initial_leader_is_lowest_pid(self):
        sim, config, hosts = build_group()
        assert hosts[0].replica.is_leader()
        assert not hosts[1].replica.is_leader()
        assert hosts[1].replica.leader_hint == 0

    def test_propose_commits_and_executes_everywhere(self):
        sim, config, hosts = build_group()
        sim.schedule(0.0, lambda: hosts[0].replica.propose("a"))
        sim.schedule(0.0, lambda: hosts[0].replica.propose("b"))
        sim.run()
        for host in hosts.values():
            assert host.executed == [(0, "a"), (1, "b")]

    def test_leader_executes_one_round_trip_after_propose(self):
        sim, config, hosts = build_group(delta=0.001)
        times = []
        hosts[0].replica.on_execute = lambda idx, v: times.append(sim.now)
        sim.schedule(0.0, lambda: hosts[0].replica.propose("x"))
        sim.run()
        assert times == [pytest.approx(0.002)]  # accept δ + accepted δ

    def test_followers_execute_one_delay_later(self):
        sim, config, hosts = build_group(delta=0.001)
        times = []
        hosts[1].replica.on_execute = lambda idx, v: times.append(sim.now)
        sim.schedule(0.0, lambda: hosts[0].replica.propose("x"))
        sim.run()
        assert times == [pytest.approx(0.003)]

    def test_non_leader_propose_refused(self):
        sim, config, hosts = build_group()
        assert not hosts[1].replica.propose("nope")

    def test_log_order_preserved_under_many_proposals(self):
        sim, config, hosts = build_group()
        values = [f"v{i}" for i in range(30)]
        sim.schedule(0.0, lambda: [hosts[0].replica.propose(v) for v in values])
        sim.run()
        assert [v for _, v in hosts[2].executed] == values


class TestRecovery:
    def test_new_leader_takes_over_after_crash(self):
        sim, config, hosts = build_group()
        sim.schedule(0.0, lambda: hosts[0].replica.propose("a"))
        sim.crash_at(0, 0.0025)  # after commit, before some followers learn
        sim.schedule(0.01, lambda: hosts[1].replica.start_recovery())
        sim.run()
        assert hosts[1].replica.is_leader()
        assert hosts[2].replica.leader_hint == 1

    def test_chosen_value_survives_leader_change(self):
        sim, config, hosts = build_group()
        sim.schedule(0.0, lambda: hosts[0].replica.propose("keep"))
        sim.crash_at(0, 0.0021)  # just after quorum acks reach the leader
        sim.schedule(0.01, lambda: hosts[1].replica.start_recovery())
        sim.schedule(0.02, lambda: hosts[1].replica.propose("next"))
        sim.run()
        assert [v for _, v in hosts[1].executed] == ["keep", "next"]
        assert [v for _, v in hosts[2].executed] == ["keep", "next"]

    def test_uncommitted_value_adopted_from_acceptor(self):
        """A value accepted by one survivor must be re-proposed, not lost."""
        sim, config, hosts = build_group()
        # Hand-deliver an accept only to host 1 (simulating a partial round).
        bal = Ballot(0, 0)
        sim.schedule(0.0, lambda: hosts[1].on_message(0, PaxosAccept(0, bal, 0, "orphan")))
        sim.crash_at(0, 0.001)
        sim.schedule(0.01, lambda: hosts[1].replica.start_recovery())
        sim.run()
        assert ("orphan" in [v for _, v in hosts[1].executed])
        assert ("orphan" in [v for _, v in hosts[2].executed])

    def test_gap_filled_with_noop(self):
        sim, config, hosts = build_group()
        bal = Ballot(0, 0)
        # Acceptor 1 holds slot 1 only; slot 0 was never accepted anywhere.
        sim.schedule(0.0, lambda: hosts[1].on_message(0, PaxosAccept(0, bal, 1, "late")))
        sim.crash_at(0, 0.001)
        sim.schedule(0.01, lambda: hosts[1].replica.start_recovery())
        sim.run()
        # NOOP fills slot 0 and is not surfaced to on_execute.
        assert [v for _, v in hosts[1].executed] == [(1, "late")[1]]
        assert hosts[1].executed[0][0] == 1

    def test_pending_proposals_drain_after_recovery(self):
        sim, config, hosts = build_group()
        sim.crash_at(0, 0.0001)
        sim.schedule(0.01, lambda: hosts[1].replica.start_recovery())
        sim.schedule(0.011, lambda: hosts[1].replica._pending.append("queued"))
        sim.schedule(0.02, lambda: hosts[1].replica.propose("direct"))
        sim.run()
        executed = [v for _, v in hosts[1].executed]
        assert "direct" in executed

    def test_higher_ballot_wins_dueling_candidates(self):
        sim, config, hosts = build_group()
        sim.crash_at(0, 0.0001)
        sim.schedule(0.01, lambda: hosts[1].replica.start_recovery())
        sim.schedule(0.01, lambda: hosts[2].replica.start_recovery())
        sim.run()
        leaders = [
            h for h in hosts.values() if sim.alive(h.pid) and h.replica.is_leader()
        ]
        # Ballot(1, 2) > Ballot(1, 1): host 2 wins; host 1 may retry later
        # but here both used round 1, so exactly one live leader emerges.
        assert [h.pid for h in leaders] == [2]

    def test_stale_prepare_ignored(self):
        sim, config, hosts = build_group()
        stale = PaxosPrepare(0, Ballot(-5, 1))
        sim.schedule(0.0, lambda: hosts[2].on_message(1, stale))
        sim.run()
        assert hosts[2].replica.promised == Ballot(0, 0)


class TestNoOp:
    def test_noop_is_singleton(self):
        from repro.paxos.messages import _NoOp

        assert _NoOp() is NOOP
        assert repr(NOOP) == "NOOP"

    def test_accept_mids_delegates_to_value(self):
        class Cmd:
            def mids(self):
                return [(7, 7)]

        msg = PaxosAccept(0, Ballot(0, 0), 0, Cmd())
        assert msg.mids() == [(7, 7)]
        assert PaxosAccept(0, Ballot(0, 0), 0, "plain").mids() == []
