"""Dynamic reconfiguration over the asyncio TCP runtime.

The same epoch machinery that the simulator battery verifies, on real
localhost sockets: a member boots, is admitted through the multicast
total order, installs its state transfer and serves reads of pre-join
messages; a leave retires its target and shrinks quorums; a lane
reweight hands lanes off through live elections.  Every scenario is
wall-clock-bounded so a wedged cluster fails instead of hanging.
"""

import asyncio

import pytest

from repro.config import ClusterConfig
from repro.net import LocalCluster
from repro.protocols import WbCastProcess
from repro.reconfig import JoinCmd, LeaveCmd, SetLaneWeightsCmd
from repro.reconfig.checking import check_elastic, epoch_chain, reference_manager

pytestmark = pytest.mark.net


async def wait_handles(handles, timeout=15.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while asyncio.get_event_loop().time() < deadline:
        if all(h.completed for h in handles):
            return True
        await asyncio.sleep(0.02)
    return False


def verify(cluster, config, quiescent=False):
    epochs = epoch_chain(config, reference_manager(cluster.managers))
    failed = [
        c.describe()
        for c in check_elastic(cluster.history(), epochs, quiescent=quiescent)
        if not c.ok
    ]
    assert not failed, failed
    return epochs


class TestNetReconfig:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_join_leave_reweight_over_tcp(self, shards):
        async def scenario():
            config = ClusterConfig.build(2, 3, 0, shards_per_group=shards)
            cluster = LocalCluster(
                config, WbCastProcess, attach_reconfig=True, num_sessions=2
            )
            await cluster.start()
            try:
                handles = [
                    cluster.multicast(frozenset({0, 1}), payload=f"pre-{i}",
                                      session=i % 2)
                    for i in range(8)
                ]
                joiner = await cluster.add_member(0)
                cmds = [cluster.submit_reconfig(JoinCmd(0, joiner))]
                handles += [
                    cluster.multicast(frozenset({0, 1}), session=i % 2)
                    for i in range(8)
                ]
                assert await cluster.wait_installed(joiner, timeout=10.0)
                leaver = config.members(1)[-1]
                cmds.append(cluster.submit_reconfig(LeaveCmd(leaver)))
                if shards > 1:
                    weights = tuple(
                        (p, 1) for p in config.all_members if p != leaver
                    ) + ((joiner, 2),)
                    cmds.append(
                        cluster.submit_reconfig(SetLaneWeightsCmd(weights))
                    )
                handles += [
                    cluster.multicast(frozenset({0, 1}), session=i % 2)
                    for i in range(8)
                ]
                assert await wait_handles(handles + cmds), (
                    f"{sum(h.completed for h in handles)}/{len(handles)} data, "
                    f"{sum(h.completed for h in cmds)}/{len(cmds)} cmds"
                )
                epochs = verify(cluster, config)
                final = epochs[-1]
                assert joiner in final.members(0)
                assert leaver not in final.all_members
                # The joiner serves reads of pre-join messages.
                jp = cluster.processes[joiner]
                for h in handles[:8]:
                    got = jp.read(h.message.mid)
                    assert got is not None and got.payload == h.message.payload
                # The leaver retires at its *own* activation, which may
                # trail the quorum's handle completions by a delivery.
                deadline = asyncio.get_event_loop().time() + 5.0
                while (
                    not cluster.processes[leaver].retired
                    and asyncio.get_event_loop().time() < deadline
                ):
                    await asyncio.sleep(0.02)
                assert cluster.processes[leaver].retired
            finally:
                await cluster.stop()

        asyncio.run(asyncio.wait_for(scenario(), timeout=60))

    def test_epoch_fence_refreshes_sessions(self):
        async def scenario():
            config = ClusterConfig.build(2, 3, 0, shards_per_group=2)
            cluster = LocalCluster(
                config, WbCastProcess, attach_reconfig=True, num_sessions=2
            )
            await cluster.start()
            try:
                warm = [cluster.multicast(frozenset({0, 1})) for _ in range(4)]
                assert await wait_handles(warm)
                leaver = config.members(1)[-1]
                cmd = cluster.submit_reconfig(LeaveCmd(leaver), session=0)
                assert await wait_handles([cmd])
                # Session 1 still believes epoch 0: its fresh submissions
                # are fenced with a refresh and then complete at epoch 1.
                assert cluster.sessions[1].config.epoch == 0
                late = [
                    cluster.multicast(frozenset({0, 1}), session=1)
                    for _ in range(8)
                ]
                assert await wait_handles(late)
                verify(cluster, config)
                # Both sessions converged on the new epoch (fence-taught).
                final_epoch = 1
                assert cluster.sessions[1].config.epoch == final_epoch
            finally:
                await cluster.stop()

        asyncio.run(asyncio.wait_for(scenario(), timeout=60))

    def test_joiner_participates_after_install(self):
        """Post-install the joiner acks, delivers and counts: killing one
        original member afterwards leaves a functioning majority that
        includes the joiner."""

        async def scenario():
            config = ClusterConfig.build(2, 3, 0, shards_per_group=2)
            cluster = LocalCluster(
                config, WbCastProcess, attach_reconfig=True
            )
            await cluster.start()
            try:
                joiner = await cluster.add_member(0)
                cmd = cluster.submit_reconfig(JoinCmd(0, joiner))
                assert await cluster.wait_installed(joiner, timeout=10.0)
                assert await wait_handles([cmd])
                handles = [
                    cluster.multicast(frozenset({0, 1})) for _ in range(6)
                ]
                assert await wait_handles(handles)
                # The joiner delivers the post-join traffic too (its merge
                # may trail the quorum by a probe round: poll briefly).
                want = {h.message.mid for h in handles}
                deadline = asyncio.get_event_loop().time() + 5.0
                while asyncio.get_event_loop().time() < deadline:
                    delivered = {
                        m.mid for pid, m, _ in cluster.deliveries if pid == joiner
                    }
                    if want <= delivered:
                        break
                    await asyncio.sleep(0.02)
                assert want <= delivered, want - delivered
                verify(cluster, config)
            finally:
                await cluster.stop()

        asyncio.run(asyncio.wait_for(scenario(), timeout=60))
