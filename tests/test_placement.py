"""Topology-aware lane & leader placement: the PR-7 battery.

Four layers, mirroring where the placement decisions live:

* **policy** — :class:`PlacementPolicy` is plain validated data; the unit
  tests pin its constructors, queries and membership evolution;
* **deal** — the site-affine lane deal in :mod:`repro.config`: every lane
  anchored at the client-heaviest common site, spread round-robin over
  that site's members (doubling up rather than spilling to a remote site,
  because one remotely-led lane taxes *every* delivery through the merge);
* **wire** — flat mode must be byte-identical to a policy-less config,
  and the tree ACCEPT overlay must be a pure dissemination optimisation
  (same deliveries, invariants intact, relays actually used);
* **floors** — the WAN fixes that make the deal win: pipelined
  LANE_ADVANCE rounds, commit-quorum floor evidence, and the stale
  watermark / stale client-hint defences (satellites 1 and 2).
"""

import random

import pytest

from repro.bench.harness import run_workload
from repro.bench.topologies import wan_site_map, wan_testbed
from repro.checking.total_order import (
    verify_lane_projections,
    verify_witness,
    witness_order,
)
from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.placement import LaneTimings, PlacementPolicy, lane_timings
from repro.protocols import WbCastProcess
from repro.protocols.base import SubmitAckMsg, SubmitRedirectMsg
from repro.protocols.wbcast import LaneMergeQueue, WbCastOptions
from repro.protocols.wbcast.messages import (
    LaneAdvanceAckMsg,
    LaneRelayMsg,
    LaneWatermarkMsg,
)
from repro.protocols.wbcast.protocol import TS_TIE_MAX
from repro.sim import UniformDelay
from repro.sim.network import WAN_ONE_WAY
from repro.types import Timestamp

from tests.conftest import DELTA, checks_ok
from tests.test_client_session import build_session

WAN_TIMINGS = lane_timings(WAN_ONE_WAY)


def replace_placement(config, policy):
    """A same-epoch copy of ``config`` carrying ``policy``."""
    import dataclasses

    return dataclasses.replace(config, placement=policy)


def wan_config(groups=2, group_size=3, clients=3, shards=2, **map_kw):
    """A sharded cluster with the WAN testbed's site-affine policy."""
    config = ClusterConfig.build(groups, group_size, clients, shards_per_group=shards)
    site_map = wan_site_map(config, **map_kw)
    return replace_placement(config, PlacementPolicy.site_affine(site_map)), site_map


def wan_lane_options(**overrides):
    """WbCast knobs for a site-affine WAN run (timing satellite)."""
    kw = dict(
        lane_probe_delay=WAN_TIMINGS.site_probe_delay,
        lane_advance_interval=WAN_TIMINGS.lane_advance_interval,
    )
    kw.update(overrides)
    return WbCastOptions(**kw)


# ---------------------------------------------------------------------------
# Policy unit battery
# ---------------------------------------------------------------------------


class TestPolicy:
    def test_rejects_unknown_mode_and_overlay(self):
        with pytest.raises(ConfigError):
            PlacementPolicy(mode="regional")
        with pytest.raises(ConfigError):
            PlacementPolicy(overlay="gossip")

    def test_rejects_conflicting_sites(self):
        with pytest.raises(ConfigError):
            PlacementPolicy(sites=((7, 0), (7, 1)))
        # A repeated consistent pair is harmless.
        p = PlacementPolicy(sites=((7, 0), (7, 0)))
        assert p.site_of(7) == 0

    def test_site_affine_constructor_and_queries(self):
        p = PlacementPolicy.site_affine({3: 1, 1: 0, 2: 2})
        assert p.mode == "site"
        assert p.overlay == "tree"
        assert p.sites == ((1, 0), (2, 2), (3, 1))
        assert p.site_of(2) == 2
        assert p.site_of(99) is None

    def test_common_sites(self):
        p = PlacementPolicy.site_affine({0: 0, 1: 1, 2: 2, 3: 0, 4: 1, 5: 7})
        assert p.common_sites([(0, 1, 2), (3, 4, 5)]) == (0, 1)
        # Unknown members contribute no sites.
        assert p.common_sites([(0, 1), (3, 99)]) == (0,)
        # Disjoint groups share nothing.
        assert p.common_sites([(0,), (5,)]) == ()
        assert p.common_sites([]) == ()

    def test_with_site_and_without(self):
        p = PlacementPolicy.site_affine({1: 0, 2: 1})
        moved = p.with_site(2, 0)
        assert moved.site_of(2) == 0 and moved.mode == "site"
        added = p.with_site(9, 2)
        assert added.site_of(9) == 2
        dropped = p.without(2)
        assert dropped.site_of(2) is None and dropped.site_of(1) == 0
        # Dropping an unknown pid is the identity.
        assert p.without(42) is p

    def test_flat_default_is_inert_in_the_deal(self):
        config = ClusterConfig.build(2, 3, 2, shards_per_group=2)
        flat = replace_placement(
            config, PlacementPolicy(sites=tuple(wan_site_map(config).items()))
        )
        assert flat.placement.mode == "flat"
        for gid in config.group_ids:
            for lane in range(2):
                assert flat.lane_leader(gid, lane) == config.lane_leader(gid, lane)
        assert flat.lane_site(0) is None


class TestLaneTimings:
    def test_wan_matrix_rules_of_thumb(self):
        t = lane_timings(WAN_ONE_WAY)
        assert t == LaneTimings(
            lane_probe_delay=0.065,  # worst one-way
            lane_advance_interval=0.015,  # best remote / 2
            min_linger=0.003,  # best remote / 10
            site_probe_delay=0.0015,  # best remote / 20
        )

    def test_single_site_fallback_scales_off_intra_site(self):
        t = lane_timings({}, intra_site=0.0005)
        assert t.lane_probe_delay == pytest.approx(0.001)
        assert t.lane_advance_interval == pytest.approx(0.005)
        assert t.min_linger == 0.0
        assert t.site_probe_delay == pytest.approx(0.001)
        # Degenerate zero-delay matrices still get a positive cadence.
        assert lane_timings({}).lane_probe_delay > 0


# ---------------------------------------------------------------------------
# Site-affine lane deal
# ---------------------------------------------------------------------------


class TestSiteAffineDeal:
    def test_all_lanes_anchor_at_the_client_site(self):
        config, site_map = wan_config(groups=3, shards=4)
        for lane in range(4):
            assert config.lane_site(lane) == 0  # clients live in DC 0
            for gid, leader in config.lane_leaders(lane).items():
                assert site_map[leader] == 0, (lane, gid)

    def test_anchor_follows_the_client_mass(self):
        config, site_map = wan_config(clients=5, client_site=2)
        assert config.lane_site(0) == 2
        for leader in config.lane_leaders(1).values():
            assert site_map[leader] == 2

    def test_anchor_ties_break_to_the_lowest_site(self):
        # A policy that knows only the members: no client mass anywhere.
        config = ClusterConfig.build(2, 3, 2, shards_per_group=2)
        members_only = {p: s for p, s in wan_site_map(config).items() if p < 100}
        members_only = {p: s for p, s in members_only.items() if p in set(config.all_members)}
        pinned = replace_placement(config, PlacementPolicy.site_affine(members_only))
        assert pinned.lane_site(0) == 0
        assert pinned.lane_site(1) == 0

    def test_lanes_round_robin_and_double_up_on_anchor_members(self):
        # group_size 5 puts members {0, 3} of each group in DC 0.
        config, _ = wan_config(group_size=5, shards=4)
        for gid in config.group_ids:
            m = config.members(gid)
            leaders = [config.lane_leader(gid, lane) for lane in range(4)]
            # Two anchor members, four lanes: alternate, then double up —
            # never spill to a member at a remote site.
            assert leaders == [m[0], m[3], m[0], m[3]]

    def test_weight_zero_members_lead_no_lanes(self):
        config, _ = wan_config(group_size=5, shards=2)
        m = config.members(0)
        weighted = config.with_lane_weights(
            [(p, 0 if p == m[0] else 1) for p in config.all_members]
        )
        weighted = replace_placement(weighted, config.placement)
        assert [weighted.lane_leader(0, lane) for lane in range(2)] == [m[3], m[3]]

    def test_groups_without_anchor_members_fall_back_to_legacy_deal(self):
        config = ClusterConfig.build(2, 3, 2, shards_per_group=2)
        site_map = wan_site_map(config)
        # Strip group 1 from the map: no common site remains.
        g1 = set(config.members(1))
        partial = PlacementPolicy.site_affine(
            {p: s for p, s in site_map.items() if p not in g1}
        )
        cfg = replace_placement(config, partial)
        assert cfg.lane_site(0) is None
        for gid in cfg.group_ids:
            for lane in range(2):
                assert cfg.lane_leader(gid, lane) == config.lane_leader(gid, lane)

    def test_lane_of_matches_the_flat_hash_under_one_anchor(self):
        # Every lane sits at the anchor, so site-aware routing degenerates
        # to the flat hash — ingress spread is untouched by the policy.
        config, _ = wan_config(clients=4, shards=4)
        flat = ClusterConfig.build(2, 3, 4, shards_per_group=4)
        for origin in config.clients:
            for seq in range(64):
                assert config.lane_of((origin, seq)) == flat.lane_of((origin, seq))

    def test_membership_changes_travel_through_the_policy(self):
        config, site_map = wan_config(group_size=3, shards=2)
        joiner = 900
        grown = config.with_join(0, joiner, site=0)
        assert grown.placement.site_of(joiner) == 0
        assert grown.epoch == config.epoch + 1
        # The joiner is an anchor candidate in its group's next deal.
        assert joiner in {grown.lane_leader(0, lane) for lane in range(2)}
        # A leave scrubs the site map with the membership.
        m0 = config.members(0)[0]
        shrunk = grown.with_leave(m0)
        assert shrunk.placement.site_of(m0) is None
        for lane in range(2):
            assert shrunk.lane_leader(0, lane) != m0


# ---------------------------------------------------------------------------
# Flat mode: byte-identical to a policy-less config
# ---------------------------------------------------------------------------


def delivery_sequences(res):
    return {
        pid: tuple(res.trace.delivery_order_at(pid)) for pid in res.config.all_members
    }


class TestFlatByteIdentical:
    @pytest.mark.parametrize("shards", [1, 2])
    @pytest.mark.parametrize("seed", [11, 23])
    def test_flat_policy_changes_nothing(self, shards, seed):
        runs = []
        for attach in (False, True):
            config = ClusterConfig.build(3, 3, 3, shards_per_group=shards)
            if attach:
                config = replace_placement(
                    config,
                    PlacementPolicy(sites=tuple(wan_site_map(config).items())),
                )
            res = run_workload(
                WbCastProcess,
                config=config,
                messages_per_client=6,
                dest_k=2,
                seed=seed,
                network=UniformDelay(0.0002, 2 * DELTA),
                attach_genuineness=True,
            )
            assert res.all_done
            checks_ok(res)
            runs.append(res)
        bare, flat = runs
        assert delivery_sequences(bare) == delivery_sequences(flat)
        assert len(bare.trace.sends) == len(flat.trace.sends)
        assert bare.completed == flat.completed


# ---------------------------------------------------------------------------
# Site-affine WAN conformance (the differential battery, satellite 4)
# ---------------------------------------------------------------------------


def run_wan(shards, seed, *, spread_clients=False, overlay="tree", groups=2, clients=3):
    config, site_map = wan_config(
        groups=groups, clients=clients, shards=shards, spread_clients=spread_clients
    )
    if overlay != config.placement.overlay:
        config = replace_placement(
            config,
            PlacementPolicy(mode="site", sites=config.placement.sites, overlay=overlay),
        )
    res = run_workload(
        WbCastProcess,
        config=config,
        messages_per_client=4,
        dest_k=2,
        seed=seed,
        network=wan_testbed(config, site_map=site_map),
        protocol_options=wan_lane_options(),
        attach_genuineness=True,
        drain_grace=0.3,
    )
    assert res.all_done, f"S={shards}: completed {res.completed}/{res.expected}"
    return res


class TestWanSiteAffineConformance:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_randomized_cross_lane_conformance(self, shards):
        seed = random.Random(shards).randrange(10_000)
        res = run_wan(shards, seed)
        checks_ok(res)
        h = res.history()
        order = witness_order(h)
        assert not verify_witness(h, order, quiescent=True)
        assert not verify_lane_projections(h, order)

    def test_remote_clients_still_conform(self):
        # Geo-spread clients submit from every DC; redirects and the
        # epoch-tagged leader map must keep routing coherent.
        res = run_wan(2, seed=5, spread_clients=True)
        checks_ok(res)
        h = res.history()
        assert not verify_lane_projections(h, witness_order(h))


class TestOverlayTree:
    def test_tree_uses_relays_and_direct_does_not(self):
        tree = run_wan(2, seed=3, overlay="tree", groups=3)
        direct = run_wan(2, seed=3, overlay="direct", groups=3)
        relayed = [s for s in tree.trace.sends if isinstance(s.msg, LaneRelayMsg)]
        assert relayed, "tree overlay never used a relay"
        assert not any(
            isinstance(s.msg, LaneRelayMsg) for s in direct.trace.sends
        )
        # Dissemination-only: both runs deliver the same message set and
        # both pass the total-order checks (timing, and hence timestamps,
        # may legitimately differ between overlays).
        checks_ok(tree)
        checks_ok(direct)
        mids = lambda res: {d.m.mid for d in res.trace.deliveries}
        assert mids(tree) == mids(direct)


# ---------------------------------------------------------------------------
# Floors: pipelined advance rounds, commit evidence, stale defences
# ---------------------------------------------------------------------------


def sharded_run(shards=2, seed=7):
    config = ClusterConfig.build(2, 3, 2, shards_per_group=shards)
    res = run_workload(
        WbCastProcess,
        config=config,
        messages_per_client=5,
        dest_k=2,
        seed=seed,
        network=UniformDelay(0.0002, 2 * DELTA),
        attach_genuineness=True,
    )
    assert res.all_done
    return res


def lane_leader_of(res, gid=0, lane=0):
    host = res.members[res.config.lane_leader(gid, lane)]
    proc = host.lanes[lane]
    assert proc.is_leader()
    return host, proc


class TestAdvanceRounds:
    def test_rounds_pipeline_and_quorum_subsumes_lower_rounds(self):
        res = sharded_run()
        host, leader = lane_leader_of(res)
        base = max(leader.clock, leader._advanced_floor, host.commit_floor) + 10
        leader._start_advance(base)
        leader._start_advance(base + 5)
        assert sorted(leader._advance_rounds) == [base, base + 5]
        # A round at or below an open round is a no-op, not a reset.
        leader._start_advance(base)
        assert leader._advance_rounds[base] == {leader.pid}
        # One follower ack completes the higher round (quorum of 2 in a
        # group of 3, counting the leader's own clock)...
        follower = next(p for p in leader.group if p != leader.pid)
        leader._on_lane_advance_ack(
            follower, LaneAdvanceAckMsg(leader.cballot, base + 5)
        )
        assert leader._advanced_floor == base + 5
        # ...and subsumes the lower in-flight round entirely.
        assert leader._advance_rounds == {}

    def test_ack_for_a_dropped_round_is_ignored(self):
        res = sharded_run()
        _, leader = lane_leader_of(res)
        floor = leader._advanced_floor
        leader._on_lane_advance_ack(
            leader.group[0], LaneAdvanceAckMsg(leader.cballot, floor + 999)
        )
        assert leader._advanced_floor == floor
        assert floor + 999 not in leader._advance_rounds

    def test_open_rounds_are_capped(self):
        res = sharded_run()
        host, leader = lane_leader_of(res)
        base = max(leader.clock, leader._advanced_floor, host.commit_floor) + 10
        for i in range(leader.MAX_ADVANCE_ROUNDS + 3):
            leader._start_advance(base + i)
        assert len(leader._advance_rounds) == leader.MAX_ADVANCE_ROUNDS


class TestCommitFloorEvidence:
    def test_commit_floor_tracks_the_last_delivered_gts(self):
        res = sharded_run()
        for pid in res.config.all_members:
            host = res.members[pid]
            applied = [
                l.max_delivered_gts.time
                for l in host.lanes
                if l.max_delivered_gts is not None
            ]
            assert applied, pid
            assert host.commit_floor == max(applied)

    def test_replicated_floor_uses_commit_evidence_capped_by_the_bound(self):
        res = sharded_run()
        host, leader = lane_leader_of(res)
        assert leader.options.speculative_clock
        cf = host.commit_floor
        assert cf > 0
        af = leader._advanced_floor
        # An unconstrained bound exposes the full commit evidence...
        assert leader._replicated_floor(Timestamp(cf + 100, TS_TIE_MAX)) == max(af, cf)
        # ...a tight bound caps it (a pending record below could deliver).
        capped = leader._replicated_floor(Timestamp(min(af, 1), TS_TIE_MAX))
        assert capped == af


class TestStaleWatermarks:
    def test_merge_floor_is_monotonic(self):
        q = LaneMergeQueue(2)
        q.advance(0, Timestamp(5, 3))
        q.advance(0, Timestamp(3, TS_TIE_MAX))  # regression attempt
        assert q._floor[0] == Timestamp(5, 3)
        q.advance(0, Timestamp(5, 4))
        assert q._floor[0] == Timestamp(5, 4)

    def test_watermark_assuming_an_unapplied_prefix_is_rejected(self):
        res = sharded_run()
        follower = next(
            pid
            for pid in res.config.members(0)
            if pid != res.config.lane_leader(0, 0)
        )
        host = res.members[follower]
        applied = host.lanes[0].max_delivered_gts
        assert applied is not None
        before = host.merge._floor[0]
        high = Timestamp(applied.time + 100, TS_TIE_MAX)
        ahead = Timestamp(applied.time + 1, applied.group)
        # The promise presumes deliveries this member never applied.
        host._on_lane_watermark(0, LaneWatermarkMsg(0, high, assumes=ahead))
        assert host.merge._floor[0] == before
        # The same promise over the applied prefix advances the floor.
        host._on_lane_watermark(0, LaneWatermarkMsg(0, high, assumes=applied))
        assert host.merge._floor[0] == high


# ---------------------------------------------------------------------------
# Client leader map: epoch-major freshness tags (satellite 2)
# ---------------------------------------------------------------------------


class TestClientLeaderTags:
    def build(self, shards=2):
        config = ClusterConfig.build(2, 3, 1, shards_per_group=shards)
        sim, trace, tracker, procs, session = build_session(config)
        return config, sim, session

    def test_newer_tag_wins_and_stale_hints_are_ignored(self):
        config, sim, session = self.build()
        m = config.members(0)
        fresh = (1 << 32) | 5
        session._on_submit_ack(m[1], SubmitAckMsg(0, m[1], (), lane=1, tag=fresh))
        assert session.lane_leader[(0, 1)] == m[1]
        # A deposed leader's straggler redirect carries an older tag.
        session._on_submit_redirect(
            m[2], SubmitRedirectMsg(0, m[2], (), lane=1, tag=(1 << 32) | 3)
        )
        assert session.lane_leader[(0, 1)] == m[1]
        assert session._leader_tags[(0, 1)] == fresh
        # An equal tag is fresh knowledge (same ballot, later word).
        session._on_submit_redirect(
            m[0], SubmitRedirectMsg(0, m[0], (), lane=1, tag=fresh)
        )
        assert session.lane_leader[(0, 1)] == m[0]

    def test_epoch_major_tags_outrank_any_older_epoch(self):
        config, sim, session = self.build()
        m = config.members(0)
        session._on_submit_ack(
            m[1], SubmitAckMsg(0, m[1], (), lane=0, tag=(0 << 32) | 999)
        )
        session._on_submit_ack(m[2], SubmitAckMsg(0, m[2], (), lane=0, tag=1 << 32))
        assert session.lane_leader[(0, 0)] == m[2]

    def test_departed_leader_fallback_is_epoch_fresh(self):
        config, sim, session = self.build()
        old = config.lane_leader(0, 0)
        session._on_submit_ack(old, SubmitAckMsg(0, old, (), lane=0, tag=7))
        assert session.lane_leader[(0, 0)] == old
        shrunk = config.with_leave(old)
        session.update_config(shrunk)
        fallback = shrunk.lane_leader(0, 0)
        assert session.lane_leader[(0, 0)] == fallback
        assert session._leader_tags[(0, 0)] == shrunk.epoch << 32
        # The departed leader's straggler ack (old epoch's tag) loses.
        session._on_submit_ack(old, SubmitAckMsg(0, old, (), lane=0, tag=42))
        assert session.lane_leader[(0, 0)] == fallback
