"""White-box invariant monitors (Fig. 6): positive and negative tests."""

import pytest

from repro.bench.harness import run_workload
from repro.checking.invariants import WbCastInvariantMonitor
from repro.config import ClusterConfig
from repro.errors import InvariantViolation
from repro.protocols import WbCastProcess
from repro.protocols.wbcast import WbCastOptions
from repro.protocols.wbcast.messages import AcceptMsg, DeliverMsg
from repro.sim import ConstantDelay
from repro.sim.faults import CrashSpec, FaultPlan
from repro.sim.trace import SendRecord
from repro.types import Ballot, Timestamp, make_message
from repro.workload import ClientOptions

from tests.conftest import DELTA, FAST_FD, checks_ok


def send(src, dst, msg):
    return SendRecord(0.0, 0.001, src, dst, msg)


@pytest.fixture
def config():
    return ClusterConfig.build(2, 3, 1)


@pytest.fixture
def monitor(config):
    return WbCastInvariantMonitor(config)


M = make_message(6, 0, {0, 1})
B0 = Ballot(0, 0)


class TestNegativeDetection:
    """Feed hand-crafted violating traffic; the monitor must catch it."""

    def test_invariant1_two_timestamps_same_ballot(self, monitor):
        monitor.on_send(send(0, 1, AcceptMsg(M, 0, B0, Timestamp(1, 0))))
        with pytest.raises(InvariantViolation, match="Invariant 1"):
            monitor.on_send(send(0, 2, AcceptMsg(M, 0, B0, Timestamp(2, 0))))

    def test_invariant1_same_timestamp_ok(self, monitor):
        monitor.on_send(send(0, 1, AcceptMsg(M, 0, B0, Timestamp(1, 0))))
        monitor.on_send(send(0, 2, AcceptMsg(M, 0, B0, Timestamp(1, 0))))

    def test_invariant3a_lts_disagreement_within_group(self, monitor):
        d1 = DeliverMsg(M, B0, Timestamp(1, 0), Timestamp(5, 1))
        d2 = DeliverMsg(M, B0, Timestamp(2, 0), Timestamp(5, 1))
        monitor.on_send(send(0, 1, d1))
        with pytest.raises(InvariantViolation, match="Invariant 3a"):
            monitor.on_send(send(0, 2, d2))

    def test_invariant3b_gts_disagreement_across_groups(self, monitor):
        d1 = DeliverMsg(M, B0, Timestamp(1, 0), Timestamp(5, 1))
        d2 = DeliverMsg(M, Ballot(0, 3), Timestamp(5, 1), Timestamp(6, 1))
        monitor.on_send(send(0, 1, d1))
        with pytest.raises(InvariantViolation, match="Invariant 3b"):
            monitor.on_send(send(3, 4, d2))

    def test_invariant4_shared_gts_between_messages(self, monitor):
        other = make_message(6, 1, {0, 1})
        d1 = DeliverMsg(M, B0, Timestamp(1, 0), Timestamp(5, 1))
        d2 = DeliverMsg(other, B0, Timestamp(2, 0), Timestamp(5, 1))
        monitor.on_send(send(0, 1, d1))
        with pytest.raises(InvariantViolation, match="Invariant 4"):
            monitor.on_send(send(0, 2, d2))

    def test_different_ballots_may_propose_differently(self, monitor):
        monitor.on_send(send(0, 1, AcceptMsg(M, 0, B0, Timestamp(1, 0))))
        monitor.on_send(send(1, 2, AcceptMsg(M, 0, Ballot(1, 1), Timestamp(9, 0))))


class TestLiveRuns:
    def test_clean_run_raises_nothing(self, config):
        mon = WbCastInvariantMonitor(config)
        res = run_workload(WbCastProcess, config=config, messages_per_client=10,
                           dest_k=2, network=ConstantDelay(DELTA), seed=1,
                           monitors=[mon])
        assert res.all_done
        stats = mon.stats()
        assert stats["proposals"] > 0 and stats["delivers_checked"] > 0

    def test_state_probe_during_failover(self):
        config = ClusterConfig.build(2, 3, 2)
        mon = WbCastInvariantMonitor(config, processes={}, probe_interval=4)
        res = run_workload(
            WbCastProcess, config=config, messages_per_client=10, dest_k=2,
            network=ConstantDelay(DELTA), seed=5,
            protocol_options=WbCastOptions(retry_interval=0.05),
            client_options=ClientOptions(num_messages=10, retry_timeout=0.08),
            fault_plan=FaultPlan(crashes=[CrashSpec(0, 0.0105)]),
            attach_fd=True, fd_options=FAST_FD,
            monitors=[mon], drain_grace=0.3,
        )
        assert res.all_done
        checks_ok(res)
        assert mon.stats()["established_premises"] > 0

    def test_ablation_without_speculation_still_correct(self, config):
        """Disabling the white-box clock trick costs latency, not safety."""
        mon = WbCastInvariantMonitor(config)
        res = run_workload(
            WbCastProcess, config=config, messages_per_client=10, dest_k=2,
            network=ConstantDelay(DELTA), seed=2,
            protocol_options=WbCastOptions(speculative_clock=False),
            monitors=[mon],
        )
        assert res.all_done
        checks_ok(res)
