"""The telemetry subsystem: registry, spans, profiling, and the
disabled-mode byte-identity guarantee.

Three contracts matter here:

* the **registry** is a plain get-or-create instrument store whose label
  handling, bucket maths and exports behave (and whose null twin is a
  true no-op);
* **message-lifecycle spans** stamped through the real pipeline form a
  complete monotone submit -> ... -> deliver chain on both runtimes, and
  the telescoping stage legs attribute 100% of end-to-end latency;
* a run with observability **disabled is byte-identical** to one that
  never heard of the subsystem — obs is observation only, never a
  participant.
"""

import asyncio
import json

import pytest

from repro.bench.harness import run_workload
from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.obs import (
    NULL_REGISTRY,
    LATENCY_BUCKETS,
    MetricsRegistry,
    ObsOptions,
    PhaseProfiler,
    SpanRecorder,
    STAGES,
    Telemetry,
    render_spans_report,
)
from repro.protocols import WbCastProcess


# -- registry -----------------------------------------------------------------


class TestRegistry:
    def test_counter_get_or_create_and_label_order(self):
        reg = MetricsRegistry()
        a = reg.counter("requests_total", group=1, lane=0)
        b = reg.counter("requests_total", lane=0, group=1)
        assert a is b  # label order must not mint a second series
        a.inc()
        b.inc(2)
        assert reg.counter_total("requests_total", group=1) == 3

    def test_counter_total_superset_match(self):
        reg = MetricsRegistry()
        reg.counter("hits", tenant="a", op="read").inc(2)
        reg.counter("hits", tenant="a", op="write").inc(3)
        reg.counter("hits", tenant="b", op="read").inc(5)
        assert reg.counter_total("hits", tenant="a") == 5
        assert reg.counter_total("hits", op="read") == 7
        assert reg.counter_total("hits") == 10
        assert reg.counter_total("hits", tenant="c") == 0

    def test_gauge_tracks_high_water(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", pid=1)
        g.set(4)
        g.set(9)
        g.set(2)
        assert g.value == 2 and g.max == 9

    def test_histogram_buckets_and_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.002, 0.002, 0.05, 5.0):
            h.observe(v)
        assert h.count == 5
        assert h.counts == [1, 2, 1, 1]  # last slot is +Inf overflow
        assert h.sum == pytest.approx(5.0545)
        assert h.quantile(0.5) == 0.01
        assert h.mean == pytest.approx(5.0545 / 5)

    def test_histogram_default_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("span_stage_seconds", stage="commit")
        assert h.bounds == sorted(LATENCY_BUCKETS)

    def test_render_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c", x=1).inc(7)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = json.loads(reg.render_json())
        assert snap["counters"][0]["value"] == 7
        assert snap["gauges"][0]["value"] == 1.5
        assert snap["histograms"][0]["count"] == 1

    def test_render_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", code=200).inc(3)
        reg.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = reg.render_prometheus()
        assert '# TYPE reqs_total counter' in text
        assert 'reqs_total{code="200"} 3' in text
        # Cumulative buckets plus the +Inf / sum / count triple.
        assert 'lat_seconds_bucket{le="0.1"} 0' in text
        assert 'lat_seconds_bucket{le="1.0"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert 'lat_seconds_count 1' in text

    def test_null_registry_is_inert(self):
        NULL_REGISTRY.counter("anything", a=1).inc(5)
        NULL_REGISTRY.gauge("g").set(3)
        NULL_REGISTRY.histogram("h").observe(1.0)
        assert NULL_REGISTRY.counters() == []
        assert NULL_REGISTRY.counter_total("anything") == 0
        assert NULL_REGISTRY.snapshot() == {
            "counters": [], "gauges": [], "histograms": []
        }
        assert not NULL_REGISTRY.enabled


# -- options / telemetry spine ------------------------------------------------


class TestOptions:
    def test_invalid_export_rejected(self):
        with pytest.raises(ConfigError):
            ObsOptions(enabled=True, export="xml")

    def test_disabled_options_create_no_telemetry(self):
        assert Telemetry.create(None) is None
        assert Telemetry.create(ObsOptions(enabled=False)) is None
        assert Telemetry.create(ObsOptions(enabled=True)) is not None

    def test_config_rejects_non_obsoptions(self):
        with pytest.raises(ConfigError):
            ClusterConfig.build(2, 3, 1, obs={"enabled": True})


# -- span recorder units ------------------------------------------------------


class TestSpanRecorder:
    def test_first_stamp_wins(self):
        spans = SpanRecorder(now=lambda: 0.0)
        spans.stamp((0, 0), "submit", t=1.0)
        spans.stamp((0, 0), "submit", t=5.0)
        assert spans.records[(0, 0)]["submit"] == 1.0

    def test_complete_monotone_chain(self):
        spans = SpanRecorder(now=lambda: 0.0)
        times = {"submit": 0.0, "admit": 1.0, "accept_quorum": 2.0,
                 "commit": 3.0, "merge_release": 4.0, "deliver": 5.0}
        for stage, t in times.items():
            spans.stamp((1, 1), stage, t=t)
        assert spans.complete((1, 1))
        assert spans.e2e((1, 1)) == 5.0
        # Telescoping legs cover the whole window.
        assert spans.attributed_fraction((1, 1)) == pytest.approx(1.0)

    def test_top_slowest_orders_by_e2e(self):
        spans = SpanRecorder(now=lambda: 0.0)
        for i, e2e in enumerate((3.0, 1.0, 2.0)):
            spans.stamp((i, 0), "submit", t=0.0)
            spans.stamp((i, 0), "deliver", t=e2e)
        assert spans.top_slowest(2) == [(0, 0), (2, 0)]

    def test_report_renders(self):
        spans = SpanRecorder(now=lambda: 0.0)
        spans.stamp((0, 0), "submit", t=0.0)
        spans.stamp((0, 0), "admit", t=0.25)
        spans.stamp((0, 0), "deliver", t=1.0)
        text = render_spans_report(spans, k=5)
        assert "attributed" in text and "admit" in text

    def test_stage_names_are_the_documented_pipeline(self):
        assert STAGES == (
            "submit", "admit", "accept_quorum", "commit",
            "merge_release", "deliver", "apply", "read_serve",
        )


# -- lifecycle conformance on the simulator -----------------------------------


def _sim_run(shards: int = 1, **overrides):
    config = ClusterConfig.build(
        2, 3, 2, shards_per_group=shards, obs=ObsOptions(enabled=True)
    )
    return run_workload(
        WbCastProcess,
        config=config,
        messages_per_client=6,
        dest_k=2,
        seed=3,
        **overrides,
    )


class TestSimSpans:
    @pytest.mark.parametrize("shards", [1, 2], ids=["unsharded", "sharded"])
    def test_every_delivered_message_has_complete_chain(self, shards):
        result = _sim_run(shards=shards)
        spans = result.telemetry.spans
        delivered = spans.delivered_mids()
        assert len(delivered) == result.completed
        for mid in delivered:
            assert spans.complete(mid), spans.chain(mid)
            stages = dict(spans.chain(mid))
            # The full ordering pipeline, including the merge release leg
            # (the DeliveryQueue pop unsharded, the lane merge sharded).
            for stage in ("submit", "admit", "accept_quorum",
                          "commit", "merge_release", "deliver"):
                assert stage in stages, (mid, stages)
            assert spans.attributed_fraction(mid) == pytest.approx(1.0)
        assert spans.non_monotone == []

    def test_stage_histograms_fed_on_deliver(self):
        result = _sim_run()
        reg = result.telemetry.registry
        e2e = reg.histograms("span_e2e_seconds")
        assert e2e and e2e[0].count == result.completed
        commit_legs = [
            h for h in reg.histograms("span_stage_seconds")
            if dict(h.labels)["stage"] == "commit"
        ]
        assert commit_legs and commit_legs[0].count == result.completed

    def test_protocol_counters_match_workload(self):
        result = _sim_run()
        reg = result.telemetry.registry
        # Each message is admitted and committed once per destination lane.
        assert reg.counter_total("wbcast_admissions_total") >= result.completed
        assert reg.counter_total("wbcast_commits_total") >= result.completed

    def test_process_stats_swept(self):
        result = _sim_run()
        reg = result.telemetry.registry
        released = reg.gauges("ordering_released_total")
        assert released and sum(g.value for g in released) > 0

    def test_lane_merge_counters_on_sharded_run(self):
        result = _sim_run(shards=2)
        reg = result.telemetry.registry
        assert sum(g.value for g in reg.gauges("lane_merge_released_total")) > 0
        assert reg.counter_total("lane_probes_total") >= 0  # series exists API-wise


# -- disabled-mode byte-identity ----------------------------------------------


class TestByteIdentity:
    def test_obs_never_perturbs_the_run(self):
        """The differential gate: same seed, obs off vs on, identical
        virtual-time behaviour event for event."""
        base = run_workload(
            WbCastProcess, config=ClusterConfig.build(2, 3, 2),
            messages_per_client=6, dest_k=2, seed=11,
        )
        instrumented = run_workload(
            WbCastProcess,
            config=ClusterConfig.build(2, 3, 2, obs=ObsOptions(enabled=True)),
            messages_per_client=6, dest_k=2, seed=11,
        )
        assert base.telemetry is None
        assert instrumented.telemetry is not None
        a, b = base.trace, instrumented.trace
        assert [(r.t, r.pid, r.m.mid) for r in a.deliveries] == [
            (r.t, r.pid, r.m.mid) for r in b.deliveries
        ]
        assert [(r.t, r.pid, r.m.mid) for r in a.multicasts] == [
            (r.t, r.pid, r.m.mid) for r in b.multicasts
        ]
        assert a.send_count == b.send_count
        assert base.sim.now == instrumented.sim.now


# -- TCP runtime --------------------------------------------------------------


@pytest.mark.net
class TestNetObs:
    def test_spans_and_clean_codec_on_tcp_cluster(self):
        """One LocalCluster run covers the wall-clock half of the span
        contract and the codec-health satellite: every delivered message
        traces a complete monotone chain, and no registered hot-path
        message type fell back to pickle."""
        from repro.net import LocalCluster
        from repro.net.codec import CODEC_STATS

        config = ClusterConfig.build(2, 3, 1)
        base = CODEC_STATS.snapshot()

        async def scenario():
            cluster = LocalCluster(
                config, WbCastProcess, seed=5, obs=ObsOptions(enabled=True)
            )
            await cluster.start()
            try:
                handles = [
                    cluster.multicast(frozenset({0, 1})) for _ in range(8)
                ]
                deadline = asyncio.get_event_loop().time() + 20.0
                while not all(h.completed for h in handles):
                    if asyncio.get_event_loop().time() > deadline:
                        raise AssertionError("cluster run timed out")
                    await asyncio.sleep(0.01)
            finally:
                await cluster.stop()
            return cluster

        cluster = asyncio.run(scenario())
        spans = cluster.telemetry.spans
        delivered = spans.delivered_mids()
        assert len(delivered) >= 8
        for mid in delivered:
            assert spans.complete(mid), spans.chain(mid)
        # Satellite: the hot path must never hit the pickle fallback for
        # registered message types (new tags get caught right here).
        assert CODEC_STATS.hot_path_fallbacks(base) == {}
        # Transport gauges were wired into every node transport.
        reg = cluster.telemetry.registry
        assert reg.gauges("transport_queue_depth")
        assert reg.histograms("transport_coalesce_frames")
        # Codec deltas were folded into the registry at stop().
        assert reg.gauges("codec_corrupt_frames_total")

    def test_corrupt_frame_drop_records_peer(self):
        """Garbage on the wire drops the connection and records the
        offending peer's socket identity plus a labelled counter."""
        from repro.net.transport import NodeTransport

        async def scenario():
            received = []
            transport = NodeTransport(
                1,
                addr_of=lambda pid: ("127.0.0.1", 0),
                on_message=lambda s, m: received.append((s, m)),
                registry=MetricsRegistry(),
            )
            port = await transport.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            # A length prefix far beyond MAX_FRAME: an oversized frame.
            writer.write((1 << 31).to_bytes(4, "big") + b"\xde\xad\xbe\xef")
            await writer.drain()
            for _ in range(200):
                if transport.frame_drops:
                    break
                await asyncio.sleep(0.01)
            writer.close()
            await transport.close()
            return transport, received

        transport, received = asyncio.run(scenario())
        assert received == []
        assert len(transport.frame_drops) == 1
        drop = transport.frame_drops[0]
        assert drop["peer"][0] == "127.0.0.1"  # (host, port) socket identity
        assert drop["error"]
        reg = transport._registry
        assert reg.counter_total("transport_frame_drops_total", pid=1) == 1


# -- serving SLO accounting ---------------------------------------------------


class TestServingSlo:
    def test_breach_counters_and_histograms(self):
        """Tenants with an unmeetable write SLO breach on every write;
        the always-on session tallies and the registry agree."""
        from repro.serving import TenantSpec, run_serving_workload

        config = ClusterConfig.build(2, 3, 2, obs=ObsOptions(enabled=True))
        result = run_serving_workload(
            WbCastProcess,
            config=config,
            num_sessions=2,
            ops_per_session=12,
            read_ratio=0.5,
            seed=7,
            tenants=(
                # Writes pay ordering round trips (>= several ms of
                # virtual time) so a 1 ns target breaches every time;
                # reads served locally stay under a generous 10 s one.
                TenantSpec("gold", weight=2, read_slo=10.0, write_slo=1e-9),
                TenantSpec("best", weight=1, read_slo=10.0, write_slo=1e-9),
            ),
        )
        sessions = result.sessions
        writes = sum(s.write_ops for s in sessions)
        assert writes > 0
        assert sum(s.write_slo_breaches for s in sessions) == writes
        assert sum(s.read_slo_breaches for s in sessions) == 0
        reg = result.telemetry.registry
        assert reg.counter_total("tenant_slo_breaches_total", op="write") == writes
        assert reg.counter_total("tenant_slo_breaches_total", op="read") == 0
        per_tenant = reg.histograms("tenant_write_latency_seconds")
        assert per_tenant and sum(h.count for h in per_tenant) == writes

    def test_no_slo_means_no_breaches(self):
        from repro.serving import TenantSpec, run_serving_workload

        result = run_serving_workload(
            WbCastProcess,
            config=ClusterConfig.build(2, 3, 2),
            num_sessions=2,
            ops_per_session=8,
            read_ratio=0.5,
            seed=7,
            tenants=(TenantSpec("t0"), TenantSpec("t1")),
        )
        assert sum(s.write_slo_breaches for s in result.sessions) == 0
        assert sum(s.read_slo_breaches for s in result.sessions) == 0


# -- profiler -----------------------------------------------------------------


class TestPhaseProfiler:
    def test_phases_attribute_cpu(self, tmp_path):
        prof = PhaseProfiler(top=5)

        def burn():
            return sum(i * i for i in range(20_000))

        with prof.phase("alpha"):
            burn()
        with prof.phase("beta"):
            burn()
        with prof.phase("alpha"):  # re-entry folds into the same phase
            burn()
        cpu = prof.phase_cpu()
        assert set(cpu) == {"alpha", "beta"}
        assert cpu["alpha"] >= 0 and cpu["beta"] >= 0
        report = prof.report()
        assert "alpha" in report and "beta" in report
        out = tmp_path / "profile.txt"
        prof.write(str(out))
        assert "alpha" in out.read_text()
