"""Fault injection for leader-side batching (recovery × batching).

Batches are volatile transport aggregation; the durable protocol state
stays per message.  These tests crash leaders *mid-batch* — while ACCEPT
batches are buffered or in flight — and assert the recovery contract:
the committed prefix of any in-flight batch survives leader failover,
nothing is delivered twice, and nothing a client keeps retrying is lost.
"""

import random

import pytest

from repro.bench.harness import run_workload
from repro.config import BatchingOptions, ClusterConfig
from repro.protocols import WbCastProcess
from repro.protocols.wbcast import AcceptBatchMsg, Phase, Status, WbCastOptions
from repro.sim import ConstantDelay, UniformDelay
from repro.sim.faults import FaultPlan
from repro.types import make_message
from repro.workload import ClientOptions

from tests.conftest import DELTA, FAST_FD, checks_ok
from tests.test_wbcast_normal import build, submit
from tests.test_wbcast_recovery import checks_from_trace

#: Aggressive batching so crashes reliably land while batches exist.
BATCHED = BatchingOptions(max_batch=8, max_linger=2 * DELTA, pipeline_depth=4)
RETRYING = WbCastOptions(retry_interval=0.05, batching=BATCHED)
CLIENT_RETRY = ClientOptions(num_messages=8, retry_timeout=0.08, window=4)


def run_with_crashes(seed, fault_plan_for, num_groups=3, clients=3):
    """Batched workload under a fault plan; full black-box contract."""
    config = ClusterConfig.build(num_groups, 3, clients)
    plan = fault_plan_for(config)
    res = run_workload(
        WbCastProcess,
        config=config,
        messages_per_client=CLIENT_RETRY.num_messages,
        dest_k=2,
        seed=seed,
        network=ConstantDelay(DELTA),
        protocol_options=RETRYING,
        client_options=CLIENT_RETRY,
        fault_plan=plan,
        attach_fd=True,
        fd_options=FAST_FD,
        drain_grace=0.4,
    )
    assert res.all_done, f"{res.completed}/{res.expected} under {plan.crashes}"
    checks_ok(res)  # total order + integrity (no dup) + termination (no loss)
    return res


class TestLeaderCrashMidBatch:
    def test_one_leader_crashes_mid_batch(self):
        """Crash g0's leader while its pipeline is busy; the failover must
        preserve every committed batch prefix and lose/dup nothing."""
        run_with_crashes(
            seed=21, fault_plan_for=lambda c: FaultPlan.crash_leaders(c, [0], at=0.004)
        )

    def test_two_leaders_crash_mid_batch(self):
        run_with_crashes(
            seed=23,
            fault_plan_for=lambda c: FaultPlan.crash_leaders(c, [0, 2], at=0.0045),
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_crash_times(self, seed):
        """Seeded sweep: the crash lands at a random point of the run (batch
        buffering, ACCEPT_BATCH in flight, ack tally, DELIVER_BATCH...)."""
        rng = random.Random(seed)
        at = rng.uniform(0.001, 0.02)
        gid = rng.randrange(3)
        run_with_crashes(
            seed=seed, fault_plan_for=lambda c: FaultPlan.crash_leaders(c, [gid], at=at)
        )

    def test_exactly_once_across_failover(self):
        """Explicit per-message accounting on top of the property checks:
        every correct destination member delivers each message exactly once
        even though the new leader re-DELIVERs from the beginning."""
        res = run_with_crashes(
            seed=29, fault_plan_for=lambda c: FaultPlan.crash_leaders(c, [1], at=0.005)
        )
        crashed = {pid for _, pid in res.trace.crashes}
        h = res.history()
        for mid, (_, _, m) in h.multicasts.items():
            for gid in m.dests:
                for pid in res.config.members(gid):
                    if pid in crashed:
                        continue
                    count = h.delivery_order(pid).count(mid)
                    assert count == 1, f"{pid} delivered {mid} {count} times"


class TestCommittedPrefixSurvives:
    def test_committed_batch_prefix_survives_failover(self):
        """A full batch commits and the DELIVER_BATCH goes out; the leader
        then crashes.  After failover the whole committed prefix is still
        COMMITTED at the new leader and delivered exactly once everywhere."""
        config = ClusterConfig.build(1, 3, 1)
        options = WbCastOptions(batching=BATCHED)
        sim, trace, tracker, procs, client = build(config, options=options)
        msgs = [make_message(client, i, {0}) for i in range(4)]
        for m in msgs:
            sim.schedule(0.0, lambda mm=m: submit(sim, config, client, mm))
        # Timeline: arrive δ, linger fires 3δ, batch ACCEPT 4δ, batch acks
        # 5δ (leader commits, DELIVER_BATCH leaves), followers deliver 6δ.
        sim.crash_at(0, 5.5 * DELTA)  # after commit, DELIVER_BATCH in flight
        sim.schedule(0.02, lambda: procs[1].recover())
        sim.run()
        # The scenario really went down the batched path: one ACCEPT_BATCH
        # carried all four messages.
        batches = [r.msg for r in trace.sends if isinstance(r.msg, AcceptBatchMsg)]
        assert batches and {mid for b in batches for mid in b.mids()} == {
            m.mid for m in msgs
        }
        assert procs[1].status is Status.LEADER
        for m in msgs:
            assert procs[1].records[m.mid].phase is Phase.COMMITTED
            assert procs[2].records[m.mid].phase is Phase.COMMITTED
            for pid in (1, 2):
                count = [d.pid for d in trace.deliveries_of(m.mid)].count(pid)
                assert count == 1, f"{pid} delivered {m.mid} {count} times"
        checks_from_trace(config, trace)

    def test_unflushed_buffer_tail_recovered_by_retry(self):
        """A crash before the linger fires loses the buffered (unreplicated)
        tail — exactly like an unreplicated message in the per-message
        protocol — and a client retry to all members resurrects it."""
        config = ClusterConfig.build(1, 3, 1)
        options = WbCastOptions(batching=BATCHED)
        sim, trace, tracker, procs, client = build(config, options=options)
        m = make_message(client, 0, {0})
        sim.schedule(0.0, lambda: submit(sim, config, client, m))
        # Arrives at δ and sits in the batch buffer (linger fires at 3δ).
        sim.crash_at(0, 2 * DELTA)
        sim.schedule(0.02, lambda: procs[1].recover())
        sim.run()
        assert m.mid not in procs[1].records  # never replicated: legally lost
        sim.schedule(0.0, lambda: submit(sim, config, client, m, to_leaders=False))
        sim.run()
        assert {d.pid for d in trace.deliveries_of(m.mid)} >= {1, 2}
        checks_from_trace(config, trace)

    def test_deposed_leader_drops_volatile_batch_state(self):
        """NEWLEADER resets batching: the old leader keeps no buffered or
        in-flight batches once a higher ballot takes over."""
        config = ClusterConfig.build(1, 3, 1)
        options = WbCastOptions(batching=BATCHED)
        sim, trace, tracker, procs, client = build(config, options=options)
        for i in range(3):
            m = make_message(client, i, {0})
            sim.schedule(0.0, lambda mm=m: submit(sim, config, client, mm))
        # Depose p0 while its batch is still buffered (linger fires at 3δ).
        sim.schedule(1.5 * DELTA, lambda: procs[1].recover())
        sim.run()
        assert procs[0].status is Status.FOLLOWER
        assert procs[0].buffered_multicast_count() == 0
        assert procs[0].inflight_batch_count() == 0
        assert procs[1].buffered_multicast_count() == 0
        assert procs[1].inflight_batch_count() == 0


class TestFaultPlanBatchingInteraction:
    def test_jittered_network_failover(self):
        """Batching + jittered delays + a mid-run leader crash: the
        nondeterministic interleaving must not break the contract."""
        config = ClusterConfig.build(3, 3, 3)
        res = run_workload(
            WbCastProcess,
            config=config,
            messages_per_client=6,
            dest_k=2,
            seed=31,
            network=UniformDelay(0.0002, 2 * DELTA),
            protocol_options=RETRYING,
            client_options=ClientOptions(num_messages=6, retry_timeout=0.08, window=2),
            fault_plan=FaultPlan.crash_leaders(config, [2], at=0.006),
            attach_fd=True,
            fd_options=FAST_FD,
            drain_grace=0.4,
        )
        assert res.all_done
        checks_ok(res)
