"""Randomized stateful conformance suite for leader-side batching.

Batching is transport aggregation: a batched run must satisfy exactly the
same observable contract as the paper's per-message protocol.  This suite
sweeps batch size × pipelining depth × client load (both on fixed grids
and on seed-randomized configurations), asserting the four black-box
properties (total order via ``check_ordering``/witness, exactly-once via
``check_integrity`` + ``check_termination``) and wire-level genuineness
for batched and unbatched WbCast alike — plus set-equality of deliveries
between the two modes on identical seeded workloads.
"""

import random

import pytest

from repro.bench.harness import run_workload
from repro.checking.total_order import verify_witness, witness_order
from repro.config import BatchingOptions
from repro.protocols import WbCastProcess
from repro.sim import UniformCpu, UniformDelay
from repro.workload import ClientOptions

from tests.conftest import DELTA, checks_ok


def run_batched(
    seed,
    batching,
    clients=4,
    messages=6,
    window=2,
    dest_k=2,
    num_groups=3,
    cpu=None,
):
    res = run_workload(
        WbCastProcess,
        num_groups=num_groups,
        group_size=3,
        num_clients=clients,
        messages_per_client=messages,
        dest_k=dest_k,
        seed=seed,
        network=UniformDelay(0.0002, 2 * DELTA),
        cpu=cpu,
        batching=batching,
        client_options=ClientOptions(num_messages=messages, window=window),
        attach_genuineness=True,
    )
    assert res.all_done, f"{res.completed}/{res.expected} with batching={batching}"
    checks_ok(res)
    assert not res.genuineness.violations, res.genuineness.violations
    return res


class TestBatchDepthGrid:
    """Fixed grid: every batch size × pipelining depth combination."""

    @pytest.mark.parametrize("batch", [2, 4, 8, 16])
    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_invariants_hold(self, batch, depth):
        batching = BatchingOptions(
            max_batch=batch, max_linger=2 * DELTA, pipeline_depth=depth
        )
        run_batched(seed=100 * batch + depth, batching=batching)

    @pytest.mark.parametrize("batch", [4, 16])
    def test_witness_order_exists_and_verifies(self, batch):
        batching = BatchingOptions(
            max_batch=batch, max_linger=2 * DELTA, pipeline_depth=2
        )
        res = run_batched(seed=batch, batching=batching, clients=3, messages=8)
        h = res.history()
        order = witness_order(h)
        assert not verify_witness(h, order, quiescent=True)

    def test_zero_linger_batches_flush_immediately(self):
        """max_linger=0 must never stall: batches form only from same-event
        arrivals and the run completes like the per-message protocol."""
        batching = BatchingOptions(max_batch=8, max_linger=0.0, pipeline_depth=4)
        run_batched(seed=7, batching=batching, clients=6, window=4)


class TestRandomizedLoad:
    """Seed-randomized load: each seed draws a configuration and runs it
    both batched and unbatched; both must satisfy the full contract and
    deliver the *same message sets* at every process."""

    @pytest.mark.parametrize("seed", range(10))
    def test_batched_vs_unbatched_same_contract(self, seed):
        rng = random.Random(seed)
        clients = rng.choice([2, 4, 6])
        messages = rng.choice([4, 6, 8])
        window = rng.choice([1, 2, 4])
        num_groups = rng.choice([2, 3, 4])
        dest_k = rng.randint(1, num_groups)
        batching = BatchingOptions(
            max_batch=rng.choice([2, 4, 8, 16]),
            max_linger=rng.choice([DELTA, 2 * DELTA, 5 * DELTA]),
            pipeline_depth=rng.choice([1, 2, 4]),
        )
        results = {}
        for label, b in (("unbatched", None), ("batched", batching)):
            results[label] = run_batched(
                seed,
                b,
                clients=clients,
                messages=messages,
                window=window,
                dest_k=dest_k,
                num_groups=num_groups,
            )
        # Same seeded workload => identical delivered-message sets per
        # process, whatever the wire aggregation did to the timing.
        for pid in results["unbatched"].config.all_members:
            unbatched = set(results["unbatched"].trace.delivery_order_at(pid))
            batched = set(results["batched"].trace.delivery_order_at(pid))
            assert unbatched == batched, f"delivery sets diverge at {pid}"

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batched_under_cpu_saturation(self, seed):
        """Under a CPU model the leaders queue and batches actually fill;
        ordering/genuineness must survive saturation."""
        batching = BatchingOptions(
            max_batch=8, max_linger=2 * DELTA, pipeline_depth=4
        )
        run_batched(
            seed,
            batching,
            clients=8,
            messages=4,
            window=4,
            cpu=UniformCpu(0.0001, jitter=0.1),
        )

    def test_exactly_once_under_batching(self):
        """Explicit exactly-once: every correct member of every destination
        group delivers each message exactly once (not just at-most-once)."""
        batching = BatchingOptions(max_batch=8, max_linger=2 * DELTA, pipeline_depth=2)
        res = run_batched(seed=3, batching=batching, clients=4, messages=6)
        h = res.history()
        for mid, (_, _, m) in h.multicasts.items():
            for gid in m.dests:
                for pid in res.config.members(gid):
                    count = h.delivery_order(pid).count(mid)
                    assert count == 1, f"{pid} delivered {mid} {count} times"
