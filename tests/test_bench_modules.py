"""Benchmark machinery at test scale: sweeps, tables, ablation helpers."""

import pytest

from repro.bench.convoy import ConvoyPoint, format_convoy, run_convoy
from repro.bench.latency_table import (
    DELTA,
    PAPER_LATENCIES,
    LatencyRow,
    format_latency_table,
    measure_cfl,
)
from repro.bench.sweep import (
    SweepConfig,
    format_sweep,
    headline_comparison,
    run_point,
    run_sweep,
)
from repro.bench.topologies import lan_testbed
from repro.protocols import FastCastProcess, WbCastProcess


TINY = SweepConfig(
    num_groups=3,
    group_size=3,
    client_counts=(4,),
    dest_ks=(2,),
    messages_per_client=3,
    cpu_cost=0.0,
    cpu_jitter=0.0,
    network_jitter=0.0,
)


class TestSweep:
    def test_run_point_produces_metrics(self):
        point = run_point(WbCastProcess, lan_testbed, TINY, dest_k=2, clients=4)
        assert point.completed == 12
        assert point.throughput > 0
        assert point.mean_latency > 0
        assert point.protocol == "WbCastProcess"

    def test_run_sweep_covers_grid(self):
        points = run_sweep(
            {"wbcast": WbCastProcess, "fastcast": FastCastProcess},
            lan_testbed,
            TINY,
        )
        assert len(points) == 2  # 2 protocols x 1 dest_k x 1 client count

    def test_format_and_headline(self):
        points = run_sweep(
            {"wbcast": WbCastProcess, "fastcast": FastCastProcess},
            lan_testbed,
            TINY,
        )
        table = format_sweep(points, "t")
        assert "WbCast" in table and "msgs/s" in table
        headline = headline_comparison(points)
        assert "WbCast vs FastCast" in headline

    def test_wbcast_faster_than_fastcast_even_tiny(self):
        points = run_sweep(
            {"wbcast": WbCastProcess, "fastcast": FastCastProcess},
            lan_testbed,
            TINY,
        )
        wb = next(p for p in points if p.protocol == "WbCastProcess")
        fc = next(p for p in points if p.protocol == "FastCastProcess")
        assert wb.mean_latency < fc.mean_latency


class TestConvoyModule:
    def test_selected_offsets(self):
        points = run_convoy(offsets=[0.0, 1.0, 3.0])
        by_offset = {p.offset_delta: p.latency_delta for p in points}
        assert by_offset[0.0] == pytest.approx(2.0)
        assert by_offset[1.0] == pytest.approx(3.0)
        assert by_offset[3.0] == pytest.approx(2.0)

    def test_format(self):
        text = format_convoy([ConvoyPoint(0.0, 2.0)])
        assert "convoy" in text and "2.0" in text


class TestLatencyTableModule:
    def test_paper_table_is_complete(self):
        assert set(PAPER_LATENCIES) == {"skeen", "wbcast", "fastcast", "ftskeen"}

    def test_format_contains_all_columns(self):
        rows = [LatencyRow("wbcast", 3.0, 4.0, 5.0, 3, 5)]
        text = format_latency_table(rows)
        assert "wbcast" in text and "paper FFL" in text

    def test_measure_cfl_is_deterministic(self):
        assert measure_cfl(WbCastProcess) == measure_cfl(WbCastProcess)
