"""Single-decree Paxos: safety under adversarial interleavings.

The harness delivers messages in arbitrary (seeded) orders with arbitrary
duplication — only loss is excluded — and asserts the synod's one safety
property: no two nodes ever decide different values, and any decision is
one of the proposed values.
"""

import random
from typing import Any, Dict, List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.paxos.single import Accept, Accepted, Prepare, Promise, SynodNode
from repro.types import Ballot


class SynodHarness:
    """In-memory network delivering messages in a controlled order."""

    def __init__(self, num_nodes: int = 3) -> None:
        self.pending: List[Tuple[int, int, Any]] = []
        self.nodes: Dict[int, SynodNode] = {}
        peers = tuple(range(num_nodes))
        for pid in peers:
            self.nodes[pid] = SynodNode(
                pid, peers, send=lambda to, msg, src=pid: self.pending.append((src, to, msg))
            )

    def deliver_random(self, rng: random.Random, max_steps: int = 10_000,
                       duplicate_prob: float = 0.1) -> None:
        steps = 0
        while self.pending and steps < max_steps:
            index = rng.randrange(len(self.pending))
            src, dst, msg = self.pending.pop(index)
            if rng.random() < duplicate_prob:
                self.pending.append((src, dst, msg))  # deliver again later
            self.nodes[dst].on_message(src, msg)
            steps += 1

    def deliver_fifo(self) -> None:
        while self.pending:
            src, dst, msg = self.pending.pop(0)
            self.nodes[dst].on_message(src, msg)

    def decisions(self) -> List[Any]:
        return [n.decision for n in self.nodes.values() if n.decided]


class TestBasics:
    def test_single_proposer_decides_own_value(self):
        harness = SynodHarness()
        harness.nodes[0].propose("v0")
        harness.deliver_fifo()
        assert harness.nodes[0].decided
        assert harness.nodes[0].decision == "v0"

    def test_decision_learned_by_proposer_quorum(self):
        harness = SynodHarness(5)
        harness.nodes[2].propose("x")
        harness.deliver_fifo()
        assert harness.nodes[2].decision == "x"

    def test_second_proposer_adopts_chosen_value(self):
        harness = SynodHarness()
        harness.nodes[0].propose("first")
        harness.deliver_fifo()
        harness.nodes[1].propose("second")
        harness.deliver_fifo()
        decisions = set(harness.decisions())
        assert decisions == {"first"}

    def test_higher_ballot_preempts_lower(self):
        harness = SynodHarness()
        # Node 2 prepares a high ballot before node 0's accepts land.
        harness.nodes[0].propose("low")
        # Deliver only node 0's prepares/promises (phase 1), hold accepts.
        phase1 = [m for m in harness.pending]
        harness.pending.clear()
        for src, dst, msg in phase1:
            if isinstance(msg, Prepare):
                harness.nodes[dst].on_message(src, msg)
        promises = list(harness.pending)
        harness.pending.clear()
        harness.nodes[2].propose("high")
        harness.deliver_fifo()
        # Now release node 0's stale promises: its accepts use a stale
        # ballot and are rejected; nothing decides "low" and "high" stands.
        harness.pending.extend(promises)
        harness.deliver_fifo()
        assert set(harness.decisions()) <= {"high"}


@given(
    seed=st.integers(0, 10**9),
    proposers=st.lists(st.integers(0, 2), min_size=1, max_size=4),
    num_nodes=st.sampled_from([3, 5]),
)
@settings(max_examples=120, deadline=None)
def test_agreement_under_random_interleavings(seed, proposers, num_nodes):
    """Safety: decisions are unique and among the proposed values, whatever
    the message ordering, duplication and proposal contention."""
    rng = random.Random(seed)
    harness = SynodHarness(num_nodes)
    values = {pid: f"value-{pid}" for pid in set(proposers)}
    for pid in proposers:
        harness.nodes[pid % num_nodes].propose(values[pid])
        harness.deliver_random(rng)
    harness.deliver_random(rng)
    decisions = set(harness.decisions())
    assert len(decisions) <= 1
    if decisions:
        assert decisions.pop() in set(values.values())


@given(seed=st.integers(0, 10**9))
@settings(max_examples=60, deadline=None)
def test_retry_eventually_decides(seed):
    """Liveness (benign schedule): retrying proposers converge once
    messages are eventually delivered."""
    rng = random.Random(seed)
    harness = SynodHarness(3)
    harness.nodes[0].propose("a")
    harness.nodes[1].propose("b")
    for _ in range(6):
        harness.deliver_random(rng)
        if harness.decisions():
            break
        harness.nodes[rng.randrange(3)].propose("retry")
    harness.deliver_fifo()
    # Safety still holds whether or not a decision was reached.
    assert len(set(harness.decisions())) <= 1
