"""The paper's §IV "Message recovery" scenarios, end to end.

Two ways a message's processing can stall without any group losing
quorum, and the two mechanisms that unstick it:

* the *multicaster* crashes between sending MULTICAST(m) to different
  leaders, so one group starts processing m and another never heard of
  it — the receiving leader's retry (``retry(m)``, Fig. 4 lines 32-34)
  re-multicasts to everyone;
* a group's leader crashes holding an ACCEPTED message — the new leader
  resumes it after recovery with the same mechanism.
"""

import pytest

from repro.config import ClusterConfig
from repro.protocols import WbCastProcess
from repro.protocols.base import MulticastMsg
from repro.protocols.wbcast import Phase, Status, WbCastOptions
from repro.sim import ConstantDelay, Simulator, Trace
from repro.types import make_message
from repro.workload import DeliveryTracker

from tests.conftest import DELTA
from tests.test_wbcast_normal import build


def build_with_retry(config, retry_interval=0.03):
    trace = Trace()
    sim = Simulator(ConstantDelay(DELTA), seed=0, trace=trace)
    tracker = DeliveryTracker(config, sim=sim)
    trace.attach(tracker)
    options = WbCastOptions(retry_interval=retry_interval)
    procs = {
        pid: sim.add_process(
            pid, lambda rt, p=pid: WbCastProcess(p, config, rt, options=options)
        )
        for pid in config.all_members
    }
    client = config.clients[0]
    sim.add_process(client, lambda rt: type("C", (), {"on_message": staticmethod(lambda *a: None)})())
    return sim, trace, tracker, procs, client


class TestClientCrashMidMulticast:
    def test_partial_multicast_completes_via_leader_retry(self):
        """The client reaches only group 0's leader, then dies.  Group 0's
        leader holds m in PROPOSED; its periodic retry re-multicasts to
        group 1 and the message completes everywhere."""
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build_with_retry(config)
        m = make_message(client, 0, {0, 1})
        sim.record_multicast(client, m)
        sim.schedule(0.0, lambda: sim.transmit(client, 0, MulticastMsg(m)))
        sim.crash_at(client, 0.0005)  # dead before it could reach group 1
        sim.run(until=0.2)
        assert len(trace.deliveries_of(m.mid)) == 6
        assert procs[3].records[m.mid].phase is Phase.COMMITTED

    def test_without_retry_the_message_stalls(self):
        """Control: with retries disabled, the same scenario never
        completes — showing the retry really is the liveness mechanism."""
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build(config)  # no retry timer
        m = make_message(client, 0, {0, 1})
        sim.record_multicast(client, m)
        sim.schedule(0.0, lambda: sim.transmit(client, 0, MulticastMsg(m)))
        sim.crash_at(client, 0.0005)
        sim.run(until=0.2)
        assert trace.deliveries_of(m.mid) == []
        assert procs[0].records[m.mid].phase is Phase.PROPOSED

    def test_retry_is_idempotent_when_all_groups_already_know(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build_with_retry(config, retry_interval=0.01)
        m = make_message(client, 0, {0, 1})
        sim.record_multicast(client, m)
        for leader in (0, 3):
            sim.schedule(0.0, lambda l=leader: sim.transmit(client, l, MulticastMsg(m)))
        sim.run(until=0.3)
        per_pid = {}
        for d in trace.deliveries:
            per_pid[d.pid] = per_pid.get(d.pid, 0) + 1
        assert all(v == 1 for v in per_pid.values())


class TestAcceptedMessageAfterLeaderChange:
    def test_new_leader_resumes_accepted_message(self):
        """m is ACCEPTED at group 0's followers when the leader dies; the
        new leader recovers it as ACCEPTED and its retry completes it."""
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build_with_retry(config)
        m = make_message(client, 0, {0, 1})
        sim.record_multicast(client, m)
        for leader in (0, 3):
            sim.schedule(0.0, lambda l=leader: sim.transmit(client, l, MulticastMsg(m)))
        # Crash g0's leader at 2.5δ: followers accepted, commit never
        # happened at it (acks land at 3δ).
        sim.crash_at(0, 2.5 * DELTA)
        sim.schedule(0.02, lambda: procs[1].recover())
        sim.run(until=0.5)
        assert procs[1].status is Status.LEADER
        assert procs[1].records[m.mid].phase is Phase.COMMITTED
        # Everyone alive delivered exactly once.
        delivered_pids = [d.pid for d in trace.deliveries_of(m.mid)]
        assert sorted(delivered_pids) == [1, 2, 3, 4, 5]

    def test_committed_elsewhere_is_never_double_delivered(self):
        """Group 1 commits and delivers m before group 0's leader change;
        after recovery g0 completes m without re-delivering at g1."""
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build_with_retry(config)
        m = make_message(client, 0, {0, 1})
        sim.record_multicast(client, m)
        for leader in (0, 3):
            sim.schedule(0.0, lambda l=leader: sim.transmit(client, l, MulticastMsg(m)))
        sim.crash_at(0, 3.5 * DELTA)  # after commit+DELIVER left the leader
        sim.schedule(0.02, lambda: procs[1].recover())
        sim.run(until=0.5)
        per_pid = {}
        for d in trace.deliveries_of(m.mid):
            per_pid[d.pid] = per_pid.get(d.pid, 0) + 1
        assert all(v == 1 for v in per_pid.values())
        assert set(per_pid) >= {3, 4, 5}  # group 1 fully delivered
