"""FT-Skeen baseline: black-box consensus version of Skeen's protocol."""

import pytest

from repro.bench.harness import run_workload
from repro.config import ClusterConfig
from repro.protocols import FtSkeenProcess
from repro.protocols.ftskeen import CmdGlobal, CmdLocal, FtSkeenOptions
from repro.paxos.messages import PaxosAccept
from repro.protocols.skeen import ProposeMsg
from repro.sim import ConstantDelay
from repro.sim.faults import CrashSpec, FaultPlan
from repro.types import Timestamp, make_message
from repro.workload import ClientOptions

from tests.conftest import DELTA, FAST_FD, checks_ok


class TestNormalOperation:
    def test_end_to_end_properties(self):
        res = run_workload(FtSkeenProcess, num_groups=3, group_size=3, num_clients=3,
                           messages_per_client=10, dest_k=2, seed=1,
                           network=ConstantDelay(DELTA))
        assert res.all_done
        checks_ok(res)

    def test_genuine(self):
        res = run_workload(FtSkeenProcess, num_groups=4, group_size=3, num_clients=2,
                           messages_per_client=8, dest_k=2, seed=2,
                           network=ConstantDelay(DELTA), attach_genuineness=True)
        assert res.genuineness.is_genuine

    def test_propose_sent_only_after_consensus(self):
        """The defining black-box property: PROPOSE leaves a group only
        once consensus #1 persisted the local timestamp (at 3δ, not 1δ)."""
        res = run_workload(FtSkeenProcess, num_groups=2, group_size=3, num_clients=1,
                           messages_per_client=1, dest_k=2, seed=0,
                           network=ConstantDelay(DELTA))
        proposes = [r for r in res.trace.sends if isinstance(r.msg, ProposeMsg)]
        assert proposes
        assert min(r.t_send for r in proposes) >= 3 * DELTA - 1e-12

    def test_both_actions_go_through_the_log(self):
        res = run_workload(FtSkeenProcess, num_groups=2, group_size=3, num_clients=1,
                           messages_per_client=3, dest_k=2, seed=0,
                           network=ConstantDelay(DELTA))
        cmds = [r.msg.value for r in res.trace.sends if isinstance(r.msg, PaxosAccept)]
        locals_ = [c for c in cmds if isinstance(c, CmdLocal)]
        globals_ = [c for c in cmds if isinstance(c, CmdGlobal)]
        assert len(locals_) >= 3 and len(globals_) >= 3

    def test_followers_deliver_behind_leader(self):
        res = run_workload(FtSkeenProcess, num_groups=2, group_size=3, num_clients=1,
                           messages_per_client=1, dest_k=2, seed=0,
                           network=ConstantDelay(DELTA))
        times = {d.pid: d.t for d in res.trace.deliveries}
        assert times[0] == pytest.approx(6 * DELTA)
        assert times[1] == pytest.approx(7 * DELTA)

    def test_single_destination_group(self):
        res = run_workload(FtSkeenProcess, num_groups=3, group_size=3, num_clients=2,
                           messages_per_client=6, dest_k=1, seed=3,
                           network=ConstantDelay(DELTA))
        assert res.all_done
        checks_ok(res)


class TestFailover:
    def test_leader_crash_completes_with_retries(self):
        res = run_workload(
            FtSkeenProcess, num_groups=2, group_size=3, num_clients=2,
            messages_per_client=10, dest_k=2, seed=4,
            network=ConstantDelay(DELTA),
            protocol_options=FtSkeenOptions(retry_interval=0.05),
            client_options=ClientOptions(num_messages=10, retry_timeout=0.08),
            fault_plan=FaultPlan(crashes=[CrashSpec(0, 0.0117)]),
            attach_fd=True, fd_options=FAST_FD, drain_grace=0.3, max_time=10.0,
        )
        assert res.all_done
        checks_ok(res)

    def test_persisted_timestamp_reused_after_failover(self):
        """A local timestamp chosen by consensus #1 must survive the leader
        change verbatim (otherwise groups could disagree on gts)."""
        res = run_workload(
            FtSkeenProcess, num_groups=2, group_size=3, num_clients=2,
            messages_per_client=6, dest_k=2, seed=8,
            network=ConstantDelay(DELTA),
            protocol_options=FtSkeenOptions(retry_interval=0.05),
            client_options=ClientOptions(num_messages=6, retry_timeout=0.08),
            fault_plan=FaultPlan(crashes=[CrashSpec(0, 0.009)]),
            attach_fd=True, fd_options=FAST_FD, drain_grace=0.3, max_time=10.0,
        )
        assert res.all_done
        checks_ok(res)
        # Per (message, group), every PROPOSE ever sent carries one lts.
        seen = {}
        for r in res.trace.sends:
            if isinstance(r.msg, ProposeMsg):
                key = (r.msg.m.mid, r.msg.gid)
                assert seen.setdefault(key, r.msg.lts) == r.msg.lts
