"""Heartbeat failure detection and leader election stabilisation."""

import pytest

from repro.config import ClusterConfig
from repro.failure.detector import HeartbeatMsg, LeaderMonitor, MonitorOptions, attach_monitor
from repro.protocols import WbCastProcess
from repro.protocols.wbcast import Status, WbCastOptions
from repro.sim import ConstantDelay, Simulator

from tests.conftest import DELTA, FAST_FD


def build_group(fd_options=FAST_FD, group_size=3, seed=0):
    config = ClusterConfig.build(1, group_size, 0)
    sim = Simulator(ConstantDelay(DELTA), seed=seed)
    procs = {}
    for pid in config.members(0):
        proc = sim.add_process(
            pid, lambda rt, p=pid: WbCastProcess(p, config, rt, options=WbCastOptions())
        )
        attach_monitor(proc, fd_options)
        procs[pid] = proc
    return sim, config, procs


class TestHeartbeats:
    def test_stable_leader_sends_heartbeats_and_nobody_recovers(self):
        sim, config, procs = build_group()
        sim.run(until=0.5)
        assert procs[0].status is Status.LEADER
        assert procs[1].status is Status.FOLLOWER
        assert procs[0].cballot.round == 0  # no elections happened
        beats = sum(1 for r in sim.trace.sends if isinstance(r.msg, HeartbeatMsg))
        assert beats > 0

    def test_leader_crash_triggers_takeover(self):
        sim, config, procs = build_group()
        sim.crash_at(0, 0.1)
        sim.run(until=1.0)
        live_leaders = [p for pid, p in procs.items()
                        if sim.alive(pid) and p.status is Status.LEADER]
        assert len(live_leaders) == 1
        assert live_leaders[0].pid in (1, 2)
        # The other survivor follows the same ballot.
        other = [p for pid, p in procs.items()
                 if sim.alive(pid) and p.status is Status.FOLLOWER]
        assert other and other[0].cballot == live_leaders[0].cballot

    def test_stagger_prefers_next_in_ring(self):
        """With rank staggering, the member right after the dead leader
        usually stands first and wins."""
        sim, config, procs = build_group()
        sim.crash_at(0, 0.1)
        sim.run(until=1.0)
        live_leaders = [p for pid, p in procs.items()
                        if sim.alive(pid) and p.status is Status.LEADER]
        assert live_leaders[0].pid == 1

    def test_double_crash_in_five_member_group(self):
        sim, config, procs = build_group(group_size=5)
        sim.crash_at(0, 0.1)
        sim.crash_at(1, 0.3)
        sim.run(until=2.0)
        live_leaders = [p for pid, p in procs.items()
                        if sim.alive(pid) and p.status is Status.LEADER]
        assert len(live_leaders) == 1

    def test_followers_stay_quiet_while_leader_alive(self):
        sim, config, procs = build_group()
        sim.run(until=1.0)
        # No NEWLEADER traffic at all in a healthy group.
        from repro.protocols.wbcast.messages import NewLeaderMsg

        assert not any(isinstance(r.msg, NewLeaderMsg) for r in sim.trace.sends)


class TestMonitorOptions:
    def test_backoff_grows_timeout(self):
        sim, config, procs = build_group(
            fd_options=MonitorOptions(
                heartbeat_interval=0.005, suspect_timeout=0.02,
                stagger=0.01, backoff_factor=2.0, max_timeout=0.08,
            )
        )
        sim.crash_at(0, 0.05)
        sim.run(until=1.5)
        live_leaders = [p for pid, p in procs.items()
                        if sim.alive(pid) and p.status is Status.LEADER]
        assert len(live_leaders) == 1
