"""Witness-order construction and verification."""

import pytest

from repro.bench.harness import run_workload
from repro.checking import History
from repro.checking.total_order import (
    order_statistics,
    projection,
    verify_witness,
    witness_order,
)
from repro.config import ClusterConfig
from repro.errors import PropertyViolation
from repro.protocols import WbCastProcess
from repro.sim import ConstantDelay
from repro.types import make_message

from tests.conftest import DELTA
from tests.test_checking import history


@pytest.fixture
def config():
    return ClusterConfig.build(num_groups=2, group_size=1, num_clients=1)


M1 = make_message(2, 1, {0, 1})
M2 = make_message(2, 2, {0, 1})
M3 = make_message(2, 3, {0})


class TestWitness:
    def test_witness_respects_local_orders(self, config):
        h = history(config, [(M1, 2, 0.0), (M2, 2, 0.0), (M3, 2, 0.0)],
                    {0: [M1, M3, M2], 1: [M1, M2]})
        order = witness_order(h)
        assert order.index(M1.mid) < order.index(M2.mid)
        assert order.index(M1.mid) < order.index(M3.mid)
        assert not verify_witness(h, order, quiescent=False)

    def test_witness_deterministic(self, config):
        h = history(config, [(M1, 2, 0.0), (M2, 2, 0.0)], {0: [M1], 1: [M2]})
        assert witness_order(h) == witness_order(h)

    def test_cycle_raises(self, config):
        h = history(config, [(M1, 2, 0.0), (M2, 2, 0.0)],
                    {0: [M1, M2], 1: [M2, M1]})
        with pytest.raises(PropertyViolation):
            witness_order(h)

    def test_verify_flags_deviation(self, config):
        h = history(config, [(M1, 2, 0.0), (M2, 2, 0.0)],
                    {0: [M1, M2], 1: [M1, M2]})
        wrong = [M2.mid, M1.mid]
        assert verify_witness(h, wrong, quiescent=False)

    def test_verify_flags_skip_in_quiescent_run(self, config):
        # Group 1 delivered M1 and M2; group 0 process delivered only M2
        # although M1 (addressed to it, delivered elsewhere) came first.
        h = history(config, [(M1, 2, 0.0), (M2, 2, 0.0)],
                    {0: [M2], 1: [M1, M2]})
        order = witness_order(h)
        violations = verify_witness(h, order, quiescent=True)
        assert any("skipped" in v for v in violations)

    def test_projection(self, config):
        h = history(config, [(M1, 2, 0.0), (M3, 2, 0.0)], {0: [M1, M3], 1: [M1]})
        order = witness_order(h)
        assert projection(h, order, 1) == [M1.mid]
        assert set(projection(h, order, 0)) == {M1.mid, M3.mid}


class TestOnRealRuns:
    def test_witness_matches_wbcast_run(self):
        res = run_workload(WbCastProcess, num_groups=3, group_size=3, num_clients=3,
                           messages_per_client=10, dest_k=2, seed=9,
                           network=ConstantDelay(DELTA))
        h = res.history()
        order = witness_order(h)
        assert len(order) == 30
        assert not verify_witness(h, order, quiescent=True)
        stats = order_statistics(h)
        assert stats["messages"] == 30
        assert stats["processes_delivering"] > 0

    def test_group_projections_are_subsequences(self):
        res = run_workload(WbCastProcess, num_groups=3, group_size=3, num_clients=2,
                           messages_per_client=8, dest_k=2, seed=4,
                           network=ConstantDelay(DELTA))
        h = res.history()
        order = witness_order(h)
        for gid in res.config.group_ids:
            proj = projection(h, order, gid)
            for pid in res.config.members(gid):
                seq = h.delivery_order(pid)
                assert seq == [mid for mid in proj if mid in set(seq)]
