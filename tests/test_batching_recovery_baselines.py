"""Fault injection for batched FtSkeen and FastCast (recovery × batching).

Mirrors ``tests/test_batching_recovery.py`` for the two consensus-based
baselines: batches are volatile transport aggregation (one Multi-Paxos
slot carries a whole ``CmdLocalBatch``), while recovery
stays per message — batch commands already in the replicated log ride
Paxos leader change, unflushed buffer tails die with the leader and are
re-driven by client/leader retries.  These tests crash leaders mid-batch —
including in the gap *between consensus #1 and consensus #2 of the same
batch* — and assert the black-box contract: nothing delivered twice,
nothing a client keeps retrying lost, total order preserved.
"""

import random

import pytest

from repro.bench.harness import run_workload
from repro.config import BatchingOptions, ClusterConfig
from repro.paxos.messages import PaxosAccept
from repro.protocols import FastCastProcess, FtSkeenProcess
from repro.protocols.batching import CmdGlobalBatch, CmdLocalBatch
from repro.protocols.fastcast import FastCastOptions, FcGlobal
from repro.protocols.ftskeen import CmdGlobal, FtSkeenOptions
from repro.sim import ConstantDelay, UniformDelay
from repro.sim.faults import CrashSpec, FaultPlan
from repro.workload import ClientOptions

from tests.conftest import DELTA, FAST_FD, checks_ok

#: Aggressive batching so crashes reliably land while batches exist.
BATCHED = BatchingOptions(max_batch=8, max_linger=2 * DELTA, pipeline_depth=4)
CLIENT_RETRY = ClientOptions(num_messages=8, retry_timeout=0.08, window=4)

PROTOCOLS = [
    pytest.param(
        FtSkeenProcess,
        FtSkeenOptions(retry_interval=0.05, batching=BATCHED),
        id="ftskeen",
    ),
    pytest.param(
        FastCastProcess,
        FastCastOptions(retry_interval=0.05, batching=BATCHED),
        id="fastcast",
    ),
]


def run_with_crashes(
    protocol_cls, options, seed, fault_plan_for, num_groups=3, clients=3
):
    """Batched workload under a fault plan; full black-box contract."""
    config = ClusterConfig.build(num_groups, 3, clients)
    plan = fault_plan_for(config)
    res = run_workload(
        protocol_cls,
        config=config,
        messages_per_client=CLIENT_RETRY.num_messages,
        dest_k=2,
        seed=seed,
        network=ConstantDelay(DELTA),
        protocol_options=options,
        client_options=CLIENT_RETRY,
        fault_plan=plan,
        attach_fd=True,
        fd_options=FAST_FD,
        drain_grace=0.4,
        max_time=10.0,
    )
    assert res.all_done, (
        f"{protocol_cls.__name__}: {res.completed}/{res.expected} under {plan.crashes}"
    )
    checks_ok(res)  # total order + integrity (no dup) + termination (no loss)
    return res


def batch_commands(trace, classes):
    """All Multi-Paxos slot values of the given batch-command classes."""
    return [
        (r.t_send, r.msg.value)
        for r in trace.sends
        if isinstance(r.msg, PaxosAccept) and isinstance(r.msg.value, classes)
    ]


@pytest.mark.parametrize("protocol_cls,options", PROTOCOLS)
class TestLeaderCrashMidBatch:
    def test_one_leader_crashes_mid_batch(self, protocol_cls, options):
        """Crash g0's leader while batched consensus commands are in
        flight; the Paxos failover must lose/dup nothing."""
        res = run_with_crashes(
            protocol_cls, options, seed=21,
            fault_plan_for=lambda c: FaultPlan.crash_leaders(c, [0], at=0.004),
        )
        # The scenario really went down the batched path: at least one
        # multi-entry consensus #1 batch hit the wire.
        locals_ = batch_commands(res.trace, CmdLocalBatch)
        assert any(len(cmd.entries) > 1 for _, cmd in locals_)

    def test_two_leaders_crash_mid_batch(self, protocol_cls, options):
        run_with_crashes(
            protocol_cls, options, seed=23,
            fault_plan_for=lambda c: FaultPlan.crash_leaders(c, [0, 2], at=0.0045),
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_crash_times(self, protocol_cls, options, seed):
        """Seeded sweep: the crash lands at a random point of the run
        (batch buffering, consensus #1 in flight, the #1→#2 gap, DELIVER
        batch propagation...)."""
        rng = random.Random(seed)
        at = rng.uniform(0.001, 0.02)
        gid = rng.randrange(3)
        run_with_crashes(
            protocol_cls, options, seed=seed,
            fault_plan_for=lambda c: FaultPlan.crash_leaders(c, [gid], at=at),
        )

    def test_exactly_once_across_failover(self, protocol_cls, options):
        """Explicit per-message accounting on top of the property checks:
        every correct destination member delivers each message exactly
        once even though the new leader re-delivers from its rebuilt log."""
        res = run_with_crashes(
            protocol_cls, options, seed=29,
            fault_plan_for=lambda c: FaultPlan.crash_leaders(c, [1], at=0.005),
        )
        crashed = {pid for _, pid in res.trace.crashes}
        h = res.history()
        for mid, (_, _, m) in h.multicasts.items():
            for gid in m.dests:
                for pid in res.config.members(gid):
                    if pid in crashed:
                        continue
                    count = h.delivery_order(pid).count(mid)
                    assert count == 1, f"{pid} delivered {mid} {count} times"

    def test_jittered_network_failover(self, protocol_cls, options):
        """Batching + jittered delays + a mid-run leader crash: the
        nondeterministic interleaving must not break the contract."""
        config = ClusterConfig.build(3, 3, 3)
        res = run_workload(
            protocol_cls,
            config=config,
            messages_per_client=6,
            dest_k=2,
            seed=31,
            network=UniformDelay(0.0002, 2 * DELTA),
            protocol_options=options,
            client_options=ClientOptions(num_messages=6, retry_timeout=0.08, window=2),
            fault_plan=FaultPlan.crash_leaders(config, [2], at=0.006),
            attach_fd=True,
            fd_options=FAST_FD,
            drain_grace=0.4,
            max_time=10.0,
        )
        assert res.all_done
        checks_ok(res)


class TestConsensusGapCrash:
    """Crashes landing between consensus #1 and consensus #2 of one batch.

    Single destination group, four messages submitted together, constant
    δ network — the whole batch goes through consensus #1 in one slot, and
    the leader dies before consensus #2 of that same batch is proposed.
    The local timestamps chosen by consensus #1 are in the replicated log,
    so the new leader must finish the batch from there (retries drive the
    re-globalization), delivering everything exactly once.
    """

    def _run(self, protocol_cls, options, crash_at):
        config = ClusterConfig.build(1, 3, 1)
        res = run_workload(
            protocol_cls,
            config=config,
            messages_per_client=4,
            dest_k=1,
            seed=7,
            network=ConstantDelay(DELTA),
            protocol_options=options,
            client_options=ClientOptions(num_messages=4, retry_timeout=0.08, window=4),
            fault_plan=FaultPlan(crashes=[CrashSpec(0, crash_at)]),
            attach_fd=True,
            fd_options=FAST_FD,
            drain_grace=0.4,
            max_time=10.0,
        )
        assert res.all_done, f"{res.completed}/{res.expected}"
        checks_ok(res)
        return res

    @pytest.mark.parametrize(
        "protocol_cls,options,crash_at,local_cls,global_cls",
        [
            # FtSkeen timeline: batch flush 3δ, consensus #1 executes 5δ,
            # consensus #2 flushes 7δ — crash at 5.5δ is inside the gap.
            pytest.param(
                FtSkeenProcess,
                FtSkeenOptions(retry_interval=0.05, batching=BATCHED),
                5.5 * DELTA,
                CmdLocalBatch,
                (CmdGlobal, CmdGlobalBatch),
                id="ftskeen",
            ),
            # FastCast timeline: announce flush 3δ (consensus #1 proposed),
            # speculative consensus #2 flushes 5δ — crash at 4δ is inside
            # the gap.
            pytest.param(
                FastCastProcess,
                FastCastOptions(retry_interval=0.05, batching=BATCHED),
                4 * DELTA,
                CmdLocalBatch,
                (FcGlobal, CmdGlobalBatch),
                id="fastcast",
            ),
        ],
    )
    def test_crash_between_consensus1_and_consensus2(
        self, protocol_cls, options, crash_at, local_cls, global_cls
    ):
        res = self._run(protocol_cls, options, crash_at)
        # Consensus #1 of the whole batch was proposed before the crash...
        locals_ = batch_commands(res.trace, local_cls)
        pre_crash = [cmd for t, cmd in locals_ if t < crash_at]
        assert pre_crash and max(len(c.entries) for c in pre_crash) == 4
        # ...and no consensus #2 command hit the wire until after it: the
        # crash really landed in the #1→#2 gap of that batch.
        globals_ = batch_commands(res.trace, global_cls)
        assert globals_, "consensus #2 never ran"
        assert all(t >= crash_at for t, _ in globals_), globals_
        # The new leader finished the batch: everyone alive delivered all
        # four messages exactly once.
        crashed = {pid for _, pid in res.trace.crashes}
        h = res.history()
        assert len(h.multicasts) == 4
        for mid in h.multicasts:
            for pid in res.config.members(0):
                if pid in crashed:
                    continue
                count = h.delivery_order(pid).count(mid)
                assert count == 1, f"{pid} delivered {mid} {count} times"
