"""The atomic-broadcast special case: a single-group replicated log."""

import pytest

from repro.apps import ReplicatedLog
from repro.protocols import FtSkeenProcess


class TestReplicatedLog:
    def test_appends_in_submission_order_from_one_client(self):
        log = ReplicatedLog(group_size=3)
        for i in range(5):
            log.append(i)
        log.sync()
        assert log.read() == [0, 1, 2, 3, 4]

    def test_all_replicas_converge(self):
        log = ReplicatedLog(group_size=5)
        for i in range(20):
            log.append(f"e{i}")
        log.sync()
        assert log.replicas_converged()
        for replica in range(5):
            assert len(log.read(replica_index=replica)) == 20

    def test_broadcast_is_protocol_agnostic(self):
        log = ReplicatedLog(group_size=3, protocol_cls=FtSkeenProcess)
        for i in range(5):
            log.append(i)
        log.sync()
        assert log.read() == [0, 1, 2, 3, 4]
        assert log.replicas_converged()

    def test_payloads_preserved(self):
        log = ReplicatedLog()
        payload = {"op": "set", "key": "x", "value": [1, 2, 3]}
        log.append(payload)
        log.sync()
        assert log.read()[0] == payload
