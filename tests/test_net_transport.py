"""TCP transport unit behaviour: framing, FIFO, reconnect, loopback."""

import asyncio

import pytest

from repro.net.codec import encode_frame, read_frame
from repro.net.transport import NodeTransport


def run(coro):
    return asyncio.run(coro)


async def start_pair():
    received = {1: [], 2: []}
    addresses = {}
    t1 = NodeTransport(1, addresses.__getitem__, lambda s, m: received[1].append((s, m)))
    t2 = NodeTransport(2, addresses.__getitem__, lambda s, m: received[2].append((s, m)))
    await t1.start()
    await t2.start()
    addresses[1] = (t1.host, t1.port)
    addresses[2] = (t2.host, t2.port)
    return t1, t2, received


async def drain(received, key, count, timeout=3.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while len(received[key]) < count:
        if asyncio.get_event_loop().time() > deadline:
            raise TimeoutError(f"only {len(received[key])}/{count} received")
        await asyncio.sleep(0.005)


class TestTransport:
    def test_send_and_receive(self):
        async def scenario():
            t1, t2, received = await start_pair()
            try:
                t1.send(2, {"hello": "world"})
                await drain(received, 2, 1)
                assert received[2] == [(1, {"hello": "world"})]
            finally:
                await t1.close()
                await t2.close()

        run(scenario())

    def test_fifo_order_preserved(self):
        async def scenario():
            t1, t2, received = await start_pair()
            try:
                for i in range(200):
                    t1.send(2, i)
                await drain(received, 2, 200)
                assert [m for _, m in received[2]] == list(range(200))
            finally:
                await t1.close()
                await t2.close()

        run(scenario())

    def test_bidirectional(self):
        async def scenario():
            t1, t2, received = await start_pair()
            try:
                t1.send(2, "ping")
                t2.send(1, "pong")
                await drain(received, 2, 1)
                await drain(received, 1, 1)
                assert received[1] == [(2, "pong")]
            finally:
                await t1.close()
                await t2.close()

        run(scenario())

    def test_loopback_is_local(self):
        async def scenario():
            t1, t2, received = await start_pair()
            try:
                t1.send(1, "self")
                await drain(received, 1, 1)
                assert received[1] == [(1, "self")]
            finally:
                await t1.close()
                await t2.close()

        run(scenario())

    def test_send_before_peer_listens_retries(self):
        """Messages queued to a not-yet-started peer arrive once it is up."""

        async def scenario():
            received = {3: []}
            addresses = {}
            t1 = NodeTransport(1, lambda pid: addresses[pid], lambda s, m: None,
                               connect_retry=0.02)
            await t1.start()
            addresses[1] = (t1.host, t1.port)
            # Reserve an address for pid 3 that nothing listens on yet.
            probe = NodeTransport(3, lambda pid: addresses[pid],
                                  lambda s, m: received[3].append((s, m)))
            await probe.start()
            addresses[3] = (probe.host, probe.port)
            await probe.close()  # now the port is dead
            t1.send(3, "early")
            await asyncio.sleep(0.1)
            # Bring pid 3 back on the same port.
            revived = NodeTransport(3, lambda pid: addresses[pid],
                                    lambda s, m: received[3].append((s, m)))
            await revived.start(port=addresses[3][1])
            try:
                await drain(received, 3, 1)
                assert received[3] == [(1, "early")]
            finally:
                await t1.close()
                await revived.close()

        run(scenario())

    def test_closed_transport_drops_sends(self):
        async def scenario():
            t1, t2, received = await start_pair()
            await t1.close()
            t1.send(2, "ghost")  # no exception, silently dropped
            await asyncio.sleep(0.05)
            await t2.close()
            assert received[2] == []

        run(scenario())

    def test_handler_exception_does_not_kill_reader(self):
        async def scenario():
            calls = []

            def flaky(sender, msg):
                calls.append(msg)
                if msg == "bad":
                    raise RuntimeError("boom")

            addresses = {}
            t1 = NodeTransport(1, addresses.__getitem__, lambda s, m: None)
            t2 = NodeTransport(2, addresses.__getitem__, flaky)
            await t1.start()
            await t2.start()
            addresses[1] = (t1.host, t1.port)
            addresses[2] = (t2.host, t2.port)
            try:
                t1.send(2, "bad")
                t1.send(2, "good")
                deadline = asyncio.get_event_loop().time() + 3
                while len(calls) < 2 and asyncio.get_event_loop().time() < deadline:
                    await asyncio.sleep(0.005)
                assert calls == ["bad", "good"]
            finally:
                await t1.close()
                await t2.close()

        run(scenario())


class TestFraming:
    def test_read_frame_round_trip(self):
        async def scenario():
            reader = asyncio.StreamReader()
            frame = encode_frame(9, ["x", 1])
            reader.feed_data(frame)
            reader.feed_eof()
            sender, msg = await read_frame(reader)
            assert sender == 9 and msg == ["x", 1]

        run(scenario())

    def test_partial_frame_waits(self):
        async def scenario():
            reader = asyncio.StreamReader()
            frame = encode_frame(1, "payload")
            reader.feed_data(frame[:3])

            async def feed_rest():
                await asyncio.sleep(0.02)
                reader.feed_data(frame[3:])

            feeder = asyncio.ensure_future(feed_rest())
            sender, msg = await read_frame(reader)
            await feeder
            assert msg == "payload"

        run(scenario())

    def test_eof_mid_frame_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(1, "x")[:5])
            reader.feed_eof()
            with pytest.raises(asyncio.IncompleteReadError):
                await read_frame(reader)

        run(scenario())
