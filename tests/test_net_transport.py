"""TCP transport unit behaviour: framing, FIFO, reconnect, loopback,
coalescing, backpressure and corrupt-frame handling."""

import asyncio
import struct

import pytest

from repro.net.codec import encode_frame, read_frame
from repro.net.transport import NodeTransport, TransportOptions

pytestmark = pytest.mark.net


def run(coro):
    return asyncio.run(coro)


async def start_pair(options=None, on_congestion=None):
    received = {1: [], 2: []}
    addresses = {}
    t1 = NodeTransport(1, addresses.__getitem__, lambda s, m: received[1].append((s, m)),
                       options=options, on_congestion=on_congestion)
    t2 = NodeTransport(2, addresses.__getitem__, lambda s, m: received[2].append((s, m)),
                       options=options)
    await t1.start()
    await t2.start()
    addresses[1] = (t1.host, t1.port)
    addresses[2] = (t2.host, t2.port)
    return t1, t2, received


async def drain(received, key, count, timeout=3.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while len(received[key]) < count:
        if asyncio.get_event_loop().time() > deadline:
            raise TimeoutError(f"only {len(received[key])}/{count} received")
        await asyncio.sleep(0.005)


class TestTransport:
    def test_send_and_receive(self):
        async def scenario():
            t1, t2, received = await start_pair()
            try:
                t1.send(2, {"hello": "world"})
                await drain(received, 2, 1)
                assert received[2] == [(1, {"hello": "world"})]
            finally:
                await t1.close()
                await t2.close()

        run(scenario())

    def test_fifo_order_preserved(self):
        async def scenario():
            t1, t2, received = await start_pair()
            try:
                for i in range(200):
                    t1.send(2, i)
                await drain(received, 2, 200)
                assert [m for _, m in received[2]] == list(range(200))
            finally:
                await t1.close()
                await t2.close()

        run(scenario())

    def test_bidirectional(self):
        async def scenario():
            t1, t2, received = await start_pair()
            try:
                t1.send(2, "ping")
                t2.send(1, "pong")
                await drain(received, 2, 1)
                await drain(received, 1, 1)
                assert received[1] == [(2, "pong")]
            finally:
                await t1.close()
                await t2.close()

        run(scenario())

    def test_loopback_is_local(self):
        async def scenario():
            t1, t2, received = await start_pair()
            try:
                t1.send(1, "self")
                await drain(received, 1, 1)
                assert received[1] == [(1, "self")]
            finally:
                await t1.close()
                await t2.close()

        run(scenario())

    def test_send_before_peer_listens_retries(self):
        """Messages queued to a not-yet-started peer arrive once it is up."""

        async def scenario():
            received = {3: []}
            addresses = {}
            t1 = NodeTransport(1, lambda pid: addresses[pid], lambda s, m: None,
                               connect_retry=0.02)
            await t1.start()
            addresses[1] = (t1.host, t1.port)
            # Reserve an address for pid 3 that nothing listens on yet.
            probe = NodeTransport(3, lambda pid: addresses[pid],
                                  lambda s, m: received[3].append((s, m)))
            await probe.start()
            addresses[3] = (probe.host, probe.port)
            await probe.close()  # now the port is dead
            t1.send(3, "early")
            await asyncio.sleep(0.1)
            # Bring pid 3 back on the same port.
            revived = NodeTransport(3, lambda pid: addresses[pid],
                                    lambda s, m: received[3].append((s, m)))
            await revived.start(port=addresses[3][1])
            try:
                await drain(received, 3, 1)
                assert received[3] == [(1, "early")]
            finally:
                await t1.close()
                await revived.close()

        run(scenario())

    def test_closed_transport_drops_sends(self):
        async def scenario():
            t1, t2, received = await start_pair()
            await t1.close()
            t1.send(2, "ghost")  # no exception, silently dropped
            await asyncio.sleep(0.05)
            await t2.close()
            assert received[2] == []

        run(scenario())

    def test_handler_exception_does_not_kill_reader(self):
        async def scenario():
            calls = []

            def flaky(sender, msg):
                calls.append(msg)
                if msg == "bad":
                    raise RuntimeError("boom")

            addresses = {}
            t1 = NodeTransport(1, addresses.__getitem__, lambda s, m: None)
            t2 = NodeTransport(2, addresses.__getitem__, flaky)
            await t1.start()
            await t2.start()
            addresses[1] = (t1.host, t1.port)
            addresses[2] = (t2.host, t2.port)
            try:
                t1.send(2, "bad")
                t1.send(2, "good")
                deadline = asyncio.get_event_loop().time() + 3
                while len(calls) < 2 and asyncio.get_event_loop().time() < deadline:
                    await asyncio.sleep(0.005)
                assert calls == ["bad", "good"]
            finally:
                await t1.close()
                await t2.close()

        run(scenario())


class TestCoalescing:
    def test_burst_fifo_with_tiny_flush_budget(self):
        """A small max_coalesce_bytes forces many partial flushes; order
        must still hold across flush boundaries."""

        async def scenario():
            opts = TransportOptions(max_coalesce_bytes=256)
            t1, t2, received = await start_pair(options=opts)
            try:
                for i in range(500):
                    t1.send(2, i)
                await drain(received, 2, 500)
                assert [m for _, m in received[2]] == list(range(500))
            finally:
                await t1.close()
                await t2.close()

        run(scenario())

    def test_fifo_across_reconnect(self):
        """Frames queued while the peer is down flush in one coalesced
        burst after reconnect, ahead of anything sent later."""

        async def scenario():
            received = {3: []}
            addresses = {}
            t1 = NodeTransport(1, addresses.__getitem__, lambda s, m: None,
                               connect_retry=0.02)
            await t1.start()
            addresses[1] = (t1.host, t1.port)
            probe = NodeTransport(3, addresses.__getitem__,
                                  lambda s, m: received[3].append((s, m)))
            await probe.start()
            addresses[3] = (probe.host, probe.port)
            await probe.close()  # port reserved but dead
            for i in range(100):
                t1.send(3, i)
            await asyncio.sleep(0.05)
            revived = NodeTransport(3, addresses.__getitem__,
                                    lambda s, m: received[3].append((s, m)))
            await revived.start(port=addresses[3][1])
            for i in range(100, 200):
                t1.send(3, i)
            try:
                await drain(received, 3, 200)
                assert [m for _, m in received[3]] == list(range(200))
            finally:
                await t1.close()
                await revived.close()

        run(scenario())

    def test_reconnect_resends_pending_without_duplication(self):
        """White-box: a flush whose drain() fails mid-connection is resent
        wholesale after reconnect — and because the failed flush never
        reached the peer, every frame crosses exactly once."""

        async def scenario():
            class FakeWriter:
                def __init__(self, fail_first_drain):
                    self.chunks = []
                    self._fail = fail_first_drain

                def write(self, data):
                    self.chunks.append(bytes(data))

                async def drain(self):
                    if self._fail:
                        self._fail = False
                        raise ConnectionError("link died mid-drain")

                def close(self):
                    pass

            writers = [FakeWriter(fail_first_drain=True),
                       FakeWriter(fail_first_drain=False)]
            handed_out = []

            t1 = NodeTransport(1, lambda pid: ("nowhere", 0), lambda s, m: None)

            async def fake_connect(to):
                handed_out.append(writers[len(handed_out)])
                return handed_out[-1]

            t1._connect = fake_connect
            for i in range(5):
                t1.send(2, i)
            deadline = asyncio.get_event_loop().time() + 3
            while len(handed_out) < 2 or not writers[1].chunks:
                assert asyncio.get_event_loop().time() < deadline
                await asyncio.sleep(0.005)
            await asyncio.sleep(0.02)  # let the successful flush settle
            await t1.close()

            from repro.net.codec import decode_buffer

            def frames_in(writer):
                got = []
                buf = bytearray(b"".join(writer.chunks))
                decode_buffer(buf, lambda s, m: got.append(m))
                return got

            # Both attempts carried the identical coalesced flush...
            assert frames_in(writers[0]) == list(range(5))
            # ...and since the first never completed, the surviving
            # connection saw each frame exactly once, in order.
            assert frames_in(writers[1]) == list(range(5))

        run(scenario())


class TestBackpressure:
    def test_congestion_flag_and_callback_round_trip(self):
        async def scenario():
            events = []
            opts = TransportOptions(max_queue=4)
            t1, t2, received = await start_pair(options=opts,
                                                on_congestion=events.append)
            try:
                # Synchronous burst: the writer task has not run yet, so
                # the queue depth crosses the bound during the loop.
                for i in range(10):
                    t1.send(2, i)
                assert t1.congested
                assert events == [True]
                assert t1.backpressure_events == 1
                await drain(received, 2, 10)
                await asyncio.sleep(0.02)
                assert not t1.congested
                assert events == [True, False]
            finally:
                await t1.close()
                await t2.close()

        run(scenario())

    def test_no_bound_means_no_accounting(self):
        async def scenario():
            t1, t2, received = await start_pair()  # max_queue=None
            try:
                for i in range(100):
                    t1.send(2, i)
                assert not t1.congested
                assert t1.backpressure_events == 0
                await drain(received, 2, 100)
            finally:
                await t1.close()
                await t2.close()

        run(scenario())


class TestLifecycle:
    def test_close_awaits_reader_tasks(self):
        """Regression: close() must await (not just cancel) reader tasks,
        or the loop shuts down with pending tasks and warns."""

        async def scenario():
            t1, t2, received = await start_pair()
            t1.send(2, "wake")
            await drain(received, 2, 1)
            assert t2._reader_tasks  # connection established a reader
            await t1.close()
            await t2.close()
            assert not t1._reader_tasks and not t2._reader_tasks
            assert not t1._writer_tasks and not t2._writer_tasks
            leftovers = [
                task for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            assert leftovers == []

        run(scenario())

    def test_corrupt_frame_drops_connection_but_transport_survives(self, caplog):
        """A corrupt frame over a raw socket is logged with the peer's
        identity and that connection is closed deliberately; other
        connections keep flowing."""

        async def scenario():
            t1, t2, received = await start_pair()
            try:
                reader, writer = await asyncio.open_connection(t2.host, t2.port)
                junk = struct.pack("!q", 9) + bytes([250]) + b"garbage"
                writer.write(struct.pack("!I", len(junk)) + junk)
                await writer.drain()
                assert await reader.read() == b""  # server closed on us
                writer.close()
                t1.send(2, "still alive")
                await drain(received, 2, 1)
                assert received[2] == [(1, "still alive")]
            finally:
                await t1.close()
                await t2.close()

        import logging

        with caplog.at_level(logging.WARNING, logger="repro.net.transport"):
            run(scenario())
        assert any("dropping connection" in r.message for r in caplog.records)


class TestFraming:
    def test_read_frame_round_trip(self):
        async def scenario():
            reader = asyncio.StreamReader()
            frame = encode_frame(9, ["x", 1])
            reader.feed_data(frame)
            reader.feed_eof()
            sender, msg = await read_frame(reader)
            assert sender == 9 and msg == ["x", 1]

        run(scenario())

    def test_partial_frame_waits(self):
        async def scenario():
            reader = asyncio.StreamReader()
            frame = encode_frame(1, "payload")
            reader.feed_data(frame[:3])

            async def feed_rest():
                await asyncio.sleep(0.02)
                reader.feed_data(frame[3:])

            feeder = asyncio.ensure_future(feed_rest())
            sender, msg = await read_frame(reader)
            await feeder
            assert msg == "payload"

        run(scenario())

    def test_eof_mid_frame_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(1, "x")[:5])
            reader.feed_eof()
            with pytest.raises(asyncio.IncompleteReadError):
                await read_frame(reader)

        run(scenario())
