"""Fault plans: validation against the f bound, application to a simulator."""

import random

import pytest

from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.sim import ConstantDelay, Simulator
from repro.sim.faults import CrashSpec, FaultPlan


@pytest.fixture
def config():
    return ClusterConfig.build(num_groups=3, group_size=3, num_clients=1)


class TestFaultPlan:
    def test_none_plan_is_empty(self, config):
        plan = FaultPlan.none()
        plan.validate(config)
        assert plan.crashed_pids == set()

    def test_crash_leaders(self, config):
        plan = FaultPlan.crash_leaders(config, [0, 2], at=0.5)
        assert plan.crashed_pids == {0, 6}
        assert all(spec.at == 0.5 for spec in plan.crashes)

    def test_validate_rejects_quorum_loss(self, config):
        plan = FaultPlan(crashes=[CrashSpec(0, 0.1), CrashSpec(1, 0.2)])
        with pytest.raises(ConfigError):
            plan.validate(config)

    def test_validate_accepts_f_per_group(self, config):
        plan = FaultPlan(crashes=[CrashSpec(0, 0.1), CrashSpec(3, 0.1), CrashSpec(8, 0.1)])
        plan.validate(config)

    def test_validate_rejects_duplicate_pid(self):
        """Regression: two specs for one pid used to double-count toward the
        per-group budget yet still describe only ONE real crash — with
        f >= 2 the duplicate sneaked past validation.  Duplicates are now
        rejected outright."""
        config = ClusterConfig.build(num_groups=1, group_size=5)  # f = 2
        plan = FaultPlan(crashes=[CrashSpec(0, 0.1), CrashSpec(0, 0.2)])
        with pytest.raises(ConfigError, match="more than once"):
            plan.validate(config)

    def test_crash_leaders_collapses_duplicate_groups(self, config):
        plan = FaultPlan.crash_leaders(config, [0, 0, 2, 2], at=0.5)
        assert plan.crashed_pids == {0, 6}
        assert len(plan.crashes) == 2
        plan.validate(config)  # dedup keeps the plan within the f bound

    def test_random_crashes_respect_f(self, config):
        for seed in range(20):
            rng = random.Random(seed)
            plan = FaultPlan.random_crashes(config, rng, max_total=5, window=(0.0, 1.0))
            plan.validate(config)  # must never raise
            assert len(plan.crashes) <= 3  # f=1 per group, 3 groups

    def test_random_crashes_spare_pid(self, config):
        for seed in range(10):
            rng = random.Random(seed)
            plan = FaultPlan.random_crashes(
                config, rng, max_total=9, window=(0.0, 1.0), spare_pid=4
            )
            assert 4 not in plan.crashed_pids

    def test_apply_schedules_crashes(self, config):
        sim = Simulator(ConstantDelay(0.001))
        for pid in config.all_members:
            sim.add_process(pid, lambda rt: type("P", (), {"on_message": lambda *_: None})())
        plan = FaultPlan(crashes=[CrashSpec(0, 0.25)])
        plan.apply(sim)
        sim.run()
        assert not sim.alive(0)
        assert sim.trace.crashes == [(0.25, 0)]
