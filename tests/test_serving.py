"""The serving layer: read-at-watermark, fallbacks, and the checker.

Three batteries:

* a unit battery for the linearizability checker itself, on hand-built
  histories where each violation class is planted deliberately;
* randomized sharded read/write conformance runs through
  :func:`run_serving_workload`, verified end to end;
* the lane-leader-crash scenario — reads against the dead replica must
  fall back (never return stale data) and the full history must still
  pass the checker.
"""

import dataclasses
import random

import pytest

from tests.conftest import FAST_FD
from repro.apps import BankCluster, KvStoreCluster
from repro.apps.kvstore import KvCommand
from repro.checking.history import History
from repro.checking.linearizability import (
    ReadRecord,
    WriteRecord,
    assert_linearizable,
    check_linearizability,
    check_read_conformance,
    check_read_your_writes,
    check_realtime_freshness,
    check_session_monotonic,
    serving_records,
)
from repro.config import ClusterConfig
from repro.errors import PropertyViolation
from repro.protocols import WbCastProcess
from repro.serving import (
    ReadMsg,
    TenantSpec,
    attach_kv_replicas,
    run_serving_workload,
)
from repro.sim.faults import CrashSpec, FaultPlan
from repro.types import AmcastMessage


# -- hand-built histories for the checker unit battery ------------------------


def _kv_history():
    """One group, two puts to ``x`` (values 1 then 2, versions 1 then 2)."""
    config = ClusterConfig.build(num_groups=1, group_size=3, num_clients=2)
    m1 = AmcastMessage(
        mid=(10, 0), dests=frozenset({0}), payload=KvCommand("put", (("x", 1),))
    )
    m2 = AmcastMessage(
        mid=(10, 1), dests=frozenset({0}), payload=KvCommand("put", (("x", 2),))
    )
    deliveries = {
        pid: [(0.001, m1), (0.002, m2)] for pid in config.members(0)
    }
    history = History(
        config=config,
        multicasts={m.mid: (10, 0.0, m) for m in (m1, m2)},
        deliveries=deliveries,
        crashed=set(),
    )
    return config, history


def _read(session, rid, index, items, invoked_at, completed_at, keys=("x",)):
    return ReadRecord(
        session=session,
        rid=rid,
        gid=0,
        keys=keys,
        invoked_at=invoked_at,
        completed_at=completed_at,
        index=index,
        items=items,
    )


class TestCheckerBattery:
    def test_conformance_accepts_ground_truth(self):
        _config, history = _kv_history()
        reads = [
            _read(20, 1, index=1, items=(("x", 1, 1),), invoked_at=0.003, completed_at=0.004),
            _read(20, 2, index=2, items=(("x", 2, 2),), invoked_at=0.005, completed_at=0.006),
        ]
        assert check_read_conformance(history, reads).ok

    def test_conformance_catches_wrong_value(self):
        _config, history = _kv_history()
        bad = _read(20, 1, index=2, items=(("x", 1, 1),), invoked_at=0.003, completed_at=0.004)
        result = check_read_conformance(history, [bad])
        assert not result.ok and "ground truth" in result.describe()

    def test_conformance_catches_index_beyond_sequence(self):
        _config, history = _kv_history()
        bad = _read(20, 1, index=9, items=(), invoked_at=0.003, completed_at=0.004)
        result = check_read_conformance(history, [bad])
        assert not result.ok and "beyond" in result.describe()

    def test_monotonic_catches_index_regression(self):
        r1 = _read(20, 1, index=2, items=(("x", 2, 2),), invoked_at=0.003, completed_at=0.004)
        r2 = _read(20, 2, index=1, items=(("x", 1, 1),), invoked_at=0.005, completed_at=0.006)
        result = check_session_monotonic([r1, r2])
        assert not result.ok and "went backwards" in result.describe()

    def test_monotonic_allows_concurrent_reads(self):
        # r2 invoked before r1 completed: no order obligation either way.
        r1 = _read(20, 1, index=2, items=(("x", 2, 2),), invoked_at=0.003, completed_at=0.010)
        r2 = _read(20, 2, index=1, items=(("x", 1, 1),), invoked_at=0.004, completed_at=0.005)
        assert check_session_monotonic([r1, r2]).ok

    def test_read_your_writes_catches_uncovered_own_write(self):
        _config, history = _kv_history()
        w = WriteRecord(
            session=20, mid=(10, 1), gid=0, key="x", invoked_at=0.0, completed_at=0.002
        )
        stale = _read(20, 1, index=1, items=(("x", 1, 1),), invoked_at=0.003, completed_at=0.004)
        result = check_read_your_writes(history, [stale], [w])
        assert not result.ok and "does not cover" in result.describe()

    def test_read_your_writes_equal_timestamps_are_concurrent(self):
        # Completion and invocation at the same virtual instant: the sim
        # runs the two callbacks in arbitrary order, so no obligation.
        _config, history = _kv_history()
        w = WriteRecord(
            session=20, mid=(10, 1), gid=0, key="x", invoked_at=0.0, completed_at=0.003
        )
        r = _read(20, 1, index=1, items=(("x", 1, 1),), invoked_at=0.003, completed_at=0.004)
        assert check_read_your_writes(history, [r], [w]).ok

    def test_realtime_freshness_catches_cross_session_staleness(self):
        _config, history = _kv_history()
        w = WriteRecord(
            session=21, mid=(10, 1), gid=0, key="x", invoked_at=0.0, completed_at=0.002
        )
        stale = _read(20, 1, index=1, items=(("x", 1, 1),), invoked_at=0.003, completed_at=0.004)
        result = check_realtime_freshness(history, [stale], [w])
        assert not result.ok and "misses write" in result.describe()

    def test_full_battery_passes_a_clean_history(self):
        _config, history = _kv_history()
        reads = [
            _read(20, 1, index=2, items=(("x", 2, 2),), invoked_at=0.003, completed_at=0.004),
        ]
        writes = [
            WriteRecord(
                session=21, mid=(10, 1), gid=0, key="x", invoked_at=0.0, completed_at=0.002
            )
        ]
        assert all(c.ok for c in check_linearizability(history, reads, writes))
        assert_linearizable(history, reads, writes)

    def test_assert_linearizable_raises(self):
        _config, history = _kv_history()
        writes = [
            WriteRecord(
                session=21, mid=(10, 1), gid=0, key="x", invoked_at=0.0, completed_at=0.002
            )
        ]
        stale = _read(20, 1, index=1, items=(("x", 1, 1),), invoked_at=0.003, completed_at=0.004)
        with pytest.raises(PropertyViolation):
            assert_linearizable(history, [stale], writes)


# -- replica-side mechanics ---------------------------------------------------


class _FakeTimer:
    def __init__(self):
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class _FakeRuntime:
    def __init__(self):
        self.timers = []

    def set_timer(self, delay, fn):
        timer = _FakeTimer()
        self.timers.append((delay, fn, timer))
        return timer

    def fire_all(self):
        pending, self.timers = self.timers, []
        for _delay, fn, timer in pending:
            if not timer.cancelled:
                fn()


class _FakeProc:
    def __init__(self, pid, gid):
        self.pid = pid
        self.gid = gid
        self.runtime = _FakeRuntime()
        self._handlers = {}
        self.sent = []

    def deliver(self, m):
        pass

    def send(self, dest, msg):
        self.sent.append((dest, msg))


class TestReplicaParking:
    def _replica(self, hold_stale):
        proc = _FakeProc(pid=0, gid=0)
        replicas = attach_kv_replicas({0: proc}, num_groups=1, hold_stale=hold_stale)
        return proc, replicas[0]

    def test_parked_read_is_served_by_the_covering_delivery(self):
        proc, replica = self._replica(hold_stale=0.1)
        proc._handlers[ReadMsg](99, ReadMsg(1, 0, ("x",), min_index=1))
        assert proc.sent == []  # parked, not declined
        proc.deliver(
            AmcastMessage(
                mid=(9, 0), dests=frozenset({0}), payload=KvCommand("put", (("x", 7),))
            )
        )
        (dest, reply), = proc.sent
        assert dest == 99 and not reply.stale and reply.items == (("x", 7, 1),)
        assert replica.served == 1 and replica.declined == 0

    def test_parked_read_declines_when_the_hold_expires(self):
        proc, replica = self._replica(hold_stale=0.1)
        proc._handlers[ReadMsg](99, ReadMsg(1, 0, ("x",), min_index=5))
        proc.runtime.fire_all()
        (_dest, reply), = proc.sent
        assert reply.stale and replica.declined == 1
        # A late delivery must not answer the already-declined read twice.
        proc.deliver(
            AmcastMessage(
                mid=(9, 0), dests=frozenset({0}), payload=KvCommand("put", (("x", 7),))
            )
        )
        assert len(proc.sent) == 1

    def test_without_hold_stale_a_stale_read_declines_immediately(self):
        proc, replica = self._replica(hold_stale=None)
        proc._handlers[ReadMsg](99, ReadMsg(1, 0, ("x",), min_index=1))
        (_dest, reply), = proc.sent
        assert reply.stale and replica.declined == 1


# -- end-to-end randomized conformance ----------------------------------------


class TestRandomizedConformance:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sharded_read_write_mix_is_linearizable(self, seed):
        config = ClusterConfig.build(
            num_groups=2, group_size=3, num_clients=4, shards_per_group=2
        )
        rng = random.Random(seed)
        result = run_serving_workload(
            WbCastProcess,
            config=config,
            ops_per_session=40,
            read_ratio=rng.uniform(0.4, 0.8),
            skew=rng.choice([0.0, 0.9]),
            num_keys=32,
            window=2,
            read_timeout=0.05,
            seed=seed,
        )
        assert all(s.done for s in result.sessions)
        failed = [c.describe() for c in result.check() if not c.ok]
        assert not failed, failed
        lin = result.check_serving()
        assert all(c.ok for c in lin), [c.describe() for c in lin if not c.ok]
        assert result.reads_local > 0

    def test_zero_read_ordering_at_ninety_percent_reads(self):
        result = run_serving_workload(
            WbCastProcess,
            num_sessions=4,
            ops_per_session=50,
            read_ratio=0.9,
            window=2,
            read_timeout=0.05,
            seed=7,
        )
        assert result.reads_fallback == 0
        result.monitor.assert_zero_read_ordering()
        assert all(c.ok for c in result.check_serving())

    def test_records_round_trip_through_serving_records(self):
        result = run_serving_workload(
            WbCastProcess, ops_per_session=20, read_ratio=0.5, seed=3
        )
        reads, writes = serving_records(result.sessions)
        assert reads and writes
        assert_linearizable(result.history(), reads, writes)


# -- crash fallback -----------------------------------------------------------


class TestCrashFallback:
    def test_lane_leader_crash_reads_fall_back_and_stay_linearizable(self):
        config = ClusterConfig.build(
            num_groups=2, group_size=3, num_clients=4, shards_per_group=2
        )
        victim = config.lane_leader(0, 0)
        result = run_serving_workload(
            WbCastProcess,
            config=config,
            ops_per_session=25,
            read_ratio=0.9,
            window=1,
            read_timeout=0.02,
            retry_timeout=0.05,
            seed=42,
            fault_plan=FaultPlan(crashes=[CrashSpec(victim, 0.03)]),
            attach_fd=True,
            fd_options=FAST_FD,
            max_time=60.0,
        )
        assert all(s.done for s in result.sessions)
        # The crashed replica's readers time out and fall back — the
        # fallback path answered them, never a stale local reply.
        assert result.reads_fallback > 0
        failed = [c.describe() for c in result.check(quiescent=False) if not c.ok]
        assert not failed, failed
        lin = result.check_serving()
        assert all(c.ok for c in lin), [c.describe() for c in lin if not c.ok]

    def test_sessions_avoid_a_suspected_replica(self):
        config = ClusterConfig.build(num_groups=1, group_size=3, num_clients=2)
        victim = config.members(0)[0]
        result = run_serving_workload(
            WbCastProcess,
            config=config,
            ops_per_session=30,
            read_ratio=0.9,
            read_timeout=0.02,
            retry_timeout=0.05,
            seed=5,
            fault_plan=FaultPlan(crashes=[CrashSpec(victim, 0.02)]),
            attach_fd=True,
            fd_options=FAST_FD,
            max_time=60.0,
        )
        assert all(s.done for s in result.sessions)
        avoided = [s for s in result.sessions if victim in s._avoid]
        assert avoided  # at least one session suspected the dead replica
        for s in avoided:
            # After the suspicion, its local reads go to live replicas.
            later = [r for r in s.reads if r.path == "local" and r.replica == victim]
            assert all(not r.done or r.index is not None for r in later)


# -- tenants ------------------------------------------------------------------


class TestTenantAdmission:
    def test_admission_caps_bound_outstanding_writes(self):
        tenants = (
            TenantSpec("gold", weight=3, max_outstanding=2),
            TenantSpec("bronze", weight=1, max_outstanding=1),
        )
        result = run_serving_workload(
            WbCastProcess,
            num_sessions=4,
            ops_per_session=30,
            read_ratio=0.2,
            window=4,
            read_timeout=0.05,
            tenants=tenants,
            seed=11,
        )
        assert all(s.done for s in result.sessions)
        assert result.gate is not None
        assert result.gate.peak["gold"] <= 2
        assert result.gate.peak["bronze"] <= 1
        assert all(c.ok for c in result.check_serving())

    def test_uncapped_single_tenant_runs_unconstrained(self):
        result = run_serving_workload(
            WbCastProcess, ops_per_session=20, read_ratio=0.5, seed=1
        )
        assert result.gate is None
        assert all(s.done for s in result.sessions)


# -- app front ends -----------------------------------------------------------


class TestAppServingPaths:
    def test_bank_balance_reads_through_the_serving_path(self):
        bank = BankCluster({"a": 100, "b": 50}, num_groups=2)
        bank.transfer("a", "b", 30)
        bank.settle()
        assert bank.balance("a") == 70
        assert bank.balance("b") == 80
        assert bank.balance("a") == bank.ledger_balance("a")
        assert bank.total_balance() == 150

    def test_bank_balance_agrees_on_every_replica(self):
        bank = BankCluster({"a": 10, "b": 20}, num_groups=2)
        bank.transfer("b", "a", 5)
        bank.settle()
        for replica in range(3):
            assert bank.balance("a", replica_index=replica) == 15

    def test_kvstore_version_stamps_grow_with_rewrites(self):
        store = KvStoreCluster(num_groups=2)
        store.put("v", 1)
        store.sync()
        _value, v1 = store.get_versioned("v")
        store.put("v", 2)
        store.sync()
        value, v2 = store.get_versioned("v")
        assert value == 2 and v2 > v1 > 0
        assert store.get_versioned("never-written") == (None, 0)
        assert store.replicas_converged()


# -- bench smoke --------------------------------------------------------------


class TestBenchServing:
    def _tiny_sweep(self, **overrides):
        from repro.bench import serving as bench_serving

        sweep = bench_serving.quick_sweep()
        return dataclasses.replace(
            sweep,
            ops_per_session=12,
            sessions=2,
            tenant_counts=(1,),
            skews=(0.0,),
            net_sessions=2,
            net_ops=6,
            **overrides,
        )

    def test_quick_sim_point_meets_acceptance(self):
        from repro.bench import serving as bench_serving

        sweep = self._tiny_sweep()
        points = bench_serving.run_serving(sweep)
        assert points
        for p in points:
            assert p.checks_ok and p.linearizable
            assert p.read_ordering == 0
        crash = bench_serving.run_crash_point(sweep)
        assert crash["checks_ok"] and crash["linearizable"]
        assert not bench_serving.acceptance_failures(points, crash)
        payload = bench_serving.json_payload(sweep, points, crash)
        assert payload["points"] and payload["crash_run"]["linearizable"]
        assert payload["headline"]["linearizable"]

    def test_quick_net_point_runs_over_sockets(self):
        from repro.bench import serving as bench_serving

        point = bench_serving.run_net_point(self._tiny_sweep(), read_ratio=0.9)
        assert point.runtime == "net"
        assert point.checks_ok and point.linearizable
        assert point.ops > 0

    def test_cli_registers_bench_serving(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        args = parser.parse_args(
            ["bench-serving", "--quick", "--read-ratio", "0.9", "--skew", "0",
             "--tenants", "2"]
        )
        assert args.command == "bench-serving"
        assert tuple(args.read_ratio) == (0.9,)
