"""Cluster configuration: disjoint 2f+1 groups plus clients (Section II)."""

import pytest
from hypothesis import given, strategies as st

from repro.config import ClusterConfig
from repro.errors import ConfigError


class TestBuild:
    def test_dense_layout(self):
        config = ClusterConfig.build(num_groups=3, group_size=3, num_clients=2)
        assert config.groups == ((0, 1, 2), (3, 4, 5), (6, 7, 8))
        assert config.clients == (9, 10)

    def test_rejects_even_group_size(self):
        with pytest.raises(ConfigError):
            ClusterConfig.build(num_groups=1, group_size=2)

    def test_rejects_empty_cluster(self):
        with pytest.raises(ConfigError):
            ClusterConfig(groups=())

    def test_rejects_overlapping_groups(self):
        with pytest.raises(ConfigError):
            ClusterConfig(groups=((0, 1, 2), (2, 3, 4)))

    def test_rejects_client_in_group(self):
        with pytest.raises(ConfigError):
            ClusterConfig(groups=((0, 1, 2),), clients=(2,))

    def test_rejects_even_membership_list(self):
        with pytest.raises(ConfigError):
            ClusterConfig(groups=((0, 1),))


class TestQueries:
    @pytest.fixture
    def config(self):
        return ClusterConfig.build(num_groups=2, group_size=5, num_clients=3)

    def test_group_of(self, config):
        assert config.group_of(0) == 0
        assert config.group_of(7) == 1
        with pytest.raises(ConfigError):
            config.group_of(10)  # a client, not a member

    def test_f_and_quorum(self, config):
        assert config.f(0) == 2
        assert config.quorum_size(0) == 3

    def test_members_and_all(self, config):
        assert config.members(1) == (5, 6, 7, 8, 9)
        assert len(config.all_members) == 10
        assert len(config.all_processes) == 13

    def test_default_leaders(self, config):
        assert config.default_leader(0) == 0
        assert config.default_leader(1) == 5
        assert config.default_leaders() == {0: 0, 1: 5}

    def test_leaders_for_sorted_dedup(self, config):
        assert config.leaders_for([1, 0, 1]) == [0, 5]

    def test_is_member(self, config):
        assert config.is_member(9)
        assert not config.is_member(12)


@given(
    num_groups=st.integers(1, 6),
    f=st.integers(0, 2),
    num_clients=st.integers(0, 5),
)
def test_quorum_majority_property(num_groups, f, num_clients):
    """f+1 is always a strict majority of 2f+1, and two quorums intersect."""
    config = ClusterConfig.build(num_groups, 2 * f + 1, num_clients)
    for gid in config.group_ids:
        q = config.quorum_size(gid)
        n = len(config.members(gid))
        assert 2 * q > n
        assert q + q - n >= 1  # any two quorums share a process


class TestBatchingOptions:
    """Validation of the batching knobs, including the adaptive linger."""

    def test_defaults_are_off(self):
        from repro.config import BATCHING_OFF, BatchingOptions

        assert not BatchingOptions().enabled
        assert BATCHING_OFF.linger_mode == "fixed"

    def test_adaptive_mode_accepted(self):
        from repro.config import BatchingOptions

        b = BatchingOptions(
            max_batch=8, max_linger=0.002, linger_mode="adaptive",
            min_linger=0.0005, ewma_alpha=0.5,
        )
        assert b.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_linger": -0.1},
            {"pipeline_depth": 0},
            {"linger_mode": "auto"},
            {"min_linger": -0.001},
            {"max_linger": 0.001, "min_linger": 0.002},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        from repro.config import BatchingOptions

        with pytest.raises(ConfigError):
            BatchingOptions(**kwargs)
