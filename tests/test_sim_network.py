"""Delay models: constant, uniform, site topologies, partial synchrony."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.sim.network import (
    WAN_ONE_WAY,
    BandwidthDelay,
    ConstantDelay,
    PartialSynchrony,
    SiteTopology,
    UniformDelay,
    lan_topology,
    wan_topology,
)

RNG = random.Random(0)


class TestConstantDelay:
    def test_constant(self):
        model = ConstantDelay(0.01)
        assert model.delay(0, 1, 20, 0.0, RNG) == 0.01
        assert model.bound() == 0.01

    def test_self_messages_local(self):
        assert ConstantDelay(0.01).delay(3, 3, 20, 0.0, RNG) == 0.0
        assert ConstantDelay(0.01, local=0.002).delay(3, 3, 20, 0.0, RNG) == 0.002

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            ConstantDelay(-1.0)


class TestUniformDelay:
    def test_within_bounds(self):
        model = UniformDelay(0.001, 0.005)
        rng = random.Random(7)
        for _ in range(200):
            d = model.delay(0, 1, 20, 0.0, rng)
            assert 0.001 <= d <= 0.005
        assert model.bound() == 0.005

    def test_self_free(self):
        assert UniformDelay(0.001, 0.005).delay(2, 2, 20, 0.0, RNG) == 0.0

    def test_rejects_inverted_range(self):
        with pytest.raises(ConfigError):
            UniformDelay(0.01, 0.001)


class TestSiteTopology:
    def test_symmetric_fill(self):
        topo = SiteTopology({0: 0, 1: 1}, {(0, 1): 0.03})
        assert topo.delay(0, 1, 20, 0.0, RNG) == 0.03
        assert topo.delay(1, 0, 20, 0.0, RNG) == 0.03

    def test_intra_site(self):
        topo = SiteTopology({0: 0, 1: 0}, {(0, 1): 0.03}, intra_site=0.0001)
        assert topo.delay(0, 1, 20, 0.0, RNG) == 0.0001

    def test_unknown_process_raises(self):
        topo = SiteTopology({0: 0}, {(0, 0): 0.0})
        with pytest.raises(ConfigError):
            topo.delay(0, 99, 20, 0.0, RNG)

    def test_jitter_bounded(self):
        topo = SiteTopology({0: 0, 1: 1}, {(0, 1): 0.03}, jitter=0.1)
        rng = random.Random(3)
        for _ in range(100):
            d = topo.delay(0, 1, 20, 0.0, rng)
            assert 0.027 <= d <= 0.033
        assert topo.bound() >= 0.033

    def test_lan_helper_uniform(self):
        topo = lan_topology(range(5), one_way=0.00005)
        assert topo.delay(0, 4, 20, 0.0, RNG) == pytest.approx(0.00005)

    def test_wan_helper_uses_paper_rtts(self):
        # R1=Oregon, R2=N.Virginia, R3=England; one-way = RTT/2.
        topo = wan_topology({0: 0, 1: 1, 2: 2})
        assert topo.delay(0, 1, 20, 0.0, RNG) == pytest.approx(0.030)
        assert topo.delay(1, 2, 20, 0.0, RNG) == pytest.approx(0.0375)
        assert topo.delay(0, 2, 20, 0.0, RNG) == pytest.approx(0.065)
        assert WAN_ONE_WAY[(0, 2)] == 0.065


class TestBandwidthDelay:
    def test_adds_serialisation_term(self):
        model = BandwidthDelay(ConstantDelay(0.01), bytes_per_second=1_000_000)
        assert model.delay(0, 1, 1000, 0.0, RNG) == pytest.approx(0.011)

    def test_self_messages_unaffected(self):
        model = BandwidthDelay(ConstantDelay(0.01), bytes_per_second=1000)
        assert model.delay(2, 2, 10**6, 0.0, RNG) == 0.0


class TestPartialSynchrony:
    def test_bounded_after_gst(self):
        model = PartialSynchrony(ConstantDelay(0.01), gst=1.0, max_inflation=10)
        assert model.delay(0, 1, 20, 1.0, RNG) == 0.01
        assert model.delay(0, 1, 20, 5.0, RNG) == 0.01
        assert model.bound() == 0.01

    def test_inflated_but_finite_before_gst(self):
        model = PartialSynchrony(ConstantDelay(0.01), gst=1.0, max_inflation=10)
        rng = random.Random(1)
        for _ in range(100):
            d = model.delay(0, 1, 20, 0.5, rng)
            assert 0.01 <= d <= 0.1

    @given(now=st.floats(0, 10), gst=st.floats(0, 10))
    def test_never_below_base(self, now, gst):
        model = PartialSynchrony(ConstantDelay(0.01), gst=gst)
        assert model.delay(0, 1, 20, now, random.Random(0)) >= 0.01
