"""Sharded groups and concurrent sessions over the asyncio TCP runtime.

Two satellite batteries of the sharding PR:

* **multi-session ingress** — a ``LocalCluster`` fronts several
  concurrent :class:`AmcastClient` sessions; the fairness regression
  pins the property that a modest session is not starved at the leader
  ingress while an aggressive one floods it;
* **sharded leader-kill** — killing one lane's leader on real sockets
  must stall only that lane: the failure detector re-elects it, the
  session resubmits with stable ids, and the sibling lane keeps its
  epoch-0 ballot throughout.

Every scenario is ``asyncio.wait_for``-bounded so a wedged cluster fails
the test instead of hanging the suite.
"""

import asyncio

import pytest

from repro.checking import check_all
from repro.client import AmcastClientOptions
from repro.config import BatchingOptions, ClusterConfig
from repro.failure.detector import MonitorOptions
from repro.net import LocalCluster
from repro.protocols import WbCastProcess
from repro.protocols.wbcast import WbCastOptions

pytestmark = pytest.mark.net

#: Real-time failure-detector knobs for localhost sockets.
NET_FD = MonitorOptions(
    heartbeat_interval=0.05, suspect_timeout=0.25, stagger=0.1, max_timeout=2.0
)

INGRESS = BatchingOptions(max_batch=8, max_linger=0.003)


def expected_deliveries(config, handles):
    return sum(len(config.members(g)) for h in handles for g in h.message.dests)


def assert_no_duplicate_deliveries(cluster):
    per_pid = {}
    for pid, m, _t in cluster.deliveries:
        key = (pid, m.mid)
        per_pid[key] = per_pid.get(key, 0) + 1
    dups = {k: v for k, v in per_pid.items() if v > 1}
    assert not dups, dups


def assert_checks(cluster, quiescent):
    failed = [
        c.describe() for c in check_all(cluster.history(), quiescent=quiescent) if not c.ok
    ]
    assert not failed, failed


class TestMultiSession:
    def test_two_sessions_share_one_cluster(self):
        async def scenario():
            # One configured client only: the second session must mint a
            # fresh id above every configured process (members AND
            # clients) — seeding from the members alone would hand both
            # sessions the same pid and silently cross their ack traffic.
            config = ClusterConfig.build(2, 3, 1, shards_per_group=2)
            cluster = LocalCluster(
                config,
                WbCastProcess,
                num_sessions=2,
                client_options=AmcastClientOptions(retry_timeout=0.25, ingress=INGRESS),
            )
            await cluster.start()
            try:
                assert len({s.pid for s in cluster.sessions}) == 2
                handles = [
                    cluster.multicast({0, 1}, session=i % 2) for i in range(12)
                ]
                done = await cluster.wait_quiescent(
                    expected_deliveries(config, handles), timeout=20.0
                )
                assert done
                assert all(h.completed for h in handles)
                assert_no_duplicate_deliveries(cluster)
                assert_checks(cluster, quiescent=True)
                # Message ids stay disjoint across sessions (exactly-once
                # hinges on per-session id spaces).
                assert set(cluster.sessions[0].sent).isdisjoint(
                    cluster.sessions[1].sent
                )
            finally:
                await cluster.stop()

        asyncio.run(asyncio.wait_for(scenario(), timeout=60.0))

    def test_modest_session_not_starved_by_flood(self):
        """Per-session fairness at the leader ingress: while session 1
        floods the leaders with a wide window, session 0's handful of
        submissions must still complete promptly — a leader serving one
        session's queue exhaustively before touching the other's would
        blow the (generous) bound and fail here."""

        async def scenario():
            config = ClusterConfig.build(2, 3, 2, shards_per_group=2)
            cluster = LocalCluster(
                config,
                WbCastProcess,
                num_sessions=2,
                client_options=[
                    AmcastClientOptions(retry_timeout=0.5, window=2),
                    AmcastClientOptions(
                        retry_timeout=0.5, window=16, ingress=INGRESS
                    ),
                ],
            )
            await cluster.start()
            try:
                flood = [cluster.multicast({0, 1}, session=1) for _ in range(60)]
                await asyncio.sleep(0)  # let the flood hit the wire first
                modest = [cluster.multicast({0, 1}, session=0) for _ in range(6)]
                done, pending = await asyncio.wait(
                    [
                        asyncio.ensure_future(
                            cluster.wait_partial(h.mid, timeout=20.0)
                        )
                        for h in modest
                    ],
                    timeout=25.0,
                )
                assert not pending and all(f.result() for f in done), (
                    f"modest session starved: "
                    f"{sum(1 for h in modest if h.completed)}/6 completed "
                    f"while flood did {sum(1 for h in flood if h.completed)}/60"
                )
                # The flood itself must still finish (fairness, not theft).
                for h in flood:
                    assert await cluster.wait_partial(h.mid, timeout=20.0)
                assert_no_duplicate_deliveries(cluster)
                assert_checks(cluster, quiescent=False)
            finally:
                await cluster.stop()

        asyncio.run(asyncio.wait_for(scenario(), timeout=120.0))


class TestShardedLeaderKill:
    def test_lane_leader_kill_recovers_that_lane_only(self):
        async def scenario():
            config = ClusterConfig.build(2, 3, 1, shards_per_group=2)
            cluster = LocalCluster(
                config,
                WbCastProcess,
                options=WbCastOptions(retry_interval=0.2),
                attach_fd=True,
                fd_options=NET_FD,
                client_options=AmcastClientOptions(retry_timeout=0.25, ingress=INGRESS),
            )
            await cluster.start()
            try:
                session_pid = cluster.sessions[0].pid
                # The session's first block of submissions all ride one
                # lane; kill that lane's group-0 leader mid-burst.
                lane = config.lane_of((session_pid, 0))
                victim = config.lane_leader(0, lane)
                sibling = 1 - lane
                warm = cluster.multicast({0, 1})
                assert await cluster.wait_partial(warm.mid, timeout=10.0)
                handles = [cluster.multicast({0, 1}) for _ in range(6)]
                await cluster.kill(victim)
                for h in handles:
                    assert await cluster.wait_partial(h.mid, timeout=20.0), (
                        f"lane-{lane} submission {h.mid} never delivered "
                        f"after its leader {victim} was killed"
                    )
                assert_no_duplicate_deliveries(cluster)
                assert_checks(cluster, quiescent=False)
                survivors = [
                    p for pid, p in cluster.processes.items()
                    if pid in config.members(0) and pid != victim
                ]
                # The killed lane re-elected away from the victim...
                assert all(
                    p.lanes[lane].cur_leader[0] != victim for p in survivors
                )
                # ...while the sibling lane never left its initial epoch.
                assert all(p.lanes[sibling].cballot.round == 0 for p in survivors)
                # The session learned the new lane leader from the traffic.
                assert cluster.sessions[0].lane_leader[(0, lane)] != victim
            finally:
                await cluster.stop()

        asyncio.run(asyncio.wait_for(scenario(), timeout=90.0))
