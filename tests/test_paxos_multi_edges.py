"""Multi-Paxos replica edge paths: commit-before-entry, status callbacks,
promise merging with committed prefixes."""

import pytest

from repro.config import ClusterConfig
from repro.paxos import NOOP, PaxosReplica, ReplicaStatus
from repro.paxos.messages import PaxosAccept, PaxosCommit, PaxosPrepare, PaxosPromise
from repro.sim import ConstantDelay, Simulator
from repro.types import Ballot

from tests.test_paxos import PaxosHost, build_group


class TestExecutionOrdering:
    def test_commit_before_entry_waits(self):
        """A COMMIT referencing a slot we lack must not execute anything
        until the entry arrives (possible across leader changes)."""
        sim, config, hosts = build_group()
        follower = hosts[2]
        bal = Ballot(0, 0)
        # Commit index 0 arrives before the accept for slot 0.
        follower.on_message(0, PaxosCommit(0, 0))
        assert follower.executed == []
        follower.on_message(0, PaxosAccept(0, bal, 0, "late-entry"))
        follower.replica._execute_ready()
        assert follower.executed == [(0, "late-entry")]

    def test_out_of_order_accepts_execute_in_order(self):
        sim, config, hosts = build_group()
        follower = hosts[2]
        bal = Ballot(0, 0)
        follower.on_message(0, PaxosAccept(0, bal, 1, "b"))
        follower.on_message(0, PaxosAccept(0, bal, 0, "a"))
        follower.on_message(0, PaxosCommit(0, 1))
        assert follower.executed == [(0, "a"), (1, "b")]

    def test_noop_is_skipped_in_execution(self):
        sim, config, hosts = build_group()
        follower = hosts[2]
        bal = Ballot(0, 0)
        follower.on_message(0, PaxosAccept(0, bal, 0, NOOP))
        follower.on_message(0, PaxosAccept(0, bal, 1, "real"))
        follower.on_message(0, PaxosCommit(0, 1))
        assert follower.executed == [(1, "real")]


class TestStatusCallbacks:
    def test_follower_learns_leader_from_accept(self):
        sim, config, hosts = build_group()
        changes = []
        hosts[2].replica.on_status_change = lambda s: changes.append(s)
        # A new leader's first accept at a higher ballot demotes/updates.
        hosts[2].on_message(1, PaxosAccept(0, Ballot(1, 1), 0, "x"))
        assert hosts[2].replica.leader_hint == 1
        assert changes == []  # follower stays follower: no transition

    def test_prepare_from_self_marks_recovering(self):
        sim, config, hosts = build_group()
        changes = []
        hosts[1].replica.on_status_change = lambda s: changes.append(s)
        hosts[1].on_message(1, PaxosPrepare(0, Ballot(1, 1)))
        assert hosts[1].replica.status is ReplicaStatus.RECOVERING
        assert ReplicaStatus.RECOVERING in changes

    def test_leader_demoted_by_higher_prepare(self):
        sim, config, hosts = build_group()
        changes = []
        hosts[0].replica.on_status_change = lambda s: changes.append(s)
        hosts[0].on_message(2, PaxosPrepare(0, Ballot(3, 2)))
        assert hosts[0].replica.status is ReplicaStatus.FOLLOWER
        assert hosts[0].replica.leader_hint == 2


class TestPromiseMerging:
    def test_new_leader_inherits_commit_index(self):
        """A voter's commit index transfers: the new leader executes the
        committed prefix immediately, without re-deciding it."""
        sim, config, hosts = build_group()
        sim.schedule(0.0, lambda: hosts[0].replica.propose("a"))
        sim.schedule(0.0, lambda: hosts[0].replica.propose("b"))
        sim.run()
        # No crash needed: a direct takeover exercises the same path.
        sim.schedule(0.0, lambda: hosts[1].replica.start_recovery())
        sim.run()
        assert hosts[1].replica.is_leader()
        assert [v for _, v in hosts[1].executed] == ["a", "b"]
        # And proposing continues after the inherited prefix.
        sim.schedule(0.0, lambda: hosts[1].replica.propose("c"))
        sim.run()
        assert [v for _, v in hosts[2].executed] == ["a", "b", "c"]

    def test_stale_promise_ignored(self):
        sim, config, hosts = build_group()
        sim.schedule(0.0, lambda: hosts[1].replica.start_recovery())
        sim.run()
        assert hosts[1].replica.is_leader()
        ghost = PaxosPromise(0, Ballot(0, 0), {}, -1)
        before = hosts[1].replica.next_index
        hosts[1].on_message(2, ghost)
        assert hosts[1].replica.next_index == before


class TestOneShotClient:
    def test_scripted_schedule_fires_at_times(self):
        from repro.bench.latency_table import DELTA, _build
        from repro.protocols import WbCastProcess
        from repro.sim import ConstantDelay as CD

        sim, config, trace, tracker, clients = _build(
            WbCastProcess, CD(DELTA), [[(0.0, (0,)), (0.01, (0, 1))]]
        )
        sim.run()
        client = clients[0]
        assert len(client.sent) == 2
        times = sorted(r.t for r in trace.multicasts)
        assert times == pytest.approx([0.0, 0.01])
        assert len(client.completed) == 2
