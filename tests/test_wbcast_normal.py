"""White-box protocol, failure-free operation (Fig. 4 lines 1-31, Fig. 5)."""

import pytest

from repro.bench.harness import run_workload
from repro.config import ClusterConfig
from repro.protocols import WbCastProcess
from repro.protocols.base import MulticastMsg
from repro.protocols.wbcast import (
    AcceptAckMsg,
    AcceptMsg,
    DeliverMsg,
    Phase,
    Status,
    WbCastOptions,
)
from repro.sim import ConstantDelay, Simulator, Trace
from repro.types import Timestamp, make_message
from repro.workload import DeliveryTracker

from tests.conftest import DELTA, checks_ok


def build(config, delta=DELTA, seed=0, options=None):
    trace = Trace()
    sim = Simulator(ConstantDelay(delta), seed=seed, trace=trace)
    tracker = DeliveryTracker(config, sim=sim)
    trace.attach(tracker)
    procs = {
        pid: sim.add_process(
            pid, lambda rt, p=pid: WbCastProcess(p, config, rt, options=options)
        )
        for pid in config.all_members
    }
    client = config.clients[0]
    sim.add_process(client, lambda rt: _NullClient())
    return sim, trace, tracker, procs, client


class _NullClient:
    def on_message(self, sender, msg):
        pass


def submit(sim, config, client, m, to_leaders=True):
    targets = (
        [config.default_leader(g) for g in sorted(m.dests)]
        if to_leaders
        else [p for g in sorted(m.dests) for p in config.members(g)]
    )
    sim.record_multicast(client, m)
    for t in targets:
        sim.transmit(client, t, MulticastMsg(m))


class TestRoles:
    def test_initial_roles(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        assert procs[0].status is Status.LEADER
        assert procs[1].status is Status.FOLLOWER
        assert procs[3].status is Status.LEADER
        assert procs[0].cballot == procs[1].cballot

    def test_multicast_targets_are_leaders(self):
        config = ClusterConfig.build(2, 3, 1)
        m = make_message(6, 0, {0, 1})
        assert WbCastProcess.multicast_targets(config, config.default_leaders(), m) == [0, 3]


class TestMessageFlow:
    """The Fig. 5 collision-free flow, hop by hop."""

    def test_fig5_hop_times(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        m = make_message(client, 0, {0, 1})
        sim.schedule(0.0, lambda: submit(sim, config, client, m))
        sim.run()
        accepts = [r for r in trace.sends if isinstance(r.msg, AcceptMsg)]
        acks = [r for r in trace.sends if isinstance(r.msg, AcceptAckMsg)]
        delivers = [r for r in trace.sends if isinstance(r.msg, DeliverMsg)]
        # ACCEPTs leave leaders at 1δ, acks at 2δ, DELIVERs at 3δ.
        assert {round(r.t_send / DELTA, 6) for r in accepts} == {1.0}
        assert {round(r.t_send / DELTA, 6) for r in acks} == {2.0}
        assert {round(r.t_send / DELTA, 6) for r in delivers} == {3.0}

    def test_accept_fans_out_to_every_destination_process(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        m = make_message(client, 0, {0, 1})
        sim.schedule(0.0, lambda: submit(sim, config, client, m))
        sim.run()
        accept_dsts = {(r.src, r.dst) for r in trace.sends if isinstance(r.msg, AcceptMsg)}
        # Each of the 2 leaders sends ACCEPT to all 6 destination processes.
        assert len(accept_dsts) == 12

    def test_leaders_deliver_at_3_delta_followers_at_4(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        m = make_message(client, 0, {0, 1})
        sim.schedule(0.0, lambda: submit(sim, config, client, m))
        sim.run()
        times = {d.pid: d.t for d in trace.deliveries}
        assert times[0] == pytest.approx(3 * DELTA)  # leader g0
        assert times[3] == pytest.approx(3 * DELTA)  # leader g1
        for follower in (1, 2, 4, 5):
            assert times[follower] == pytest.approx(4 * DELTA)

    def test_single_group_message_follows_paxos_flow(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        m = make_message(client, 0, {0})
        sim.schedule(0.0, lambda: submit(sim, config, client, m))
        sim.run()
        times = {d.pid: d.t for d in trace.deliveries}
        assert times[0] == pytest.approx(3 * DELTA)
        assert set(times) == {0, 1, 2}


class TestStateMachine:
    def test_phases_progress(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        m = make_message(client, 0, {0, 1})
        sim.schedule(0.0, lambda: submit(sim, config, client, m))
        sim.run(until=1.5 * DELTA)
        assert procs[0].records[m.mid].phase is Phase.PROPOSED
        sim.run(until=2.5 * DELTA)
        assert procs[1].records[m.mid].phase is Phase.ACCEPTED
        sim.run()
        assert procs[0].records[m.mid].phase is Phase.COMMITTED
        assert procs[0].records[m.mid].gts is not None

    def test_speculative_clock_advance_at_followers(self):
        """Line 14: every destination process's clock passes the implied
        global timestamp as soon as it has the full ACCEPT set."""
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        m = make_message(client, 0, {0, 1})
        sim.schedule(0.0, lambda: submit(sim, config, client, m))
        sim.run(until=2.5 * DELTA)
        gts_time = max(
            r.msg.lts.time for r in trace.sends if isinstance(r.msg, AcceptMsg)
        )
        for pid in config.all_members:
            assert procs[pid].clock >= gts_time

    def test_global_timestamp_is_max_of_locals(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        m = make_message(client, 0, {0, 1})
        sim.schedule(0.0, lambda: submit(sim, config, client, m))
        sim.run()
        accepts = {r.msg.gid: r.msg.lts for r in trace.sends if isinstance(r.msg, AcceptMsg)}
        assert procs[0].records[m.mid].gts == max(accepts.values())

    def test_duplicate_multicast_is_idempotent(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        m = make_message(client, 0, {0, 1})
        sim.schedule(0.0, lambda: submit(sim, config, client, m))
        sim.schedule(5 * DELTA, lambda: submit(sim, config, client, m))
        sim.run()
        per_pid = {}
        for d in trace.deliveries:
            per_pid[d.pid] = per_pid.get(d.pid, 0) + 1
        assert all(count == 1 for count in per_pid.values())
        # Invariant 1: the resent ACCEPT reuses the stored timestamp.
        lts_seen = {
            r.msg.lts for r in trace.sends
            if isinstance(r.msg, AcceptMsg) and r.msg.gid == 0
        }
        assert len(lts_seen) == 1

    def test_follower_forwards_misdirected_multicast(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        m = make_message(client, 0, {0, 1})
        sim.record_multicast(client, m)
        # Send to a follower of g0 and the leader of g1.
        sim.schedule(0.0, lambda: sim.transmit(client, 1, MulticastMsg(m)))
        sim.schedule(0.0, lambda: sim.transmit(client, 3, MulticastMsg(m)))
        sim.run()
        assert len(trace.deliveries_of(m.mid)) == 6  # everyone delivers


class TestEndToEnd:
    def test_properties_and_latency_under_load(self):
        res = run_workload(WbCastProcess, num_groups=3, group_size=3, num_clients=4,
                           messages_per_client=12, dest_k=2, seed=3,
                           network=ConstantDelay(DELTA))
        assert res.all_done
        checks_ok(res)

    def test_genuineness(self):
        res = run_workload(WbCastProcess, num_groups=4, group_size=3, num_clients=3,
                           messages_per_client=8, dest_k=2, seed=5,
                           network=ConstantDelay(DELTA), attach_genuineness=True)
        assert res.genuineness.is_genuine

    def test_five_member_groups(self):
        res = run_workload(WbCastProcess, num_groups=2, group_size=5, num_clients=2,
                           messages_per_client=8, dest_k=2, seed=6,
                           network=ConstantDelay(DELTA))
        assert res.all_done
        checks_ok(res)

    def test_all_groups_destination(self):
        res = run_workload(WbCastProcess, num_groups=4, group_size=3, num_clients=2,
                           messages_per_client=6, dest_k=4, seed=7,
                           network=ConstantDelay(DELTA))
        assert res.all_done
        checks_ok(res)
