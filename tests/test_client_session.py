"""The AmcastClient session API: handles, acks, backpressure, coalescing.

One submission path drives the simulator and the asyncio runtime; this
suite exercises it in the simulator where every wire message is traceable:
handle lifecycle (acked by every ingress leader, completed at partial
delivery), windowed backpressure, ack/redirect-driven leader tracking,
client-side ingress coalescing (MULTICAST_BATCH wire messages, genuine
per-leader projections), and exactly-once resubmission across leader
crashes for all batching-capable protocols.
"""

import pytest

from repro.client import AmcastClient, AmcastClientOptions
from repro.config import BatchingOptions, ClusterConfig
from repro.bench.harness import run_workload
from repro.protocols import (
    FastCastProcess,
    FtSkeenProcess,
    SequencerProcess,
    WbCastProcess,
)
from repro.protocols.base import MulticastBatchMsg, MulticastMsg
from repro.sim import ConstantDelay, Simulator, Trace
from repro.sim.faults import FaultPlan
from repro.workload import ClientOptions, DeliveryTracker

from tests.conftest import DELTA, FAST_FD, checks_ok

INGRESS = BatchingOptions(max_batch=8, max_linger=2 * DELTA)

PROTOCOLS = [
    pytest.param(WbCastProcess, id="wbcast"),
    pytest.param(FtSkeenProcess, id="ftskeen"),
    pytest.param(FastCastProcess, id="fastcast"),
]


def build_session(
    config, protocol_cls=WbCastProcess, options=None, protocol_options=None, seed=0
):
    trace = Trace()
    sim = Simulator(ConstantDelay(DELTA), seed=seed, trace=trace)
    tracker = DeliveryTracker(config, sim=sim)
    trace.attach(tracker)
    procs = {
        pid: sim.add_process(
            pid, lambda rt, p=pid: protocol_cls(p, config, rt, options=protocol_options)
        )
        for pid in config.all_members
    }
    client_pid = config.clients[0]
    session = sim.add_process(
        client_pid,
        lambda rt: AmcastClient(client_pid, config, rt, protocol_cls, tracker, options),
    )
    return sim, trace, tracker, procs, session


class TestHandleLifecycle:
    def test_ack_then_completion(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, session = build_session(config)
        done, acked = [], []
        handle = session.submit({0, 1}, payload="x")
        handle.on_ack(lambda h: acked.append(sim.now))
        handle.on_complete(lambda h: done.append(sim.now))
        sim.run()
        assert handle.acked and handle.completed
        assert handle.acked_groups == {0, 1}
        assert acked and done
        # Acks return one hop after the leaders got the submission; the
        # protocol needs more rounds before partial delivery completes.
        assert handle.acked_at <= handle.completed_at
        assert handle.payload == "x"

    def test_session_owns_sequence_numbers(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, session = build_session(config)
        h1 = session.submit({0})
        h2 = session.submit({0, 1})
        assert h1.mid == (config.clients[0], 0)
        assert h2.mid == (config.clients[0], 1)
        sim.run()
        assert session.completed and len(session.completed) == 2

    def test_callbacks_on_resolved_handles_fire_immediately(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, session = build_session(config)
        handle = session.submit({0, 1})
        sim.run()
        fired = []
        handle.on_ack(lambda h: fired.append("ack"))
        handle.on_complete(lambda h: fired.append("done"))
        assert fired == ["ack", "done"]


class TestBackpressure:
    def test_window_bounds_outstanding(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, session = build_session(
            config, options=AmcastClientOptions(window=2)
        )
        handles = [session.submit({0, 1}) for _ in range(6)]
        assert session.outstanding == 2
        assert session.backlog_size == 4
        assert sum(1 for h in handles if h.launched) == 2
        sim.run()
        assert all(h.completed for h in handles)
        assert session.backlog_size == 0
        # Backlogged submissions launch only as completions free slots.
        launch_times = sorted(h.launched_at for h in handles)
        completions = sorted(h.completed_at for h in handles)
        assert launch_times[2] >= completions[0]

    def test_unbounded_window_launches_everything(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, session = build_session(
            config, options=AmcastClientOptions(window=None)
        )
        handles = [session.submit({0, 1}) for _ in range(6)]
        assert session.outstanding == 6
        sim.run()
        assert all(h.completed for h in handles)


class TestLeaderTracking:
    def test_acks_confirm_current_leaders(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, session = build_session(config)
        session.submit({0, 1})
        sim.run()
        assert session.cur_leader[0] == 0
        assert session.cur_leader[1] == 3

    def test_redirects_reteach_leader_after_crash(self):
        """Crash g0's leader; the broadcast retry reaches followers, whose
        redirects teach the session the new leader — no liveness guessing."""
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, session = build_session(
            config, options=AmcastClientOptions(retry_timeout=0.01)
        )
        sim.crash(0)
        sim.schedule(0.005, lambda: procs[1].recover())
        handle = session.submit({0, 1})
        sim.run(until=0.2)
        assert handle.completed
        assert session.cur_leader[0] == 1
        # A follow-up submission goes straight to the new leader: no
        # broadcast needed, first wire hop targets pid 1.
        h2 = session.submit({0})
        first_hop = next(
            r
            for r in trace.sends
            if isinstance(r.msg, (MulticastMsg, MulticastBatchMsg))
            and r.src == session.pid
            and h2.mid in (r.msg.mids() if hasattr(r.msg, "mids") else [r.msg.m.mid])
        )
        assert first_hop.dst == 1

    def test_sequencer_ingress_acks_from_group_zero_only(self):
        config = ClusterConfig.build(3, 3, 1)
        sim, trace, tracker, procs, session = build_session(
            config, protocol_cls=SequencerProcess
        )
        handle = session.submit({1, 2})
        assert handle.required_acks == frozenset({0})
        sim.run()
        assert handle.completed and handle.acked_groups == {0}


class TestIngressCoalescing:
    def _client_wire(self, trace, session):
        return [
            r
            for r in trace.sends
            if r.src == session.pid
            and isinstance(r.msg, (MulticastMsg, MulticastBatchMsg))
        ]

    def test_batches_coalesce_across_destination_sets(self):
        """Per-leader projections: submissions to different destination
        sets still share MULTICAST_BATCH wire messages per ingress group."""
        config = ClusterConfig.build(3, 3, 1)
        sim, trace, tracker, procs, session = build_session(
            config, options=AmcastClientOptions(ingress=INGRESS)
        )
        dest_sets = [{0, 1}, {0, 2}, {1, 2}, {0, 1}, {0, 2}, {1, 2}]
        handles = [session.submit(d) for d in dest_sets]
        sim.run()
        assert all(h.completed for h in handles)
        wire = self._client_wire(trace, session)
        batches = [r for r in wire if isinstance(r.msg, MulticastBatchMsg)]
        assert batches, "expected MULTICAST_BATCH wire messages"
        # Without coalescing the client sends one MULTICAST per (message,
        # destination group) = 12 wire messages; batching must beat that.
        assert len(wire) < 12
        # Every batch is a genuine per-leader projection: each entry counts
        # the receiving group among its destinations.
        for r in batches:
            gid = config.group_of(r.dst)
            for m in r.msg.entries:
                assert gid in m.dests

    def test_ingress_run_is_genuine_and_ordered(self):
        monitor_holder = {}

        def run():
            res = run_workload(
                WbCastProcess,
                num_groups=3,
                group_size=3,
                num_clients=3,
                messages_per_client=6,
                dest_k=2,
                seed=7,
                network=ConstantDelay(DELTA),
                client_options=ClientOptions(
                    num_messages=6, window=4, ingress=INGRESS
                ),
                attach_genuineness=True,
            )
            monitor_holder["m"] = res.genuineness
            return res

        res = run()
        assert res.all_done
        checks_ok(res)
        assert monitor_holder["m"].is_genuine, monitor_holder["m"].violations

    def test_singleton_flush_keeps_per_message_wire(self):
        """With coalescing off the session speaks the paper's protocol:
        plain MULTICAST, no batch wrapper."""
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, session = build_session(config)
        session.submit({0, 1})
        sim.run()
        wire = self._client_wire(trace, session)
        assert wire and all(isinstance(r.msg, MulticastMsg) for r in wire)


class TestExactlyOnce:
    @pytest.mark.parametrize("protocol_cls", PROTOCOLS)
    def test_crash_during_submission_resubmits_exactly_once(self, protocol_cls):
        """Kill a destination leader while submissions are in flight; the
        session retransmits with stable ids until completion.  Integrity
        (at-most-once per process) plus all_done (at-least-once) = exactly
        once, checked per process below on top of the black-box checker."""
        batched = BatchingOptions(max_batch=8, max_linger=2 * DELTA, pipeline_depth=4)
        opts_cls = protocol_cls.OPTIONS_CLS
        config = ClusterConfig.build(3, 3, 3)
        res = run_workload(
            protocol_cls,
            config=config,
            messages_per_client=8,
            dest_k=2,
            seed=11,
            network=ConstantDelay(DELTA),
            protocol_options=opts_cls(retry_interval=0.05, batching=batched),
            client_options=ClientOptions(
                num_messages=8, retry_timeout=0.08, window=4, ingress=INGRESS
            ),
            fault_plan=FaultPlan.crash_leaders(config, [0], at=0.004),
            attach_fd=True,
            fd_options=FAST_FD,
            drain_grace=0.4,
        )
        assert res.all_done, f"{res.completed}/{res.expected}"
        checks_ok(res)
        # Per-process duplicate scan: no process delivered any mid twice.
        per_pid = {}
        for d in res.trace.deliveries:
            key = (d.pid, d.m.mid)
            per_pid[key] = per_pid.get(key, 0) + 1
        dups = {k: v for k, v in per_pid.items() if v > 1}
        assert not dups, dups

    def test_wbcast_dedup_survives_epoch_transfer(self):
        """A duplicate submission arriving *after* the leader changed must
        be absorbed: the delivered-id dedup table rides NEWLEADER/NEW_STATE."""
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, session = build_session(
            config,
            options=AmcastClientOptions(retry_timeout=0.05),
            protocol_options=None,
        )
        handle = session.submit({0, 1})
        sim.run(until=0.02)
        assert handle.completed
        # Leader change in g0, then replay the original submission at the
        # new leader: delivered_ids arrived with the epoch transfer.
        sim.schedule(0.0, lambda: procs[1].recover())
        sim.run(until=0.08)
        assert procs[1].is_leader()
        assert handle.mid in procs[1].delivered_ids
        sim.schedule(0.0, lambda: sim.transmit(
            session.pid, 1, MulticastMsg(handle.message)
        ))
        sim.run(until=0.2)
        # Recovery may re-DELIVER to catch followers up, but no process
        # ends up with a duplicate delivery of the message.
        per_pid = {}
        for d in trace.deliveries:
            if d.m.mid == handle.mid:
                per_pid[d.pid] = per_pid.get(d.pid, 0) + 1
        assert all(v == 1 for v in per_pid.values()), per_pid


class TestHandleRetention:
    def test_completed_handles_evicted_past_limit(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, session = build_session(
            config, options=AmcastClientOptions(retain_completed=3)
        )
        handles = [session.submit({0, 1}) for _ in range(8)]
        sim.run()
        assert all(h.completed for h in handles)  # eviction never drops state
        retained = [h.mid for h in handles if session.handle_of(h.mid) is not None]
        assert len(retained) == 3
        assert retained == [h.mid for h in handles[-3:]]


class TestRecoveringProcessDropsIngress:
    def test_batch_to_recovering_member_is_not_redirected_to_corpse(self):
        """A WbCast process mid-election must not forward a batch to (or
        redirect the client toward) the dead leader its stale Cur_leader
        still names — mirroring the per-message FOLLOWER gate."""
        from repro.protocols.wbcast import Status

        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, session = build_session(
            config,
            options=AmcastClientOptions(
                retry_timeout=0.02,
                ingress=INGRESS,
            ),
        )
        sim.crash(0)
        sim.schedule(0.001, lambda: procs[1].recover())
        handle = session.submit({0, 1})
        sim.run(until=0.2)
        assert handle.completed
        # At no point did anyone point the session at the dead leader
        # after it learned better — the final map names the new leader.
        assert session.cur_leader[0] == 1
        assert procs[1].status is Status.LEADER


class TestTargetedRetries:
    def test_all_acked_but_incomplete_still_retransmits(self):
        """An ack is not durable: when every ingress group acked but the
        delivery hangs, a targeted retry must re-target the leaders
        rather than sending nothing for the whole targeted budget."""
        from repro.protocols.base import SubmitAckMsg

        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, session = build_session(
            config,
            options=AmcastClientOptions(retry_timeout=0.05, targeted_retries=2),
        )
        handle = session.submit({0, 1})
        session.on_message(0, SubmitAckMsg(0, 0, (handle.mid,)))
        session.on_message(3, SubmitAckMsg(1, 3, (handle.mid,)))
        assert handle.acked and not handle.completed
        before = len(trace.sends)
        session._retry(handle)
        sent = [
            r
            for r in trace.sends[before:]
            if r.src == session.pid and isinstance(r.msg, MulticastMsg)
        ]
        assert {r.dst for r in sent} == {0, 3}  # both believed leaders


class TestForwardedSubmissionAcks:
    def test_submission_to_follower_still_resolves_ack(self):
        """A stale leader map sends the submission to a follower; the
        forward carries it to the leader, which acks the *origin* client
        embedded in the message id — the handle resolves without a single
        retransmission (retry disabled here on purpose)."""
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, session = build_session(config)
        session.cur_leader[0] = 1  # wrong: pid 1 is a follower of g0
        handle = session.submit({0, 1})
        sim.run()
        assert handle.acked and handle.completed
        assert handle.acked_groups == {0, 1}
        assert handle.retries == 0
        # The redirect/ack traffic corrected the map for the next submit.
        assert session.cur_leader[0] == 0


class TestDeliveredLog:
    def test_dense_sequences_compact_to_watermarks(self):
        from repro.protocols.wbcast.state import DeliveredLog

        log = DeliveredLog()
        for seq in range(1000):
            log.add((7, seq))
        assert (7, 999) in log and (7, 0) in log
        assert (7, 1000) not in log and (8, 0) not in log
        assert len(log) == 1000
        assert not log._sparse  # fully absorbed into the watermark

    def test_out_of_order_residue_absorbs_later(self):
        from repro.protocols.wbcast.state import DeliveredLog

        log = DeliveredLog()
        log.add((3, 2))
        assert (3, 2) in log and (3, 0) not in log
        log.add((3, 0))
        log.add((3, 1))
        assert not log._sparse and log._watermark[3] == 2

    def test_update_merges_watermarks_and_residue(self):
        from repro.protocols.wbcast.state import DeliveredLog

        a, b = DeliveredLog(), DeliveredLog()
        for seq in range(5):
            a.add((1, seq))
        b.add((1, 5))
        b.add((2, 0))
        a.update(b)
        assert (1, 5) in a and (2, 0) in a
        assert a._watermark[1] == 5  # residue contiguous with watermark

    def test_snapshot_is_independent(self):
        from repro.protocols.wbcast.state import DeliveredLog

        log = DeliveredLog()
        log.add((1, 0))
        snap = log.snapshot()
        log.add((1, 1))
        assert (1, 1) in log and (1, 1) not in snap

    def test_recovery_messages_stay_compact(self):
        """The dedup table shipped in NEWLEADER_ACK is watermark-sized,
        not one id per message ever delivered."""
        res = run_workload(
            WbCastProcess, num_groups=2, group_size=3, num_clients=2,
            messages_per_client=20, dest_k=2, seed=5, network=ConstantDelay(DELTA),
        )
        assert res.all_done
        leader = res.members[0]
        snap = leader.delivered_ids.snapshot()
        assert len(snap) == len(leader.delivered_ids)
        # Dense session seqs: everything absorbed, residue empty or tiny.
        assert sum(len(s) for s in snap._sparse.values()) <= 2


class TestCliValidation:
    def test_net_runtime_rejects_bad_linger_bounds(self, capsys):
        from repro.cli import main

        code = main([
            "run", "--runtime", "net", "--batch-size", "4",
            "--batch-linger", "0.001", "--min-linger", "0.01",
            "--linger-mode", "adaptive",
        ])
        assert code == 2
        assert "min-linger" in capsys.readouterr().err


class TestWorkloadClientsAreThin:
    def test_closed_loop_exposes_session_api(self):
        res = run_workload(
            WbCastProcess, num_groups=2, group_size=3, num_clients=1,
            messages_per_client=4, dest_k=2, seed=0, network=ConstantDelay(DELTA),
        )
        client = res.clients[0]
        assert isinstance(client, AmcastClient)
        assert client.done
        for mid in client.sent:
            handle = client.handle_of(mid)
            assert handle is not None and handle.completed and handle.acked

    def test_no_duplicated_retry_logic(self):
        """The old hand-rolled client retry helpers are gone for good."""
        from repro.workload import clients as workload_clients
        from repro.net import cluster as net_cluster

        assert not hasattr(workload_clients, "_ClientBase")
        assert not hasattr(net_cluster.LocalCluster, "resend")
        assert not hasattr(net_cluster.LocalCluster, "_live_leader_guess")
