"""Clients, destination choosers and the delivery tracker."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.harness import run_workload
from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.protocols import WbCastProcess
from repro.sim import ConstantDelay
from repro.types import make_message
from repro.workload import (
    ClientOptions,
    DeliveryTracker,
    DisjointPairs,
    FixedDestinations,
    RandomKGroups,
    RingNeighbours,
)

from tests.conftest import DELTA


@pytest.fixture
def config():
    return ClusterConfig.build(4, 3, 2)


class TestChoosers:
    def test_fixed(self):
        chooser = FixedDestinations([2, 0])
        assert chooser.choose(random.Random(0)) == frozenset({0, 2})
        with pytest.raises(ConfigError):
            FixedDestinations([])

    def test_random_k_size_and_range(self, config):
        chooser = RandomKGroups(config, 2)
        rng = random.Random(1)
        seen = set()
        for _ in range(100):
            dests = chooser.choose(rng)
            assert len(dests) == 2
            assert all(0 <= g < 4 for g in dests)
            seen.add(dests)
        assert len(seen) > 1  # actually random

    def test_random_k_bounds_checked(self, config):
        with pytest.raises(ConfigError):
            RandomKGroups(config, 0)
        with pytest.raises(ConfigError):
            RandomKGroups(config, 5)

    def test_ring_neighbours_consecutive(self, config):
        chooser = RingNeighbours(config, 3)
        rng = random.Random(2)
        for _ in range(50):
            dests = chooser.choose(rng)
            assert len(dests) == 3
            assert any(
                dests == frozenset((start + i) % 4 for i in range(3))
                for start in range(4)
            )

    def test_disjoint_pairs_are_disjoint(self, config):
        p0 = DisjointPairs(config, 0).choose(random.Random(0))
        p1 = DisjointPairs(config, 1).choose(random.Random(0))
        assert p0 == frozenset({0, 1})
        assert p1 == frozenset({2, 3})
        assert not (p0 & p1)


class TestTracker:
    def test_partial_delivery_needs_every_group(self, config):
        tracker = DeliveryTracker(config)
        m = make_message(12, 0, {0, 1})
        tracker.expect(m, 0.0)
        tracker.on_deliver(1.0, 0, m)  # group 0 only
        assert tracker.latency(m.mid) is None
        tracker.on_deliver(2.0, 3, m)  # group 1: partial delivery complete
        assert tracker.latency(m.mid) == pytest.approx(2.0)

    def test_first_delivery_per_group_wins(self, config):
        tracker = DeliveryTracker(config)
        m = make_message(12, 0, {0})
        tracker.expect(m, 0.0)
        tracker.on_deliver(1.0, 0, m)
        tracker.on_deliver(2.0, 1, m)  # same group, later: ignored
        assert tracker.latency(m.mid) == pytest.approx(1.0)

    def test_callback_fired_once(self, config):
        tracker = DeliveryTracker(config)
        m = make_message(12, 0, {0})
        fired = []
        tracker.expect(m, 0.0, callback=lambda mid, t: fired.append((mid, t)))
        tracker.on_deliver(1.0, 0, m)
        tracker.on_deliver(1.5, 1, m)
        assert fired == [(m.mid, 1.0)]

    def test_completed_in_window(self, config):
        tracker = DeliveryTracker(config)
        for i, t in enumerate((1.0, 2.0, 3.0)):
            m = make_message(12, i, {0})
            tracker.expect(m, 0.0)
            tracker.on_deliver(t, 0, m)
        assert len(tracker.completed_in_window(1.5, 3.0)) == 1


class TestClients:
    def test_closed_loop_is_sequential(self):
        """A closed-loop client never has two multicasts outstanding."""
        res = run_workload(WbCastProcess, num_groups=2, group_size=3, num_clients=1,
                           messages_per_client=5, dest_k=2, seed=0,
                           network=ConstantDelay(DELTA))
        client = res.clients[0]
        assert client.done
        mc_times = sorted(r.t for r in res.trace.multicasts)
        completions = sorted(t for _, t in client.completed)
        for next_send, prev_done in zip(mc_times[1:], completions):
            assert next_send >= prev_done

    def test_think_time_spaces_sends(self):
        res = run_workload(
            WbCastProcess, num_groups=2, group_size=3, num_clients=1,
            messages_per_client=3, dest_k=2, seed=0, network=ConstantDelay(DELTA),
            client_options=ClientOptions(num_messages=3, think_time=0.05),
        )
        mc_times = sorted(r.t for r in res.trace.multicasts)
        assert all(b - a >= 0.05 for a, b in zip(mc_times, mc_times[1:]))

    def test_start_delay(self):
        res = run_workload(
            WbCastProcess, num_groups=2, group_size=3, num_clients=1,
            messages_per_client=1, dest_k=2, seed=0, network=ConstantDelay(DELTA),
            client_options=ClientOptions(num_messages=1, start_delay=0.1),
        )
        assert min(r.t for r in res.trace.multicasts) >= 0.1

    def test_retry_broadcast_reaches_new_leader(self):
        """Retries go to every member, so a stale leader guess only costs
        time, not liveness (covered further in recovery tests)."""
        res = run_workload(
            WbCastProcess, num_groups=2, group_size=3, num_clients=1,
            messages_per_client=4, dest_k=2, seed=0, network=ConstantDelay(DELTA),
            client_options=ClientOptions(num_messages=4, retry_timeout=0.02),
        )
        assert res.all_done
