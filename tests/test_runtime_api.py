"""The runtime abstraction helpers and the SimRuntime implementation."""

import pytest

from repro.runtime import NullTimerHandle, cancel_timer
from repro.sim import ConstantDelay, Simulator
from repro.types import make_message


class Probe:
    def __init__(self, runtime):
        self.runtime = runtime
        self.got = []

    def on_message(self, sender, msg):
        self.got.append((sender, msg))


class TestHelpers:
    def test_null_timer(self):
        handle = NullTimerHandle()
        assert handle.cancelled
        handle.cancel()  # idempotent, no error

    def test_cancel_timer_none_safe(self):
        cancel_timer(None)
        cancel_timer(NullTimerHandle())


class TestSimRuntime:
    @pytest.fixture
    def sim(self):
        return Simulator(ConstantDelay(0.001), seed=5)

    def test_pid_and_now(self, sim):
        probe = sim.add_process(3, Probe)
        assert probe.runtime.pid == 3
        assert probe.runtime.now() == 0.0

    def test_send_routes_through_network(self, sim):
        a = sim.add_process(0, Probe)
        b = sim.add_process(1, Probe)
        sim.schedule(0.0, lambda: a.runtime.send(1, "x"))
        sim.run()
        assert b.got == [(0, "x")]

    def test_per_process_rngs_differ_but_are_deterministic(self, sim):
        a = sim.add_process(0, Probe)
        b = sim.add_process(1, Probe)
        seq_a = [a.runtime.rng.random() for _ in range(5)]
        seq_b = [b.runtime.rng.random() for _ in range(5)]
        assert seq_a != seq_b
        sim2 = Simulator(ConstantDelay(0.001), seed=5)
        a2 = sim2.add_process(0, Probe)
        assert [a2.runtime.rng.random() for _ in range(5)] == seq_a

    def test_deliver_and_multicast_recorded(self, sim):
        probe = sim.add_process(0, Probe)
        m = make_message(0, 0, {0})
        probe.runtime.record_multicast(m)
        probe.runtime.deliver(m)
        assert sim.trace.multicasts[0].m == m
        assert sim.trace.deliveries[0].m == m

    def test_timer_cancel_via_runtime(self, sim):
        probe = sim.add_process(0, Probe)
        fired = []
        handle = probe.runtime.set_timer(0.5, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []
