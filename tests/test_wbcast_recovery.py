"""White-box protocol leader recovery (Fig. 4 lines 35-68, §IV discussion)."""

import pytest

from repro.bench.harness import run_workload
from repro.config import ClusterConfig
from repro.protocols import WbCastProcess
from repro.protocols.base import MulticastMsg
from repro.protocols.wbcast import (
    NewLeaderMsg,
    NewStateMsg,
    Phase,
    Status,
    WbCastOptions,
)
from repro.sim import ConstantDelay, Simulator, Trace
from repro.sim.faults import CrashSpec, FaultPlan
from repro.types import Ballot, make_message
from repro.workload import ClientOptions

from tests.conftest import DELTA, FAST_FD, checks_ok
from tests.test_wbcast_normal import build, submit


RETRYING = WbCastOptions(retry_interval=0.05)
CLIENT_RETRY = ClientOptions(num_messages=10, retry_timeout=0.08)


class TestRecoveryRound:
    def test_manual_recovery_transfers_leadership(self):
        config = ClusterConfig.build(1, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        sim.schedule(0.01, lambda: procs[1].recover())
        sim.run()
        assert procs[1].status is Status.LEADER
        assert procs[0].status is Status.FOLLOWER  # deposed by higher ballot
        assert procs[2].status is Status.FOLLOWER
        assert procs[1].cballot == Ballot(1, 1)
        assert procs[0].cballot == procs[1].cballot

    def test_recovery_is_two_stage(self):
        config = ClusterConfig.build(1, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        sim.schedule(0.01, lambda: procs[1].recover())
        sim.run()
        newleader = [r for r in trace.sends if isinstance(r.msg, NewLeaderMsg)]
        newstate = [r for r in trace.sends if isinstance(r.msg, NewStateMsg)]
        assert newleader and newstate
        assert min(r.t_send for r in newleader) < min(r.t_send for r in newstate)

    def test_higher_ballot_wins_concurrent_candidates(self):
        config = ClusterConfig.build(1, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        sim.schedule(0.01, lambda: procs[1].recover())
        sim.schedule(0.01, lambda: procs[2].recover())
        sim.run()
        assert procs[2].status is Status.LEADER  # Ballot(1,2) > Ballot(1,1)
        assert procs[1].status is Status.FOLLOWER

    def test_old_leader_messages_rejected_after_recovery(self):
        """A deposed leader's DELIVERs carry a stale ballot and are dropped."""
        config = ClusterConfig.build(1, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        sim.schedule(0.01, lambda: procs[1].recover())
        sim.run()
        from repro.protocols.wbcast.messages import DeliverMsg
        from repro.types import Timestamp

        stale = DeliverMsg(
            make_message(client, 99, {0}), Ballot(0, 0), Timestamp(1, 0), Timestamp(1, 0)
        )
        before = len(trace.deliveries)
        sim.schedule(0.0, lambda: sim.transmit(0, 2, stale))
        sim.run()
        assert len(trace.deliveries) == before


class TestStatePreservation:
    def test_committed_message_survives_and_is_redelivered(self):
        """Lines 47-50 and 66-68: committed state is never lost, and the new
        leader re-delivers from the beginning (followers dedup)."""
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        m = make_message(client, 0, {0, 1})
        sim.schedule(0.0, lambda: submit(sim, config, client, m))
        # Crash g0's leader after everyone delivered; recover on pid 1.
        sim.schedule(0.01, lambda: sim.crash(0))
        sim.schedule(0.02, lambda: procs[1].recover())
        sim.run()
        assert procs[1].records[m.mid].phase is Phase.COMMITTED
        # No double delivery anywhere despite re-DELIVER.
        per_pid = {}
        for d in trace.deliveries:
            per_pid[d.pid] = per_pid.get(d.pid, 0) + 1
        assert all(v == 1 for v in per_pid.values())

    def test_quorum_accepted_message_survives(self):
        """Invariant 2: a message accepted by a quorum is recovered as
        ACCEPTED with its exact local timestamp."""
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        m = make_message(client, 0, {0, 1})
        sim.schedule(0.0, lambda: submit(sim, config, client, m))
        # Crash g0's leader right after acks are sent (2δ) but before it
        # commits; followers have ACCEPTED.
        sim.crash_at(0, 2.5 * DELTA)
        lts_before = {}
        def snapshot():
            lts_before[0] = procs[1].records[m.mid].lts
        sim.schedule(2.6 * DELTA, snapshot)
        sim.schedule(0.02, lambda: procs[1].recover())
        sim.run()
        rec = procs[1].records[m.mid]
        assert rec.phase in (Phase.ACCEPTED, Phase.COMMITTED)
        assert rec.lts == lts_before[0]

    def test_proposed_only_message_lost_until_retry(self):
        """§IV "message recovery": a message the crashed leader never got
        to replicate is dropped by recovery and resurrected by a client
        retry broadcast to all group members."""
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        m = make_message(client, 0, {0, 1})
        sim.record_multicast(client, m)
        sim.schedule(0.0, lambda: sim.transmit(client, 0, MulticastMsg(m)))
        sim.crash_at(0, 0.5 * DELTA)  # before the leader even receives it
        sim.schedule(0.02, lambda: procs[1].recover())
        sim.run()
        assert m.mid not in procs[1].records
        # Client retries to every member; the new leader picks it up.
        sim.schedule(0.0, lambda: submit(sim, config, client, m, to_leaders=False))
        sim.run()
        assert len(trace.deliveries_of(m.mid)) >= 4  # g1 all + g0 survivors
        checks = [d.pid for d in trace.deliveries_of(m.mid)]
        assert 1 in checks and 2 in checks

    def test_clock_recovered_as_max_of_votes(self):
        config = ClusterConfig.build(2, 3, 1)
        sim, trace, tracker, procs, client = build(config)
        for i in range(5):
            mi = make_message(client, i, {0, 1})
            sim.schedule(i * 5 * DELTA, lambda mm=mi: submit(sim, config, client, mm))
        sim.schedule(0.1, lambda: sim.crash(0))
        sim.schedule(0.11, lambda: procs[1].recover())
        sim.run()
        assert procs[1].clock >= procs[2].clock


class TestPaperScenario:
    def test_p1_p2_p3_lost_timestamp_never_resurrects(self):
        """The §IV 'Discussion of leader recovery' scenario: p1 replicates
        (m, lts) to one follower only; p2 recovers from a quorum that never
        saw m and commits another message m'; p3 recovers next and must NOT
        resurrect m's old timestamp (Invariant 5)."""
        config = ClusterConfig.build(1, 3, 1)  # single group: p0, p1, p2
        sim, trace, tracker, procs, client = build(config)
        m = make_message(client, 0, {0})
        mprime = make_message(client, 1, {0})

        # p0 (the ballot-(0,0) leader) crashes before m makes any progress
        # beyond it, so no quorum ever saw m or its timestamp.
        sim.record_multicast(client, m)
        sim.schedule(0.0, lambda: sim.transmit(client, 0, MulticastMsg(m)))
        sim.crash_at(0, 0.5 * DELTA)  # m is PROPOSED nowhere but p0... never arrived
        # p1 takes over (ballot (1,1)) and multicasts m'.
        sim.schedule(0.01, lambda: procs[1].recover())
        sim.schedule(0.02, lambda: submit_local(sim, config, client, mprime))
        sim.run()
        assert procs[1].records[mprime.mid].phase is Phase.COMMITTED
        # p2 takes over (ballot (2,2)); m must not reappear, m' must persist.
        sim.schedule(0.0, lambda: procs[2].recover())
        sim.run()
        assert procs[2].status is Status.LEADER
        assert m.mid not in procs[2].records
        assert procs[2].records[mprime.mid].phase is Phase.COMMITTED
        checks_from_trace(config, trace)


def submit_local(sim, config, client, m):
    sim.record_multicast(client, m)
    # after recovery the leader of group 0 is pid 1
    for pid in config.members(0):
        sim.transmit(client, pid, MulticastMsg(m))


def checks_from_trace(config, trace):
    from repro.checking import History, check_all

    history = History.from_trace(config, trace)
    failed = [c.describe() for c in check_all(history, quiescent=False) if not c.ok]
    assert not failed, failed


class TestEndToEndFailover:
    def test_leader_crash_with_fd_completes_workload(self):
        res = run_workload(
            WbCastProcess, num_groups=3, group_size=3, num_clients=3,
            messages_per_client=10, dest_k=2, seed=11,
            network=ConstantDelay(DELTA), protocol_options=RETRYING,
            client_options=CLIENT_RETRY,
            fault_plan=FaultPlan(crashes=[CrashSpec(0, 0.0123)]),
            attach_fd=True, fd_options=FAST_FD, drain_grace=0.3,
        )
        assert res.all_done
        checks_ok(res)

    def test_two_group_leaders_crash(self):
        res = run_workload(
            WbCastProcess, num_groups=3, group_size=3, num_clients=2,
            messages_per_client=8, dest_k=2, seed=13,
            network=ConstantDelay(DELTA), protocol_options=RETRYING,
            client_options=ClientOptions(num_messages=8, retry_timeout=0.08),
            fault_plan=FaultPlan(crashes=[CrashSpec(0, 0.011), CrashSpec(3, 0.017)]),
            attach_fd=True, fd_options=FAST_FD, drain_grace=0.4,
        )
        assert res.all_done
        checks_ok(res)

    def test_follower_crash_is_invisible(self):
        res = run_workload(
            WbCastProcess, num_groups=2, group_size=3, num_clients=2,
            messages_per_client=10, dest_k=2, seed=17,
            network=ConstantDelay(DELTA),
            fault_plan=FaultPlan(crashes=[CrashSpec(1, 0.005)]),
            drain_grace=0.1,
        )
        assert res.all_done
        checks_ok(res)

    def test_crash_during_recovery(self):
        """The first candidate crashes mid-election; another one finishes."""
        config = ClusterConfig.build(1, 5, 1)
        sim, trace, tracker, procs, client = build(config)
        sim.crash_at(0, 0.01)
        sim.schedule(0.02, lambda: procs[1].recover())
        sim.crash_at(1, 0.02 + 0.5 * DELTA)  # dies right after NEWLEADER
        sim.schedule(0.05, lambda: procs[2].recover())
        sim.run()
        assert procs[2].status is Status.LEADER
        assert procs[3].cballot == procs[2].cballot
