"""``python -m repro`` entry point."""

import sys

from .cli import main

try:
    sys.exit(main())
except BrokenPipeError:  # e.g. `python -m repro flow | head`
    sys.exit(0)
