"""cProfile-based per-phase CPU attribution for the bench CLIs.

``bench-net --profile`` / ``bench-batching --profile`` wrap each sweep
cell in its own :class:`cProfile.Profile`, so the report attributes CPU
to *phases* (one bench cell each) before drilling into the hottest
functions of each — which is how the sim↔TCP throughput gap gets pinned
on protocol logic vs wire path vs event loop, instead of one flat
profile over the whole sweep.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Collects one :class:`cProfile.Profile` per named phase."""

    def __init__(self, top: int = 12) -> None:
        self.top = top
        self.profiles: Dict[str, cProfile.Profile] = {}
        self._order: List[str] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Profile everything run inside the block under ``name``.

        Re-entering a name accumulates into the same profile, so retry
        loops fold into their cell's attribution.
        """
        prof = self.profiles.get(name)
        if prof is None:
            prof = self.profiles[name] = cProfile.Profile()
            self._order.append(name)
        prof.enable()
        try:
            yield
        finally:
            prof.disable()

    def phase_cpu(self) -> Dict[str, float]:
        """Total profiled CPU seconds per phase."""
        out: Dict[str, float] = {}
        for name in self._order:
            st = pstats.Stats(self.profiles[name], stream=io.StringIO())
            out[name] = st.total_tt
        return out

    def report(self, top: Optional[int] = None) -> str:
        """Per-phase CPU attribution: the share table, then each phase's
        hottest functions by cumulative time."""
        top = top or self.top
        cpu = self.phase_cpu()
        total = sum(cpu.values())
        lines = [f"profile: {total:.3f}s CPU across {len(cpu)} phases"]
        for name in self._order:
            share = 100.0 * cpu[name] / total if total > 0 else 0.0
            lines.append(f"  {name:<40} {cpu[name]:8.3f}s  {share:5.1f}%")
        for name in self._order:
            lines.append(f"\n-- phase {name} (top {top} by cumulative time) --")
            buf = io.StringIO()
            st = pstats.Stats(self.profiles[name], stream=buf)
            st.sort_stats("cumulative").print_stats(top)
            # Drop pstats' preamble; keep the header row and entries.
            body = buf.getvalue().splitlines()
            keep = False
            for row in body:
                if row.lstrip().startswith("ncalls"):
                    keep = True
                if keep and row.strip():
                    lines.append(row)
        return "\n".join(lines) + "\n"

    def write(self, path: str, top: Optional[int] = None) -> None:
        with open(path, "w") as fh:
            fh.write(self.report(top))
