"""Observability: metrics registry, message-lifecycle spans, profiling.

One telemetry spine for both runtimes.  A run that wants observability
carries an :class:`ObsOptions` on its :class:`~repro.config.ClusterConfig`
(or passes one to its harness); the harness creates a :class:`Telemetry`
on the run's own clock — virtual time in the simulator, wall time on TCP
— and every instrumented seam shares it.  Disabled runs (the default)
touch none of this beyond a ``None`` check and stay byte-identical to
pre-telemetry behaviour.

See the README's "Observability" section for the metrics catalogue, the
span stage names and the export formats.
"""

from .options import OBS_OFF, ObsOptions
from .profiling import PhaseProfiler
from .registry import (
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .spans import (
    STAGE_INDEX,
    STAGES,
    SpanRecorder,
    SpanTraceMonitor,
    render_spans_report,
)
from .telemetry import Telemetry, collect_process_stats, wall_clock

__all__ = [
    "ObsOptions",
    "OBS_OFF",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "SpanRecorder",
    "SpanTraceMonitor",
    "STAGES",
    "STAGE_INDEX",
    "render_spans_report",
    "Telemetry",
    "wall_clock",
    "collect_process_stats",
    "PhaseProfiler",
]
