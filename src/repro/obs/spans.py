"""Message-lifecycle spans: per-message stamps through the ordering pipeline.

The white-box pitch of the protocol is that the pipeline has *inspectable
stages*; this module makes each stage a named stamp on the message's
lifetime.  The canonical stage chain (:data:`STAGES`) is::

    submit → admit → accept_quorum → commit → merge_release → deliver
                                                            → apply/read_serve

* **submit** — the client invoked ``multicast(m)`` (stamped by the trace /
  cluster multicast seam, so clients need no instrumentation).
* **admit** — a lane leader admitted the fresh message and assigned its
  local timestamp (``Phase.PROPOSED``).
* **accept_quorum** — a destination-group leader first assembled ACCEPTs
  from *every* destination group (``Phase.ACCEPTED``; the message's
  global timestamp is now fixed).  Followers assemble the same set at
  the same wire events, so only leaders stamp.
* **commit** — a leader first committed the message (quorum ACCEPT_ACKs
  from each destination group under the speculative-execution rule).
* **merge_release** — the message was first released from an ordering
  queue: the leader's :class:`~repro.protocols.ordering.DeliveryQueue`
  pop (unsharded) or a member's cross-lane
  :class:`~repro.protocols.wbcast.sharding.LaneMergeQueue` pop (sharded).
* **deliver** — first application-level delivery at any process.
* **apply** / **read_serve** — the serving tier applied the command to
  its store / answered a read at this message's index.

Every stamp is first-one-wins per ``(mid, stage)``, taken on the run's
single telemetry clock (virtual time in the simulator, wall clock on
TCP), so the chain is monotone whenever the stamping events are causally
ordered — which the pipeline guarantees.  Because consecutive stage gaps
telescope, the named stages attribute the *entire* submit→deliver
end-to-end latency by construction; ``repro spans`` prints the top-k
slowest messages with that breakdown.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from .registry import LATENCY_BUCKETS

__all__ = [
    "STAGES",
    "STAGE_INDEX",
    "SpanRecorder",
    "SpanTraceMonitor",
    "render_spans_report",
]

MessageId = Tuple[int, int]

#: Pipeline stages in causal order.  ``apply``/``read_serve`` are the
#: serving tier's post-delivery tail; a run without serving replicas ends
#: at ``deliver``.
STAGES: Tuple[str, ...] = (
    "submit",
    "admit",
    "accept_quorum",
    "commit",
    "merge_release",
    "deliver",
    "apply",
    "read_serve",
)

STAGE_INDEX: Dict[str, int] = {s: i for i, s in enumerate(STAGES)}


class SpanRecorder:
    """First-stamp-wins per-message stage times, on one shared clock.

    ``AmcastMessage`` is frozen with ``__slots__``, so span state lives
    here, keyed by mid, never on the message.  When a registry is given,
    the consecutive stage gaps of each message are folded into per-stage
    latency histograms (``span_stage_seconds{stage=...}``) when its
    ``deliver`` stamp is folded in.

    Stamping is the telemetry subsystem's hottest path (every pipeline
    stage at every process calls it), so :meth:`stamp` only appends to a
    flat log; the per-mid record dicts, histograms and monotonicity
    checks are built lazily (:meth:`_seal`) when the spans are queried.
    Log order equals call order, so first-stamp-wins semantics are
    unchanged.
    """

    #: Seal at least every this many log entries, so ``max_messages`` also
    #: bounds the unsealed log during soak runs.
    _SEAL_CHUNK = 65536

    def __init__(
        self,
        now: Callable[[], float],
        registry: Any = None,
        max_messages: Optional[int] = None,
        time_source: Any = None,
    ) -> None:
        self.now = now
        self.registry = registry
        self._max = max_messages
        #: When set, ``time_source.now`` (an attribute, not a call) is the
        #: clock for stamps that arrive without an explicit time.
        self._time_source = time_source
        #: Append-only stamp log: ``(mid, stage, t)`` in call order.
        self._log: List[Tuple[MessageId, str, float]] = []
        self._sealed = 0
        self._tick = self._SEAL_CHUNK
        self._records: Dict[MessageId, Dict[str, float]] = {}
        self._non_monotone: List[MessageId] = []
        self._dropped = 0
        # Get-or-create instrument lookups cost a label sort each; the
        # finalize path runs per delivered message, so its histograms are
        # resolved once and reused.
        self._stage_hists: Dict[str, Any] = {}
        self._e2e_hist: Any = None

    # -- stamping -----------------------------------------------------------

    def stamp(self, mid: MessageId, stage: str, t: Optional[float] = None) -> None:
        if t is None:
            src = self._time_source
            t = self.now() if src is None else src.now
        self._log.append((mid, stage, t))
        self._tick -= 1
        if self._tick <= 0:
            self._seal()

    def _seal(self) -> None:
        """Fold unsealed log entries into the per-mid records (first stamp
        per ``(mid, stage)`` wins; the rest were redundant replicas of the
        same pipeline event at other processes)."""
        log = self._log
        if self._sealed == len(log):
            return
        records = self._records
        cap = self._max
        for mid, stage, t in log[self._sealed:]:
            try:
                rec = records[mid]
            except KeyError:
                if cap is not None and len(records) >= cap:
                    self._dropped += 1
                    continue
                rec = records[mid] = {}
            if stage in rec:
                continue
            rec[stage] = t
            if stage == "deliver":
                self._finalize(mid, rec)
        self._sealed = len(log)
        self._tick = self._SEAL_CHUNK

    @property
    def records(self) -> Dict[MessageId, Dict[str, float]]:
        """mid -> {stage: first stamp time}."""
        self._seal()
        return self._records

    @property
    def non_monotone(self) -> List[MessageId]:
        """Spans whose chain went backwards in time (a bug, or stamps from
        unsynchronised clocks); the conformance tests assert this empty."""
        self._seal()
        return self._non_monotone

    @property
    def dropped(self) -> int:
        """Stamps discarded for mids past the ``max_messages`` cap."""
        self._seal()
        return self._dropped

    def _finalize(self, mid: MessageId, rec: Dict[str, float]) -> None:
        # Runs inside _seal(): touch only the private state, never the
        # sealing properties/queries.
        reg = self.registry
        ordered = self._chain_of(rec)
        prev_t = ordered[0][1]
        for i in range(1, len(ordered)):
            s1, t1 = ordered[i]
            dt = t1 - prev_t
            prev_t = t1
            if dt < 0.0:
                self._non_monotone.append(mid)
                dt = 0.0
            if reg is not None:
                try:
                    hist = self._stage_hists[s1]
                except KeyError:
                    hist = self._stage_hists[s1] = reg.histogram(
                        "span_stage_seconds", LATENCY_BUCKETS, stage=s1
                    )
                hist.observe(dt)
        if reg is not None and "submit" in rec and "deliver" in rec:
            if self._e2e_hist is None:
                self._e2e_hist = reg.histogram(
                    "span_e2e_seconds", LATENCY_BUCKETS
                )
            self._e2e_hist.observe(rec["deliver"] - rec["submit"])

    # -- queries ------------------------------------------------------------

    @staticmethod
    def _chain_of(rec: Dict[str, float]) -> List[Tuple[str, float]]:
        # Stages form a total order, so walking STAGES beats sorting.
        return [(s, rec[s]) for s in STAGES if s in rec]

    def chain(self, mid: MessageId) -> List[Tuple[str, float]]:
        """The message's stamped stages in pipeline order."""
        return self._chain_of(self.records.get(mid, {}))

    def gaps(self, mid: MessageId) -> List[Tuple[str, float]]:
        """``(stage, dt)`` of each consecutive pipeline leg; ``dt`` is the
        time from the previous stamped stage to ``stage``.  The legs
        telescope: they sum to last-stamp minus first-stamp exactly."""
        chain = self.chain(mid)
        return [
            (chain[i][0], chain[i][1] - chain[i - 1][1])
            for i in range(1, len(chain))
        ]

    def e2e(self, mid: MessageId) -> Optional[float]:
        rec = self.records.get(mid)
        if rec is None or "submit" not in rec or "deliver" not in rec:
            return None
        return rec["deliver"] - rec["submit"]

    def complete(self, mid: MessageId) -> bool:
        """Submitted and delivered, with a monotone stamp chain."""
        if self.e2e(mid) is None:
            return False
        chain = self.chain(mid)
        return all(
            chain[i][1] >= chain[i - 1][1] for i in range(1, len(chain))
        )

    def attributed_fraction(self, mid: MessageId) -> Optional[float]:
        """Share of the submit→deliver latency covered by named stage
        legs.  The legs telescope over every stamped stage, so any span
        carrying both endpoints attributes 100%; a lower figure means a
        stamp landed outside [submit, deliver] — a pipeline bug."""
        total = self.e2e(mid)
        if total is None:
            return None
        if total <= 0:
            return 1.0
        covered = sum(
            dt for s, dt in self.gaps(mid)
            if STAGE_INDEX[s] <= STAGE_INDEX["deliver"]
        )
        return covered / total

    def delivered_mids(self) -> List[MessageId]:
        return [m for m, rec in self.records.items() if "deliver" in rec]

    def top_slowest(self, k: int = 10) -> List[MessageId]:
        """The ``k`` slowest submit→deliver messages, slowest first."""
        timed = [
            (e2e, mid)
            for mid in self.delivered_mids()
            if (e2e := self.e2e(mid)) is not None
        ]
        timed.sort(key=lambda p: (-p[0], p[1]))
        return [mid for _, mid in timed[:k]]


class SpanTraceMonitor:
    """Trace/cluster monitor stamping the endpoints of every span.

    Attach to a sim :class:`~repro.sim.trace.Trace` (duck-typed
    ``on_multicast``/``on_deliver`` hooks) or call the hooks directly from
    the net cluster's recording seams — both hand over the event time, so
    the stamps ride the run's own clock.
    """

    def __init__(self, spans: SpanRecorder) -> None:
        self.spans = spans
        # Every destination process reports its own delivery of a message;
        # only the first stamp per mid can win, so the redundant replicas
        # are filtered here with a set probe instead of a full stamp call.
        self._submitted: set = set()
        self._delivered: set = set()

    def on_multicast(self, t: float, pid: int, m: Any) -> None:
        mid = m.mid
        if mid not in self._submitted:
            self._submitted.add(mid)
            self.spans.stamp(mid, "submit", t)

    def on_deliver(self, t: float, pid: int, m: Any) -> None:
        mid = m.mid
        if mid not in self._delivered:
            self._delivered.add(mid)
            self.spans.stamp(mid, "deliver", t)


def _fmt_t(dt: float) -> str:
    if dt >= 1.0:
        return f"{dt:.3f}s"
    if dt >= 0.001:
        return f"{dt * 1e3:.2f}ms"
    return f"{dt * 1e6:.0f}us"


def render_spans_report(spans: SpanRecorder, k: int = 10) -> str:
    """The ``repro spans`` view: per-stage latency profile over every
    delivered message, then the top-``k`` slowest with their breakdown."""
    delivered = spans.delivered_mids()
    lines: List[str] = []
    if not delivered:
        return "no delivered messages carry spans\n"

    e2es = sorted(e for m in delivered if (e := spans.e2e(m)) is not None)
    stage_sums: Dict[str, List[float]] = {}
    for mid in delivered:
        for stage, dt in spans.gaps(mid):
            stage_sums.setdefault(stage, []).append(dt)
    lines.append(
        f"spans     : {len(delivered)} delivered messages "
        f"({len(spans.non_monotone)} non-monotone, {spans.dropped} dropped)"
    )
    if e2es:
        mid_e2e = e2es[len(e2es) // 2]
        lines.append(
            f"e2e       : median {_fmt_t(mid_e2e)}  "
            f"p95 {_fmt_t(e2es[int(len(e2es) * 0.95)] if len(e2es) > 1 else e2es[-1])}  "
            f"max {_fmt_t(e2es[-1])}"
        )
        # Median attribution: share of the median message's e2e covered by
        # named stage legs (telescoping makes this 100% unless stamps ever
        # land outside the submit→deliver window).
        fracs = sorted(
            f for m in delivered
            if (f := spans.attributed_fraction(m)) is not None
        )
        if fracs:
            lines.append(
                f"attributed: {100 * fracs[len(fracs) // 2]:.1f}% of median "
                f"e2e latency to named pipeline stages"
            )
    lines.append("stage legs (time since previous stage, across messages):")
    for stage in STAGES:
        vals = stage_sums.get(stage)
        if not vals:
            continue
        vals.sort()
        lines.append(
            f"  -> {stage:<13} n={len(vals):<6} "
            f"median {_fmt_t(vals[len(vals) // 2]):>9}  "
            f"p95 {_fmt_t(vals[int(len(vals) * 0.95)] if len(vals) > 1 else vals[-1]):>9}  "
            f"max {_fmt_t(vals[-1]):>9}"
        )
    top = spans.top_slowest(k)
    if top:
        lines.append(f"top {len(top)} slowest messages:")
        for mid in top:
            e2e = spans.e2e(mid)
            legs = "  ".join(
                f"{stage}+{_fmt_t(dt)}" for stage, dt in spans.gaps(mid)
            )
            lines.append(f"  {mid}: {_fmt_t(e2e or 0.0)}  [{legs}]")
    return "\n".join(lines) + "\n"
