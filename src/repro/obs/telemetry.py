"""The per-run telemetry object: one registry, one span recorder, one clock.

A :class:`Telemetry` is created per run by whichever harness owns the
clock — the simulator hands in virtual time (``lambda: sim.now``), the
TCP cluster hands in ``time.monotonic`` — and is then shared by every
instrumented seam of that run: protocol processes (``proc.attach_obs``),
transports, serving replicas and sessions.  That single ``now`` callable
is the clock abstraction that lets one span pipeline serve both
runtimes.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional, Tuple

from .options import ObsOptions
from .registry import MetricsRegistry
from .spans import SpanRecorder, SpanTraceMonitor

__all__ = ["Telemetry", "wall_clock", "collect_process_stats"]


def wall_clock() -> float:
    """The TCP runtime's telemetry clock (monotonic wall time)."""
    return time.monotonic()


class Telemetry:
    """Mutable recording state of one observed run."""

    def __init__(
        self,
        options: ObsOptions,
        now: Callable[[], float] = wall_clock,
        time_source: Any = None,
    ) -> None:
        self.options = options
        self.now = now
        self.registry = MetricsRegistry()
        self.spans: Optional[SpanRecorder] = (
            SpanRecorder(
                now,
                self.registry,
                max_messages=options.span_limit,
                time_source=time_source,
            )
            if options.spans
            else None
        )
        if self.spans is not None:
            # Bind the recorder's stamp directly: the protocol hot paths
            # call ``obs.stamp`` per pipeline event, and the extra method
            # hop is measurable at workload message rates.
            self.stamp = self.spans.stamp

    @staticmethod
    def create(
        options: Optional[ObsOptions],
        now: Callable[[], float] = wall_clock,
        time_source: Any = None,
    ) -> Optional["Telemetry"]:
        """``None`` unless the options ask for telemetry — callers keep the
        disabled path a single ``is None`` check.

        ``time_source`` is an optional object whose ``now`` *attribute* is
        the current time (the simulator qualifies); span stamping reads it
        instead of calling ``now()``, which shaves a function call off the
        hottest telemetry path."""
        if options is None or not options.enabled:
            return None
        return Telemetry(options, now, time_source=time_source)

    def trace_monitor(self) -> Optional[SpanTraceMonitor]:
        """A monitor stamping submit/deliver endpoints off the trace (sim)
        or the cluster recording seams (net)."""
        return SpanTraceMonitor(self.spans) if self.spans is not None else None

    def stamp(self, mid, stage: str, t: Optional[float] = None) -> None:
        """No-op unless spans are on (then rebound to the recorder's)."""

    def finalize(self) -> None:
        """Fold any deferred span state into records and histograms.

        The span recorder defers per-mid bookkeeping off the stamp hot
        path; harnesses call this once at end of run so exported
        registries include the span-derived histograms."""
        if self.spans is not None:
            self.spans._seal()


def collect_process_stats(telemetry: Telemetry, members: Dict[int, Any]) -> None:
    """Fold end-of-run per-process state into gauges.

    Walks duck-typed stats the protocol layers keep anyway (delivered
    counts, ordering-queue and lane-merge occupancy high-waters) so the
    hot paths carry no per-event gauge updates; one synchronous sweep at
    snapshot time reads them all.
    """
    telemetry.finalize()
    reg = telemetry.registry
    # Admission/commit tallies are plain ints on the processes (sharded
    # hosts keep them on their lane processes); sum per (group, lane) and
    # assign — not inc — so repeated sweeps stay idempotent.
    tallies: Dict[Tuple[str, Any, Any], int] = {}
    for proc in members.values():
        for unit in (proc, *getattr(proc, "lanes", ())):
            for attr, metric in (
                ("obs_admitted", "wbcast_admissions_total"),
                ("obs_committed", "wbcast_commits_total"),
            ):
                v = getattr(unit, attr, 0)
                if v:
                    key = (metric, getattr(unit, "gid", -1), getattr(unit, "lane", 0))
                    tallies[key] = tallies.get(key, 0) + v
    for (metric, gid, lane), v in tallies.items():
        reg.counter(metric, group=gid, lane=lane).value = v
    for pid, proc in sorted(members.items()):
        labels = {"pid": pid, "group": getattr(proc, "gid", -1)}
        reg.gauge("process_delivered_total", **labels).set(
            getattr(proc, "delivered_count", 0)
        )
        queue = getattr(proc, "queue", None)
        if queue is not None:
            for attr, metric in (
                ("released_count", "ordering_released_total"),
                ("head_blocked_checks", "ordering_head_blocked_total"),
                ("pending_high_water", "ordering_pending_high_water"),
            ):
                v = getattr(queue, attr, None)
                if v is not None:
                    reg.gauge(metric, **labels).set(v)
        merge = getattr(proc, "merge", None)
        if merge is not None:
            for attr, metric in (
                ("released_count", "lane_merge_released_total"),
                ("head_blocked_checks", "lane_merge_head_blocked_total"),
                ("queued_high_water", "lane_merge_queued_high_water"),
            ):
                v = getattr(merge, attr, None)
                if v is not None:
                    reg.gauge(metric, **labels).set(v)
