"""A low-overhead metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the telemetry spine's storage layer.  Design constraints,
in order:

1. **Disabled runs pay nothing.**  Every instrumented seam holds either a
   real registry or the shared :data:`NULL_REGISTRY`; the null registry
   hands out singleton no-op instruments, so a disabled hook is one
   attribute load and one no-op call — and most protocol seams skip even
   that behind an ``if self.obs is not None`` guard.
2. **Enabled runs stay cheap.**  An instrument lookup is one dict probe
   on a ``(name, labels)`` key; callers on hot paths look their
   instruments up once and keep the reference.  A histogram observation
   is one ``bisect`` over a small fixed bucket list.
3. **No background machinery.**  Nothing ticks, samples or exports on its
   own; :meth:`MetricsRegistry.snapshot` / the ``render_*`` exporters
   walk the instruments synchronously when asked.

Labels are plain keyword arguments (``registry.counter("x", group=1)``),
normalised to a sorted tuple so label order never mints a second series.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
]

LabelKey = Tuple[Tuple[str, Any], ...]

#: Default histogram buckets for latencies in seconds: exponential-ish
#: coverage from 50 µs (sim LAN hops) to 10 s (WAN tail under faults).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for byte/entry sizes (coalesce flushes, batch fills).
SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
    1024, 4096, 16384, 65536, 262144, 1048576,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value; remembers its high-water mark."""

    __slots__ = ("name", "labels", "value", "max")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.max = 0.0

    def set(self, v: float) -> None:
        self.value = v
        if v > self.max:
            self.max = v


class Histogram:
    """Fixed upper-bound buckets plus sum/count (Prometheus semantics:
    ``counts[i]`` holds observations ``<= bounds[i]``, the last slot is
    the +Inf overflow)."""

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(
        self, name: str, labels: LabelKey, buckets: Iterable[float]
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds: List[float] = sorted(buckets)
        if not self.bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        self.counts[bisect_right(self.bounds, v)] += 1
        self.sum += v
        self.count += 1

    def quantile(self, q: float) -> float:
        """Estimate quantile ``q`` from the buckets (upper-bound of the
        bucket holding the target rank; overflow reports the top bound).
        A coarse figure — the span recorder keeps exact per-message data
        for anything that needs precision."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
        return self.bounds[-1]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Get-or-create instrument store keyed on ``(name, labels)``."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- instruments --------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, key[1])
        return c

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, key[1])
        return g

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = LATENCY_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name, key[1], buckets)
        return h

    # -- introspection ------------------------------------------------------

    def counters(self, name: Optional[str] = None) -> List[Counter]:
        return [c for (n, _), c in sorted(self._counters.items())
                if name is None or n == name]

    def gauges(self, name: Optional[str] = None) -> List[Gauge]:
        return [g for (n, _), g in sorted(self._gauges.items())
                if name is None or n == name]

    def histograms(self, name: Optional[str] = None) -> List[Histogram]:
        return [h for (n, _), h in sorted(self._histograms.items())
                if name is None or n == name]

    def counter_total(self, name: str, **labels: Any) -> int:
        """Sum of every ``name`` series whose labels include ``labels``."""
        want = set(labels.items())
        return sum(
            c.value
            for (n, lk), c in self._counters.items()
            if n == name and want <= set(lk)
        )

    # -- export -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view of every instrument (the JSON export's body)."""

        def label_dict(lk: LabelKey) -> Dict[str, Any]:
            return {k: v for k, v in lk}

        return {
            "counters": [
                {"name": c.name, "labels": label_dict(c.labels), "value": c.value}
                for c in self.counters()
            ],
            "gauges": [
                {"name": g.name, "labels": label_dict(g.labels),
                 "value": g.value, "max": g.max}
                for g in self.gauges()
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": label_dict(h.labels),
                    "buckets": [
                        {"le": b, "count": c}
                        for b, c in zip(list(h.bounds) + ["+Inf"], h.counts)
                    ],
                    "sum": h.sum,
                    "count": h.count,
                }
                for h in self.histograms()
            ],
        }

    def render_json(self) -> str:
        import json

        return json.dumps(self.snapshot(), indent=2, sort_keys=True, default=str)

    def render_prometheus(self) -> str:
        """Prometheus text exposition (v0.0.4) of every instrument."""
        lines: List[str] = []

        def fmt_labels(lk: LabelKey, extra: str = "") -> str:
            parts = [f'{k}="{v}"' for k, v in lk]
            if extra:
                parts.append(extra)
            return "{" + ",".join(parts) + "}" if parts else ""

        seen_types: Dict[str, str] = {}

        def typed(name: str, kind: str) -> None:
            if seen_types.get(name) != kind:
                seen_types[name] = kind
                lines.append(f"# TYPE {name} {kind}")

        for c in self.counters():
            typed(c.name, "counter")
            lines.append(f"{c.name}{fmt_labels(c.labels)} {c.value}")
        for g in self.gauges():
            typed(g.name, "gauge")
            lines.append(f"{g.name}{fmt_labels(g.labels)} {g.value}")
        for h in self.histograms():
            typed(h.name, "histogram")
            base = fmt_labels(h.labels)
            acc = 0
            for b, cnt in zip(list(h.bounds) + ["+Inf"], h.counts):
                acc += cnt
                le = 'le="%s"' % b
                lines.append(f"{h.name}_bucket{fmt_labels(h.labels, le)} {acc}")
            lines.append(f"{h.name}_sum{base} {h.sum}")
            lines.append(f"{h.name}_count{base} {h.count}")
        return "\n".join(lines) + ("\n" if lines else "")


class _NullInstrument:
    """One shared instrument that absorbs every operation."""

    __slots__ = ()
    name = ""
    labels: LabelKey = ()
    value = 0
    max = 0.0
    sum = 0.0
    count = 0
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled-mode registry: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets: Iterable[float] = (), **labels: Any):
        return _NULL_INSTRUMENT

    def counters(self, name: Optional[str] = None) -> List[Counter]:
        return []

    def gauges(self, name: Optional[str] = None) -> List[Gauge]:
        return []

    def histograms(self, name: Optional[str] = None) -> List[Histogram]:
        return []

    def counter_total(self, name: str, **labels: Any) -> int:
        return 0

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": [], "gauges": [], "histograms": []}

    def render_json(self) -> str:
        return "{}"

    def render_prometheus(self) -> str:
        return ""


#: Shared disabled-mode registry (hand this out instead of ``None`` where a
#: registry-shaped object keeps call sites branch-free).
NULL_REGISTRY = NullRegistry()
