"""Observability knobs carried by the cluster configuration.

:class:`ObsOptions` rides :class:`~repro.config.ClusterConfig` the same
way :class:`~repro.config.BatchingOptions` does: a frozen, validated
bundle with a shared OFF default, so run harnesses and CLIs thread one
object instead of loose flags.  The options describe *what to record*;
the mutable recording state lives in
:class:`~repro.obs.telemetry.Telemetry`, created per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError

__all__ = ["ObsOptions", "OBS_OFF"]


@dataclass(frozen=True)
class ObsOptions:
    """What the telemetry spine records for a run.

    Attributes:
        enabled: master switch.  Off (the default) hands every seam the
            null registry and skips span stamping entirely, so a disabled
            run is byte-identical to a pre-telemetry one.
        spans: record per-message lifecycle spans (stage stamps + the
            per-stage latency histograms).  Metrics-only runs switch this
            off to shed the per-message dict work.
        span_limit: most messages whose spans are retained (``None``:
            unbounded).  Long soak runs cap this so span state cannot
            grow without bound; stamps for mids past the cap are counted
            as dropped, never recorded.
        top_k: how many slowest messages ``repro spans`` prints.
        export: export format for ``--obs-export`` (``"json"`` or
            ``"prom"``; ``None`` leaves the choice to the file suffix).
    """

    enabled: bool = False
    spans: bool = True
    span_limit: Optional[int] = 200_000
    top_k: int = 10
    export: Optional[str] = None

    def __post_init__(self) -> None:
        if self.span_limit is not None and self.span_limit < 1:
            raise ConfigError(
                f"span_limit must be >= 1 or None, got {self.span_limit}"
            )
        if self.top_k < 1:
            raise ConfigError(f"top_k must be >= 1, got {self.top_k}")
        if self.export not in (None, "json", "prom"):
            raise ConfigError(
                f"export must be 'json', 'prom' or None, got {self.export!r}"
            )


#: Shared "observability off" instance used as the default everywhere.
OBS_OFF = ObsOptions()
