"""Key-based conflict relation shared by delivery, routing, and checking.

Generic Multicast (PAPERS.md, arXiv 2410.01901) relaxes atomic multicast's
total order to a partial one: only *conflicting* messages need a relative
order, so commuting messages — disjoint-key KV ops, the overwhelming case
for a sharded store — may be delivered as soon as they are stable instead
of waiting in the total-order merge.

This module is the single definition of "conflicting" used everywhere:

* **Footprint**: an optional tuple of application keys carried on
  :class:`~repro.types.AmcastMessage`.  ``None`` means "unknown", which
  conservatively conflicts with everything (a built-in fence — commands
  whose effects can't be keyed, reconfiguration, no-ops).
* **Key-level conflict** (:func:`footprints_conflict`): two messages
  conflict iff either footprint is ``None`` or they share a key.  This is
  the relation the partial-order *checker* verifies — the ground truth.
* **Domain coarsening** (:func:`domain_of`): keys hash into a fixed number
  of *conflict domains* with a stable CRC-32, and the *implementations*
  order at domain granularity (same domain ⇒ ordered).  Coarser than the
  key relation, hence always safe: any order consistent per domain is
  consistent per key.  In sharded ``keys`` mode the domain IS the ordering
  lane, which is what lets single-domain messages ride one lane's stream
  and skip the cross-lane merge wait.

Apps declare how payloads map to keys with a :class:`ConflictSpec`
(``apps/kvstore.py``, ``apps/bank.py``, ``apps/replicated_log.py`` each
export one); submission paths call ``spec.footprint(payload)`` and stamp
the result on the message.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, FrozenSet, Iterable, Optional, Tuple

__all__ = [
    "ConflictSpec",
    "stable_key_hash",
    "domain_of",
    "footprint_domains",
    "footprints_conflict",
    "domains_conflict",
    "single_domain",
]

Footprint = Optional[Tuple[Any, ...]]


def stable_key_hash(key: Any) -> int:
    """A process- and run-stable hash of an application key.

    ``hash()`` is salted per interpreter (PYTHONHASHSEED), which would
    scatter the same key to different domains on different runtime
    processes — CRC-32 of the key's string form is stable everywhere the
    multi-process runtime can put a member.
    """
    return zlib.crc32(str(key).encode("utf-8"))


def domain_of(key: Any, num_domains: int) -> int:
    """The conflict domain (0..num_domains-1) a key belongs to."""
    return stable_key_hash(key) % num_domains


def footprint_domains(
    footprint: Footprint, num_domains: int
) -> Optional[FrozenSet[int]]:
    """Domains a footprint touches (``None``: unknown — touches all)."""
    if footprint is None:
        return None
    return frozenset(domain_of(k, num_domains) for k in footprint)


def single_domain(footprint: Footprint, num_domains: int) -> Optional[int]:
    """The one domain a footprint occupies, or ``None`` if it spans
    several domains or is unknown (the fenced cases)."""
    if not footprint:  # None or empty: no keyed claim to commute on
        return None
    it = iter(footprint)
    d = domain_of(next(it), num_domains)
    for k in it:
        if domain_of(k, num_domains) != d:
            return None
    return d


def footprints_conflict(a: Footprint, b: Footprint) -> bool:
    """Key-level conflict: unknown footprints conflict with everything,
    keyed footprints conflict iff they share a key.  This is the relation
    the partial-order checker verifies."""
    if a is None or b is None:
        return True
    if len(a) > len(b):
        a, b = b, a
    bs = set(b)
    return any(k in bs for k in a)


def domains_conflict(
    a: Optional[FrozenSet[int]], b: Optional[FrozenSet[int]]
) -> bool:
    """Domain-level conflict (the coarsening implementations order by)."""
    if a is None or b is None:
        return True
    return not a.isdisjoint(b)


@dataclass(frozen=True)
class ConflictSpec:
    """How one application's payloads map to conflict footprints.

    ``keys_of`` extracts the keys a payload reads or writes, or returns
    ``None`` when the payload's effects cannot be keyed (it then fences:
    conflicts with everything).  ``footprint`` normalises the result to
    the tuple shape :class:`~repro.types.AmcastMessage` carries.
    """

    name: str
    keys_of: Callable[[Any], Optional[Iterable[Any]]]

    def footprint(self, payload: Any) -> Footprint:
        keys = self.keys_of(payload)
        if keys is None:
            return None
        return tuple(keys)
