"""Core value types shared by every protocol in the library.

The paper orders messages by *timestamps* ``(t, g)`` — a logical-clock value
paired with a group identifier — compared lexicographically, with a special
bottom timestamp below everything (Section III).  Leader epochs are named by
*ballots* ``(n, p)`` — an integer paired with a process identifier — likewise
compared lexicographically with a bottom element (Section IV).

Both are small frozen dataclasses so they can be used as dict keys, sorted,
and sent over the wire (they pickle cleanly for the asyncio runtime).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, FrozenSet, Tuple

ProcessId = int
GroupId = int
MessageId = Tuple[int, int]  # (origin process id, per-origin sequence number)


@dataclass(frozen=True, slots=True, order=True)
class Timestamp:
    """A Skeen-style timestamp ``(time, group)``, ordered lexicographically.

    ``time`` is a logical-clock value and ``group`` breaks ties between
    groups, making timestamps issued by distinct groups distinct.  The
    module-level :data:`TS_BOTTOM` is strictly below every timestamp a
    protocol can issue (protocol clocks start at 0 and are incremented
    before use, so issued timestamps always have ``time >= 1``).
    """

    time: int
    group: GroupId

    def __repr__(self) -> str:  # compact, for traces
        return f"ts({self.time},{self.group})"


TS_BOTTOM = Timestamp(-1, -1)


@dataclass(frozen=True, slots=True, order=True)
class Ballot:
    """A leader-epoch identifier ``(round, pid)``, ordered lexicographically.

    ``leader()`` names the process that owns the ballot, matching the
    paper's ``leader(b)`` notation.  :data:`BALLOT_BOTTOM` is the initial
    ballot, below every ballot a process can create.
    """

    round: int
    pid: ProcessId

    def leader(self) -> ProcessId:
        return self.pid

    def __repr__(self) -> str:
        return f"bal({self.round},{self.pid})"


BALLOT_BOTTOM = Ballot(-1, -1)


@dataclass(frozen=True, slots=True)
class AmcastMessage:
    """An application message submitted to atomic multicast.

    ``mid`` is globally unique (origin pid + origin-local sequence number);
    ``dests`` is the set of destination *group* ids; ``payload`` is opaque to
    every protocol and is handed back verbatim on delivery; ``size`` is the
    nominal wire size in bytes, used only by bandwidth-aware delay models
    (the paper's evaluation uses 20-byte messages).

    ``footprint`` is the message's conflict footprint — the application
    keys the payload touches, or ``None`` when unknown (``None``
    conservatively conflicts with everything; see :mod:`repro.conflict`).
    Protocols in ``conflict=total`` mode ignore it entirely.
    """

    mid: MessageId
    dests: FrozenSet[GroupId]
    payload: Any = None
    size: int = 20
    footprint: Tuple[Any, ...] | None = None

    def __post_init__(self) -> None:
        if not self.dests:
            raise ValueError("an atomic multicast message needs at least one destination group")

    def __repr__(self) -> str:
        return f"m{self.mid}->{sorted(self.dests)}"


class MessageIdAllocator:
    """Allocates unique :data:`MessageId` values for one origin process."""

    def __init__(self, origin: ProcessId) -> None:
        self._origin = origin
        self._counter = itertools.count()

    def fresh(self) -> MessageId:
        return (self._origin, next(self._counter))


def make_message(
    origin: ProcessId,
    seq: int,
    dests: FrozenSet[GroupId] | set | tuple | list,
    payload: Any = None,
    size: int = 20,
    footprint: tuple | list | None = None,
) -> AmcastMessage:
    """Convenience constructor normalising ``dests`` to a frozenset."""
    return AmcastMessage(
        mid=(origin, seq),
        dests=frozenset(dests),
        payload=payload,
        size=size,
        footprint=None if footprint is None else tuple(footprint),
    )
