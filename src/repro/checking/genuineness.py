"""Genuineness (minimality) monitor.

A protocol is *genuine* (Guerraoui & Schiper [19]) when, for every message
``m``, only ``m``'s sender and members of ``m``'s destination groups
participate in ordering it.  We check this on the wire: every protocol
message that can be attributed to an application message ``m`` must flow
strictly between processes in ``dest(m)``'s groups (plus the original
sender as a source).

Attribution is duck-typed: a protocol message names the application
message(s) it concerns via an ``m`` field, a ``mid`` field or a ``mids()``
method.  Untagged messages (heartbeats, leader election, group-local state
transfer) are outside the scope of the definition and are ignored.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set

from ..config import ClusterConfig
from ..types import AmcastMessage, MessageId, ProcessId


def extract_mids(msg: Any) -> List[MessageId]:
    """Application message ids a protocol message is attributable to."""
    mids = getattr(msg, "mids", None)
    if callable(mids):
        return list(mids())
    m = getattr(msg, "m", None)
    if isinstance(m, AmcastMessage):
        return [m.mid]
    mid = getattr(msg, "mid", None)
    if isinstance(mid, tuple) and len(mid) == 2:
        return [mid]
    return []


class GenuinenessMonitor:
    """Trace monitor recording per-message participants and violations."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.participants: Dict[MessageId, Set[ProcessId]] = {}
        self.senders: Dict[MessageId, ProcessId] = {}
        self.dests: Dict[MessageId, frozenset] = {}
        self.violations: List[str] = []

    # -- trace hooks -------------------------------------------------------

    def on_multicast(self, t: float, pid: ProcessId, m: AmcastMessage) -> None:
        self.senders[m.mid] = pid
        self.dests[m.mid] = m.dests

    def on_send(self, rec) -> None:
        for mid in extract_mids(rec.msg):
            self._note(mid, rec.src)
            self._note(mid, rec.dst)
        m = getattr(rec.msg, "m", None)
        if isinstance(m, AmcastMessage):
            self.dests.setdefault(m.mid, m.dests)

    # -- verdict -------------------------------------------------------------

    def _note(self, mid: MessageId, pid: ProcessId) -> None:
        self.participants.setdefault(mid, set()).add(pid)

    def _allowed(self, mid: MessageId) -> Set[ProcessId]:
        allowed: Set[ProcessId] = set()
        sender = self.senders.get(mid)
        if sender is not None:
            allowed.add(sender)
        for gid in self.dests.get(mid, frozenset()):
            allowed.update(self.config.members(gid))
        return allowed

    def check(self) -> List[str]:
        """Return violation descriptions (empty = genuine run)."""
        self.violations = []
        for mid, pids in sorted(self.participants.items()):
            if mid not in self.dests:
                continue  # never learned the destination set; cannot judge
            extra = pids - self._allowed(mid)
            if extra:
                self.violations.append(
                    f"{mid}: non-destination processes {sorted(extra)} participated"
                )
        return self.violations

    @property
    def is_genuine(self) -> bool:
        return not self.check()
