"""Linearizability checking for serving-layer read histories.

The serving layer (:mod:`repro.serving`) answers reads either locally at
the watermark or through the submit path; both stamp the reply with the
answering replica's applied delivery index.  Because delivery order is
identical on every member of a group, that index is a *coordinate*: it
names one state in the group's single state sequence.  Checking
linearizability therefore reduces to index arithmetic against the
recorded run history — no permutation search:

* **conformance** — a read's ``(value, version)`` items must equal the
  ground-truth group state at the reply index, obtained by replaying
  the group's recorded delivery sequence.
* **session monotonicity** — a session's reads never travel backwards:
  a read invoked after another one completed (same session, same
  group) must carry an index at least as large, and per-key versions
  never regress between them.
* **read-your-writes** — a read invoked after one of the session's own
  writes to a requested key completed must sit at or past that write's
  delivery position.
* **real-time freshness** — the full linearizability obligation: a read
  must sit at or past the delivery position of *any* write (any
  session) that completed strictly before the read was invoked.

Together with conformance, the index bounds imply the read observed the
writes in question, so the four checks are exactly linearizability of
the read/write register history over the (already separately verified)
atomic multicast total order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..types import AmcastMessage, GroupId, MessageId, ProcessId
from .history import History
from .properties import CheckResult

__all__ = [
    "ReadRecord",
    "WriteRecord",
    "serving_records",
    "group_sequence",
    "check_read_conformance",
    "check_session_monotonic",
    "check_read_your_writes",
    "check_realtime_freshness",
    "check_read_conformance_keys",
    "check_session_monotonic_keys",
    "check_read_your_writes_keys",
    "check_realtime_freshness_keys",
    "check_linearizability",
    "assert_linearizable",
]


@dataclass(frozen=True)
class ReadRecord:
    """One completed read, as the checker wants it."""

    session: ProcessId
    rid: int
    gid: GroupId
    keys: Tuple[Any, ...]
    invoked_at: float
    completed_at: float
    index: int
    items: Tuple[Tuple[Any, Any, int], ...]
    path: str = "local"
    #: Keys-mode only: the read's conflict domain; its ``index`` is then
    #: a per-domain coordinate.  ``None`` in total mode, or when the keys
    #: span domains (such reads carry index 0 — no usable coordinate).
    domain: Optional[int] = None

    def version(self, key: Any) -> int:
        for k, _v, ver in self.items:
            if k == key:
                return ver
        return 0


@dataclass(frozen=True)
class WriteRecord:
    """One completed write's effect on one key of one group."""

    session: ProcessId
    mid: MessageId
    gid: GroupId
    key: Any
    invoked_at: float
    completed_at: float


def serving_records(
    sessions: Iterable[Any],
) -> Tuple[List[ReadRecord], List[WriteRecord]]:
    """Collect read/write records from :class:`ServingSession` objects.

    Incomplete reads and writes are skipped (a linearizability check
    only constrains operations whose response the client saw).  Write
    payloads are unpacked per key: a multi-partition command yields one
    record per (key, owning group).
    """
    from ..apps.bank import Transfer, shard_of
    from ..apps.kvstore import KvCommand, partition_of

    reads: List[ReadRecord] = []
    writes: List[WriteRecord] = []
    for s in sessions:
        num_groups = s.config.num_groups
        for r in getattr(s, "reads", ()):
            if not r.done:
                continue
            reads.append(
                ReadRecord(
                    session=s.pid,
                    rid=r.rid,
                    gid=r.gid,
                    keys=r.keys,
                    invoked_at=r.invoked_at,
                    completed_at=r.completed_at,
                    index=r.index,
                    items=r.items,
                    path=r.path,
                    domain=getattr(r, "domain", None),
                )
            )
        for mid, t in s.completed:
            h = s.handle_of(mid)
            if h is None:
                continue  # evicted handle: run with retain_completed=None to check
            payload = h.payload
            invoked = h.launched_at if h.launched_at is not None else h.submitted_at
            if isinstance(payload, KvCommand):
                for key, _value in payload.items:
                    writes.append(
                        WriteRecord(
                            session=s.pid,
                            mid=mid,
                            gid=partition_of(key, num_groups),
                            key=key,
                            invoked_at=invoked,
                            completed_at=t,
                        )
                    )
            elif isinstance(payload, Transfer):
                for key in (payload.src, payload.dst):
                    writes.append(
                        WriteRecord(
                            session=s.pid,
                            mid=mid,
                            gid=shard_of(key, num_groups),
                            key=key,
                            invoked_at=invoked,
                            completed_at=t,
                        )
                    )
    return reads, writes


# -- ground truth -----------------------------------------------------------


def group_sequence(history: History, gid: GroupId) -> List[AmcastMessage]:
    """The group's delivery sequence: the longest member sequence.

    The amcast ordering/integrity checks (run separately) guarantee the
    members' sequences agree; the longest one is simply the most
    complete view — under crashes, surviving members extend the crashed
    member's prefix.
    """
    best: List[AmcastMessage] = []
    for pid in history.config.members(gid):
        recs = history.deliveries.get(pid, [])
        if len(recs) > len(best):
            best = [m for _t, m in recs]
    return best


def _positions(seq: List[AmcastMessage]) -> Dict[MessageId, int]:
    """mid → 1-based applied index of its delivery in the sequence."""
    out: Dict[MessageId, int] = {}
    for i, m in enumerate(seq, start=1):
        out.setdefault(m.mid, i)
    return out


def _default_store_factory(history: History):
    from ..serving.replica import KvServingStore

    return lambda gid: KvServingStore(gid, history.config.num_groups)


# -- the four checks --------------------------------------------------------


def check_read_conformance(
    history: History,
    reads: Iterable[ReadRecord],
    store_factory: Optional[Callable[[GroupId], Any]] = None,
) -> CheckResult:
    """Each read's items equal the group state at the reply index.

    ``store_factory(gid)`` builds the replay store; the default replays
    KV commands (:class:`~repro.serving.replica.KvServingStore`) — bank
    histories pass a :class:`~repro.serving.replica.BankServingStore`
    factory instead.
    """
    factory = store_factory or _default_store_factory(history)
    violations: List[str] = []
    by_group: Dict[GroupId, List[ReadRecord]] = {}
    for r in reads:
        by_group.setdefault(r.gid, []).append(r)
    for gid, group_reads in sorted(by_group.items()):
        seq = group_sequence(history, gid)
        store = factory(gid)
        applied = 0
        for r in sorted(group_reads, key=lambda r: r.index):
            if r.index > len(seq):
                violations.append(
                    f"read {r.session}/{r.rid}: index {r.index} beyond the "
                    f"group {gid} delivery sequence ({len(seq)} deliveries)"
                )
                continue
            while applied < r.index:
                store.apply(seq[applied])
                applied += 1
            for key, value, version in r.items:
                want_value, want_version = store.read(key)
                if value != want_value or version != want_version:
                    violations.append(
                        f"read {r.session}/{r.rid} at index {r.index}: "
                        f"{key!r} -> ({value!r}, v{version}), ground truth "
                        f"({want_value!r}, v{want_version})"
                    )
    return CheckResult("read-conformance", not violations, violations)


def check_session_monotonic(reads: Iterable[ReadRecord]) -> CheckResult:
    """Reads chained by completion-before-invocation never go backwards."""
    violations: List[str] = []
    by_session: Dict[Tuple[ProcessId, GroupId], List[ReadRecord]] = {}
    for r in reads:
        by_session.setdefault((r.session, r.gid), []).append(r)
    for (session, gid), rs in sorted(by_session.items()):
        rs = sorted(rs, key=lambda r: r.invoked_at)
        for i, r2 in enumerate(rs):
            for r1 in rs[:i]:
                if r1.completed_at > r2.invoked_at:
                    continue  # concurrent: no order obligation
                if r2.index < r1.index:
                    violations.append(
                        f"session {session} group {gid}: read {r2.rid} "
                        f"(index {r2.index}) invoked after read {r1.rid} "
                        f"(index {r1.index}) completed, but went backwards"
                    )
                for key in set(r1.keys) & set(r2.keys):
                    if r2.version(key) < r1.version(key):
                        violations.append(
                            f"session {session} group {gid}: {key!r} version "
                            f"regressed {r1.version(key)} -> {r2.version(key)} "
                            f"between reads {r1.rid} and {r2.rid}"
                        )
    return CheckResult("session-monotonic-reads", not violations, violations)


def check_read_your_writes(
    history: History,
    reads: Iterable[ReadRecord],
    writes: Iterable[WriteRecord],
) -> CheckResult:
    """A session's reads cover its own completed writes to the read keys."""
    violations: List[str] = []
    positions: Dict[GroupId, Dict[MessageId, int]] = {}
    by_session: Dict[Tuple[ProcessId, GroupId], List[WriteRecord]] = {}
    for w in writes:
        by_session.setdefault((w.session, w.gid), []).append(w)
    for r in reads:
        for w in by_session.get((r.session, r.gid), ()):
            # Strictly-before only: at equal timestamps the completion and
            # the invocation are simultaneous sim events whose callback
            # order is arbitrary — concurrent, hence no order obligation
            # (same convention as the real-time freshness check).
            if w.key not in r.keys or w.completed_at >= r.invoked_at:
                continue
            pos = positions.setdefault(
                r.gid, _positions(group_sequence(history, r.gid))
            ).get(w.mid)
            if pos is None:
                violations.append(
                    f"session {r.session}: completed write {w.mid} to {w.key!r} "
                    f"never delivered in group {r.gid}"
                )
            elif r.index < pos:
                violations.append(
                    f"session {r.session}: read {r.rid} (index {r.index}) "
                    f"invoked after own write {w.mid} to {w.key!r} completed "
                    f"(delivery position {pos}) but does not cover it"
                )
    return CheckResult("read-your-writes", not violations, violations)


def check_realtime_freshness(
    history: History,
    reads: Iterable[ReadRecord],
    writes: Iterable[WriteRecord],
) -> CheckResult:
    """Reads cover every write completed strictly before their invocation.

    This is the real-time clause of linearizability proper, across all
    sessions — the one a naive follower read violates first.
    """
    violations: List[str] = []
    positions: Dict[GroupId, Dict[MessageId, int]] = {}
    by_group: Dict[GroupId, List[WriteRecord]] = {}
    for w in writes:
        by_group.setdefault(w.gid, []).append(w)
    for r in reads:
        for w in by_group.get(r.gid, ()):
            if w.completed_at >= r.invoked_at:
                continue
            pos = positions.setdefault(
                r.gid, _positions(group_sequence(history, r.gid))
            ).get(w.mid)
            if pos is not None and r.index < pos:
                violations.append(
                    f"read {r.session}/{r.rid} (index {r.index}, group {r.gid}) "
                    f"invoked at {r.invoked_at:.6f} misses write {w.mid} "
                    f"(position {pos}) completed at {w.completed_at:.6f}"
                )
    return CheckResult("realtime-freshness", not violations, violations)


# -- keys-mode (conflict-aware) variants ------------------------------------
#
# Under ``conflict="keys"`` the group has no single delivery sequence —
# only per-conflict-domain subsequences agree across members (all pairs
# within a domain conflict pairwise; see checking.conflict_order).  Read
# replies are therefore stamped with the keys' *domain* applied counter,
# and every index comparison below moves to that coordinate system.
# Reads whose keys span domains carry no coordinate (index 0, ``domain``
# None): they are answered on the conflict-ordered fallback path and are
# skipped here — their ordering is covered by check_conflict_ordering.


def _keys_store_factory(history: History):
    from ..serving.replica import KvServingStore

    return lambda gid: KvServingStore(
        gid, history.config.num_groups, history.config.conflict_domains
    )


def check_read_conformance_keys(
    history: History,
    reads: Iterable[ReadRecord],
    store_factory: Optional[Callable[[GroupId], Any]] = None,
) -> CheckResult:
    """Each read's items equal its domain's state at the reply coordinate.

    Ground truth is a replay of the group's domain subsequence: the
    reply index counts exactly the deliveries touching the read's
    domain, so replaying the first ``index`` of them reproduces the
    answering replica's data and version stamps for that domain's keys.
    """
    from .conflict_order import domain_sequence

    factory = store_factory or _keys_store_factory(history)
    violations: List[str] = []
    by_cell: Dict[Tuple[GroupId, int], List[ReadRecord]] = {}
    for r in reads:
        if r.domain is not None:
            by_cell.setdefault((r.gid, r.domain), []).append(r)
    for (gid, domain), cell_reads in sorted(by_cell.items()):
        seq = domain_sequence(history, gid, domain)
        store = factory(gid)
        applied = 0
        for r in sorted(cell_reads, key=lambda r: r.index):
            if r.index > len(seq):
                violations.append(
                    f"read {r.session}/{r.rid}: index {r.index} beyond group "
                    f"{gid} domain {domain}'s subsequence ({len(seq)} deliveries)"
                )
                continue
            while applied < r.index:
                store.apply(seq[applied])
                applied += 1
            for key, value, version in r.items:
                want_value, want_version = store.read(key)
                if value != want_value or version != want_version:
                    violations.append(
                        f"read {r.session}/{r.rid} at domain index {r.index}: "
                        f"{key!r} -> ({value!r}, v{version}), ground truth "
                        f"({want_value!r}, v{want_version})"
                    )
    return CheckResult("read-conformance", not violations, violations)


def check_session_monotonic_keys(reads: Iterable[ReadRecord]) -> CheckResult:
    """Per (session, group, domain): chained reads never go backwards."""
    violations: List[str] = []
    by_cell: Dict[Tuple[ProcessId, GroupId, int], List[ReadRecord]] = {}
    for r in reads:
        if r.domain is not None:
            by_cell.setdefault((r.session, r.gid, r.domain), []).append(r)
    for (session, gid, domain), rs in sorted(by_cell.items()):
        rs = sorted(rs, key=lambda r: r.invoked_at)
        for i, r2 in enumerate(rs):
            for r1 in rs[:i]:
                if r1.completed_at > r2.invoked_at:
                    continue  # concurrent: no order obligation
                if r2.index < r1.index:
                    violations.append(
                        f"session {session} group {gid} domain {domain}: read "
                        f"{r2.rid} (index {r2.index}) invoked after read "
                        f"{r1.rid} (index {r1.index}) completed, but went backwards"
                    )
                for key in set(r1.keys) & set(r2.keys):
                    if r2.version(key) < r1.version(key):
                        violations.append(
                            f"session {session} group {gid}: {key!r} version "
                            f"regressed {r1.version(key)} -> {r2.version(key)} "
                            f"between reads {r1.rid} and {r2.rid}"
                        )
    return CheckResult("session-monotonic-reads", not violations, violations)


def check_read_your_writes_keys(
    history: History,
    reads: Iterable[ReadRecord],
    writes: Iterable[WriteRecord],
) -> CheckResult:
    """A session's reads cover its own completed writes, domain-wise."""
    from ..conflict import domain_of
    from .conflict_order import domain_sequence

    num_domains = history.config.conflict_domains
    violations: List[str] = []
    positions: Dict[Tuple[GroupId, int], Dict[MessageId, int]] = {}
    by_session: Dict[Tuple[ProcessId, GroupId], List[WriteRecord]] = {}
    for w in writes:
        by_session.setdefault((w.session, w.gid), []).append(w)
    for r in reads:
        if r.domain is None:
            continue
        for w in by_session.get((r.session, r.gid), ()):
            if w.key not in r.keys or w.completed_at >= r.invoked_at:
                continue
            cell = (r.gid, domain_of(w.key, num_domains))
            pos = positions.setdefault(
                cell, _positions(domain_sequence(history, *cell))
            ).get(w.mid)
            if pos is None:
                violations.append(
                    f"session {r.session}: completed write {w.mid} to {w.key!r} "
                    f"never delivered in group {r.gid}"
                )
            elif r.index < pos:
                violations.append(
                    f"session {r.session}: read {r.rid} (domain index {r.index}) "
                    f"invoked after own write {w.mid} to {w.key!r} completed "
                    f"(domain position {pos}) but does not cover it"
                )
    return CheckResult("read-your-writes", not violations, violations)


def check_realtime_freshness_keys(
    history: History,
    reads: Iterable[ReadRecord],
    writes: Iterable[WriteRecord],
) -> CheckResult:
    """Reads cover every same-domain write completed before invocation."""
    from ..conflict import domain_of
    from .conflict_order import domain_sequence

    num_domains = history.config.conflict_domains
    violations: List[str] = []
    positions: Dict[Tuple[GroupId, int], Dict[MessageId, int]] = {}
    by_cell: Dict[Tuple[GroupId, int], List[WriteRecord]] = {}
    for w in writes:
        by_cell.setdefault((w.gid, domain_of(w.key, num_domains)), []).append(w)
    for r in reads:
        if r.domain is None:
            continue
        for w in by_cell.get((r.gid, r.domain), ()):
            if w.completed_at >= r.invoked_at:
                continue
            pos = positions.setdefault(
                (r.gid, r.domain),
                _positions(domain_sequence(history, r.gid, r.domain)),
            ).get(w.mid)
            if pos is not None and r.index < pos:
                violations.append(
                    f"read {r.session}/{r.rid} (domain index {r.index}, group "
                    f"{r.gid} domain {r.domain}) invoked at {r.invoked_at:.6f} "
                    f"misses write {w.mid} (domain position {pos}) completed "
                    f"at {w.completed_at:.6f}"
                )
    return CheckResult("realtime-freshness", not violations, violations)


def check_linearizability(
    history: History,
    reads: Iterable[ReadRecord],
    writes: Iterable[WriteRecord],
    store_factory: Optional[Callable[[GroupId], Any]] = None,
) -> List[CheckResult]:
    """Run all four read-history checks (keys-mode variants when the
    history's config declares ``conflict="keys"``)."""
    reads = list(reads)
    writes = list(writes)
    if history.config.conflict == "keys":
        return [
            check_read_conformance_keys(history, reads, store_factory),
            check_session_monotonic_keys(reads),
            check_read_your_writes_keys(history, reads, writes),
            check_realtime_freshness_keys(history, reads, writes),
        ]
    return [
        check_read_conformance(history, reads, store_factory),
        check_session_monotonic(reads),
        check_read_your_writes(history, reads, writes),
        check_realtime_freshness(history, reads, writes),
    ]


def assert_linearizable(
    history: History,
    reads: Iterable[ReadRecord],
    writes: Iterable[WriteRecord],
    store_factory: Optional[Callable[[GroupId], Any]] = None,
) -> None:
    from ..errors import PropertyViolation

    for result in check_linearizability(history, reads, writes, store_factory):
        if not result.ok:
            raise PropertyViolation(result.describe())
