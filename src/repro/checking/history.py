"""Run histories: the observable events the atomic multicast spec talks about."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..config import ClusterConfig
from ..types import AmcastMessage, MessageId, ProcessId


@dataclass
class History:
    """Observable events of a run, in a checker-friendly shape.

    Attributes:
        config: the cluster the run used.
        multicasts: mid → (origin pid, multicast time, message).
        deliveries: pid → ordered list of (time, message) delivered there.
        crashed: pids that crashed during the run.
    """

    config: ClusterConfig
    multicasts: Dict[MessageId, Tuple[ProcessId, float, AmcastMessage]]
    deliveries: Dict[ProcessId, List[Tuple[float, AmcastMessage]]]
    crashed: Set[ProcessId]

    @staticmethod
    def from_trace(config: ClusterConfig, trace) -> "History":
        """Build a history from a :class:`repro.sim.Trace`."""
        multicasts: Dict[MessageId, Tuple[ProcessId, float, AmcastMessage]] = {}
        for rec in trace.multicasts:
            multicasts.setdefault(rec.m.mid, (rec.pid, rec.t, rec.m))
        deliveries: Dict[ProcessId, List[Tuple[float, AmcastMessage]]] = {}
        for rec in trace.deliveries:
            deliveries.setdefault(rec.pid, []).append((rec.t, rec.m))
        return History(
            config=config,
            multicasts=multicasts,
            deliveries=deliveries,
            crashed=trace.crashed_pids(),
        )

    # -- convenience queries --------------------------------------------------

    def delivery_order(self, pid: ProcessId) -> List[MessageId]:
        return [m.mid for _, m in self.deliveries.get(pid, [])]

    def delivered_anywhere(self) -> Set[MessageId]:
        out: Set[MessageId] = set()
        for recs in self.deliveries.values():
            out.update(m.mid for _, m in recs)
        return out

    def correct_members(self) -> List[ProcessId]:
        return [p for p in self.config.all_members if p not in self.crashed]

    def first_delivery_per_group(self, mid: MessageId) -> Dict[int, float]:
        """Earliest delivery time of ``mid`` in each group that delivered it."""
        out: Dict[int, float] = {}
        for pid, recs in self.deliveries.items():
            if not self.config.is_member(pid):
                continue
            gid = self.config.group_of(pid)
            for t, m in recs:
                if m.mid == mid and (gid not in out or t < out[gid]):
                    out[gid] = t
        return out

    def partial_delivery_time(self, mid: MessageId) -> Optional[float]:
        """Time at which ``mid`` became partially delivered (first delivery
        in *every* destination group), or None if it never did."""
        entry = self.multicasts.get(mid)
        if entry is None:
            return None
        m = entry[2]
        per_group = self.first_delivery_per_group(mid)
        if set(m.dests) - set(per_group):
            return None
        return max(per_group[g] for g in m.dests)
