"""Correctness checking for atomic multicast runs.

Two complementary layers:

* **black-box property checks** (:mod:`repro.checking.properties`): given a
  recorded history (multicasts + per-process delivery sequences), verify
  the four properties of Section II — Validity, Integrity, Ordering,
  Termination — plus the genuineness (minimality) condition;
* **white-box invariant monitors** (:mod:`repro.checking.invariants`):
  attached to a live simulation, they check the Fig. 6 invariants of the
  white-box protocol on every wire message.
"""

from .history import History
from .properties import (
    CheckResult,
    check_all,
    check_integrity,
    check_ordering,
    check_termination,
    check_validity,
)
from .conflict_order import (
    check_conflict_ordering,
    check_domain_agreement,
    conflict_witness_order,
    domain_sequence,
)
from .genuineness import GenuinenessMonitor, extract_mids
from .invariants import WbCastInvariantMonitor
from .linearizability import (
    ReadRecord,
    WriteRecord,
    assert_linearizable,
    check_linearizability,
    check_read_conformance,
    check_read_your_writes,
    check_realtime_freshness,
    check_session_monotonic,
    serving_records,
)

__all__ = [
    "CheckResult",
    "GenuinenessMonitor",
    "History",
    "ReadRecord",
    "WbCastInvariantMonitor",
    "WriteRecord",
    "assert_linearizable",
    "check_all",
    "check_conflict_ordering",
    "check_domain_agreement",
    "check_integrity",
    "check_linearizability",
    "check_ordering",
    "check_read_conformance",
    "check_read_your_writes",
    "check_realtime_freshness",
    "check_session_monotonic",
    "check_termination",
    "check_validity",
    "conflict_witness_order",
    "domain_sequence",
    "extract_mids",
    "serving_records",
]
