"""Correctness checking for atomic multicast runs.

Two complementary layers:

* **black-box property checks** (:mod:`repro.checking.properties`): given a
  recorded history (multicasts + per-process delivery sequences), verify
  the four properties of Section II — Validity, Integrity, Ordering,
  Termination — plus the genuineness (minimality) condition;
* **white-box invariant monitors** (:mod:`repro.checking.invariants`):
  attached to a live simulation, they check the Fig. 6 invariants of the
  white-box protocol on every wire message.
"""

from .history import History
from .properties import (
    CheckResult,
    check_all,
    check_integrity,
    check_ordering,
    check_termination,
    check_validity,
)
from .genuineness import GenuinenessMonitor, extract_mids
from .invariants import WbCastInvariantMonitor

__all__ = [
    "CheckResult",
    "GenuinenessMonitor",
    "History",
    "WbCastInvariantMonitor",
    "check_all",
    "check_integrity",
    "check_ordering",
    "check_termination",
    "check_validity",
    "extract_mids",
]
