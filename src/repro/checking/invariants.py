"""White-box invariant monitors for the WbCast protocol (Fig. 6).

These run *inside* a simulation, observing every wire message (and, for the
state-based clauses, inspecting live process state), and raise
:class:`~repro.errors.InvariantViolation` the moment an invariant breaks —
far more diagnostic than an end-of-run property failure.

Checked here:

* **Invariant 1** — per (message, group, ballot), at most one local
  timestamp is ever proposed in an ACCEPT.
* **Invariant 2** — once a quorum of a group has acknowledged a proposal
  set for ``m``, every group member at a *higher* cballot keeps ``m`` in
  phase ≥ ACCEPTED with the same local timestamp, and its clock at or
  above the implied global timestamp.  (State-probed on every event.)
* **Invariant 3a/3b** — DELIVER messages agree on the local timestamp per
  group and on the global timestamp system-wide.
* **Invariant 4** — global timestamps are unique per message.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from ..config import ClusterConfig
from ..errors import InvariantViolation
from ..types import Ballot, GroupId, MessageId, ProcessId, Timestamp


class WbCastInvariantMonitor:
    """Attach to a :class:`repro.sim.Trace` via ``trace.attach(monitor)``.

    ``processes`` (pid → WbCastProcess) enables the state-based Invariant 2
    probe; pass None to check the message-level invariants only (cheaper).
    ``probe_interval`` limits how often (in handled events) the state probe
    runs; 1 checks after every event.
    """

    def __init__(
        self,
        config: ClusterConfig,
        processes: Optional[Dict[ProcessId, Any]] = None,
        probe_interval: int = 1,
    ) -> None:
        self.config = config
        self.processes = processes
        self.probe_interval = max(1, probe_interval)
        self._events_seen = 0
        # Invariant 1: (mid, gid, ballot) -> lts
        self._proposed: Dict[Tuple[MessageId, GroupId, Ballot], Timestamp] = {}
        # Invariant 3a: (mid, dst group) -> lts; 3b: mid -> gts
        self._deliver_lts: Dict[Tuple[MessageId, GroupId], Timestamp] = {}
        self._deliver_gts: Dict[MessageId, Timestamp] = {}
        # Invariant 4: gts -> mid
        self._gts_owner: Dict[Timestamp, MessageId] = {}
        # Invariant 2 premises: (mid, vector) -> {gid: {ack senders}} plus
        # the proposal set itself, recorded from ACCEPT traffic.
        self._accept_sets: Dict[Tuple[MessageId, Tuple], Dict[GroupId, Timestamp]] = {}
        self._ack_tally: Dict[Tuple[MessageId, Tuple], Dict[GroupId, Set[ProcessId]]] = {}
        # Established premises to re-check on every probe:
        # (mid, gid, ballot of gid, lts of gid, implied gts)
        self._established: Set[Tuple[MessageId, GroupId, Ballot, Timestamp, Timestamp]] = set()

    def bind_processes(self, processes: Dict[ProcessId, Any]) -> None:
        """Late-bind live process objects (called by the harness)."""
        self.processes = processes

    # -- trace hooks ---------------------------------------------------------

    def on_send(self, rec) -> None:
        from ..protocols.wbcast.messages import (
            AcceptAckMsg,
            AcceptMsg,
            DeliverMsg,
            LaneMsg,
        )

        msg = rec.msg
        while isinstance(msg, LaneMsg):
            # Sharded lane traffic: the invariants hold per lane on the
            # inner messages (timestamps carry the lane in their tie-break
            # component, so cross-lane checks compose without extra keys).
            msg = msg.inner
        if isinstance(msg, AcceptMsg):
            self._check_inv1(msg)
        elif isinstance(msg, AcceptAckMsg):
            self._record_ack(rec.src, msg)
        elif isinstance(msg, DeliverMsg):
            self._check_inv3_inv4(rec, msg)

    def on_handle(self, t, pid, src, msg) -> None:
        self._events_seen += 1
        if self.processes and self._events_seen % self.probe_interval == 0:
            self._probe_inv2()

    # -- invariant 1 -----------------------------------------------------------

    def _check_inv1(self, msg) -> None:
        key = (msg.m.mid, msg.gid, msg.bal)
        prev = self._proposed.get(key)
        if prev is None:
            self._proposed[key] = msg.lts
        elif prev != msg.lts:
            raise InvariantViolation(
                f"Invariant 1: {key} proposed both {prev} and {msg.lts}"
            )
        # Remember the proposal set per (mid, ballot-of-group) for Inv 2.

    # -- invariants 3 and 4 --------------------------------------------------------

    def _check_inv3_inv4(self, rec, msg) -> None:
        gid = self.config.group_of(rec.dst)
        mid = msg.m.mid
        key = (mid, gid)
        prev_lts = self._deliver_lts.get(key)
        if prev_lts is None:
            self._deliver_lts[key] = msg.lts
        elif prev_lts != msg.lts:
            raise InvariantViolation(
                f"Invariant 3a: DELIVERs for {mid} to group {gid} "
                f"carry {prev_lts} and {msg.lts}"
            )
        prev_gts = self._deliver_gts.get(mid)
        if prev_gts is None:
            self._deliver_gts[mid] = msg.gts
        elif prev_gts != msg.gts:
            raise InvariantViolation(
                f"Invariant 3b: DELIVERs for {mid} carry global timestamps "
                f"{prev_gts} and {msg.gts}"
            )
        owner = self._gts_owner.get(msg.gts)
        if owner is None:
            self._gts_owner[msg.gts] = mid
        elif owner != mid:
            raise InvariantViolation(
                f"Invariant 4: messages {owner} and {mid} share global timestamp {msg.gts}"
            )

    # -- invariant 2 ----------------------------------------------------------------

    def _record_ack(self, src: ProcessId, ack) -> None:
        vector = ack.vector
        lts_by_group = {}
        for gid, bal in vector:
            lts = self._proposed.get((ack.mid, gid, bal))
            if lts is None:
                return  # haven't seen all proposals yet; skip premise tracking
            lts_by_group[gid] = lts
        key = (ack.mid, vector)
        self._accept_sets[key] = lts_by_group
        tally = self._ack_tally.setdefault(key, {})
        tally.setdefault(ack.gid, set()).add(src)
        gid = ack.gid
        quorum = self.config.quorum_size(gid)
        if len(tally[gid]) >= quorum:
            bal_of_gid = dict(vector)[gid]
            implied_gts = max(lts_by_group.values())
            self._established.add(
                (ack.mid, gid, bal_of_gid, lts_by_group[gid], implied_gts)
            )

    def _probe_inv2(self) -> None:
        from ..protocols.wbcast.state import Phase

        for mid, gid, bal, lts, gts in self._established:
            for pid in self.config.members(gid):
                proc = self.processes.get(pid)
                if proc is None:
                    continue
                if hasattr(proc, "lane_for"):
                    # Sharded member: the per-message state (records,
                    # cballot) lives in the lane that owns ``mid``; the
                    # clock clause still reads the shared process clock.
                    proc = proc.lane_for(mid)
                if not proc.cballot > bal:
                    continue
                rec = proc.records.get(mid)
                if mid in proc.delivered_ids and rec is None:
                    continue  # garbage-collected after full delivery: fine
                if rec is None or rec.phase not in (Phase.ACCEPTED, Phase.COMMITTED):
                    raise InvariantViolation(
                        f"Invariant 2a: {pid} at cballot {proc.cballot} > {bal} "
                        f"lost quorum-accepted message {mid} (record={rec})"
                    )
                if rec.lts != lts:
                    raise InvariantViolation(
                        f"Invariant 2b: {pid} stores lts {rec.lts} for {mid}, "
                        f"quorum accepted {lts}"
                    )
                if proc.clock < gts.time:
                    raise InvariantViolation(
                        f"Invariant 2c: {pid}'s clock {proc.clock} is below the "
                        f"implied global timestamp {gts} of {mid}"
                    )

    # -- summary ------------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "proposals": len(self._proposed),
            "established_premises": len(self._established),
            "delivers_checked": len(self._deliver_gts),
        }
