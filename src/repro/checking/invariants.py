"""White-box invariant monitors for the WbCast protocol (Fig. 6).

These run *inside* a simulation, observing every wire message (and, for the
state-based clauses, inspecting live process state), and raise
:class:`~repro.errors.InvariantViolation` the moment an invariant breaks —
far more diagnostic than an end-of-run property failure.

Checked here:

* **Invariant 1** — per (message, group, ballot), at most one local
  timestamp is ever proposed in an ACCEPT.
* **Invariant 2** — once a quorum of a group has acknowledged a proposal
  set for ``m``, every group member at a *higher* cballot keeps ``m`` in
  phase ≥ ACCEPTED with the same local timestamp, and its clock at or
  above the implied global timestamp.  (State-probed on every event.)
* **Invariant 3a/3b** — DELIVER messages agree on the local timestamp per
  group and on the global timestamp system-wide.
* **Invariant 4** — global timestamps are unique per message.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from ..config import ClusterConfig
from ..errors import InvariantViolation
from ..types import Ballot, GroupId, MessageId, ProcessId, Timestamp


class WbCastInvariantMonitor:
    """Attach to a :class:`repro.sim.Trace` via ``trace.attach(monitor)``.

    ``processes`` (pid → WbCastProcess) enables the state-based Invariant 2
    probe; pass None to check the message-level invariants only (cheaper).
    ``probe_interval`` limits how often (in handled events) the state probe
    runs; 1 checks after every event.
    """

    def __init__(
        self,
        config: ClusterConfig,
        processes: Optional[Dict[ProcessId, Any]] = None,
        probe_interval: int = 1,
    ) -> None:
        self.config = config
        self.processes = processes
        self.probe_interval = max(1, probe_interval)
        self._events_seen = 0
        # Invariant 1, epoch-aware: (mid, gid, ballot, config epoch) -> lts.
        # A message fenced out of one configuration epoch is legitimately
        # re-proposed with a fresh timestamp in the next (same ballot!), so
        # uniqueness is per epoch; without reconfiguration every proposal
        # carries epoch 0 and the keying is exactly the paper's.
        self._proposed: Dict[Tuple[MessageId, GroupId, Ballot, int], Timestamp] = {}
        # All timestamps ever proposed per (mid, gid, ballot) — the ack
        # premise lookup (acks carry no epoch, so a premise is only
        # established when the proposal timestamp is unambiguous).
        self._proposed_lts: Dict[Tuple[MessageId, GroupId, Ballot], Set[Timestamp]] = {}
        # Invariant 3a: (mid, dst group) -> lts; 3b: mid -> gts
        self._deliver_lts: Dict[Tuple[MessageId, GroupId], Timestamp] = {}
        self._deliver_gts: Dict[MessageId, Timestamp] = {}
        # Invariant 4: gts -> mid
        self._gts_owner: Dict[Timestamp, MessageId] = {}
        # Invariant 2 premises: (mid, vector) -> {gid: {ack senders}} plus
        # the proposal set itself, recorded from ACCEPT traffic.
        self._accept_sets: Dict[Tuple[MessageId, Tuple], Dict[GroupId, Timestamp]] = {}
        self._ack_tally: Dict[Tuple[MessageId, Tuple], Dict[GroupId, Set[ProcessId]]] = {}
        # Established premises to re-check on every probe:
        # (mid, gid, admission lane, ballot of gid, lts of gid, implied gts)
        self._established: Set[
            Tuple[MessageId, GroupId, int, Ballot, Timestamp, Timestamp]
        ] = set()

    def bind_processes(self, processes: Dict[ProcessId, Any]) -> None:
        """Late-bind live process objects (called by the harness)."""
        self.processes = processes

    # -- trace hooks ---------------------------------------------------------

    def on_send(self, rec) -> None:
        from ..protocols.wbcast.messages import (
            AcceptAckMsg,
            AcceptMsg,
            DeliverMsg,
            LaneMsg,
        )

        msg = rec.msg
        while isinstance(msg, LaneMsg):
            # Sharded lane traffic: the invariants hold per lane on the
            # inner messages (timestamps carry the lane in their tie-break
            # component, so cross-lane checks compose without extra keys).
            msg = msg.inner
        if isinstance(msg, AcceptMsg):
            self._check_inv1(msg)
        elif isinstance(msg, AcceptAckMsg):
            self._record_ack(rec.src, msg)
        elif isinstance(msg, DeliverMsg):
            self._check_inv3_inv4(rec, msg)

    def on_handle(self, t, pid, src, msg) -> None:
        self._events_seen += 1
        if self.processes and self._events_seen % self.probe_interval == 0:
            self._probe_inv2()

    # -- invariant 1 -----------------------------------------------------------

    def _check_inv1(self, msg) -> None:
        key = (msg.m.mid, msg.gid, msg.bal, getattr(msg, "epoch", 0))
        prev = self._proposed.get(key)
        if prev is None:
            self._proposed[key] = msg.lts
        elif prev != msg.lts:
            raise InvariantViolation(
                f"Invariant 1: {key} proposed both {prev} and {msg.lts}"
            )
        self._proposed_lts.setdefault(key[:3], set()).add(msg.lts)
        # Remember the proposal set per (mid, ballot-of-group) for Inv 2.

    # -- invariants 3 and 4 --------------------------------------------------------

    def _gid_of(self, pid: ProcessId) -> Optional[GroupId]:
        """Group attribution, dynamic members included (None: unknown)."""
        if self.config.is_member(pid):
            return self.config.group_of(pid)
        proc = (self.processes or {}).get(pid)
        return getattr(proc, "gid", None)

    def _check_inv3_inv4(self, rec, msg) -> None:
        gid = self._gid_of(rec.dst)
        if gid is None:
            return  # DELIVER to a process we cannot attribute (no premise)
        mid = msg.m.mid
        key = (mid, gid)
        prev_lts = self._deliver_lts.get(key)
        if prev_lts is None:
            self._deliver_lts[key] = msg.lts
        elif prev_lts != msg.lts:
            raise InvariantViolation(
                f"Invariant 3a: DELIVERs for {mid} to group {gid} "
                f"carry {prev_lts} and {msg.lts}"
            )
        prev_gts = self._deliver_gts.get(mid)
        if prev_gts is None:
            self._deliver_gts[mid] = msg.gts
        elif prev_gts != msg.gts:
            raise InvariantViolation(
                f"Invariant 3b: DELIVERs for {mid} carry global timestamps "
                f"{prev_gts} and {msg.gts}"
            )
        owner = self._gts_owner.get(msg.gts)
        if owner is None:
            self._gts_owner[msg.gts] = mid
        elif owner != mid:
            raise InvariantViolation(
                f"Invariant 4: messages {owner} and {mid} share global timestamp {msg.gts}"
            )

    # -- invariant 2 ----------------------------------------------------------------

    def _record_ack(self, src: ProcessId, ack) -> None:
        vector = ack.vector
        lts_by_group = {}
        for gid, bal in vector:
            candidates = self._proposed_lts.get((ack.mid, gid, bal))
            if candidates is None or len(candidates) != 1:
                # Unseen, or ambiguous across config epochs (acks carry no
                # epoch): skip premise tracking for this vector.
                return
            lts_by_group[gid] = next(iter(candidates))
        key = (ack.mid, vector)
        self._accept_sets[key] = lts_by_group
        tally = self._ack_tally.setdefault(key, {})
        tally.setdefault(ack.gid, set()).add(src)
        gid = ack.gid
        quorum = self.config.quorum_size(gid)
        if len(tally[gid]) >= quorum:
            bal_of_gid = dict(vector)[gid]
            implied_gts = max(lts_by_group.values())
            # The admission lane is encoded in the proposal timestamp's
            # tie-break component (gid * capacity + lane): premises are
            # per lane — ballots of different lanes are incomparable.
            lane = lts_by_group[gid].group - gid * self.config.shards_per_group
            self._established.add(
                (ack.mid, gid, lane, bal_of_gid, lts_by_group[gid], implied_gts)
            )

    def _members_of(self, gid: GroupId):
        """Live probe targets of group ``gid``, reconfiguration-aware.

        The build-time membership is extended with any bound process that
        *claims* the group (a dynamic joiner), and probes skip processes
        that retired (a leaver stops updating its state) or have not
        installed their state transfer yet (a joiner's wrapper exposes
        ``protocol=None`` until then).
        """
        out = []
        for proc in self.processes.values():
            target = getattr(proc, "protocol", proc)
            if target is None:
                continue  # joiner mid-transfer: no state to hold anything
            if getattr(target, "retired", False):
                continue  # left the configuration: its state is frozen
            if getattr(target, "gid", None) == gid:
                out.append(target)
        return out

    def _probe_inv2(self) -> None:
        from ..protocols.wbcast.state import Phase

        # One membership scan per probe, not per premise: the premise set
        # grows with message count, the process map does not.
        members_by_gid: Dict[GroupId, list] = {}
        for mid, gid, lane, bal, lts, gts in self._established:
            if gid not in members_by_gid:
                members_by_gid[gid] = self._members_of(gid)
            for proc in members_by_gid[gid]:
                if hasattr(proc, "lanes"):
                    # Sharded member: the per-message state (records,
                    # cballot) lives in the premise's *admission* lane —
                    # encoded in the proposal timestamp, so the probe
                    # stays pinned to it whatever later epochs did to the
                    # lane hash; the clock clause still reads the shared
                    # process clock.
                    if not 0 <= lane < len(proc.lanes):
                        continue
                    proc = proc.lanes[lane]
                if not proc.cballot > bal:
                    continue
                rec = proc.records.get(mid)
                if mid in proc.delivered_ids and rec is None:
                    continue  # garbage-collected after full delivery: fine
                if rec is None or rec.phase not in (Phase.ACCEPTED, Phase.COMMITTED):
                    raise InvariantViolation(
                        f"Invariant 2a: {proc.pid} at cballot {proc.cballot} > {bal} "
                        f"lost quorum-accepted message {mid} (record={rec})"
                    )
                if rec.lts != lts:
                    raise InvariantViolation(
                        f"Invariant 2b: {proc.pid} stores lts {rec.lts} for {mid}, "
                        f"quorum accepted {lts}"
                    )
                if proc.clock < gts.time:
                    raise InvariantViolation(
                        f"Invariant 2c: {proc.pid}'s clock {proc.clock} is below "
                        f"the implied global timestamp {gts} of {mid}"
                    )

    # -- summary ------------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "proposals": len(self._proposed),
            "established_premises": len(self._established),
            "delivers_checked": len(self._deliver_gts),
        }
