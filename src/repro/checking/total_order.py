"""Explicit witness construction for the Ordering property.

``check_ordering`` proves a witness *exists* (acyclicity); this module
*builds* one — the total order ``≺`` of Section II — and re-verifies every
delivery sequence against it.  Useful for debugging (you can look at the
order a run produced) and as an independent, stronger check: the witness
route exercises different code than the cycle detector, so the two agree
only if both are right.
"""

from __future__ import annotations

from graphlib import CycleError, TopologicalSorter
from typing import Dict, List, Set

from ..errors import PropertyViolation
from ..types import MessageId
from .history import History


def witness_order(history: History) -> List[MessageId]:
    """A total order on delivered messages consistent with every local
    delivery sequence.  Raises :class:`PropertyViolation` on a cycle.

    Ties (messages unordered by any process) are broken by message id so
    the witness is deterministic.
    """
    graph: Dict[MessageId, Set[MessageId]] = {}
    for pid in history.deliveries:
        order = history.delivery_order(pid)
        for a, b in zip(order, order[1:]):
            graph.setdefault(b, set()).add(a)
            graph.setdefault(a, set())
    sorter = TopologicalSorter(graph)
    try:
        sorter.prepare()
    except CycleError as exc:
        raise PropertyViolation(f"no witness order exists: cycle {exc.args[1:]}") from exc
    result: List[MessageId] = []
    while sorter.is_active():
        ready = sorted(sorter.get_ready())
        for mid in ready:
            result.append(mid)
            sorter.done(mid)
    return result


def verify_witness(
    history: History, order: List[MessageId], quiescent: bool = True
) -> List[str]:
    """Check the Ordering property against an explicit witness.

    For every process p and message m it delivered: p's deliveries
    restricted to messages addressed to p follow ``order``; and (for
    quiescent runs) p skipped no earlier message of ``order`` addressed
    to it that was delivered anywhere.
    """
    violations: List[str] = []
    position = {mid: i for i, mid in enumerate(order)}
    delivered_anywhere = history.delivered_anywhere()
    for pid in history.deliveries:
        seq = history.delivery_order(pid)
        indices = []
        for mid in seq:
            if mid not in position:
                violations.append(f"{pid} delivered {mid} missing from the witness")
                continue
            indices.append(position[mid])
        if indices != sorted(indices):
            violations.append(f"{pid}'s delivery sequence deviates from the witness order")
        if quiescent and pid not in history.crashed and history.config.is_member(pid):
            gid = history.config.group_of(pid)
            delivered_here = set(seq)
            for mid in order:
                if mid not in delivered_anywhere:
                    continue
                entry = history.multicasts.get(mid)
                if entry is None or gid not in entry[2].dests:
                    continue
                if mid not in delivered_here:
                    violations.append(
                        f"{pid} skipped {mid} (addressed to its group, delivered elsewhere)"
                    )
    return violations


def projection(history: History, order: List[MessageId], gid: int) -> List[MessageId]:
    """The witness order restricted to messages addressed to group ``gid``
    — what the Ordering property says each group must observe."""
    out: List[MessageId] = []
    for mid in order:
        entry = history.multicasts.get(mid)
        if entry is not None and gid in entry[2].dests:
            out.append(mid)
    return out


def projection_by_lane(history: History, order: List[MessageId], lane: int) -> List[MessageId]:
    """The witness order restricted to one ordering lane of a sharded
    cluster (``ClusterConfig.lane_of`` names each message's lane)."""
    return [mid for mid in order if history.config.lane_of(mid) == lane]


def verify_lane_projections(history: History, order: List[MessageId]) -> List[str]:
    """Check every process's delivery sequence lane by lane.

    Each process's deliveries restricted to one lane must follow the
    witness order, and the interleaving *across* lanes must too (the
    merged sequence is exactly the per-process check of
    :func:`verify_witness`).  The per-lane restriction is implied by the
    global property — its value is diagnostic: a failure here names the
    lane whose stream went astray, separating lane-routing bugs from
    cross-lane merge bugs.
    """
    violations: List[str] = []
    position = {mid: i for i, mid in enumerate(order)}
    shards = history.config.shards_per_group
    for pid in history.deliveries:
        seq = history.delivery_order(pid)
        for lane in range(shards):
            indices = [
                position[mid]
                for mid in seq
                if mid in position and history.config.lane_of(mid) == lane
            ]
            if indices != sorted(indices):
                violations.append(
                    f"{pid}: lane-{lane} delivery subsequence deviates from the witness"
                )
        merged = [position[mid] for mid in seq if mid in position]
        if merged != sorted(merged):
            violations.append(
                f"{pid}: cross-lane interleaving deviates from the witness order"
            )
    return violations


def lane_statistics(history: History) -> Dict[int, int]:
    """Delivered-message count per ordering lane (for balance checks)."""
    counts: Dict[int, int] = {}
    for mid in history.delivered_anywhere():
        lane = history.config.lane_of(mid)
        counts[lane] = counts.get(lane, 0) + 1
    return counts


def order_statistics(history: History) -> Dict[str, float]:
    """Quick shape metrics of a run's order (for reports and debugging)."""
    order = witness_order(history)
    constrained_pairs = 0
    for pid in history.deliveries:
        seq = history.delivery_order(pid)
        constrained_pairs += max(0, len(seq) - 1)
    return {
        "messages": len(order),
        "constrained_pairs": constrained_pairs,
        "processes_delivering": len(history.deliveries),
    }
