"""Black-box checks of the four atomic multicast properties (Section II).

* **Validity** — a process in group ``g`` delivers ``m`` only if ``m`` was
  multicast and ``g ∈ dest(m)``.
* **Integrity** — every process delivers a message at most once.
* **Ordering** — there is a total order ``≺`` on messages such that every
  process delivers the messages addressed to it in ``≺`` order, without
  skipping earlier messages it later saw.  We verify this by building the
  union of all local delivery orders and checking it is acyclic; any
  topological sort is then a witness for ``≺``.
* **Termination** — in a *quiescent* run, every message multicast by a
  correct process or delivered anywhere is delivered by all correct
  members of all its destination groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from graphlib import CycleError, TopologicalSorter
from typing import Dict, List, Set

from ..types import MessageId
from .history import History


@dataclass
class CheckResult:
    """Outcome of one property check."""

    name: str
    ok: bool
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        if self.ok:
            return f"{self.name}: OK"
        shown = "; ".join(self.violations[:5])
        extra = f" (+{len(self.violations) - 5} more)" if len(self.violations) > 5 else ""
        return f"{self.name}: FAILED — {shown}{extra}"


def check_validity(history: History) -> CheckResult:
    violations: List[str] = []
    for pid, recs in history.deliveries.items():
        if not history.config.is_member(pid):
            violations.append(f"non-member {pid} delivered a message")
            continue
        gid = history.config.group_of(pid)
        for _, m in recs:
            if m.mid not in history.multicasts:
                violations.append(f"{pid} delivered never-multicast {m.mid}")
            elif gid not in m.dests:
                violations.append(f"{pid} in group {gid} delivered {m.mid} not addressed to it")
    return CheckResult("validity", not violations, violations)


def check_integrity(history: History) -> CheckResult:
    violations: List[str] = []
    for pid in history.deliveries:
        order = history.delivery_order(pid)
        seen: Set[MessageId] = set()
        for mid in order:
            if mid in seen:
                violations.append(f"{pid} delivered {mid} more than once")
            seen.add(mid)
    return CheckResult("integrity", not violations, violations)


def check_ordering(history: History) -> CheckResult:
    """Acyclicity of the union of local delivery orders.

    Consecutive-pair edges generate the same reachability relation as
    all-pairs edges, so they suffice for cycle detection; a topological
    sort of the graph is a witness total order.
    """
    graph: Dict[MessageId, Set[MessageId]] = {}
    for pid in history.deliveries:
        order = history.delivery_order(pid)
        for a, b in zip(order, order[1:]):
            graph.setdefault(b, set()).add(a)  # b depends on a: a ≺ b
            graph.setdefault(a, set())
    sorter = TopologicalSorter(graph)
    try:
        list(sorter.static_order())
    except CycleError as exc:
        cycle = exc.args[1] if len(exc.args) > 1 else "?"
        return CheckResult(
            "ordering", False, [f"local delivery orders are cyclic: {cycle}"]
        )
    # Note: two processes disagreeing on the relative order of a message
    # pair forms a 2-cycle in the union graph, so pairwise agreement is
    # already implied by acyclicity.
    return CheckResult("ordering", True, [])


def check_termination(history: History) -> CheckResult:
    """For quiescent runs only: the liveness obligation of Section II."""
    violations: List[str] = []
    delivered_anywhere = history.delivered_anywhere()
    obligated: Set[MessageId] = set(delivered_anywhere)
    for mid, (origin, _, _) in history.multicasts.items():
        if origin not in history.crashed:
            obligated.add(mid)
    delivered_at: Dict[int, Set[MessageId]] = {
        pid: set(history.delivery_order(pid)) for pid in history.config.all_members
    }
    for mid in sorted(obligated):
        entry = history.multicasts.get(mid)
        if entry is None:
            violations.append(f"{mid} delivered but never multicast")
            continue
        m = entry[2]
        for gid in m.dests:
            for pid in history.config.members(gid):
                if pid in history.crashed:
                    continue
                if mid not in delivered_at.get(pid, set()):
                    violations.append(
                        f"correct process {pid} (group {gid}) never delivered {mid}"
                    )
    return CheckResult("termination", not violations, violations)


def check_all(history: History, quiescent: bool = True) -> List[CheckResult]:
    """Run every applicable check; Termination only for quiescent runs.

    Under ``conflict="keys"`` the Ordering obligation is the partial
    order over conflicting pairs, so the total-order acyclicity check is
    replaced by the conflict-aware pair (commuting messages may legally
    interleave differently across processes).  Validity, Integrity and
    Termination are granularity-independent and run unchanged.
    """
    results = [
        check_validity(history),
        check_integrity(history),
    ]
    if history.config.conflict == "keys":
        from .conflict_order import check_conflict_ordering, check_domain_agreement

        results.append(check_conflict_ordering(history))
        results.append(check_domain_agreement(history))
    else:
        results.append(check_ordering(history))
    if quiescent:
        results.append(check_termination(history))
    return results


def assert_all(history: History, quiescent: bool = True) -> None:
    """Raise :class:`~repro.errors.PropertyViolation` on the first failure."""
    from ..errors import PropertyViolation

    for result in check_all(history, quiescent=quiescent):
        if not result.ok:
            raise PropertyViolation(result.describe())
