"""Partial-order checking for conflict-aware (``conflict="keys"``) runs.

Under keys-mode delivery the Ordering property weakens from "a total
order every process follows" to "a partial order covering every pair of
*conflicting* messages" — two messages conflict iff their conflict-domain
footprints intersect (a message with no footprint is a fence and
conflicts with everything).  Commuting (disjoint-domain) messages may be
delivered in different relative orders at different processes; that is
the whole point of the mode, not a violation.

The checks here generalize :mod:`repro.checking.total_order` /
``check_ordering``:

* :func:`check_conflict_ordering` — the union of every process's
  *conflicting-pair* order relations is acyclic, i.e. a partial-order
  witness exists.  Edges are generated sparsely (per-domain last-writer
  chains plus a fence chain), which preserves reachability over the full
  conflicting-pair relation without materializing O(n²) pairs.
* :func:`conflict_witness_order` — builds an explicit witness (a total
  order linearizing the partial order, ties broken by message id).
* :func:`check_domain_agreement` — per (group, domain) diagnostic: all
  pairs of messages touching one domain conflict pairwise, so every
  member's subsequence of deliveries touching that domain must agree
  prefix-wise.  A failure here names the domain whose stream diverged.
* :func:`domain_sequence` — the group's per-domain delivery subsequence
  (longest member view), the replay coordinate system the keys-mode
  linearizability checks are expressed in.
"""

from __future__ import annotations

from graphlib import CycleError, TopologicalSorter
from typing import Dict, List, Optional, Set

from ..conflict import footprint_domains
from ..errors import PropertyViolation
from ..types import AmcastMessage, GroupId, MessageId
from .history import History
from .properties import CheckResult

__all__ = [
    "conflict_graph",
    "conflict_witness_order",
    "check_conflict_ordering",
    "check_domain_agreement",
    "domain_sequence",
]


def conflict_graph(history: History) -> Dict[MessageId, Set[MessageId]]:
    """Sparse precedence graph over conflicting delivered pairs.

    ``graph[b]`` holds direct predecessors of ``b``: conflicting messages
    some process delivered immediately-before ``b`` in its per-domain (or
    fence) chain.  Chaining through the last message of each domain and
    the last fence generates the same reachability as adding an edge for
    *every* conflicting pair a process ordered, so acyclicity of this
    graph is equivalent to acyclicity of the full relation.
    """
    num_domains = history.config.conflict_domains
    graph: Dict[MessageId, Set[MessageId]] = {}
    for pid in history.deliveries:
        last: Dict[int, MessageId] = {}  # domain -> last delivery touching it
        last_fence: Optional[MessageId] = None
        for _t, m in history.deliveries[pid]:
            preds = graph.setdefault(m.mid, set())
            domains = footprint_domains(m.footprint, num_domains)
            if domains is None:
                # Fence: ordered after every open domain chain and the
                # previous fence; later messages of any domain chain
                # through it, so the per-domain tails can be dropped.
                preds.update(last.values())
                if last_fence is not None:
                    preds.add(last_fence)
                last.clear()
                last_fence = m.mid
            else:
                preds.update(last[d] for d in domains if d in last)
                if last_fence is not None:
                    preds.add(last_fence)
                for d in domains:
                    last[d] = m.mid
            preds.discard(m.mid)
    return graph


def conflict_witness_order(history: History) -> List[MessageId]:
    """A total order linearizing the conflict partial order.

    Raises :class:`PropertyViolation` if conflicting-pair orders are
    cyclic (no witness exists).  Ties — commuting messages no conflict
    chain relates — are broken by message id, so the witness is
    deterministic.
    """
    sorter = TopologicalSorter(conflict_graph(history))
    try:
        sorter.prepare()
    except CycleError as exc:
        raise PropertyViolation(
            f"no conflict-order witness exists: cycle {exc.args[1:]}"
        ) from exc
    result: List[MessageId] = []
    while sorter.is_active():
        for mid in sorted(sorter.get_ready()):
            result.append(mid)
            sorter.done(mid)
    return result


def check_conflict_ordering(history: History) -> CheckResult:
    """Acyclicity of the union of conflicting-pair delivery orders."""
    sorter = TopologicalSorter(conflict_graph(history))
    try:
        list(sorter.static_order())
    except CycleError as exc:
        cycle = exc.args[1] if len(exc.args) > 1 else "?"
        return CheckResult(
            "conflict-ordering",
            False,
            [f"conflicting-pair delivery orders are cyclic: {cycle}"],
        )
    return CheckResult("conflict-ordering", True, [])


def domain_sequence(
    history: History, gid: GroupId, domain: int
) -> List[AmcastMessage]:
    """Group ``gid``'s delivery subsequence touching ``domain``.

    All pairs of messages touching one domain conflict pairwise, so the
    members' subsequences agree (checked by
    :func:`check_domain_agreement`); the longest member view is the most
    complete one — under crashes, survivors extend the crashed member's
    prefix.
    """
    num_domains = history.config.conflict_domains
    best: List[AmcastMessage] = []
    for pid in history.config.members(gid):
        seq = [
            m
            for _t, m in history.deliveries.get(pid, [])
            if _touches(m, domain, num_domains)
        ]
        if len(seq) > len(best):
            best = seq
    return best


def _touches(m: AmcastMessage, domain: int, num_domains: int) -> bool:
    domains = footprint_domains(m.footprint, num_domains)
    return domains is None or domain in domains


def check_domain_agreement(history: History) -> CheckResult:
    """Per (group, domain): member subsequences agree prefix-wise.

    Implied by :func:`check_conflict_ordering` (a divergence is a
    2-cycle), but localizes a failure to the domain whose stream went
    astray — separating routing bugs from merge/fence bugs — and is the
    property the keys-mode serving layer's per-domain applied counters
    stand on.
    """
    num_domains = history.config.conflict_domains
    violations: List[str] = []
    for gid in history.config.group_ids:
        per_member = {
            pid: history.deliveries.get(pid, [])
            for pid in history.config.members(gid)
        }
        for domain in range(num_domains):
            subsequences = {
                pid: [m.mid for _t, m in recs if _touches(m, domain, num_domains)]
                for pid, recs in per_member.items()
            }
            longest = max(subsequences.values(), key=len, default=[])
            for pid, seq in sorted(subsequences.items()):
                if seq != longest[: len(seq)]:
                    violations.append(
                        f"group {gid} domain {domain}: {pid}'s subsequence "
                        f"is not a prefix of the longest member view"
                    )
    return CheckResult("domain-agreement", not violations, violations)
