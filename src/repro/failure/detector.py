"""Heartbeat-based leader monitoring (an Ω-style election driver).

The current leader of a group broadcasts heartbeats; a follower that goes
``suspect_timeout`` without hearing one starts a takeover by calling the
protocol's ``recover()``.  Two standard tricks make the election stabilise
after GST:

* **rank staggering** — a follower waits an extra ``stagger`` per position
  of ring distance from the suspected leader, so the first-ranked live
  follower usually wins uncontested;
* **binary exponential backoff** — a candidate that fails to become leader
  doubles its personal timeout, so after GST contention dies out and a
  single correct leader emerges (the property Lemma 1 relies on).

The monitor piggybacks on the host protocol's handler table, so heartbeat
traffic flows through the same simulated (or real) channels as everything
else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..types import GroupId, ProcessId


@dataclass(frozen=True, slots=True)
class HeartbeatMsg:
    """``HEARTBEAT``: the sender claims to lead group ``gid``.

    ``lane`` scopes the claim to one ordering lane of a sharded group
    (always 0 for unsharded protocols): each lane elects independently,
    so each lane's leadership is monitored independently too.
    """

    gid: GroupId
    lane: int = 0


@dataclass(frozen=True)
class MonitorOptions:
    heartbeat_interval: float = 0.02
    suspect_timeout: float = 0.1
    stagger: float = 0.05
    backoff_factor: float = 2.0
    max_timeout: float = 2.0


class LeaderMonitor:
    """Drives ``proc.recover()`` when the group's leader seems dead.

    ``proc`` must expose ``pid``, ``gid``, ``group``, ``cur_leader``,
    ``is_leader()``, ``recover()`` and the usual ``runtime`` — i.e. any
    :class:`~repro.protocols.base.AtomicMulticastProcess`.
    """

    def __init__(self, proc, options: Optional[MonitorOptions] = None) -> None:
        self.proc = proc
        self.options = options or MonitorOptions()
        self._last_heard = 0.0
        self._timeout = self.options.suspect_timeout
        self._started = False
        self._ballot_signature = self._signature()
        proc._handlers[HeartbeatMsg] = self._on_heartbeat

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._last_heard = self.proc.runtime.now()
        self.proc.runtime.set_timer(self.options.heartbeat_interval, self._beat_tick)
        self.proc.runtime.set_timer(self._check_delay(), self._check_tick)

    # -- heartbeat side -------------------------------------------------------

    def _beat_tick(self) -> None:
        if getattr(self.proc, "retired", False):
            return  # left the configuration: fall silent so peers re-elect
        if self.proc.is_leader():
            beat = HeartbeatMsg(self.proc.gid, getattr(self.proc, "lane", 0))
            for p in self.proc.group:
                if p != self.proc.pid:
                    self.proc.runtime.send(p, beat)
        self.proc.runtime.set_timer(self.options.heartbeat_interval, self._beat_tick)

    def _on_heartbeat(self, sender: ProcessId, msg: HeartbeatMsg) -> None:
        if msg.gid != self.proc.gid or msg.lane != getattr(self.proc, "lane", 0):
            return
        self._last_heard = self.proc.runtime.now()

    # -- suspicion side ----------------------------------------------------------

    def _rank_distance(self) -> int:
        """Ring distance from the believed leader to us (for staggering)."""
        group = list(self.proc.group)
        believed = self.proc.cur_leader.get(self.proc.gid, group[0])
        try:
            li = group.index(believed)
        except ValueError:
            li = 0
        mi = group.index(self.proc.pid)
        return (mi - li) % len(group)

    def _check_delay(self) -> float:
        return self._timeout + self.options.stagger * max(0, self._rank_distance() - 1)

    def _signature(self) -> tuple:
        """Ballot-ish state whose change indicates an election in progress."""
        replica = getattr(self.proc, "replica", None)
        return (
            getattr(self.proc, "ballot", None),
            getattr(self.proc, "cballot", None),
            getattr(replica, "promised", None),
        )

    def _check_tick(self) -> None:
        if getattr(self.proc, "retired", False):
            return  # a retired member neither suspects nor stands
        now = self.proc.runtime.now()
        signature = self._signature()
        if signature != self._ballot_signature:
            # An election is making progress: that is a sign of life, so
            # do not pile a competing candidacy on top of it.
            self._ballot_signature = signature
            self._last_heard = now
        deadline = self._last_heard + self._check_delay()
        if self.proc.is_leader():
            self._last_heard = now
        elif now >= deadline:
            # Leader silent for too long: stand for election and back off.
            self._timeout = min(
                self._timeout * self.options.backoff_factor, self.options.max_timeout
            )
            self._last_heard = now  # restart the clock for the new attempt
            self.proc.recover()
        self.proc.runtime.set_timer(self.options.heartbeat_interval, self._check_tick)


def attach_monitor(proc, options: Optional[MonitorOptions] = None):
    """Create, start-on-start and return monitor(s) for ``proc``.

    Wraps the protocol's ``on_start`` so the monitors' timers begin with
    the process.  A sharded host (anything exposing per-lane state
    machines via ``lanes``) gets one monitor per lane: lanes elect
    independently, and the host routes lane-tagged heartbeats to the lane
    peer whose monitor registered the handler.
    """
    lanes = getattr(proc, "lanes", None)
    monitors = [LeaderMonitor(lane, options) for lane in lanes] if lanes else [
        LeaderMonitor(proc, options)
    ]
    original_on_start = proc.on_start

    def on_start() -> None:
        original_on_start()
        for monitor in monitors:
            monitor.start()

    proc.on_start = on_start
    return monitors if lanes else monitors[0]
