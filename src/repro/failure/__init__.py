"""Failure detection and leader election.

The paper assumes (Section IV, "Leader recovery") a leader-election service
per group that, after GST, makes all group members permanently trust the
same correct process — an Ω failure detector built from heartbeats and
timeouts [5, 25, 26].  :class:`~repro.failure.detector.LeaderMonitor`
provides exactly that contract for any protocol exposing ``is_leader()``
and ``recover()``.
"""

from .detector import HeartbeatMsg, LeaderMonitor, MonitorOptions, attach_monitor

__all__ = ["HeartbeatMsg", "LeaderMonitor", "MonitorOptions", "attach_monitor"]
