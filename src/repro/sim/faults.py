"""Declarative fault and reconfiguration schedules for injection tests.

A :class:`FaultPlan` is a list of crash specifications validated against a
cluster configuration (never crash more than ``f`` members of any group)
and applied to a simulator before a run.

A :class:`ReconfigPlan` is the elastic analogue: scripted join / leave /
lane-reweight / active-shard events, validated up front and executed by
:func:`repro.reconfig.harness.run_elastic_workload` by submitting the
matching :mod:`repro.reconfig.commands` through a client session — the
events reach the cluster via the multicast total order, not via simulator
fiat, exactly as a production operator console would issue them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple, Union

from ..config import ClusterConfig
from ..errors import ConfigError
from ..types import GroupId, ProcessId


@dataclass(frozen=True, slots=True)
class CrashSpec:
    """Crash process ``pid`` at absolute virtual time ``at``."""

    pid: ProcessId
    at: float


@dataclass
class FaultPlan:
    """A validated collection of crash events."""

    crashes: List[CrashSpec]

    @staticmethod
    def none() -> "FaultPlan":
        return FaultPlan(crashes=[])

    @staticmethod
    def crash_leaders(
        config: ClusterConfig, gids: Iterable[GroupId], at: float
    ) -> "FaultPlan":
        """Crash the default (initial) leader of each listed group at ``at``.

        Repeated group ids are collapsed: one process crashes at most once.
        """
        return FaultPlan(
            crashes=[CrashSpec(config.default_leader(g), at) for g in sorted(set(gids))]
        )

    @staticmethod
    def random_crashes(
        config: ClusterConfig,
        rng,
        max_total: int,
        window: tuple,
        spare_pid: Optional[ProcessId] = None,
    ) -> "FaultPlan":
        """Crash up to ``max_total`` random group members inside ``window``.

        Respects the ``f`` bound per group so every group keeps a quorum of
        correct processes.  ``spare_pid`` is never crashed (useful to keep a
        specific client or observer alive).
        """
        lo, hi = window
        budget = {gid: config.f(gid) for gid in config.group_ids}
        candidates = [
            pid
            for pid in config.all_members
            if pid != spare_pid and budget[config.group_of(pid)] > 0
        ]
        rng.shuffle(candidates)
        crashes: List[CrashSpec] = []
        for pid in candidates:
            if len(crashes) >= max_total:
                break
            gid = config.group_of(pid)
            if budget[gid] <= 0:
                continue
            budget[gid] -= 1
            crashes.append(CrashSpec(pid, rng.uniform(lo, hi)))
        return FaultPlan(crashes=crashes)

    def validate(self, config: ClusterConfig) -> None:
        """Raise :class:`ConfigError` if the plan kills a quorum anywhere.

        Duplicate specs for one pid are rejected outright: a process only
        crashes once, so a duplicate either mis-states the scenario or
        skews the per-group ``f`` accounting below.
        """
        seen: set = set()
        per_group: dict = {}
        for spec in self.crashes:
            if spec.pid in seen:
                raise ConfigError(
                    f"fault plan crashes process {spec.pid} more than once"
                )
            seen.add(spec.pid)
            if config.is_member(spec.pid):
                gid = config.group_of(spec.pid)
                per_group[gid] = per_group.get(gid, 0) + 1
        for gid, count in per_group.items():
            if count > config.f(gid):
                raise ConfigError(
                    f"fault plan crashes {count} members of group {gid}, but f={config.f(gid)}"
                )

    def apply(self, sim) -> None:
        """Schedule every crash on ``sim``."""
        for spec in self.crashes:
            sim.crash_at(spec.pid, spec.at)

    @property
    def crashed_pids(self) -> set:
        return {spec.pid for spec in self.crashes}


# -- scripted reconfiguration events -----------------------------------------


@dataclass(frozen=True, slots=True)
class JoinSpec:
    """Submit ``join(gid, pid)`` at virtual time ``at``.

    ``pid`` of ``None`` lets the harness allocate a fresh id above every
    configured process (the common case); an explicit pid must not collide
    with any existing process.
    """

    at: float
    gid: GroupId
    pid: Optional[ProcessId] = None


@dataclass(frozen=True, slots=True)
class LeaveSpec:
    """Submit ``leave(pid)`` at virtual time ``at``."""

    at: float
    pid: ProcessId


@dataclass(frozen=True, slots=True)
class LaneWeightSpec:
    """Submit ``set_lane_weights(weights)`` at virtual time ``at``."""

    at: float
    weights: Tuple[Tuple[ProcessId, int], ...]


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """Submit ``set_shards(shards)`` at virtual time ``at``."""

    at: float
    shards: int


ReconfigSpec = Union[JoinSpec, LeaveSpec, LaneWeightSpec, ShardSpec]


@dataclass
class ReconfigPlan:
    """A validated, time-ordered script of reconfiguration events."""

    events: List[ReconfigSpec] = field(default_factory=list)

    @staticmethod
    def none() -> "ReconfigPlan":
        return ReconfigPlan(events=[])

    def sorted_events(self) -> List[ReconfigSpec]:
        return sorted(self.events, key=lambda e: e.at)

    def validate(self, config: ClusterConfig) -> None:
        """Replay the script against ``config``; raise on any illegal step.

        Uses the same transforms the live cluster applies, so a plan that
        validates here activates cleanly there when delivered in script
        order.  Near-simultaneous commands can be *delivered* in another
        order; a reordering that breaks a command's precondition (e.g.
        weights naming a member a reordered leave already removed) is
        rejected deterministically at every member by the manager — the
        epoch simply does not advance for it.  Space commands apart when
        the script's order is semantically load-bearing.
        """
        from ..reconfig.commands import apply_command
        from ..reconfig.harness import command_of

        current = config
        for spec in self.sorted_events():
            current = apply_command(current, command_of(current, spec))

    @property
    def join_specs(self) -> List[JoinSpec]:
        return [e for e in self.events if isinstance(e, JoinSpec)]

    @property
    def leaver_pids(self) -> set:
        return {e.pid for e in self.events if isinstance(e, LeaveSpec)}
