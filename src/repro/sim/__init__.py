"""Deterministic discrete-event simulator.

This package replaces the paper's physical testbeds (CloudLab LAN and a
three-region Google Cloud WAN) with a seeded virtual-time simulation:

* :mod:`repro.sim.network` — pluggable message-delay models (constant δ,
  uniform jitter, site-based LAN/WAN topologies, partial synchrony with a
  global stabilisation time);
* :mod:`repro.sim.scheduler` — the event loop, reliable-FIFO channels,
  crash injection and an optional per-process CPU service-time model;
* :mod:`repro.sim.trace` — structured run traces consumed by the
  correctness checkers and the benchmark harness;
* :mod:`repro.sim.faults` — declarative fault schedules.
"""

from .network import (
    BandwidthDelay,
    ConstantDelay,
    DelayModel,
    PartialSynchrony,
    SiteTopology,
    UniformDelay,
)
from .scheduler import CpuModel, SimRuntime, Simulator, UniformCpu
from .trace import DeliveryRecord, SendRecord, Trace
from .faults import CrashSpec, FaultPlan

__all__ = [
    "BandwidthDelay",
    "ConstantDelay",
    "CpuModel",
    "CrashSpec",
    "DelayModel",
    "DeliveryRecord",
    "FaultPlan",
    "PartialSynchrony",
    "SendRecord",
    "SimRuntime",
    "Simulator",
    "SiteTopology",
    "Trace",
    "UniformCpu",
    "UniformDelay",
]
