"""The discrete-event scheduler: virtual time, FIFO channels, crashes, CPU.

Design notes
------------

* Events live in a single heap keyed by ``(time, seq)``; ``seq`` is a
  monotone counter so simultaneous events run in schedule order, which both
  makes runs deterministic and preserves FIFO for zero-delay self-messages.
* Reliable FIFO channels (the paper's network assumption) are enforced by
  clamping each message's arrival to be no earlier than the previous arrival
  scheduled on the same ``(src, dst)`` channel.
* Crash-stop failures: a crashed process executes nothing, receives nothing
  and its timers never fire.  There is no recovery of crashed processes
  (the paper's model); *leader* recovery is a protocol-level concern.
* Optional CPU model: each process serialises its message handling through
  a single virtual core with a configurable per-message service time.  This
  is what produces the throughput saturation of the paper's Figs. 7–8.
  Timers fire on schedule regardless (they model OS timers, not work).
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..runtime import Runtime, TimerHandle
from ..types import AmcastMessage, ProcessId
from .network import DelayModel
from .trace import SendRecord, Trace


class CpuModel:
    """Per-message CPU service time; override :meth:`cost`.

    ``src`` is the message's sender; self-addressed messages (``src ==
    pid``) are local steps that real implementations perform without
    touching the network stack.
    """

    def cost(
        self, pid: ProcessId, msg: Any, rng: random.Random, src: Optional[ProcessId] = None
    ) -> float:
        return 0.0


class UniformCpu(CpuModel):
    """Constant service time per handled message, with optional jitter.

    ``per_message`` is the virtual-CPU time consumed to receive, process
    and react to one protocol message; ``ack_cost`` (defaulting to a
    quarter of it) applies to small acknowledgement-type messages, which
    real network stacks handle far more cheaply than full protocol
    messages; self-addressed messages are free (they are local steps).
    Per-process overrides support asymmetric hardware.

    Batch messages — anything exposing an ``entries`` tuple (the WbCast
    ``AcceptBatchMsg`` / ``DeliverBatchMsg``, the shared ``ProposeBatchMsg``
    / ``ConfirmBatchMsg`` / ``BatchDeliverMsg``, and any future batch wire
    message; detection is duck-typed so new ones need no registration) —
    are charged the full per-class cost for the *first* entry plus a much
    smaller ``batch_entry_cost`` for each additional one: syscalls, wakeups
    and header parsing are paid once per wire message, while per-entry work
    is a short in-memory loop.  A ``PaxosAccept`` whose log value is a
    batch command (``CmdLocalBatch`` etc.) amortises the same way — one
    consensus slot carries the batch.  This is the amortisation that lets
    batched leaders climb past the per-message saturation point of
    Figs. 7–8.
    """

    #: Message class names treated as cheap acknowledgements.
    ACK_TYPES = frozenset(
        {
            "AcceptAckMsg",
            "PaxosAccepted",
            "PaxosCommit",
            "NewStateAckMsg",
            "OrderedAckMsg",
            "DeliveredAckMsg",
            "HeartbeatMsg",
            # Client-session traffic: submission acks/redirects are tiny
            # mid-list frames handled by client processes.
            "SubmitAckMsg",
            "SubmitRedirectMsg",
            # Lane-watermark coordination of sharded groups: fixed-size
            # timestamp frames, no payloads.
            "LaneProbeMsg",
            "LaneAdvanceMsg",
            "LaneAdvanceAckMsg",
            "LaneWatermarkMsg",
        }
    )

    #: Batch message class names whose first entry costs an ack.
    BATCH_ACK_TYPES = frozenset({"AcceptAckBatchMsg"})

    def __init__(
        self,
        per_message: float,
        jitter: float = 0.0,
        overrides: Optional[Dict[ProcessId, float]] = None,
        ack_cost: Optional[float] = None,
        free_self_messages: bool = True,
        batch_entry_cost: Optional[float] = None,
    ) -> None:
        self._per_message = per_message
        self._jitter = jitter
        self._overrides = overrides or {}
        self._ack_cost = per_message / 4 if ack_cost is None else ack_cost
        self._free_self = free_self_messages
        self._batch_entry_cost = (
            per_message / 8 if batch_entry_cost is None else batch_entry_cost
        )

    def cost(
        self, pid: ProcessId, msg: Any, rng: random.Random, src: Optional[ProcessId] = None
    ) -> float:
        if self._free_self and src == pid:
            return 0.0
        while type(msg).__name__ == "LaneMsg":
            # Sharded groups wrap lane traffic in a routing envelope; the
            # CPU price is the inner message's (an enveloped ack is still
            # an ack — charging envelopes full price would tax sharding
            # for its framing rather than its work).
            msg = msg.inner
        name = type(msg).__name__
        if name in self.BATCH_ACK_TYPES:
            extra = max(0, len(getattr(msg, "entries", ())) - 1)
            base = self._ack_cost + (self._batch_entry_cost / 4) * extra
        elif name in self.ACK_TYPES:
            base = self._ack_cost
        elif name == "PaxosAccept":
            # A consensus slot carrying a batch command amortises like a
            # batch wire message (non-batch values have no ``entries``).
            extra = max(0, len(getattr(msg.value, "entries", ())) - 1)
            base = self._overrides.get(pid, self._per_message) + self._batch_entry_cost * extra
        elif hasattr(msg, "entries"):
            # Duck-typed batch wire message: full cost for the first entry,
            # the amortised rate for the rest.
            extra = max(0, len(msg.entries) - 1)
            base = self._overrides.get(pid, self._per_message) + self._batch_entry_cost * extra
        else:
            base = self._overrides.get(pid, self._per_message)
        if self._jitter:
            base *= 1.0 + rng.uniform(-self._jitter, self._jitter)
        return base


class _SimTimer(TimerHandle):
    __slots__ = ("_cancelled", "fn")

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class SimRuntime(Runtime):
    """The :class:`Runtime` implementation handed to simulated processes."""

    def __init__(self, sim: "Simulator", pid: ProcessId) -> None:
        self._sim = sim
        self._pid = pid
        self._rng = random.Random((sim.seed << 20) ^ (pid * 2654435761 % 2**32))

    @property
    def pid(self) -> ProcessId:
        return self._pid

    def now(self) -> float:
        return self._sim.now

    def send(self, to: ProcessId, msg: Any) -> None:
        self._sim.transmit(self._pid, to, msg)

    def set_timer(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        return self._sim.set_timer(self._pid, delay, fn)

    def deliver(self, m: AmcastMessage) -> None:
        self._sim.record_delivery(self._pid, m)

    def record_multicast(self, m: AmcastMessage) -> None:
        self._sim.record_multicast(self._pid, m)

    @property
    def rng(self) -> random.Random:
        return self._rng


class Simulator:
    """Deterministic discrete-event simulator hosting protocol processes."""

    def __init__(
        self,
        network: DelayModel,
        seed: int = 0,
        trace: Optional[Trace] = None,
        cpu: Optional[CpuModel] = None,
    ) -> None:
        self.network = network
        self.seed = seed
        self.rng = random.Random(seed)
        self.trace = trace if trace is not None else Trace()
        self.cpu = cpu or CpuModel()
        self.now = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._processes: Dict[ProcessId, Any] = {}
        self._runtimes: Dict[ProcessId, SimRuntime] = {}
        self._alive: Dict[ProcessId, bool] = {}
        self._last_arrival: Dict[Tuple[ProcessId, ProcessId], float] = {}
        self._inbox: Dict[ProcessId, Deque[Tuple[ProcessId, Any]]] = {}
        self._busy: Dict[ProcessId, bool] = {}
        self._events_executed = 0
        self._started = False

    # -- topology / registration -------------------------------------------

    def add_process(self, pid: ProcessId, factory: Callable[[SimRuntime], Any]) -> Any:
        """Create and register the process for ``pid``.

        ``factory`` receives the process's :class:`SimRuntime` and returns
        the protocol object (anything with ``on_message(sender, msg)``; an
        optional ``on_start()`` runs at simulation start).
        """
        if pid in self._processes:
            raise SimulationError(f"process {pid} registered twice")
        runtime = SimRuntime(self, pid)
        proc = factory(runtime)
        self._processes[pid] = proc
        self._runtimes[pid] = runtime
        self._alive[pid] = True
        self._inbox[pid] = deque()
        self._busy[pid] = False
        return proc

    def process(self, pid: ProcessId) -> Any:
        return self._processes[pid]

    def runtime_of(self, pid: ProcessId) -> SimRuntime:
        return self._runtimes[pid]

    @property
    def processes(self) -> Dict[ProcessId, Any]:
        return dict(self._processes)

    def alive(self, pid: ProcessId) -> bool:
        return self._alive.get(pid, False)

    # -- event scheduling ----------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at ``now + delay`` (a raw event, no process semantics)."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), fn))

    def schedule_at(self, t: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute virtual time ``t`` (>= now).

        Used where exact times matter (FIFO arrival clamping): computing a
        relative delay and re-adding ``now`` can perturb the time by a
        floating-point ulp and reorder same-time arrivals.
        """
        if t < self.now:
            raise SimulationError("cannot schedule into the past")
        heapq.heappush(self._heap, (t, next(self._seq), fn))

    def set_timer(self, pid: ProcessId, delay: float, fn: Callable[[], None]) -> TimerHandle:
        timer = _SimTimer(fn)

        def fire() -> None:
            if timer.cancelled or not self._alive.get(pid, False):
                return
            fn()

        self.schedule(delay, fire)
        return timer

    # -- messaging -------------------------------------------------------------

    def transmit(self, src: ProcessId, dst: ProcessId, msg: Any) -> None:
        """Send ``msg`` from ``src`` to ``dst`` through the network model."""
        if not self._alive.get(src, False):
            return  # a crashed process sends nothing
        if dst not in self._processes:
            raise SimulationError(f"message sent to unknown process {dst}")
        size = getattr(msg, "size", None)
        if size is None:
            size = getattr(getattr(msg, "m", None), "size", 64) or 64
        delay = self.network.delay(src, dst, size, self.now, self.rng)
        arrival = self.now + delay
        key = (src, dst)
        prev = self._last_arrival.get(key, 0.0)
        if arrival < prev:
            arrival = prev  # FIFO clamp: never overtake an earlier message
        self._last_arrival[key] = arrival
        self.trace.on_send(SendRecord(self.now, arrival, src, dst, msg))
        self.schedule_at(arrival, lambda: self._arrive(src, dst, msg))

    def _arrive(self, src: ProcessId, dst: ProcessId, msg: Any) -> None:
        if not self._alive.get(dst, False):
            return
        self._inbox[dst].append((src, msg))
        if not self._busy[dst]:
            self._work(dst)

    def _work(self, pid: ProcessId) -> None:
        """Drain inbox items, charging CPU time, until one costs real time.

        Zero-cost items (e.g. free self-messages) are handled in an
        iterative loop — chaining through recursive calls would overflow
        the Python stack on the long self-message trains that batched
        leaders produce under heavy load.
        """
        while True:
            if not self._alive.get(pid, False):
                self._busy[pid] = False
                self._inbox[pid].clear()
                return
            inbox = self._inbox[pid]
            if not inbox:
                self._busy[pid] = False
                return
            self._busy[pid] = True
            src, msg = inbox.popleft()
            cost = self.cpu.cost(pid, msg, self.rng, src)
            if cost > 0:

                def run(src: ProcessId = src, msg: Any = msg) -> None:
                    if self._alive.get(pid, False):
                        self.trace.on_handle(self.now, pid, src, msg)
                        self._processes[pid].on_message(src, msg)
                    self._work(pid)

                self.schedule(cost, run)
                return
            self.trace.on_handle(self.now, pid, src, msg)
            self._processes[pid].on_message(src, msg)

    # -- failures -----------------------------------------------------------------

    def crash(self, pid: ProcessId) -> None:
        """Crash ``pid`` immediately (crash-stop; no recovery)."""
        if not self._alive.get(pid, False):
            return
        self._alive[pid] = False
        self._inbox[pid].clear()
        self.trace.on_crash(self.now, pid)

    def crash_at(self, pid: ProcessId, t: float) -> None:
        """Schedule a crash of ``pid`` at absolute time ``t``."""
        self.schedule_at(t, lambda: self.crash(pid))

    # -- delivery bookkeeping -------------------------------------------------------

    def record_multicast(self, pid: ProcessId, m: AmcastMessage) -> None:
        self.trace.on_multicast(self.now, pid, m)

    def record_delivery(self, pid: ProcessId, m: AmcastMessage) -> None:
        self.trace.on_deliver(self.now, pid, m)

    # -- main loop ---------------------------------------------------------------------

    def _start_processes(self) -> None:
        if self._started:
            return
        self._started = True
        for pid, proc in self._processes.items():
            start = getattr(proc, "on_start", None)
            if start is not None and self._alive[pid]:
                start()

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the event queue drains or virtual time passes ``until``.

        Returns the virtual time at which the run stopped.  ``max_events``
        guards against protocol bugs that generate unbounded message storms.
        """
        self._start_processes()
        while self._heap:
            t, _, fn = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            if t < self.now:
                raise SimulationError("time went backwards (scheduler bug)")
            self.now = t
            fn()
            self._events_executed += 1
            if self._events_executed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; likely a livelock or message storm"
                )
        return self.now

    def step(self) -> bool:
        """Execute a single event; returns False when the queue is empty."""
        self._start_processes()
        if not self._heap:
            return False
        t, _, fn = heapq.heappop(self._heap)
        self.now = t
        fn()
        self._events_executed += 1
        return True

    @property
    def events_executed(self) -> int:
        return self._events_executed

    @property
    def pending_events(self) -> int:
        return len(self._heap)
