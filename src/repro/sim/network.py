"""Message-delay models for the simulator.

A delay model answers one question: how long does a message sent now from
``src`` to ``dst`` spend on the wire?  Channels are reliable — the model
never drops messages — and the scheduler separately enforces FIFO ordering
per channel by clamping arrival times.

The paper's system model is partially synchronous: before the (unknown)
global stabilisation time GST, delays are arbitrary but finite; after GST
they are bounded by δ.  :class:`PartialSynchrony` wraps any base model to
produce exactly that behaviour.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, Mapping, Sequence

from ..errors import ConfigError
from ..types import ProcessId


class DelayModel(abc.ABC):
    """One-way message delay, in seconds."""

    @abc.abstractmethod
    def delay(
        self,
        src: ProcessId,
        dst: ProcessId,
        size: int,
        now: float,
        rng: random.Random,
    ) -> float: ...

    def bound(self) -> float:
        """An upper bound δ on post-GST delays (used by latency analysis)."""
        raise NotImplementedError


class ConstantDelay(DelayModel):
    """Every inter-process message takes exactly ``delta`` seconds.

    Messages a process sends to itself take ``local`` seconds (0 by
    default), modelling the paper's instantaneous local steps.
    """

    def __init__(self, delta: float, local: float = 0.0) -> None:
        if delta < 0 or local < 0:
            raise ConfigError("delays must be non-negative")
        self._delta = delta
        self._local = local

    def delay(self, src, dst, size, now, rng) -> float:
        return self._local if src == dst else self._delta

    def bound(self) -> float:
        return self._delta


class UniformDelay(DelayModel):
    """Delay drawn uniformly from ``[lo, hi]``; self-messages are free."""

    def __init__(self, lo: float, hi: float) -> None:
        if not 0 <= lo <= hi:
            raise ConfigError("need 0 <= lo <= hi")
        self._lo = lo
        self._hi = hi

    def delay(self, src, dst, size, now, rng) -> float:
        if src == dst:
            return 0.0
        return rng.uniform(self._lo, self._hi)

    def bound(self) -> float:
        return self._hi


class SiteTopology(DelayModel):
    """Site-based topology: processes are placed at sites (machines or data
    centres) and delay depends on the (site, site) pair.

    This models both of the paper's testbeds:

    * LAN (Fig. 7): every process on its own machine, uniform one-way delay
      of 0.05 ms (0.1 ms RTT);
    * WAN (Fig. 8): three data centres with one-way delays derived from the
      reported RTTs (Oregon↔N.Virginia 60 ms, N.Virginia↔England 75 ms,
      Oregon↔England 130 ms).

    ``jitter`` adds a multiplicative uniform perturbation (±fraction) so
    throughput experiments do not see lock-step message waves.
    """

    def __init__(
        self,
        placement: Mapping[ProcessId, int],
        site_delay: Mapping[tuple, float],
        intra_site: float = 0.0,
        jitter: float = 0.0,
    ) -> None:
        self._placement = dict(placement)
        self._site_delay: Dict[tuple, float] = {}
        for (a, b), d in site_delay.items():
            if d < 0:
                raise ConfigError("site delays must be non-negative")
            self._site_delay[(a, b)] = d
            self._site_delay.setdefault((b, a), d)
        self._intra = intra_site
        if not 0 <= jitter < 1:
            raise ConfigError("jitter must be a fraction in [0, 1)")
        self._jitter = jitter

    def site_of(self, pid: ProcessId) -> int:
        try:
            return self._placement[pid]
        except KeyError:
            raise ConfigError(f"process {pid} has no site placement") from None

    # -- delay-matrix queries (placement policies read these) --------------

    def site_map(self) -> Dict[ProcessId, int]:
        """A copy of the process → site placement."""
        return dict(self._placement)

    def sites(self) -> tuple:
        """The distinct sites hosting at least one process, sorted."""
        return tuple(sorted(set(self._placement.values())))

    def site_delay(self, a: int, b: int) -> float:
        """The base one-way delay between two sites (jitter excluded)."""
        if a == b:
            return self._intra
        try:
            return self._site_delay[(a, b)]
        except KeyError:
            raise ConfigError(f"no delay configured between sites {a} and {b}") from None

    def site_delays(self) -> Dict[tuple, float]:
        """A copy of the symmetric site → site delay matrix."""
        return dict(self._site_delay)

    def delay(self, src, dst, size, now, rng) -> float:
        if src == dst:
            return 0.0
        a, b = self.site_of(src), self.site_of(dst)
        base = self._intra if a == b else self._site_delay[(a, b)]
        if self._jitter:
            base *= 1.0 + rng.uniform(-self._jitter, self._jitter)
        return base

    def bound(self) -> float:
        worst = max(self._site_delay.values(), default=0.0)
        return max(worst, self._intra) * (1.0 + self._jitter)


class BandwidthDelay(DelayModel):
    """Adds a serialisation term ``size / bytes_per_second`` to a base model."""

    def __init__(self, base: DelayModel, bytes_per_second: float) -> None:
        if bytes_per_second <= 0:
            raise ConfigError("bandwidth must be positive")
        self._base = base
        self._bps = bytes_per_second

    def delay(self, src, dst, size, now, rng) -> float:
        base = self._base.delay(src, dst, size, now, rng)
        if src == dst:
            return base
        return base + size / self._bps

    def bound(self) -> float:
        return self._base.bound()  # size term is workload-dependent


class PartialSynchrony(DelayModel):
    """Partially synchronous wrapper: chaotic before GST, bounded after.

    Before ``gst``, each message's delay is the base delay multiplied by a
    random factor in ``[1, max_inflation]`` (finite, so channels stay
    reliable).  From ``gst`` onward the base model applies unchanged, so the
    base model's :meth:`bound` is the δ of the paper's analysis.
    """

    def __init__(self, base: DelayModel, gst: float, max_inflation: float = 10.0) -> None:
        if gst < 0 or max_inflation < 1:
            raise ConfigError("need gst >= 0 and max_inflation >= 1")
        self._base = base
        self._gst = gst
        self._inflate = max_inflation

    @property
    def gst(self) -> float:
        return self._gst

    def delay(self, src, dst, size, now, rng) -> float:
        base = self._base.delay(src, dst, size, now, rng)
        if now >= self._gst or src == dst:
            return base
        return base * rng.uniform(1.0, self._inflate)

    def bound(self) -> float:
        return self._base.bound()


def lan_topology(
    pids: Sequence[ProcessId],
    one_way: float = 0.00005,
    jitter: float = 0.0,
) -> SiteTopology:
    """The paper's LAN: each process on its own machine, ~0.1 ms RTT."""
    placement = {pid: i for i, pid in enumerate(pids)}
    sites = range(len(pids))
    site_delay = {(a, b): one_way for a in sites for b in sites if a < b}
    return SiteTopology(placement, site_delay, intra_site=one_way, jitter=jitter)


#: One-way delays (seconds) between the paper's three WAN regions,
#: half of the reported round-trip times: R1=Oregon, R2=N.Virginia, R3=England.
WAN_ONE_WAY = {
    (0, 1): 0.030,
    (1, 2): 0.0375,
    (0, 2): 0.065,
}


def wan_topology(
    placement: Mapping[ProcessId, int],
    intra_site: float = 0.00005,
    jitter: float = 0.0,
) -> SiteTopology:
    """The paper's WAN: three data centres with the reported RTT matrix."""
    return SiteTopology(placement, WAN_ONE_WAY, intra_site=intra_site, jitter=jitter)
