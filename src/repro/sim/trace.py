"""Structured traces of simulated runs.

A :class:`Trace` records the externally observable events of a run —
multicasts, deliveries, message sends, crashes, leader changes — in a form
the correctness checkers (:mod:`repro.checking`) and the benchmark metrics
(:mod:`repro.bench.metrics`) can consume.  Recording of the (potentially
huge) per-message send log can be switched off for throughput benchmarks.

Monitors can also be attached; they see every event as it happens, which is
what lets the white-box invariant checkers inspect live protocol state
mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..types import AmcastMessage, MessageId, ProcessId


@dataclass(frozen=True, slots=True)
class SendRecord:
    """One protocol message on the wire."""

    t_send: float
    t_arrive: float
    src: ProcessId
    dst: ProcessId
    msg: Any


@dataclass(frozen=True, slots=True)
class DeliveryRecord:
    """One atomic-multicast delivery event at one process."""

    t: float
    pid: ProcessId
    m: AmcastMessage


@dataclass(frozen=True, slots=True)
class MulticastRecord:
    """One multicast(m) invocation."""

    t: float
    pid: ProcessId
    m: AmcastMessage


class Trace:
    """Mutable event log for one run."""

    def __init__(self, record_sends: bool = True) -> None:
        self.record_sends = record_sends
        self.multicasts: List[MulticastRecord] = []
        self.deliveries: List[DeliveryRecord] = []
        self.sends: List[SendRecord] = []
        self.crashes: List[Tuple[float, ProcessId]] = []
        self.send_count = 0
        self.monitors: List[Any] = []
        # Per-hook bound-method lists, maintained by attach().  Sends and
        # handles fire for every simulated event, so probing each monitor
        # with getattr per event is measurable; the resolved hooks cost an
        # empty-list iteration when no monitor implements them.
        self._mult_hooks: List[Any] = []
        self._deliver_hooks: List[Any] = []
        self._send_hooks: List[Any] = []
        self._crash_hooks: List[Any] = []
        self._handle_hooks: List[Any] = []

    # -- recording (called by the scheduler) -------------------------------

    def on_multicast(self, t: float, pid: ProcessId, m: AmcastMessage) -> None:
        self.multicasts.append(MulticastRecord(t, pid, m))
        for hook in self._mult_hooks:
            hook(t, pid, m)

    def on_deliver(self, t: float, pid: ProcessId, m: AmcastMessage) -> None:
        self.deliveries.append(DeliveryRecord(t, pid, m))
        for hook in self._deliver_hooks:
            hook(t, pid, m)

    def on_send(self, rec: SendRecord) -> None:
        self.send_count += 1
        if self.record_sends:
            self.sends.append(rec)
        for hook in self._send_hooks:
            hook(rec)

    def on_crash(self, t: float, pid: ProcessId) -> None:
        self.crashes.append((t, pid))
        for hook in self._crash_hooks:
            hook(t, pid)

    def on_handle(self, t: float, pid: ProcessId, src: ProcessId, msg: Any) -> None:
        for hook in self._handle_hooks:
            hook(t, pid, src, msg)

    # -- attachment ---------------------------------------------------------

    def attach(self, monitor: Any) -> None:
        """Attach a monitor object; it may define any of the ``on_*`` hooks
        (resolved once here, not per event)."""
        self.monitors.append(monitor)
        for name, hooks in (
            ("on_multicast", self._mult_hooks),
            ("on_deliver", self._deliver_hooks),
            ("on_send", self._send_hooks),
            ("on_crash", self._crash_hooks),
            ("on_handle", self._handle_hooks),
        ):
            hook = getattr(monitor, name, None)
            if hook is not None:
                hooks.append(hook)

    # -- queries ------------------------------------------------------------

    def deliveries_of(self, mid: MessageId) -> List[DeliveryRecord]:
        return [d for d in self.deliveries if d.m.mid == mid]

    def delivery_order_at(self, pid: ProcessId) -> List[MessageId]:
        return [d.m.mid for d in self.deliveries if d.pid == pid]

    def multicast_times(self) -> Dict[MessageId, float]:
        return {r.m.mid: r.t for r in self.multicasts}

    def crashed_pids(self) -> set:
        return {pid for _, pid in self.crashes}
