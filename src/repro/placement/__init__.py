"""Topology-aware placement for the sharded ordering plane.

The WAN sharding regression recorded in ``results/sharding_wan_full.txt``
happens because the default lane deal is topology-blind: lane ``k``'s leader
lands on member ``k % group_size`` of every group, which on the three-site
WAN testbed puts most lane leaders one or two WAN hops away from the clients
that feed them, and scatters a message's per-group lane leaders across
sites.  This package supplies the fix:

* :class:`PlacementPolicy` — a frozen, wire-friendly description of where
  every process lives (a site map) plus how the sharded plane should exploit
  it (``mode`` and ``overlay`` knobs).  Attached to
  :class:`~repro.config.ClusterConfig` it makes the lane deal site-affine:
  lane ``k`` is pinned to one site and its leader in *every* destination
  group is a member at that site, so a message's ordering work is co-located
  and clients reach their lane leaders over intra-site links.
* :func:`lane_timings` — derives probe/advance/linger defaults from a
  site-delay matrix so the watermark machinery paces itself to the actual
  network instead of the LAN-calibrated constants.

``mode="flat"`` (or no policy at all) keeps the legacy topology-blind deal
byte-for-byte, which the differential battery in
``tests/test_placement.py`` enforces.
"""

from .policy import PlacementPolicy
from .timing import LaneTimings, lane_timings

__all__ = ["PlacementPolicy", "LaneTimings", "lane_timings"]
