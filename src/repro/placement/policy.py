"""The placement policy value type.

A :class:`PlacementPolicy` is deliberately *just data*: a site label per
process plus two small knobs.  All the behaviour it drives lives where the
decisions are made — the lane deal in :mod:`repro.config`, the ACCEPT
overlay in :mod:`repro.protocols.wbcast` — so the policy itself can ride
the wire inside a :class:`~repro.config.ClusterConfig` (joiner state
transfer, epoch commands) without dragging protocol code along.

Knobs
-----
``mode``
    ``"flat"`` — placement is inert; every consumer falls back to the
    legacy topology-blind behaviour (byte-identical to a config with no
    policy attached).  ``"site"`` — the lane deal becomes site-affine and
    clients are routed to co-sited lanes.

``sites``
    A tuple of ``(pid, site)`` pairs covering members and (optionally)
    clients.  Processes absent from the map simply get the legacy
    behaviour, so a partially-known topology degrades gracefully.

``overlay``
    ``"direct"`` — cross-group ACCEPTs go all-to-all exactly as today.
    ``"tree"`` — a lane leader sends one copy per remote site to a relay
    (the lowest-pid destination member there), which fans out to its
    co-sited peers; see ``LaneRelayMsg``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..types import ProcessId

MODES = ("flat", "site")
OVERLAYS = ("direct", "tree")


@dataclass(frozen=True)
class PlacementPolicy:
    """Where every process lives, and how the ordering plane should care."""

    mode: str = "flat"
    sites: Tuple[Tuple[ProcessId, int], ...] = ()
    overlay: str = "direct"

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigError(f"unknown placement mode {self.mode!r}; expected one of {MODES}")
        if self.overlay not in OVERLAYS:
            raise ConfigError(
                f"unknown placement overlay {self.overlay!r}; expected one of {OVERLAYS}"
            )
        seen: Dict[ProcessId, int] = {}
        for pid, site in self.sites:
            if pid in seen and seen[pid] != site:
                raise ConfigError(f"process {pid} mapped to two sites ({seen[pid]}, {site})")
            seen[pid] = site

    # -- construction -----------------------------------------------------

    @classmethod
    def site_affine(
        cls, sites: Mapping[ProcessId, int], overlay: str = "tree"
    ) -> "PlacementPolicy":
        """A policy that pins lanes to sites, from a pid → site map."""
        return cls(mode="site", sites=tuple(sorted(sites.items())), overlay=overlay)

    # -- queries ----------------------------------------------------------

    @property
    def _site_map(self) -> Dict[ProcessId, int]:
        cached = self.__dict__.get("_site_map_cache")
        if cached is None:
            cached = dict(self.sites)
            self.__dict__["_site_map_cache"] = cached
        return cached

    def site_of(self, pid: ProcessId) -> Optional[int]:
        """The site hosting ``pid``, or ``None`` if the policy doesn't know."""
        return self._site_map.get(pid)

    def common_sites(self, groups: Sequence[Sequence[ProcessId]]) -> Tuple[int, ...]:
        """Sites with at least one member in *every* group, sorted.

        Lanes can only be pinned to such sites: a message carries the same
        lane index into each destination group, so co-locating its lane
        leaders requires every group to field a member there.
        """
        common: Optional[set] = None
        for members in groups:
            here = {s for m in members if (s := self.site_of(m)) is not None}
            common = here if common is None else common & here
            if not common:
                return ()
        return tuple(sorted(common or ()))

    # -- evolution (membership changes) -----------------------------------

    def with_site(self, pid: ProcessId, site: int) -> "PlacementPolicy":
        """A copy that (re)places ``pid`` at ``site``."""
        kept = tuple((p, s) for p, s in self.sites if p != pid)
        return PlacementPolicy(
            mode=self.mode, sites=tuple(sorted(kept + ((pid, site),))), overlay=self.overlay
        )

    def without(self, pid: ProcessId) -> "PlacementPolicy":
        """A copy with ``pid`` dropped from the site map."""
        if pid not in self._site_map:
            return self
        return PlacementPolicy(
            mode=self.mode,
            sites=tuple((p, s) for p, s in self.sites if p != pid),
            overlay=self.overlay,
        )
