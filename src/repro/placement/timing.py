"""Delay-matrix-derived defaults for the lane watermark machinery.

The shipped ``WbCastOptions`` constants are LAN-calibrated:
``lane_probe_delay=0.0001`` re-arms a blocked lane's probe every 100 µs,
which on a WAN where one probe → advance → watermark round takes ~100 ms
turns into a probe storm (hundreds of redundant probe frames per blocked
message), and the adaptive-linger floor lets leaders flush batches far
faster than the network can usefully carry them, distorting the S=1
baseline.  :func:`lane_timings` replaces guesswork with three rules of
thumb read off the actual site-delay matrix:

* probe re-arm ≈ the *worst* one-way delay — a retry cadence faster than
  one network traversal can only duplicate in-flight work;
* eager advance interval ≈ half the *best* remote one-way delay — fast
  enough that a watermark is always in flight while ACCEPTs propagate,
  slow enough that rounds don't pile up;
* linger floor ≈ a tenth of the best remote one-way delay — batching below
  that granularity buys nothing once frames queue behind WAN propagation;
* site-affine probe re-arm ≈ a twentieth of the best remote delay — with
  lane leaders co-sited beside the ingress, a probe usually crosses a
  machine room (and commit-quorum floor evidence answers it without a
  round), so the blind worst-case cadence would only add idle latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple


@dataclass(frozen=True)
class LaneTimings:
    """Topology-derived pacing for probes, eager advances, and linger."""

    lane_probe_delay: float
    lane_advance_interval: float
    min_linger: float
    #: Probe re-arm when the lane deal is site-affine (leaders co-sited
    #: with the bulk of the probers; see the module docstring).
    site_probe_delay: float = 0.0001


def lane_timings(
    site_delay: Mapping[Tuple[int, int], float],
    *,
    intra_site: float = 0.0,
) -> LaneTimings:
    """Derive lane pacing from a symmetric site → site one-way delay matrix.

    ``site_delay`` maps ``(a, b)`` site pairs to one-way delays (either
    orientation suffices, as in :func:`repro.sim.network.wan_topology`).
    An empty matrix (single-site deployment) falls back to LAN-ish pacing
    scaled off ``intra_site``.
    """
    remote = [d for (a, b), d in site_delay.items() if a != b and d > 0.0]
    if not remote:
        base = max(intra_site, 0.00005)
        return LaneTimings(
            lane_probe_delay=2 * base,
            lane_advance_interval=10 * base,
            min_linger=0.0,
            site_probe_delay=2 * base,
        )
    worst = max(remote)
    best = min(remote)
    return LaneTimings(
        lane_probe_delay=worst,
        lane_advance_interval=best / 2,
        min_linger=best / 10,
        site_probe_delay=best / 20,
    )
