"""Multi-process lane hosting: one OS process per group member.

The lane architecture (PR 4) made lane leaders share-nothing precisely so
they could escape the GIL: every lane's ordering pipeline touches only its
own leader state, and cross-lane coordination happens through the same
wire messages that cross group boundaries.  :class:`MultiProcCluster`
cashes that in — each group member (and therefore each lane leader, since
lanes deal their leaders across distinct members) runs its protocol
process inside its own OS process with its own event loop, GIL, and
:class:`~repro.net.transport.NodeTransport`.  Client sessions stay in the
parent process, submitting over real TCP exactly as against
:class:`~repro.net.cluster.LocalCluster`.

Mechanics:

* Ports are reserved up front (bind, read the ephemeral port, close) so
  every worker can be handed the complete pid → address map before any
  of them starts; transports then bind at their assigned ports.
* Workers are ``spawn``-started (safe under a running event loop, unlike
  ``fork``) and report readiness on a queue before the parent's sessions
  launch.
* Deliveries flow back to the parent over a multiprocessing queue,
  drained by a daemon thread into ``call_soon_threadsafe`` — the parent's
  tracker, waiters and history work unchanged.  ``loop.time()`` is
  CLOCK_MONOTONIC on every process of the host, so worker delivery
  timestamps are comparable with parent submit timestamps.

Epoch/fencing machinery is untouched — it rides the ordinary wire path —
but the crash/reconfig *drivers* (``kill``, ``attach_fd``,
``attach_reconfig``) are parent-side object surgery and are not supported
across process boundaries.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..config import ClusterConfig
from ..types import ProcessId
from .cluster import LocalCluster
from .runtime import NetRuntime
from .transport import NodeTransport, TransportOptions


def _reserve_port(host: str = "127.0.0.1") -> int:
    """Reserve an ephemeral port by binding and immediately closing.

    The port is only *probably* free afterwards; on a loopback test host
    the window between close and the worker's bind is microscopic, and a
    collision fails loudly at ``transport.start``.
    """
    with socket.socket() as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


async def _host(
    pids: List[ProcessId],
    config: ClusterConfig,
    protocol_cls: type,
    options: Any,
    addresses: Dict[ProcessId, Tuple[str, int]],
    topts: TransportOptions,
    delivery_q,
    ready_q,
    seed: int,
) -> None:
    """Worker body: host ``pids``'s protocol processes until terminated."""
    processes: Dict[ProcessId, Any] = {}
    transports: Dict[ProcessId, NodeTransport] = {}

    def dispatch_for(pid: ProcessId):
        def dispatch(sender: ProcessId, msg: Any) -> None:
            processes[pid].on_message(sender, msg)

        return dispatch

    def on_deliver(pid: ProcessId, m: Any, t: float) -> None:
        delivery_q.put((pid, m, t))

    for pid in pids:
        transport = NodeTransport(
            pid, addresses.__getitem__, dispatch_for(pid), options=topts
        )
        await transport.start(port=addresses[pid][1])
        transports[pid] = transport
    for pid in pids:
        runtime = NetRuntime(pid, transports[pid], on_deliver, seed=seed)
        processes[pid] = protocol_cls(pid, config, runtime, options=options)
    for proc in processes.values():
        proc.on_start()
    ready_q.put(tuple(pids))
    try:
        await asyncio.Event().wait()  # parked until the parent terminates us
    finally:
        for transport in transports.values():
            await transport.close()


def _host_main(*args) -> None:
    asyncio.run(_host(*args))


class MultiProcCluster(LocalCluster):
    """A :class:`LocalCluster` whose members run in their own processes.

    Same constructor and client API; crash injection (``kill``), failure
    detectors and reconfiguration drivers are not supported — those
    harness features reach into member process objects, which now live in
    other address spaces.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.attach_fd or self.attach_reconfig:
            raise ValueError(
                "MultiProcCluster does not support attach_fd/attach_reconfig"
            )
        self._workers: List[multiprocessing.process.BaseProcess] = []
        self._delivery_q = None
        self._ready_q = None
        self._drain_thread: Optional[threading.Thread] = None

    async def start(self) -> None:
        ctx = multiprocessing.get_context("spawn")
        self._delivery_q = ctx.Queue()
        self._ready_q = ctx.Queue()
        self._assign_session_pids()
        members = list(self.config.all_members)
        for pid in members + self._session_pids:
            self.addresses[pid] = ("127.0.0.1", _reserve_port())
        address_map = dict(self.addresses)
        for pid in members:
            worker = ctx.Process(
                target=_host_main,
                args=(
                    [pid],
                    self.config,
                    self.protocol_cls,
                    self.options,
                    address_map,
                    self.transport_options,
                    self._delivery_q,
                    self._ready_q,
                    self.seed,
                ),
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        loop = asyncio.get_event_loop()
        for _ in self._workers:
            await loop.run_in_executor(None, self._ready_q.get)
        self._drain_thread = threading.Thread(
            target=self._drain_deliveries, args=(loop,), daemon=True
        )
        self._drain_thread.start()
        await self._start_sessions(
            ports={pid: self.addresses[pid][1] for pid in self._session_pids}
        )
        for session in self.sessions:
            session.on_start()

    def _drain_deliveries(self, loop: asyncio.AbstractEventLoop) -> None:
        while True:
            item = self._delivery_q.get()
            if item is None:
                return
            pid, m, t = item
            try:
                loop.call_soon_threadsafe(self._record_delivery, pid, m, t)
            except RuntimeError:
                return  # loop already closed during teardown

    async def stop(self) -> None:
        for transport in self._session_transports:
            await transport.close()
        for worker in self._workers:
            worker.terminate()
        for worker in self._workers:
            worker.join(timeout=5)
            if worker.is_alive():
                worker.kill()
        if self._drain_thread is not None:
            self._delivery_q.put(None)
            self._drain_thread.join(timeout=5)
        for queue in (self._delivery_q, self._ready_q):
            if queue is not None:
                # Detach the feeder thread from interpreter shutdown: the
                # atexit finalizer otherwise joins it without a timeout,
                # which can wedge the whole process if a worker died with
                # the pipe mid-write.
                queue.cancel_join_thread()
                queue.close()

    async def kill(self, pid: ProcessId) -> None:
        raise NotImplementedError("MultiProcCluster does not support kill()")

    async def add_member(self, gid: int, pid: Optional[ProcessId] = None) -> ProcessId:
        raise NotImplementedError("MultiProcCluster does not support add_member()")
