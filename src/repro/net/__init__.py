"""asyncio TCP runtime: the same protocol objects over real sockets.

The protocols in :mod:`repro.protocols` are sans-IO; this package gives
them a real network.  Each process gets a TCP server; channels are one TCP
connection per (src, dst) pair, which provides exactly the reliable-FIFO
channel of the paper's model (on localhost; across real WANs one would add
reconnect-with-resend, which is out of scope).

Frames use a length-prefixed binary codec (:mod:`repro.net.codec`) with a
tagged pickle fallback for cold control messages; the writer side
coalesces queued frames into single flushes (:mod:`repro.net.transport`).

:class:`~repro.net.cluster.LocalCluster` wires a whole cluster on
127.0.0.1 ephemeral ports — see ``examples/tcp_cluster.py`` and
``tests/test_net.py``; :class:`~repro.net.multiproc.MultiProcCluster`
hosts each member (hence each lane leader) in its own OS process.
"""

from .codec import decode_frame, encode_frame
from .runtime import NetRuntime
from .transport import NodeTransport, TransportOptions
from .cluster import LocalCluster
from .multiproc import MultiProcCluster

__all__ = [
    "LocalCluster",
    "MultiProcCluster",
    "NetRuntime",
    "NodeTransport",
    "TransportOptions",
    "decode_frame",
    "encode_frame",
]
