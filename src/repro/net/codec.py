"""Wire framing: length-prefixed binary frames with a tagged pickle fallback.

Frame layout (everything big-endian)::

    !I  body length (refused above MAX_FRAME)
    !q  sender process id
    B   message tag            -- 0: pickle fallback, else a registered type
    ... message body

Hot messages — client ingress (``MULTICAST``/``MULTICAST_BATCH``), the
ACCEPT/ACK proposal rounds and their batches, DELIVER traffic, submission
acks, lane envelopes and the consensus rounds of the black-box baselines —
are encoded with :mod:`struct`-packed fixed layouts plus a small tagged
value vocabulary (ints, strings, tuples, timestamps, ballots, application
messages, ...), and decoded with :class:`memoryview` slicing so no byte is
copied twice.  Pickle remains only as the tagged fallback for cold control
messages (recovery state pushes, reconfiguration state transfer), which
cross the wire a handful of times per epoch and carry arbitrarily shaped
snapshots — they need no per-message codec work.

Pickle is acceptable for the fallback because the cluster is a closed
system of our own processes (the classic caveat: never unpickle untrusted
input).

Every registered message type must decode identically under both codecs;
``tests/test_net_codec.py`` auto-enumerates :func:`wire_message_types` and
differentially proves it, so a new wire message that is neither registered
binary nor declared a cold pickle type fails the battery loudly.

``decode_frame`` raises :class:`ValueError` — and only ValueError — on any
malformed input (truncated body, trailing bytes, unknown tags, corrupt
pickle), which is what lets the transport treat every decode failure as
one deliberate connection-drop path.
"""

from __future__ import annotations

import asyncio
import dataclasses
import pickle
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..failure import detector as _detector
from ..paxos import messages as _paxos
from ..protocols import base as _base
from ..protocols import batching as _batching
from ..protocols import fastcast as _fastcast
from ..protocols import ftskeen as _ftskeen
from ..protocols import sequencer as _sequencer
from ..protocols import skeen as _skeen
from ..protocols.wbcast import messages as _wb
from ..reconfig import messages as _reconfig
from ..serving import messages as _serving
from ..types import AmcastMessage, Ballot, ProcessId, Timestamp

_LEN = struct.Struct("!I")
_SENDER = struct.Struct("!q")

#: Refuse frames above this size (a corrupted length prefix otherwise
#: requests gigabytes).
MAX_FRAME = 64 * 1024 * 1024

#: Frame tag of the pickle fallback; registered binary types use 1..255.
TAG_PICKLE = 0


class CodecStats:
    """Always-on tallies of the codec's exception paths.

    Fallbacks and corrupt frames are cold by design, so a plain dict
    increment on those paths costs nothing on the binary hot path.  The
    counts are process-global (the codec is module-level state); callers
    that need per-run deltas take a :meth:`snapshot` at run start and
    subtract.
    """

    def __init__(self) -> None:
        #: Pickle-fallback frames per message type name (binary mode only
        #: — a forced ``codec="pickle"`` baseline is not a fallback).
        self.fallback_frames: Dict[str, int] = {}
        self.corrupt_frames = 0
        self.oversized_frames = 0

    def record_fallback(self, type_name: str) -> None:
        self.fallback_frames[type_name] = self.fallback_frames.get(type_name, 0) + 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            "fallback_frames": dict(self.fallback_frames),
            "corrupt_frames": self.corrupt_frames,
            "oversized_frames": self.oversized_frames,
        }

    def fallbacks_since(self, base: Dict[str, Any]) -> Dict[str, int]:
        """Per-type fallback deltas against a run-start :meth:`snapshot`."""
        before = base.get("fallback_frames", {})
        out = {}
        for name, n in self.fallback_frames.items():
            d = n - before.get(name, 0)
            if d > 0:
                out[name] = d
        return out

    def hot_path_fallbacks(self, base: Optional[Dict[str, Any]] = None) -> Dict[str, int]:
        """Fallback counts for types that should never fall back.

        Anything outside :data:`COLD_PICKLE_TYPES` reaching the pickle
        path is either a registered type whose encoder choked or an
        unclassified wire message — both worth failing a test over.
        """
        counts = (
            self.fallbacks_since(base) if base is not None else self.fallback_frames
        )
        cold = {cls.__name__ for cls in COLD_PICKLE_TYPES}
        return {name: n for name, n in counts.items() if name not in cold}

    def reset(self) -> None:
        self.fallback_frames.clear()
        self.corrupt_frames = 0
        self.oversized_frames = 0


#: Process-global codec tallies (see :class:`CodecStats`).
CODEC_STATS = CodecStats()

# -- tagged value vocabulary -------------------------------------------------
#
# Fields whose static type is not fixed (payloads, epochs, heterogeneous
# tuples) are encoded as one tag byte plus a fixed layout.  The vocabulary
# covers everything the protocol dataclasses are built from; anything else
# falls back to a length-prefixed pickle blob *per value*, so one exotic
# payload never forces the whole frame off the binary path.

_V_NONE = 0
_V_TRUE = 1
_V_FALSE = 2
_V_INT = 3
_V_FLOAT = 4
_V_STR = 5
_V_BYTES = 6
_V_TUPLE = 7
_V_FROZENSET = 8
_V_LIST = 9
_V_DICT = 10
_V_TS = 11
_V_BALLOT = 12
_V_AMSG = 13
_V_MSG = 14
_V_PICKLE = 15
_V_NOOP = 16

_Q = struct.Struct("!q")
_D = struct.Struct("!d")
_U = struct.Struct("!I")
_I32 = struct.Struct("!i")
_TS = struct.Struct("!qi")  # Timestamp(time, group)
_BAL = struct.Struct("!qq")  # Ballot(round, pid)
_AMSG_HDR = struct.Struct("!qqiH")  # mid origin, mid seq, size (-1: None), ndests

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def _enc_amsg(buf: bytearray, m: AmcastMessage) -> None:
    origin, seq = m.mid
    size = -1 if m.size is None else m.size
    dests = m.dests
    buf += _AMSG_HDR.pack(origin, seq, size, len(dests))
    for d in dests:
        buf += _I32.pack(d)
    _enc_value(buf, m.payload)
    _enc_value(buf, m.footprint)


def _dec_amsg(mv: memoryview, off: int) -> Tuple[AmcastMessage, int]:
    origin, seq, size, ndests = _AMSG_HDR.unpack_from(mv, off)
    off += _AMSG_HDR.size
    dests = []
    for _ in range(ndests):
        dests.append(_I32.unpack_from(mv, off)[0])
        off += 4
    payload, off = _dec_value(mv, off)
    footprint, off = _dec_value(mv, off)
    return (
        AmcastMessage(
            mid=(origin, seq),
            dests=frozenset(dests),
            payload=payload,
            size=None if size < 0 else size,
            footprint=footprint,
        ),
        off,
    )


def _enc_value(buf: bytearray, v: Any) -> None:
    if v is None:
        buf.append(_V_NONE)
        return
    t = type(v)
    if t is bool:
        buf.append(_V_TRUE if v else _V_FALSE)
        return
    if t is int:
        if _INT64_MIN <= v <= _INT64_MAX:
            buf.append(_V_INT)
            buf += _Q.pack(v)
            return
    elif t is float:
        buf.append(_V_FLOAT)
        buf += _D.pack(v)
        return
    elif t is str:
        raw = v.encode("utf-8")
        buf.append(_V_STR)
        buf += _U.pack(len(raw))
        buf += raw
        return
    elif t is bytes:
        buf.append(_V_BYTES)
        buf += _U.pack(len(v))
        buf += v
        return
    elif t is tuple:
        buf.append(_V_TUPLE)
        buf += _U.pack(len(v))
        for item in v:
            _enc_value(buf, item)
        return
    elif t is frozenset:
        buf.append(_V_FROZENSET)
        buf += _U.pack(len(v))
        for item in v:
            _enc_value(buf, item)
        return
    elif t is list:
        buf.append(_V_LIST)
        buf += _U.pack(len(v))
        for item in v:
            _enc_value(buf, item)
        return
    elif t is dict:
        buf.append(_V_DICT)
        buf += _U.pack(len(v))
        for key, item in v.items():
            _enc_value(buf, key)
            _enc_value(buf, item)
        return
    elif t is Timestamp:
        buf.append(_V_TS)
        buf += _TS.pack(v.time, v.group)
        return
    elif t is Ballot:
        buf.append(_V_BALLOT)
        buf += _BAL.pack(v.round, v.pid)
        return
    elif t is AmcastMessage:
        buf.append(_V_AMSG)
        _enc_amsg(buf, v)
        return
    elif v is _paxos.NOOP:
        buf.append(_V_NOOP)
        return
    else:
        enc = _MSG_ENCODERS.get(t)
        if enc is not None:
            buf.append(_V_MSG)
            buf.append(_MSG_TAGS[t])
            enc(buf, v)
            return
    blob = pickle.dumps(v, protocol=pickle.HIGHEST_PROTOCOL)
    buf.append(_V_PICKLE)
    buf += _U.pack(len(blob))
    buf += blob


def _take(mv: memoryview, off: int, n: int) -> int:
    end = off + n
    if end > len(mv):
        raise ValueError(f"value runs past the frame end ({end} > {len(mv)})")
    return end


def _dec_value(mv: memoryview, off: int) -> Tuple[Any, int]:
    tag = mv[off]
    off += 1
    if tag == _V_NONE:
        return None, off
    if tag == _V_TRUE:
        return True, off
    if tag == _V_FALSE:
        return False, off
    if tag == _V_INT:
        return _Q.unpack_from(mv, off)[0], off + 8
    if tag == _V_FLOAT:
        return _D.unpack_from(mv, off)[0], off + 8
    if tag == _V_STR:
        (n,) = _U.unpack_from(mv, off)
        end = _take(mv, off + 4, n)
        return str(mv[off + 4 : end], "utf-8"), end
    if tag == _V_BYTES:
        (n,) = _U.unpack_from(mv, off)
        end = _take(mv, off + 4, n)
        return bytes(mv[off + 4 : end]), end
    if tag in (_V_TUPLE, _V_FROZENSET, _V_LIST):
        (n,) = _U.unpack_from(mv, off)
        off += 4
        if n > len(mv):  # cheap sanity bound: one byte per element minimum
            raise ValueError(f"container of {n} elements in a {len(mv)}-byte frame")
        items = []
        for _ in range(n):
            item, off = _dec_value(mv, off)
            items.append(item)
        if tag == _V_TUPLE:
            return tuple(items), off
        if tag == _V_FROZENSET:
            return frozenset(items), off
        return items, off
    if tag == _V_DICT:
        (n,) = _U.unpack_from(mv, off)
        off += 4
        if n > len(mv):
            raise ValueError(f"dict of {n} entries in a {len(mv)}-byte frame")
        out: Dict[Any, Any] = {}
        for _ in range(n):
            key, off = _dec_value(mv, off)
            val, off = _dec_value(mv, off)
            out[key] = val
        return out, off
    if tag == _V_TS:
        time, group = _TS.unpack_from(mv, off)
        return Timestamp(time, group), off + _TS.size
    if tag == _V_BALLOT:
        rnd, pid = _BAL.unpack_from(mv, off)
        return Ballot(rnd, pid), off + _BAL.size
    if tag == _V_AMSG:
        return _dec_amsg(mv, off)
    if tag == _V_MSG:
        return _dec_inner(mv, off)
    if tag == _V_PICKLE:
        (n,) = _U.unpack_from(mv, off)
        end = _take(mv, off + 4, n)
        return pickle.loads(mv[off + 4 : end]), end
    if tag == _V_NOOP:
        return _paxos.NOOP, off
    raise ValueError(f"unknown value tag {tag}")


# -- message registry --------------------------------------------------------

_MSG_TAGS: Dict[type, int] = {}
_MSG_ENCODERS: Dict[type, Callable[[bytearray, Any], None]] = {}
_MSG_DECODERS: Dict[int, Callable[[memoryview, int], Tuple[Any, int]]] = {}


def _register(cls: type, tag: int, encoder=None, decoder=None) -> None:
    """Register a message type at ``tag``.

    Without an explicit codec pair, a field-wise one is generated from the
    dataclass definition: each field is encoded with the tagged value
    vocabulary in declaration order, and decoding calls the constructor
    positionally — so a registered message can never drift from its codec.
    """
    if tag in _MSG_DECODERS or not 1 <= tag <= 255:
        raise ValueError(f"bad or duplicate message tag {tag} for {cls.__name__}")
    if encoder is None:
        names = tuple(f.name for f in dataclasses.fields(cls))

        def encoder(buf: bytearray, msg: Any, _names=names) -> None:
            for name in _names:
                _enc_value(buf, getattr(msg, name))

        def decoder(mv: memoryview, off: int, _cls=cls, _n=len(names)):
            values = []
            for _ in range(_n):
                v, off = _dec_value(mv, off)
                values.append(v)
            return _cls(*values), off

    _MSG_TAGS[cls] = tag
    _MSG_ENCODERS[cls] = encoder
    _MSG_DECODERS[tag] = decoder


def _enc_inner(buf: bytearray, msg: Any) -> None:
    """Encode one message as tag + body (pickle-tagged when unregistered)."""
    enc = _MSG_ENCODERS.get(type(msg))
    if enc is not None:
        buf.append(_MSG_TAGS[type(msg)])
        enc(buf, msg)
        return
    CODEC_STATS.record_fallback(type(msg).__name__)
    blob = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
    buf.append(TAG_PICKLE)
    buf += _U.pack(len(blob))
    buf += blob


def _dec_inner(mv: memoryview, off: int) -> Tuple[Any, int]:
    tag = mv[off]
    off += 1
    if tag == TAG_PICKLE:
        (n,) = _U.unpack_from(mv, off)
        end = _take(mv, off + 4, n)
        return pickle.loads(mv[off + 4 : end]), end
    decoder = _MSG_DECODERS.get(tag)
    if decoder is None:
        raise ValueError(f"unknown message tag {tag}")
    return decoder(mv, off)


# Per-message round-trip messages (MULTICAST, ACCEPT, ACCEPT_ACK, DELIVER,
# SUBMIT_ACK) and the ACCEPT_ACK batch are the wire hot path — one or more
# of each per multicast per member.  Their shapes are fixed, so dedicated
# struct layouts skip the generic tagged-value dispatch entirely.
_AAB_ENTRY = struct.Struct("!qqB")  # mid origin, mid seq, vector length
_AAB_VEC = struct.Struct("!iqq")  # gid, ballot round, ballot pid


def _enc_multicast(buf: bytearray, msg: "_base.MulticastMsg") -> None:
    _enc_amsg(buf, msg.m)
    _enc_value(buf, msg.epoch)


def _dec_multicast(mv: memoryview, off: int):
    m, off = _dec_amsg(mv, off)
    epoch, off = _dec_value(mv, off)
    return _base.MulticastMsg(m, epoch), off


_ACCEPT_HDR = struct.Struct("!iqqqi")  # gid, ballot, lts (time, group)


def _enc_accept(buf: bytearray, msg: "_wb.AcceptMsg") -> None:
    buf += _ACCEPT_HDR.pack(
        msg.gid, msg.bal.round, msg.bal.pid, msg.lts.time, msg.lts.group
    )
    _enc_amsg(buf, msg.m)
    _enc_value(buf, msg.epoch)


def _dec_accept(mv: memoryview, off: int):
    gid, brnd, bpid, ltime, lgroup = _ACCEPT_HDR.unpack_from(mv, off)
    m, off = _dec_amsg(mv, off + _ACCEPT_HDR.size)
    epoch, off = _dec_value(mv, off)
    return _wb.AcceptMsg(m, gid, Ballot(brnd, bpid), Timestamp(ltime, lgroup), epoch), off


def _enc_accept_ack(buf: bytearray, msg: "_wb.AcceptAckMsg") -> None:
    vector = msg.vector
    if len(vector) > 255:
        raise ValueError("ballot vector too long for wire layout")
    buf += _AAB_ENTRY.pack(msg.mid[0], msg.mid[1], len(vector))
    buf += _I32.pack(msg.gid)
    for gid, bal in vector:
        buf += _AAB_VEC.pack(gid, bal.round, bal.pid)


def _dec_accept_ack(mv: memoryview, off: int):
    origin, seq, veclen = _AAB_ENTRY.unpack_from(mv, off)
    off += _AAB_ENTRY.size
    (gid,) = _I32.unpack_from(mv, off)
    off += 4
    vector = []
    for _ in range(veclen):
        vgid, rnd, pid = _AAB_VEC.unpack_from(mv, off)
        off += _AAB_VEC.size
        vector.append((vgid, Ballot(rnd, pid)))
    return _wb.AcceptAckMsg((origin, seq), gid, tuple(vector)), off


_DELIVER_HDR = struct.Struct("!qqqiqi")  # ballot, lts (t, g), gts (t, g)


def _enc_deliver(buf: bytearray, msg: "_wb.DeliverMsg") -> None:
    buf += _DELIVER_HDR.pack(
        msg.bal.round, msg.bal.pid,
        msg.lts.time, msg.lts.group,
        msg.gts.time, msg.gts.group,
    )
    _enc_amsg(buf, msg.m)
    _enc_value(buf, msg.floor)


def _dec_deliver(mv: memoryview, off: int):
    brnd, bpid, ltime, lgroup, gtime, ggroup = _DELIVER_HDR.unpack_from(mv, off)
    m, off = _dec_amsg(mv, off + _DELIVER_HDR.size)
    floor, off = _dec_value(mv, off)
    return (
        _wb.DeliverMsg(
            m,
            Ballot(brnd, bpid),
            Timestamp(ltime, lgroup),
            Timestamp(gtime, ggroup),
            floor,
        ),
        off,
    )


_SACK_HDR = struct.Struct("!iqiqqH")  # gid, leader, lane, tag, index, acked count


def _enc_submit_ack(buf: bytearray, msg: "_base.SubmitAckMsg") -> None:
    acked = msg.acked
    buf += _SACK_HDR.pack(
        msg.gid, msg.leader, msg.lane, msg.tag, msg.index, len(acked)
    )
    for origin, seq in acked:
        buf += _BAL.pack(origin, seq)  # !qq — same shape as a mid


def _dec_submit_ack(mv: memoryview, off: int):
    gid, leader, lane, tag, index, count = _SACK_HDR.unpack_from(mv, off)
    off += _SACK_HDR.size
    acked = []
    for _ in range(count):
        origin, seq = _BAL.unpack_from(mv, off)
        off += _BAL.size
        acked.append((origin, seq))
    return _base.SubmitAckMsg(gid, leader, tuple(acked), lane, tag, index), off


def _enc_accept_ack_batch(buf: bytearray, msg: "_wb.AcceptAckBatchMsg") -> None:
    entries = msg.entries
    buf += _I32.pack(msg.gid)
    buf += _U.pack(len(entries))
    for mid, vector in entries:
        if len(vector) > 255:
            raise ValueError("ballot vector too long for wire layout")
        buf += _AAB_ENTRY.pack(mid[0], mid[1], len(vector))
        for gid, bal in vector:
            buf += _AAB_VEC.pack(gid, bal.round, bal.pid)


def _dec_accept_ack_batch(mv: memoryview, off: int):
    (gid,) = _I32.unpack_from(mv, off)
    (count,) = _U.unpack_from(mv, off + 4)
    off += 8
    entries = []
    for _ in range(count):
        origin, seq, veclen = _AAB_ENTRY.unpack_from(mv, off)
        off += _AAB_ENTRY.size
        vector = []
        for _ in range(veclen):
            vgid, rnd, pid = _AAB_VEC.unpack_from(mv, off)
            off += _AAB_VEC.size
            vector.append((vgid, Ballot(rnd, pid)))
        entries.append(((origin, seq), tuple(vector)))
    return _wb.AcceptAckBatchMsg(gid, tuple(entries)), off


# Lane envelopes recurse: the inner message reuses the frame tag space, so
# a binary-codable inner stays binary inside the envelope and an exotic one
# falls back to a nested pickle blob.
def _enc_lane(buf: bytearray, msg: "_wb.LaneMsg") -> None:
    buf += _I32.pack(msg.lane)
    _enc_inner(buf, msg.inner)


def _dec_lane(mv: memoryview, off: int) -> Tuple["_wb.LaneMsg", int]:
    (lane,) = _I32.unpack_from(mv, off)
    inner, off = _dec_inner(mv, off + 4)
    return _wb.LaneMsg(lane, inner), off


def _enc_lane_relay(buf: bytearray, msg: "_wb.LaneRelayMsg") -> None:
    targets = msg.targets
    buf += _I32.pack(msg.lane)
    buf += _U.pack(len(targets))
    for pid in targets:
        buf += _Q.pack(pid)
    _enc_inner(buf, msg.inner)


def _dec_lane_relay(mv: memoryview, off: int) -> Tuple["_wb.LaneRelayMsg", int]:
    (lane,) = _I32.unpack_from(mv, off)
    off += 4
    (count,) = _U.unpack_from(mv, off)
    off += _U.size
    targets = []
    for _ in range(count):
        (pid,) = _Q.unpack_from(mv, off)
        off += _Q.size
        targets.append(pid)
    inner, off = _dec_inner(mv, off)
    return _wb.LaneRelayMsg(lane, tuple(targets), inner), off


# Serving-layer read path: READ / READ_REPLY are per-read round trips —
# the entire wire cost of a watermark-served read — so they get fixed
# headers with value-encoded keys rather than the generic field walk.
_READ_HDR = struct.Struct("!qiqHH")  # rid, gid, min_index, nkeys, nfences
_RREPLY_HDR = struct.Struct("!qiqBH")  # rid, gid, index, stale, nitems


def _enc_read(buf: bytearray, msg: "_serving.ReadMsg") -> None:
    buf += _READ_HDR.pack(
        msg.rid, msg.gid, msg.min_index, len(msg.keys), len(msg.fences)
    )
    for k in msg.keys:
        _enc_value(buf, k)
    for key, (origin, seq) in msg.fences:
        _enc_value(buf, key)
        buf += _BAL.pack(origin, seq)  # !qq — same shape as a mid


def _dec_read(mv: memoryview, off: int):
    rid, gid, min_index, nkeys, nfences = _READ_HDR.unpack_from(mv, off)
    off += _READ_HDR.size
    keys = []
    for _ in range(nkeys):
        k, off = _dec_value(mv, off)
        keys.append(k)
    fences = []
    for _ in range(nfences):
        k, off = _dec_value(mv, off)
        origin, seq = _BAL.unpack_from(mv, off)
        off += _BAL.size
        fences.append((k, (origin, seq)))
    return (
        _serving.ReadMsg(rid, gid, tuple(keys), min_index, tuple(fences)),
        off,
    )


def _enc_read_reply(buf: bytearray, msg: "_serving.ReadReplyMsg") -> None:
    buf += _RREPLY_HDR.pack(
        msg.rid, msg.gid, msg.index, 1 if msg.stale else 0, len(msg.items)
    )
    for key, value, version in msg.items:
        _enc_value(buf, key)
        _enc_value(buf, value)
        buf += _Q.pack(version)


def _dec_read_reply(mv: memoryview, off: int):
    rid, gid, index, stale, nitems = _RREPLY_HDR.unpack_from(mv, off)
    off += _RREPLY_HDR.size
    items = []
    for _ in range(nitems):
        k, off = _dec_value(mv, off)
        v, off = _dec_value(mv, off)
        (ver,) = _Q.unpack_from(mv, off)
        off += _Q.size
        items.append((k, v, ver))
    return _serving.ReadReplyMsg(rid, gid, index, bool(stale), tuple(items)), off


# Tag assignments are part of the wire format: append, never renumber.
_register(_base.MulticastMsg, 1, _enc_multicast, _dec_multicast)
_register(_base.MulticastBatchMsg, 2)
_register(_base.SubmitAckMsg, 3, _enc_submit_ack, _dec_submit_ack)
_register(_base.SubmitRedirectMsg, 4)
_register(_wb.AcceptMsg, 5, _enc_accept, _dec_accept)
_register(_wb.AcceptAckMsg, 6, _enc_accept_ack, _dec_accept_ack)
_register(_wb.AcceptBatchMsg, 7)
_register(_wb.AcceptAckBatchMsg, 8, _enc_accept_ack_batch, _dec_accept_ack_batch)
_register(_wb.DeliverMsg, 9, _enc_deliver, _dec_deliver)
_register(_wb.DeliverBatchMsg, 10)
_register(_wb.LaneMsg, 11, _enc_lane, _dec_lane)
_register(_wb.NewLeaderMsg, 12)
_register(_wb.NewStateAckMsg, 13)
_register(_wb.DeliveredAckMsg, 14)
_register(_wb.GcReadyMsg, 15)
_register(_wb.GcPruneMsg, 16)
_register(_wb.LaneProbeMsg, 17)
_register(_wb.LaneAdvanceMsg, 18)
_register(_wb.LaneAdvanceAckMsg, 19)
_register(_wb.LaneWatermarkMsg, 20)
_register(_batching.ProposeBatchMsg, 21)
_register(_batching.BatchDeliverMsg, 22)
_register(_skeen.ProposeMsg, 23)
_register(_ftskeen.FtDeliverMsg, 24)
_register(_fastcast.ConfirmMsg, 25)
_register(_fastcast.ConfirmBatchMsg, 26)
_register(_fastcast.FcDeliverMsg, 27)
_register(_sequencer.OrderedMsg, 28)
_register(_sequencer.OrderedAckMsg, 29)
_register(_paxos.PaxosPrepare, 30)
_register(_paxos.PaxosPromise, 31)
_register(_paxos.PaxosAccept, 32)
_register(_paxos.PaxosAccepted, 33)
_register(_paxos.PaxosCommit, 34)
_register(_detector.HeartbeatMsg, 35)
# Consensus log commands: never top-level frames, but they ride inside
# PaxosAccept.value / PaxosPromise.log on the baselines' hot path, so the
# value vocabulary routes them through the same registry (_V_MSG).
_register(_batching.CmdLocalBatch, 36)
_register(_batching.CmdGlobalBatch, 37)
_register(_sequencer.SeqOrder, 38)
_register(_sequencer.CmdDeliver, 39)
_register(_ftskeen.CmdLocal, 40)
_register(_ftskeen.CmdGlobal, 41)
_register(_fastcast.FcLocal, 42)
_register(_fastcast.FcGlobal, 43)
_register(_wb.LaneRelayMsg, 44, _enc_lane_relay, _dec_lane_relay)
_register(_serving.ReadMsg, 45, _enc_read, _dec_read)
_register(_serving.ReadReplyMsg, 46, _enc_read_reply, _dec_read_reply)

#: Cold control messages deliberately left on the pickle fallback: they
#: cross the wire a handful of times per election / reconfiguration and
#: carry arbitrarily shaped state snapshots.  Every *other* enumerated
#: wire message must be registered binary — the codec battery enforces it.
COLD_PICKLE_TYPES = frozenset(
    {
        _wb.NewLeaderAckMsg,
        _wb.NewStateMsg,
        _reconfig.EpochFenceMsg,
        _reconfig.JoinRequestMsg,
        _reconfig.JoinStateMsg,
        _reconfig.JoinInstalledMsg,
    }
)

#: Modules whose message dataclasses constitute the wire vocabulary.
_WIRE_MODULES = (
    _base,
    _batching,
    _skeen,
    _ftskeen,
    _fastcast,
    _sequencer,
    _wb,
    _paxos,
    _detector,
    _reconfig,
    _serving,
)


def wire_message_types() -> frozenset:
    """Every message type that can cross the TCP wire, auto-enumerated.

    Walks the wire modules for message-shaped dataclasses (``*Msg``,
    ``Paxos*``, ``Cmd*``, ``SeqOrder``) plus the :class:`LaneMsg`
    envelope.  The codec test battery iterates this set, so adding a wire
    message without classifying it (binary registration or
    :data:`COLD_PICKLE_TYPES`) fails loudly.
    """
    out = {_wb.LaneMsg, _wb.LaneRelayMsg}
    for mod in _WIRE_MODULES:
        for name, obj in vars(mod).items():
            if not (isinstance(obj, type) and dataclasses.is_dataclass(obj)):
                continue
            if (
                name.endswith("Msg")
                or name.startswith("Paxos")
                or name.startswith("Cmd")
                or name in ("SeqOrder", "FcLocal", "FcGlobal")
            ):
                out.add(obj)
    return frozenset(out)


def classify(cls: type) -> str:
    """``"binary"`` or ``"pickle"`` for a known wire type; raises otherwise."""
    if cls in _MSG_TAGS:
        return "binary"
    if cls in COLD_PICKLE_TYPES:
        return "pickle"
    raise ValueError(
        f"{cls.__name__} is neither registered with the binary codec nor "
        f"declared a cold pickle type — classify it in repro.net.codec"
    )


# -- frames ------------------------------------------------------------------


def encode_frame(sender: ProcessId, msg: Any, codec: str = "binary") -> bytes:
    """Encode one ``(sender, msg)`` frame.

    ``codec="binary"`` uses the registered binary layout when the message
    type has one and the tagged pickle fallback otherwise;
    ``codec="pickle"`` forces the fallback for every message (the recorded
    pre-overhaul baseline).
    """
    buf = bytearray(_LEN.size)
    buf += _SENDER.pack(sender)
    if codec == "binary":
        base = len(buf)
        try:
            _enc_inner(buf, msg)
        except Exception:
            # A registered encoder choked on an unexpected field value
            # (e.g. a shape the fixed layout cannot carry): scrap the
            # partial body and fall back to the pickle path — robustness
            # over raw speed for the odd message out.
            del buf[base:]
            CODEC_STATS.record_fallback(type(msg).__name__)
            blob = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
            buf.append(TAG_PICKLE)
            buf += _U.pack(len(blob))
            buf += blob
    elif codec == "pickle":
        blob = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        buf.append(TAG_PICKLE)
        buf += _U.pack(len(blob))
        buf += blob
    else:
        raise ValueError(f"unknown codec {codec!r}")
    body = len(buf) - _LEN.size
    if body > MAX_FRAME:
        raise ValueError(f"frame of {body} bytes exceeds MAX_FRAME")
    _LEN.pack_into(buf, 0, body)
    return bytes(buf)


def frame_codec(frame: bytes) -> str:
    """Which codec path an encoded frame took (test/bench introspection)."""
    tag = frame[_LEN.size + _SENDER.size]
    return "pickle" if tag == TAG_PICKLE else "binary"


def decode_frame(payload: bytes) -> Tuple[ProcessId, Any]:
    """Decode one frame body; raises ValueError on any malformed input."""
    try:
        mv = memoryview(payload)
        (sender,) = _SENDER.unpack_from(mv, 0)
        msg, off = _dec_inner(mv, _SENDER.size)
        if off != len(mv):
            raise ValueError(f"{len(mv) - off} trailing bytes after the message")
        return sender, msg
    except ValueError:
        CODEC_STATS.corrupt_frames += 1
        raise
    except Exception as exc:  # struct.error, pickle errors, Unicode, ...
        CODEC_STATS.corrupt_frames += 1
        raise ValueError(f"corrupt frame: {exc!r}") from exc


def decode_buffer(buf, dispatch: Callable[[ProcessId, Any], None]) -> int:
    """Decode every complete frame in ``buf``, dispatching each.

    The coalesced receive path: one TCP segment (or one coalesced writer
    flush) usually carries many frames, and this scans them all in one
    synchronous loop — no per-frame awaits.  Returns the bytes consumed
    so the caller can trim its buffer; an incomplete trailing frame stays
    unconsumed for the next read.  Raises ValueError on an oversized
    length prefix or a corrupt body (the caller drops the connection).
    """
    off = 0
    n = len(buf)
    header = _LEN.size
    while n - off >= header:
        (length,) = _LEN.unpack_from(buf, off)
        if length > MAX_FRAME:
            CODEC_STATS.oversized_frames += 1
            raise ValueError(f"incoming frame of {length} bytes exceeds MAX_FRAME")
        end = off + header + length
        if end > n:
            break
        sender, msg = decode_frame(memoryview(buf)[off + header : end])
        off = end
        dispatch(sender, msg)
    return off


async def read_frame(reader: asyncio.StreamReader) -> Tuple[ProcessId, Any]:
    """Read one frame; raises IncompleteReadError on clean EOF and
    ValueError on an oversized length prefix or a corrupt body."""
    header = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        CODEC_STATS.oversized_frames += 1
        raise ValueError(f"incoming frame of {length} bytes exceeds MAX_FRAME")
    payload = await reader.readexactly(length)
    return decode_frame(payload)
