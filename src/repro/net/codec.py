"""Wire framing: length-prefixed pickled (sender, message) frames.

Pickle is acceptable here because the cluster is a closed system of our
own processes (the classic caveat: never unpickle untrusted input).  All
protocol messages are small frozen dataclasses built from primitive
types, so they pickle compactly and deterministically.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from typing import Any, Tuple

from ..types import ProcessId

_HEADER = struct.Struct("!I")

#: Refuse frames above this size (a corrupted length prefix otherwise
#: requests gigabytes).
MAX_FRAME = 64 * 1024 * 1024


def encode_frame(sender: ProcessId, msg: Any) -> bytes:
    payload = pickle.dumps((sender, msg), protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME:
        raise ValueError(f"frame of {len(payload)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Tuple[ProcessId, Any]:
    return pickle.loads(payload)


async def read_frame(reader: asyncio.StreamReader) -> Tuple[ProcessId, Any]:
    """Read one frame; raises IncompleteReadError on clean EOF."""
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ValueError(f"incoming frame of {length} bytes exceeds MAX_FRAME")
    payload = await reader.readexactly(length)
    return decode_frame(payload)
