"""A whole atomic-multicast cluster on localhost TCP, in one event loop.

:class:`LocalCluster` starts one :class:`~repro.net.transport.NodeTransport`
per group member (ephemeral ports), binds the protocol processes to
:class:`~repro.net.runtime.NetRuntime`, and offers a minimal client API:
``multicast()`` submits a message to the proper protocol entry points and
``wait_partial()`` / ``wait_quiescent()`` await delivery.

Deliveries and multicasts are recorded so runs can be verified with the
same :mod:`repro.checking` machinery as simulated ones.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Optional, Set, Tuple

from ..checking import History
from ..config import ClusterConfig
from ..types import AmcastMessage, GroupId, MessageId, ProcessId, make_message
from ..protocols.base import MulticastMsg
from .runtime import NetRuntime
from .transport import NodeTransport


class LocalCluster:
    """All group members of one protocol, on 127.0.0.1 ephemeral ports."""

    def __init__(
        self,
        config: ClusterConfig,
        protocol_cls,
        options: Any = None,
        seed: int = 0,
        attach_fd: bool = False,
        fd_options: Any = None,
    ) -> None:
        self.config = config
        self.protocol_cls = protocol_cls
        self.options = options
        self.seed = seed
        self.attach_fd = attach_fd
        self.fd_options = fd_options
        self.transports: Dict[ProcessId, NodeTransport] = {}
        self.processes: Dict[ProcessId, Any] = {}
        self.addresses: Dict[ProcessId, Tuple[str, int]] = {}
        self.deliveries: List[Tuple[ProcessId, AmcastMessage, float]] = []
        self.multicasts: Dict[MessageId, Tuple[ProcessId, float, AmcastMessage]] = {}
        self.killed: Set[ProcessId] = set()
        self._delivery_event = asyncio.Event()
        self._client_seq = itertools.count()
        self._client_transport: Optional[NodeTransport] = None
        self._client_pid: Optional[ProcessId] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        for pid in self.config.all_members:
            transport = NodeTransport(
                pid, self.addresses.__getitem__, self._make_dispatch(pid)
            )
            await transport.start()
            self.transports[pid] = transport
            self.addresses[pid] = (transport.host, transport.port)
        # A lightweight client endpoint (first configured client id, or an
        # id above every member).
        self._client_pid = (
            self.config.clients[0]
            if self.config.clients
            else max(self.config.all_members) + 1
        )
        self._client_transport = NodeTransport(
            self._client_pid, self.addresses.__getitem__, lambda s, m: None
        )
        await self._client_transport.start()
        self.addresses[self._client_pid] = (
            self._client_transport.host,
            self._client_transport.port,
        )
        # Bind protocols only once every address is known.
        for pid in self.config.all_members:
            runtime = NetRuntime(
                pid, self.transports[pid], self._record_delivery, seed=self.seed
            )
            proc = self.protocol_cls(pid, self.config, runtime, options=self.options)
            if self.attach_fd:
                from ..failure.detector import attach_monitor

                attach_monitor(proc, self.fd_options)
            self.processes[pid] = proc
        for proc in self.processes.values():
            proc.on_start()

    def _make_dispatch(self, pid: ProcessId):
        def dispatch(sender: ProcessId, msg: Any) -> None:
            if pid in self.killed:
                return
            self.processes[pid].on_message(sender, msg)

        return dispatch

    async def stop(self) -> None:
        for transport in self.transports.values():
            await transport.close()
        if self._client_transport is not None:
            await self._client_transport.close()

    async def kill(self, pid: ProcessId) -> None:
        """Crash-stop a member: close its transport, drop its messages."""
        self.killed.add(pid)
        transport = self.transports.get(pid)
        if transport is not None:
            await transport.close()

    # -- bookkeeping -------------------------------------------------------------

    def _record_delivery(self, pid: ProcessId, m: AmcastMessage, t: float) -> None:
        self.deliveries.append((pid, m, t))
        self._delivery_event.set()

    # -- client API -----------------------------------------------------------------

    def multicast(self, dests, payload: Any = None) -> AmcastMessage:
        """Submit a fresh message to its destination leaders."""
        m = make_message(self._client_pid, next(self._client_seq), dests, payload)
        loop = asyncio.get_event_loop()
        self.multicasts[m.mid] = (self._client_pid, loop.time(), m)
        self._send_to_targets(m, broadcast=False)
        return m

    def resend(self, m: AmcastMessage) -> None:
        """Retry an in-flight message, broadcasting to all members."""
        self._send_to_targets(m, broadcast=True)

    def _send_to_targets(self, m: AmcastMessage, broadcast: bool) -> None:
        leader_map = {
            g: self._live_leader_guess(g) for g in self.config.group_ids
        }
        if broadcast:
            targets = [p for g in sorted(m.dests) for p in self.config.members(g)]
        else:
            targets = self.protocol_cls.multicast_targets(self.config, leader_map, m)
        msg = MulticastMsg(m)
        for pid in targets:
            if pid not in self.killed:
                self._client_transport.send(pid, msg)

    def _live_leader_guess(self, gid: GroupId) -> ProcessId:
        default = self.config.default_leader(gid)
        if default not in self.killed:
            return default
        for pid in self.config.members(gid):
            if pid not in self.killed:
                return pid
        return default

    # -- waiting --------------------------------------------------------------------

    def partially_delivered(self, mid: MessageId) -> bool:
        entry = self.multicasts.get(mid)
        if entry is None:
            return False
        m = entry[2]
        groups_seen = {
            self.config.group_of(pid) for pid, d, _ in self.deliveries if d.mid == mid
        }
        return set(m.dests) <= groups_seen

    async def wait_partial(self, mid: MessageId, timeout: float = 5.0) -> bool:
        deadline = asyncio.get_event_loop().time() + timeout
        while not self.partially_delivered(mid):
            remaining = deadline - asyncio.get_event_loop().time()
            if remaining <= 0:
                return False
            self._delivery_event.clear()
            try:
                await asyncio.wait_for(self._delivery_event.wait(), remaining)
            except asyncio.TimeoutError:
                return False
        return True

    async def wait_quiescent(self, expected_deliveries: int, timeout: float = 5.0) -> bool:
        deadline = asyncio.get_event_loop().time() + timeout
        while len(self.deliveries) < expected_deliveries:
            remaining = deadline - asyncio.get_event_loop().time()
            if remaining <= 0:
                return False
            self._delivery_event.clear()
            try:
                await asyncio.wait_for(self._delivery_event.wait(), remaining)
            except asyncio.TimeoutError:
                return False
        return True

    # -- verification ------------------------------------------------------------------

    def history(self) -> History:
        deliveries: Dict[ProcessId, List[Tuple[float, AmcastMessage]]] = {}
        for pid, m, t in self.deliveries:
            deliveries.setdefault(pid, []).append((t, m))
        return History(
            config=self.config,
            multicasts=dict(self.multicasts),
            deliveries=deliveries,
            crashed=set(self.killed),
        )
