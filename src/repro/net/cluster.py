"""A whole atomic-multicast cluster on localhost TCP, in one event loop.

:class:`LocalCluster` starts one :class:`~repro.net.transport.NodeTransport`
per group member (ephemeral ports), binds the protocol processes to
:class:`~repro.net.runtime.NetRuntime`, and fronts them with the same
:class:`~repro.client.AmcastClient` session that drives the simulator:
``multicast()`` submits through the session (batched ingress, leader
tracking from ack/redirect traffic, timer-driven retransmission with
stable message ids) and ``wait_partial()`` / ``wait_quiescent()`` await
delivery.

Deliveries and multicasts are recorded so runs can be verified with the
same :mod:`repro.checking` machinery as simulated ones.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Set, Tuple

from ..checking import History
from ..client import AmcastClient, AmcastClientOptions, SubmitHandle
from ..config import ClusterConfig
from ..types import AmcastMessage, MessageId, ProcessId
from ..workload.tracker import DeliveryTracker
from .runtime import NetRuntime
from .transport import NodeTransport


class _LiveMemberTransport:
    """Send-side liveness filter wrapped around the client's transport.

    Killed members' servers are closed, so frames queued for them would
    sit behind a reconnect loop that can never succeed — every session
    broadcast retry would grow those dead-peer queues.  The cluster knows
    who it killed; drop such sends at the source (the role the old
    ``_send_to_targets`` killed-filter played before the session API).
    """

    def __init__(self, inner: NodeTransport, killed: Set[ProcessId]) -> None:
        self._inner = inner
        self._killed = killed  # shared, live reference to LocalCluster.killed

    def send(self, to: ProcessId, msg) -> None:
        if to in self._killed:
            return
        self._inner.send(to, msg)


class LocalCluster:
    """All group members of one protocol, on 127.0.0.1 ephemeral ports."""

    def __init__(
        self,
        config: ClusterConfig,
        protocol_cls,
        options: Any = None,
        seed: int = 0,
        attach_fd: bool = False,
        fd_options: Any = None,
        client_options: Optional[AmcastClientOptions] = None,
    ) -> None:
        self.config = config
        self.protocol_cls = protocol_cls
        self.options = options
        self.seed = seed
        self.attach_fd = attach_fd
        self.fd_options = fd_options
        #: Session knobs for the embedded client; the default retransmits,
        #: so a submission survives leader crashes without manual resends.
        self.client_options = client_options or AmcastClientOptions(
            retry_timeout=0.25
        )
        self.transports: Dict[ProcessId, NodeTransport] = {}
        self.processes: Dict[ProcessId, Any] = {}
        self.addresses: Dict[ProcessId, Tuple[str, int]] = {}
        self.deliveries: List[Tuple[ProcessId, AmcastMessage, float]] = []
        self.multicasts: Dict[MessageId, Tuple[ProcessId, float, AmcastMessage]] = {}
        self.killed: Set[ProcessId] = set()
        self.tracker = DeliveryTracker(config)  # completion source for the session
        self.client: Optional[AmcastClient] = None
        self._delivery_event = asyncio.Event()
        self._client_transport: Optional[NodeTransport] = None
        self._client_pid: Optional[ProcessId] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        for pid in self.config.all_members:
            transport = NodeTransport(
                pid, self.addresses.__getitem__, self._make_dispatch(pid)
            )
            await transport.start()
            self.transports[pid] = transport
            self.addresses[pid] = (transport.host, transport.port)
        # The client endpoint (first configured client id, or an id above
        # every member) runs one AmcastClient session over its own
        # transport — the exact code path the simulator's clients use.
        self._client_pid = (
            self.config.clients[0]
            if self.config.clients
            else max(self.config.all_members) + 1
        )
        self._client_transport = NodeTransport(
            self._client_pid, self.addresses.__getitem__, self._client_dispatch
        )
        await self._client_transport.start()
        self.addresses[self._client_pid] = (
            self._client_transport.host,
            self._client_transport.port,
        )
        client_runtime = NetRuntime(
            self._client_pid,
            _LiveMemberTransport(self._client_transport, self.killed),
            self._record_delivery,
            on_multicast=self._record_multicast,
            seed=self.seed,
        )
        self.client = AmcastClient(
            self._client_pid,
            self.config,
            client_runtime,
            self.protocol_cls,
            self.tracker,
            self.client_options,
        )
        # Bind protocols only once every address is known.
        for pid in self.config.all_members:
            runtime = NetRuntime(
                pid, self.transports[pid], self._record_delivery, seed=self.seed
            )
            proc = self.protocol_cls(pid, self.config, runtime, options=self.options)
            if self.attach_fd:
                from ..failure.detector import attach_monitor

                attach_monitor(proc, self.fd_options)
            self.processes[pid] = proc
        for proc in self.processes.values():
            proc.on_start()
        self.client.on_start()

    def _make_dispatch(self, pid: ProcessId):
        def dispatch(sender: ProcessId, msg: Any) -> None:
            if pid in self.killed:
                return
            self.processes[pid].on_message(sender, msg)

        return dispatch

    def _client_dispatch(self, sender: ProcessId, msg: Any) -> None:
        if self.client is not None:
            self.client.on_message(sender, msg)

    async def stop(self) -> None:
        for transport in self.transports.values():
            await transport.close()
        if self._client_transport is not None:
            await self._client_transport.close()

    async def kill(self, pid: ProcessId) -> None:
        """Crash-stop a member: close its transport, drop its messages."""
        self.killed.add(pid)
        transport = self.transports.get(pid)
        if transport is not None:
            await transport.close()

    # -- bookkeeping -------------------------------------------------------------

    def _record_delivery(self, pid: ProcessId, m: AmcastMessage, t: float) -> None:
        self.deliveries.append((pid, m, t))
        self.tracker.on_deliver(t, pid, m)
        self._delivery_event.set()

    def _record_multicast(self, pid: ProcessId, m: AmcastMessage, t: float) -> None:
        self.multicasts[m.mid] = (pid, t, m)

    # -- client API -----------------------------------------------------------------

    def multicast(self, dests, payload: Any = None) -> SubmitHandle:
        """Submit a fresh message through the session; returns its handle."""
        return self.client.submit(dests, payload)

    # -- waiting --------------------------------------------------------------------

    def partially_delivered(self, mid: MessageId) -> bool:
        return mid in self.tracker.partial_time

    async def wait_partial(self, mid: MessageId, timeout: float = 5.0) -> bool:
        deadline = asyncio.get_event_loop().time() + timeout
        while not self.partially_delivered(mid):
            remaining = deadline - asyncio.get_event_loop().time()
            if remaining <= 0:
                return False
            self._delivery_event.clear()
            try:
                await asyncio.wait_for(self._delivery_event.wait(), remaining)
            except asyncio.TimeoutError:
                return False
        return True

    async def wait_quiescent(self, expected_deliveries: int, timeout: float = 5.0) -> bool:
        deadline = asyncio.get_event_loop().time() + timeout
        while len(self.deliveries) < expected_deliveries:
            remaining = deadline - asyncio.get_event_loop().time()
            if remaining <= 0:
                return False
            self._delivery_event.clear()
            try:
                await asyncio.wait_for(self._delivery_event.wait(), remaining)
            except asyncio.TimeoutError:
                return False
        return True

    # -- verification ------------------------------------------------------------------

    def history(self) -> History:
        deliveries: Dict[ProcessId, List[Tuple[float, AmcastMessage]]] = {}
        for pid, m, t in self.deliveries:
            deliveries.setdefault(pid, []).append((t, m))
        return History(
            config=self.config,
            multicasts=dict(self.multicasts),
            deliveries=deliveries,
            crashed=set(self.killed),
        )
