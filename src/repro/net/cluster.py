"""A whole atomic-multicast cluster on localhost TCP, in one event loop.

:class:`LocalCluster` starts one :class:`~repro.net.transport.NodeTransport`
per group member (ephemeral ports), binds the protocol processes to
:class:`~repro.net.runtime.NetRuntime`, and fronts them with the same
:class:`~repro.client.AmcastClient` session that drives the simulator:
``multicast()`` submits through the session (batched ingress, leader
tracking from ack/redirect traffic, timer-driven retransmission with
stable message ids) and ``wait_partial()`` / ``wait_quiescent()`` await
delivery.

Deliveries and multicasts are recorded so runs can be verified with the
same :mod:`repro.checking` machinery as simulated ones.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Set, Tuple

from ..checking import History
from ..client import AmcastClient, AmcastClientOptions, SubmitHandle
from ..config import ClusterConfig
from ..types import AmcastMessage, MessageId, ProcessId
from ..workload.tracker import DeliveryTracker
from .runtime import NetRuntime
from .transport import NodeTransport, TransportOptions


class _LiveMemberTransport:
    """Send-side liveness filter wrapped around the client's transport.

    Killed members' servers are closed, so frames queued for them would
    sit behind a reconnect loop that can never succeed — every session
    broadcast retry would grow those dead-peer queues.  The cluster knows
    who it killed; drop such sends at the source (the role the old
    ``_send_to_targets`` killed-filter played before the session API).
    """

    def __init__(self, inner: NodeTransport, killed: Set[ProcessId]) -> None:
        self._inner = inner
        self._killed = killed  # shared, live reference to LocalCluster.killed

    def send(self, to: ProcessId, msg) -> None:
        if to in self._killed:
            return
        self._inner.send(to, msg)


class LocalCluster:
    """All group members of one protocol, on 127.0.0.1 ephemeral ports.

    Fronted by ``num_sessions`` concurrent :class:`AmcastClient` sessions
    (one transport and one client id each), so multi-tenant ingress —
    several independent submitters hitting the same leaders — runs over
    real sockets exactly as it does in the simulator.  ``multicast()``
    takes a ``session`` index; the single-session API is unchanged.
    """

    def __init__(
        self,
        config: ClusterConfig,
        protocol_cls,
        options: Any = None,
        seed: int = 0,
        attach_fd: bool = False,
        fd_options: Any = None,
        client_options: Optional[AmcastClientOptions] = None,
        num_sessions: int = 1,
        attach_reconfig: bool = False,
        transport_options: Optional[TransportOptions] = None,
        session_factory: Any = None,
        obs: Any = None,
    ) -> None:
        if num_sessions < 1:
            raise ValueError(f"num_sessions must be >= 1, got {num_sessions}")
        self.config = config
        self.protocol_cls = protocol_cls
        self.options = options
        self.seed = seed
        self.attach_fd = attach_fd
        self.fd_options = fd_options
        self.num_sessions = num_sessions
        #: Wire-path knobs (codec, coalescing, queue bounds) applied to
        #: every transport in the cluster — members and sessions alike.
        self.transport_options = transport_options or TransportOptions()
        #: Dynamic reconfiguration: attach a ReconfigManager to every
        #: member (epoch activation through the delivery order), run the
        #: embedded sessions epoch-fenced, and enable ``add_member`` /
        #: ``submit_reconfig``.
        self.attach_reconfig = attach_reconfig
        #: Session knobs for the embedded clients; the default retransmits,
        #: so a submission survives leader crashes without manual resends.
        #: One options object per session, or a single one shared by all.
        if isinstance(client_options, (list, tuple)):
            if len(client_options) != num_sessions:
                raise ValueError(
                    f"{len(client_options)} client_options for {num_sessions} sessions"
                )
            self.client_options = list(client_options)
        else:
            self.client_options = [
                client_options or AmcastClientOptions(retry_timeout=0.25)
            ] * num_sessions
        if attach_reconfig:
            from dataclasses import replace as _replace

            self.client_options = [
                _replace(opts, fence_epoch=True) for opts in self.client_options
            ]
        self.transports: Dict[ProcessId, NodeTransport] = {}
        self.processes: Dict[ProcessId, Any] = {}
        self.addresses: Dict[ProcessId, Tuple[str, int]] = {}
        self.deliveries: List[Tuple[ProcessId, AmcastMessage, float]] = []
        self.multicasts: Dict[MessageId, Tuple[ProcessId, float, AmcastMessage]] = {}
        self.killed: Set[ProcessId] = set()
        self.tracker = DeliveryTracker(config)  # completion source for sessions
        #: Session constructor, ``(pid, config, runtime, protocol_cls,
        #: tracker, options) -> AmcastClient``.  The serving layer swaps in
        #: :class:`~repro.serving.session.ServingSession` (with a partial
        #: binding its read knobs) to run the read path over real sockets.
        self.session_factory = session_factory or AmcastClient
        self.sessions: List[AmcastClient] = []
        self.managers: Dict[ProcessId, Any] = {}  # pid -> ReconfigManager
        self._delivery_event = asyncio.Event()
        self._session_transports: List[NodeTransport] = []
        self._session_pids: List[ProcessId] = []
        #: Telemetry spine of this run (wall-clock spans), or None.  The
        #: ``obs`` argument wins over ``config.obs``.
        from ..obs import Telemetry

        self.telemetry = Telemetry.create(obs if obs is not None else config.obs)
        self._span_monitor = (
            self.telemetry.trace_monitor() if self.telemetry is not None else None
        )
        # Run-start codec tallies, so per-run fallback deltas survive the
        # process-global CODEC_STATS being shared across clusters.
        from .codec import CODEC_STATS

        self._codec_base = CODEC_STATS.snapshot()

    @property
    def client(self) -> Optional[AmcastClient]:
        """The first session (the original single-session API)."""
        return self.sessions[0] if self.sessions else None

    @property
    def _client_transport(self) -> Optional[NodeTransport]:
        """First session's transport (kept for the single-session API)."""
        return self._session_transports[0] if self._session_transports else None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        registry = self.telemetry.registry if self.telemetry is not None else None
        for pid in self.config.all_members:
            transport = NodeTransport(
                pid,
                self.addresses.__getitem__,
                self._make_dispatch(pid),
                options=self.transport_options,
                registry=registry,
            )
            await transport.start()
            self.transports[pid] = transport
            self.addresses[pid] = (transport.host, transport.port)
        self._assign_session_pids()
        await self._start_sessions()
        # Bind protocols only once every address is known.
        for pid in self.config.all_members:
            runtime = NetRuntime(
                pid, self.transports[pid], self._record_delivery, seed=self.seed
            )
            proc = self.protocol_cls(pid, self.config, runtime, options=self.options)
            if self.telemetry is not None:
                proc.attach_obs(self.telemetry)
            if self.attach_fd:
                from ..failure.detector import attach_monitor

                attach_monitor(proc, self.fd_options)
            if self.attach_reconfig:
                from ..reconfig import ReconfigManager

                self.managers[pid] = ReconfigManager.attach(proc, self.config)
            self.processes[pid] = proc
        for proc in self.processes.values():
            proc.on_start()
        for session in self.sessions:
            session.on_start()

    def _assign_session_pids(self) -> None:
        # Session endpoints: configured client ids first, then fresh ids
        # above every configured process (members AND clients — seeding
        # from the members alone would collide with client ids).  Each
        # session runs one AmcastClient over its own transport — the
        # exact code path the simulator's clients use.
        fresh = max(self.config.all_processes) + 1
        for i in range(self.num_sessions):
            if i < len(self.config.clients):
                pid = self.config.clients[i]
            else:
                pid = fresh
                fresh += 1
            self._session_pids.append(pid)

    def _make_congestion_hook(self, index: int):
        """Transport congestion → session window: stop launching fresh
        submissions while any send queue sits above its bound (closes the
        backpressure loop the bounded queues exist for).  Retransmissions
        are unaffected — they are what drains the reliable channels."""

        def hook(congested: bool) -> None:
            if index < len(self.sessions):
                if congested:
                    self.sessions[index].pause_launches()
                else:
                    self.sessions[index].resume_launches()

        return hook

    async def _start_sessions(self, ports: Optional[Dict[ProcessId, int]] = None) -> None:
        """Start session transports and bind their clients.

        ``ports`` optionally pre-assigns listening ports per session pid —
        multi-process clusters reserve all ports up front so worker
        processes can be handed a complete address map before anything
        starts.
        """
        registry = self.telemetry.registry if self.telemetry is not None else None
        for i, pid in enumerate(self._session_pids):
            transport = NodeTransport(
                pid,
                self.addresses.__getitem__,
                self._make_session_dispatch(i),
                options=self.transport_options,
                on_congestion=self._make_congestion_hook(i),
                registry=registry,
            )
            await transport.start(port=(ports or {}).get(pid, 0))
            self._session_transports.append(transport)
            self.addresses[pid] = (transport.host, transport.port)
        for i, pid in enumerate(self._session_pids):
            runtime = NetRuntime(
                pid,
                _LiveMemberTransport(self._session_transports[i], self.killed),
                self._record_delivery,
                on_multicast=self._record_multicast,
                seed=self.seed + i,
            )
            self.sessions.append(
                self.session_factory(
                    pid,
                    self.config,
                    runtime,
                    self.protocol_cls,
                    self.tracker,
                    self.client_options[i],
                )
            )

    def _make_dispatch(self, pid: ProcessId):
        def dispatch(sender: ProcessId, msg: Any) -> None:
            if pid in self.killed:
                return
            self.processes[pid].on_message(sender, msg)

        return dispatch

    def _make_session_dispatch(self, index: int):
        def dispatch(sender: ProcessId, msg: Any) -> None:
            if index < len(self.sessions):
                self.sessions[index].on_message(sender, msg)

        return dispatch

    async def stop(self) -> None:
        self.collect_stats()
        for transport in self.transports.values():
            await transport.close()
        for transport in self._session_transports:
            await transport.close()

    async def kill(self, pid: ProcessId) -> None:
        """Crash-stop a member: close its transport, drop its messages."""
        self.killed.add(pid)
        self.tracker.note_crashed(pid)
        transport = self.transports.get(pid)
        if transport is not None:
            await transport.close()

    # -- bookkeeping -------------------------------------------------------------

    def _record_delivery(self, pid: ProcessId, m: AmcastMessage, t: float) -> None:
        self.deliveries.append((pid, m, t))
        if self._span_monitor is not None:
            self._span_monitor.on_deliver(t, pid, m)
        self.tracker.on_deliver(t, pid, m)
        self._delivery_event.set()

    def _record_multicast(self, pid: ProcessId, m: AmcastMessage, t: float) -> None:
        self.multicasts[m.mid] = (pid, t, m)
        if self._span_monitor is not None:
            self._span_monitor.on_multicast(t, pid, m)

    def collect_stats(self) -> None:
        """Fold end-of-run process/codec/transport state into the registry.

        Called by :meth:`stop`; callable earlier for a mid-run snapshot.
        """
        if self.telemetry is None:
            return
        from ..obs import collect_process_stats
        from .codec import CODEC_STATS

        collect_process_stats(self.telemetry, self.processes)
        reg = self.telemetry.registry
        for name, n in CODEC_STATS.fallbacks_since(self._codec_base).items():
            reg.gauge("codec_fallback_frames_total", type=name).set(n)
        base = self._codec_base
        reg.gauge("codec_corrupt_frames_total").set(
            CODEC_STATS.corrupt_frames - base["corrupt_frames"]
        )
        reg.gauge("codec_oversized_frames_total").set(
            CODEC_STATS.oversized_frames - base["oversized_frames"]
        )

    # -- client API -----------------------------------------------------------------

    def multicast(self, dests, payload: Any = None, session: int = 0) -> SubmitHandle:
        """Submit a fresh message through one session; returns its handle."""
        return self.sessions[session].submit(dests, payload)

    # -- dynamic reconfiguration ------------------------------------------------------

    async def add_member(self, gid: int, pid: Optional[ProcessId] = None) -> ProcessId:
        """Boot a joining member (transport + dormant process) for group
        ``gid``; returns its pid.  The process waits for its state-transfer
        snapshots — submit the matching ``JoinCmd`` via
        :meth:`submit_reconfig` to actually admit it.
        """
        if not self.attach_reconfig:
            raise RuntimeError("add_member requires attach_reconfig=True")
        from ..reconfig import JoiningMember

        if pid is None:
            # Above every live transport AND every configured process id —
            # configured-but-unused client ids are still reserved.
            pid = max(max(self.addresses), max(self.config.all_processes)) + 1
        transport = NodeTransport(
            pid, self.addresses.__getitem__, self._make_dispatch(pid)
        )
        await transport.start()
        self.transports[pid] = transport
        self.addresses[pid] = (transport.host, transport.port)
        runtime = NetRuntime(
            pid, transport, self._record_delivery, seed=self.seed + pid
        )
        proc = JoiningMember(
            pid,
            self.config,
            runtime,
            gid,
            self.protocol_cls,
            options=self.options,
            request_interval=0.1,
        )
        self.processes[pid] = proc
        self.tracker.note_member(pid, gid)
        proc.on_start()
        return pid

    def submit_reconfig(self, cmd: Any, session: int = 0) -> SubmitHandle:
        """Submit a config command to every group through one session."""
        if not self.attach_reconfig:
            raise RuntimeError("submit_reconfig requires attach_reconfig=True")
        return self.sessions[session].submit(frozenset(self.config.group_ids), cmd)

    async def wait_installed(self, pid: ProcessId, timeout: float = 10.0) -> bool:
        """Await a joiner's full state-transfer installation."""
        deadline = asyncio.get_event_loop().time() + timeout
        proc = self.processes[pid]
        while not getattr(proc, "installed", False):
            if asyncio.get_event_loop().time() >= deadline:
                return False
            await asyncio.sleep(0.01)
        return True

    # -- waiting --------------------------------------------------------------------

    def partially_delivered(self, mid: MessageId) -> bool:
        return mid in self.tracker.partial_time

    async def wait_partial(self, mid: MessageId, timeout: float = 5.0) -> bool:
        deadline = asyncio.get_event_loop().time() + timeout
        while not self.partially_delivered(mid):
            remaining = deadline - asyncio.get_event_loop().time()
            if remaining <= 0:
                return False
            self._delivery_event.clear()
            try:
                await asyncio.wait_for(self._delivery_event.wait(), remaining)
            except asyncio.TimeoutError:
                return False
        return True

    async def wait_quiescent(self, expected_deliveries: int, timeout: float = 5.0) -> bool:
        deadline = asyncio.get_event_loop().time() + timeout
        while len(self.deliveries) < expected_deliveries:
            remaining = deadline - asyncio.get_event_loop().time()
            if remaining <= 0:
                return False
            self._delivery_event.clear()
            try:
                await asyncio.wait_for(self._delivery_event.wait(), remaining)
            except asyncio.TimeoutError:
                return False
        return True

    # -- verification ------------------------------------------------------------------

    def history(self) -> History:
        deliveries: Dict[ProcessId, List[Tuple[float, AmcastMessage]]] = {}
        for pid, m, t in self.deliveries:
            deliveries.setdefault(pid, []).append((t, m))
        return History(
            config=self.config,
            multicasts=dict(self.multicasts),
            deliveries=deliveries,
            crashed=set(self.killed),
        )
