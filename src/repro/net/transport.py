"""Per-node TCP transport with lazy outgoing connections.

One :class:`NodeTransport` per process: a listening server for incoming
frames and, per destination, an outbound queue drained by a writer task
over a single TCP connection (per-pair FIFO therefore holds).  Connection
attempts retry with backoff until the transport is closed, giving the
reliable-channel abstraction of the paper's model on a live cluster.

Two throughput levers live here:

* **Writer coalescing** — the writer task drains everything queued for a
  peer into one joined buffer and issues a single ``write()`` + one
  ``drain()`` await per flush instead of one per frame.  Under load this
  collapses hundreds of event-loop round-trips (and syscalls) into one;
  when traffic is sparse each frame still flushes immediately, so latency
  is unaffected.  Frames flushed together stay in queue order and a flush
  that fails mid-``drain()`` is resent wholesale after reconnect (frames
  are kept until the drain succeeds), preserving per-pair FIFO and the
  transport's at-least-once contract.

* **Bounded send queues** — an optional soft bound on per-peer queue
  depth.  Crossing it never drops frames (reliable channels stay
  reliable); it flips a per-peer ``congested`` flag and notifies
  ``on_congestion`` so the layer above (the client session window) can
  stop launching new work until the queue drains below half the bound.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..obs.registry import SIZE_BUCKETS
from ..types import ProcessId
from .codec import decode_buffer, encode_frame, read_frame

logger = logging.getLogger(__name__)

Address = Tuple[str, int]


@dataclass(frozen=True)
class TransportOptions:
    """Wire-path tunables of one :class:`NodeTransport`.

    codec
        ``"binary"`` (default) or ``"pickle"`` — passed to
        :func:`repro.net.codec.encode_frame` for every outgoing frame.
        Decoding is codec-agnostic, so mixed clusters interoperate.
    coalesce
        Drain the whole outbound queue into a single write per flush.
    max_coalesce_bytes
        Stop draining once a flush buffer reaches this size; the rest
        goes out on the next flush (bounds single-write latency).
    max_queue
        Soft per-peer queue bound that drives congestion signalling;
        ``None`` disables backpressure accounting entirely.
    connect_retry
        Seconds between reconnection attempts to an unreachable peer.
    """

    codec: str = "binary"
    coalesce: bool = True
    max_coalesce_bytes: int = 1 << 20
    max_queue: Optional[int] = None
    connect_retry: float = 0.05


class NodeTransport:
    """Sends and receives framed messages for one process."""

    def __init__(
        self,
        pid: ProcessId,
        addr_of: Callable[[ProcessId], Address],
        on_message: Callable[[ProcessId, Any], None],
        host: str = "127.0.0.1",
        connect_retry: Optional[float] = None,
        options: Optional[TransportOptions] = None,
        on_congestion: Optional[Callable[[bool], None]] = None,
        registry: Optional[Any] = None,
    ) -> None:
        self.pid = pid
        self.addr_of = addr_of
        self.on_message = on_message
        self.host = host
        self.options = options or TransportOptions()
        #: Optional repro.obs.MetricsRegistry; ``None`` keeps every wire
        #: path free of instrumentation beyond the ``is None`` checks.
        self._registry = registry
        self._depth_gauges: Dict[ProcessId, Any] = {}
        # Legacy keyword wins over the options bundle when given explicitly.
        self.connect_retry = (
            connect_retry if connect_retry is not None else self.options.connect_retry
        )
        self.on_congestion = on_congestion
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._queues: Dict[ProcessId, asyncio.Queue] = {}
        self._writer_tasks: Dict[ProcessId, asyncio.Task] = {}
        self._reader_tasks: set = set()
        self._congested: Set[ProcessId] = set()
        #: Times any peer queue crossed the ``max_queue`` bound (stats).
        self.backpressure_events = 0
        #: Connections dropped over corrupt/oversized frames, with the
        #: offending peer's socket identity — net tests assert on these.
        self.frame_drops: list = []
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self, port: int = 0) -> int:
        """Start listening; returns the (possibly ephemeral) bound port."""
        self._server = await asyncio.start_server(self._serve, self.host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        tasks = list(self._writer_tasks.values()) + list(self._reader_tasks)
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._writer_tasks.clear()
        self._reader_tasks.clear()

    # -- sending ---------------------------------------------------------------

    def send(self, to: ProcessId, msg: Any) -> None:
        """Queue ``msg`` for delivery to ``to`` (drops silently if closed)."""
        if self._closed:
            return
        if to == self.pid:
            # Local loopback: schedule as a fresh event-loop callback so the
            # handler never re-enters itself (mirrors the simulator's
            # zero-delay self-channel).
            asyncio.get_running_loop().call_soon(self._dispatch, self.pid, msg)
            return
        queue = self._queues.get(to)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[to] = queue
            self._writer_tasks[to] = asyncio.ensure_future(self._writer(to, queue))
        queue.put_nowait(encode_frame(self.pid, msg, self.options.codec))
        reg = self._registry
        if reg is not None:
            gauge = self._depth_gauges.get(to)
            if gauge is None:
                gauge = self._depth_gauges[to] = reg.gauge(
                    "transport_queue_depth", pid=self.pid, peer=to
                )
            gauge.set(queue.qsize())
        bound = self.options.max_queue
        if bound is not None and queue.qsize() > bound and to not in self._congested:
            self.backpressure_events += 1
            if reg is not None:
                reg.counter(
                    "transport_backpressure_total", pid=self.pid, peer=to
                ).inc()
            was_clear = not self._congested
            self._congested.add(to)
            if was_clear and self.on_congestion is not None:
                self.on_congestion(True)

    @property
    def congested(self) -> bool:
        """True while any peer queue sits above the ``max_queue`` bound."""
        return bool(self._congested)

    def _relieve(self, to: ProcessId, queue: asyncio.Queue) -> None:
        bound = self.options.max_queue
        if bound is None or to not in self._congested:
            return
        if queue.qsize() <= bound // 2:
            self._congested.discard(to)
            if not self._congested and self.on_congestion is not None:
                self.on_congestion(False)

    async def _writer(self, to: ProcessId, queue: asyncio.Queue) -> None:
        opts = self.options
        writer: Optional[asyncio.StreamWriter] = None
        # Frames taken from the queue but not yet drained to the socket.
        # Kept until drain() succeeds so a connection failure anywhere in
        # the flush resends exactly these frames, in order, after
        # reconnect: at-least-once, never reordered, never dropped.
        pending: list = []
        try:
            while not self._closed:
                if not pending:
                    pending.append(await queue.get())
                    if opts.coalesce:
                        budget = opts.max_coalesce_bytes - len(pending[0])
                        while budget > 0:
                            try:
                                frame = queue.get_nowait()
                            except asyncio.QueueEmpty:
                                break
                            pending.append(frame)
                            budget -= len(frame)
                    self._relieve(to, queue)
                if writer is None:
                    writer = await self._connect(to)
                    if writer is None:
                        return  # transport closed while connecting
                try:
                    reg = self._registry
                    if reg is not None:
                        reg.histogram(
                            "transport_coalesce_frames",
                            buckets=SIZE_BUCKETS,
                            pid=self.pid,
                        ).observe(len(pending))
                        reg.histogram(
                            "transport_coalesce_bytes",
                            buckets=SIZE_BUCKETS,
                            pid=self.pid,
                        ).observe(sum(len(f) for f in pending))
                    writer.write(b"".join(pending) if len(pending) > 1 else pending[0])
                    await writer.drain()
                    pending.clear()
                except (ConnectionError, OSError):
                    writer = None  # reconnect and resend the same frames
        except asyncio.CancelledError:
            pass
        finally:
            if writer is not None:
                writer.close()

    async def _connect(self, to: ProcessId) -> Optional[asyncio.StreamWriter]:
        while not self._closed:
            host, port = self.addr_of(to)
            try:
                _, writer = await asyncio.open_connection(host, port)
                return writer
            except (ConnectionError, OSError):
                await asyncio.sleep(self.connect_retry)
        return None

    # -- receiving ------------------------------------------------------------------

    async def _serve(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
        try:
            if self.options.coalesce:
                # Coalesced receive: one await per TCP segment, every
                # complete frame in it decoded in one synchronous scan —
                # the receive half of the writer's flush coalescing.
                buf = bytearray()
                while not self._closed:
                    data = await reader.read(1 << 18)
                    if not data:
                        break  # clean EOF
                    buf += data
                    consumed = decode_buffer(buf, self._dispatch)
                    if consumed:
                        del buf[:consumed]
            else:
                # Pre-overhaul wire loop: two awaits per frame (header,
                # body) through the stream reader.
                while not self._closed:
                    sender, msg = await read_frame(reader)
                    self._dispatch(sender, msg)
        except (asyncio.IncompleteReadError, ConnectionError, OSError, asyncio.CancelledError):
            pass
        except ValueError as exc:
            # Oversized or corrupt frame: the stream offset is unknown from
            # here on, so drop the whole connection deliberately.  The
            # peer's writer reconnects and resends its pending frames.
            peer = writer.get_extra_info("peername")
            self.frame_drops.append({"peer": peer, "error": str(exc)})
            if self._registry is not None:
                self._registry.counter(
                    "transport_frame_drops_total",
                    pid=self.pid,
                    peer=str(peer),
                ).inc()
            logger.warning(
                "dropping connection from %s at node %s: %s", peer, self.pid, exc
            )
        finally:
            if task is not None:
                self._reader_tasks.discard(task)
            writer.close()

    def _dispatch(self, sender: ProcessId, msg: Any) -> None:
        if self._closed:
            return
        try:
            self.on_message(sender, msg)
        except Exception:  # pragma: no cover - surfaced in logs, not crashes
            logger.exception("handler failed for message from %s at %s", sender, self.pid)
