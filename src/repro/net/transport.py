"""Per-node TCP transport with lazy outgoing connections.

One :class:`NodeTransport` per process: a listening server for incoming
frames and, per destination, an outbound queue drained by a writer task
over a single TCP connection (per-pair FIFO therefore holds).  Connection
attempts retry with backoff until the transport is closed, giving the
reliable-channel abstraction of the paper's model on a live cluster.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Callable, Dict, Optional, Tuple

from ..types import ProcessId
from .codec import encode_frame, read_frame

logger = logging.getLogger(__name__)

Address = Tuple[str, int]


class NodeTransport:
    """Sends and receives framed messages for one process."""

    def __init__(
        self,
        pid: ProcessId,
        addr_of: Callable[[ProcessId], Address],
        on_message: Callable[[ProcessId, Any], None],
        host: str = "127.0.0.1",
        connect_retry: float = 0.05,
    ) -> None:
        self.pid = pid
        self.addr_of = addr_of
        self.on_message = on_message
        self.host = host
        self.connect_retry = connect_retry
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._queues: Dict[ProcessId, asyncio.Queue] = {}
        self._writer_tasks: Dict[ProcessId, asyncio.Task] = {}
        self._reader_tasks: set = set()
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self, port: int = 0) -> int:
        """Start listening; returns the (possibly ephemeral) bound port."""
        self._server = await asyncio.start_server(self._serve, self.host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._writer_tasks.values()) + list(self._reader_tasks):
            task.cancel()
        for task in list(self._writer_tasks.values()):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._writer_tasks.clear()

    # -- sending ---------------------------------------------------------------

    def send(self, to: ProcessId, msg: Any) -> None:
        """Queue ``msg`` for delivery to ``to`` (drops silently if closed)."""
        if self._closed:
            return
        if to == self.pid:
            # Local loopback: schedule as a fresh event-loop callback so the
            # handler never re-enters itself (mirrors the simulator's
            # zero-delay self-channel).
            asyncio.get_running_loop().call_soon(self._dispatch, self.pid, msg)
            return
        queue = self._queues.get(to)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[to] = queue
            self._writer_tasks[to] = asyncio.ensure_future(self._writer(to, queue))
        queue.put_nowait(encode_frame(self.pid, msg))

    async def _writer(self, to: ProcessId, queue: asyncio.Queue) -> None:
        writer: Optional[asyncio.StreamWriter] = None
        pending: Optional[bytes] = None
        try:
            while not self._closed:
                if pending is None:
                    pending = await queue.get()
                if writer is None:
                    writer = await self._connect(to)
                    if writer is None:
                        return  # transport closed while connecting
                try:
                    writer.write(pending)
                    await writer.drain()
                    pending = None
                except (ConnectionError, OSError):
                    writer = None  # reconnect and resend the same frame
        except asyncio.CancelledError:
            pass
        finally:
            if writer is not None:
                writer.close()

    async def _connect(self, to: ProcessId) -> Optional[asyncio.StreamWriter]:
        while not self._closed:
            host, port = self.addr_of(to)
            try:
                _, writer = await asyncio.open_connection(host, port)
                return writer
            except (ConnectionError, OSError):
                await asyncio.sleep(self.connect_retry)
        return None

    # -- receiving ------------------------------------------------------------------

    async def _serve(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
        try:
            while not self._closed:
                sender, msg = await read_frame(reader)
                self._dispatch(sender, msg)
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._reader_tasks.discard(task)
            writer.close()

    def _dispatch(self, sender: ProcessId, msg: Any) -> None:
        if self._closed:
            return
        try:
            self.on_message(sender, msg)
        except Exception:  # pragma: no cover - surfaced in logs, not crashes
            logger.exception("handler failed for message from %s at %s", sender, self.pid)
