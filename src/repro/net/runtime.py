"""The :class:`~repro.runtime.Runtime` implementation over asyncio."""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, Optional

from ..runtime import Runtime, TimerHandle
from ..types import AmcastMessage, ProcessId
from .transport import NodeTransport


class _AsyncTimer(TimerHandle):
    __slots__ = ("_handle", "_cancelled")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class NetRuntime(Runtime):
    """Binds one protocol process to the asyncio event loop."""

    def __init__(
        self,
        pid: ProcessId,
        transport: NodeTransport,
        on_deliver: Callable[[ProcessId, AmcastMessage, float], None],
        on_multicast: Optional[Callable[[ProcessId, AmcastMessage, float], None]] = None,
        seed: int = 0,
    ) -> None:
        self._pid = pid
        self._transport = transport
        self._on_deliver = on_deliver
        self._on_multicast = on_multicast
        self._rng = random.Random((seed << 20) ^ pid)
        self._loop = asyncio.get_event_loop()
        # Hot-path methods resolved once: now() and set_timer() run for
        # every frame and every retry timer, so skip the attribute walks.
        self._time = self._loop.time
        self._call_later = self._loop.call_later
        self._send = transport.send

    @property
    def pid(self) -> ProcessId:
        return self._pid

    def now(self) -> float:
        return self._time()

    def send(self, to: ProcessId, msg: Any) -> None:
        self._send(to, msg)

    def set_timer(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        return _AsyncTimer(self._call_later(delay, fn))

    def deliver(self, m: AmcastMessage) -> None:
        self._on_deliver(self._pid, m, self.now())

    def record_multicast(self, m: AmcastMessage) -> None:
        if self._on_multicast is not None:
            self._on_multicast(self._pid, m, self.now())

    @property
    def rng(self) -> random.Random:
        return self._rng
