"""Atomic broadcast as the single-group special case (§II of the paper).

"By instantiating atomic multicast with a single group comprising all
processes we get atomic broadcast."  This app does exactly that: one
group of 2f+1 replicas maintaining a totally ordered, replicated
append-only log — the classic state-machine-replication substrate —
with WbCast degenerating to the plain Paxos flow the paper describes
("when multicasting a local application message, the protocol exactly
follows the flow of Paxos").
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..config import ClusterConfig
from ..conflict import ConflictSpec
from ..protocols import WbCastProcess
from ..protocols.base import MulticastMsg
from ..sim import ConstantDelay, Simulator, Trace
from ..types import AmcastMessage, ProcessId, make_message

#: Conflict declaration of the log: every append touches the single log
#: key, so all entries conflict and ``conflict="keys"`` degenerates to
#: the total order — an append-only log has no commuting pairs to exploit.
LOG_CONFLICT = ConflictSpec("log", lambda payload: ("__log__",))


class _LogReplica:
    """One member's copy of the totally ordered log."""

    def __init__(self) -> None:
        self.entries: List[Any] = []

    def apply(self, m: AmcastMessage) -> None:
        self.entries.append(m.payload)


class ReplicatedLog:
    """A single-group (atomic broadcast) replicated log with a sync API."""

    def __init__(
        self,
        group_size: int = 3,
        protocol_cls=WbCastProcess,
        protocol_options: Any = None,
        delta: float = 0.001,
        seed: int = 0,
    ) -> None:
        self.config = ClusterConfig.build(1, group_size, num_clients=1)
        self.client_pid = self.config.clients[0]
        self.trace = Trace(record_sends=False)
        self.sim = Simulator(ConstantDelay(delta), seed=seed, trace=self.trace)
        self.replicas: Dict[ProcessId, _LogReplica] = {}
        for pid in self.config.all_members:
            self.replicas[pid] = _LogReplica()
            self.sim.add_process(
                pid,
                lambda rt, p=pid: protocol_cls(
                    p, self.config, rt, options=protocol_options
                ),
            )
        self.sim.add_process(self.client_pid, lambda rt: _Null())
        self.trace.attach(_LogApplier(self.replicas))
        self._seq = 0

    def append(self, entry: Any) -> AmcastMessage:
        """Submit an entry for total-order append."""
        self._seq += 1
        m = make_message(
            self.client_pid,
            self._seq,
            {0},
            payload=entry,
            footprint=LOG_CONFLICT.footprint(entry),
        )
        self.sim.record_multicast(self.client_pid, m)
        self.sim.schedule(
            0.0,
            lambda mm=MulticastMsg(m): self.sim.transmit(
                self.client_pid, self.config.default_leader(0), mm
            ),
        )
        return m

    def sync(self) -> None:
        self.sim.run()

    def read(self, replica_index: int = 0) -> List[Any]:
        pid = self.config.members(0)[replica_index]
        return list(self.replicas[pid].entries)

    def replicas_converged(self) -> bool:
        logs = [self.replicas[pid].entries for pid in self.config.members(0)]
        return all(log == logs[0] for log in logs)


class _LogApplier:
    def __init__(self, replicas: Dict[ProcessId, _LogReplica]) -> None:
        self._replicas = replicas

    def on_deliver(self, t: float, pid: ProcessId, m: AmcastMessage) -> None:
        replica = self._replicas.get(pid)
        if replica is not None:
            replica.apply(m)


class _Null:
    def on_message(self, sender, msg):
        pass
