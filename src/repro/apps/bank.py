"""Cross-shard bank transfers: a conservation-law demo for atomic multicast.

Accounts are hash-partitioned across groups.  A transfer between accounts
on different shards is multicast to both groups; each group applies its
side (debit or credit) at the transfer's position in the global total
order.  Because atomic multicast delivers the transfer to both shards or
(in any prefix) to neither inconsistently-ordered, the *total* balance
across one replica of each shard is conserved at every quiescent point —
the classic invariant that breaks immediately if ordering or atomicity is
violated.

Overdrafts are permitted (balances may go negative): rejecting a transfer
would require both shards to agree on the rejection, which is an
application-level protocol (e.g. escrow) out of scope here.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Dict, List

from ..config import ClusterConfig
from ..conflict import ConflictSpec
from ..protocols import WbCastProcess
from ..protocols.base import MulticastMsg
from ..sim import ConstantDelay, Simulator, Trace
from ..types import AmcastMessage, GroupId, ProcessId, make_message


@dataclass(frozen=True, slots=True)
class Transfer:
    src: str
    dst: str
    amount: int


def _transfer_keys(payload: Any):
    if isinstance(payload, Transfer):
        return (payload.src, payload.dst)
    keys = getattr(payload, "keys", None)  # serving fallback balance reads
    if keys is not None and not callable(keys):
        return list(keys)
    return None


#: Conflict declaration of the bank: transfers conflict iff they share an
#: account.  Transfers over disjoint account pairs commute — balances are
#: independent — so ``conflict="keys"`` may deliver them at stability.
BANK_CONFLICT = ConflictSpec("bank", _transfer_keys)


def shard_of(account: str, num_groups: int) -> GroupId:
    return zlib.crc32(account.encode()) % num_groups


class _Ledger:
    """One member's replica of its shard's accounts."""

    def __init__(self, gid: GroupId, num_groups: int, opening: Dict[str, int]) -> None:
        self.gid = gid
        self.num_groups = num_groups
        self.balances: Dict[str, int] = {
            acct: bal
            for acct, bal in opening.items()
            if shard_of(acct, num_groups) == gid
        }
        self.applied: List = []

    def apply(self, m: AmcastMessage) -> None:
        transfer = m.payload
        if not isinstance(transfer, Transfer):
            return
        self.applied.append(m.mid)
        if shard_of(transfer.src, self.num_groups) == self.gid:
            self.balances[transfer.src] = (
                self.balances.get(transfer.src, 0) - transfer.amount
            )
        if shard_of(transfer.dst, self.num_groups) == self.gid:
            self.balances[transfer.dst] = (
                self.balances.get(transfer.dst, 0) + transfer.amount
            )


class BankCluster:
    """A simulated sharded bank with synchronous verification helpers."""

    def __init__(
        self,
        opening_balances: Dict[str, int],
        num_groups: int = 3,
        group_size: int = 3,
        protocol_cls=WbCastProcess,
        protocol_options: Any = None,
        delta: float = 0.001,
        seed: int = 0,
    ) -> None:
        # Lazy import: repro.serving imports this module for Transfer /
        # shard_of, so the dependency must not be circular at load time.
        from ..serving.replica import attach_bank_replicas

        self.opening = dict(opening_balances)
        self.config = ClusterConfig.build(num_groups, group_size, num_clients=1)
        self.client_pid = self.config.clients[0]
        self.trace = Trace(record_sends=False)
        self.sim = Simulator(ConstantDelay(delta), seed=seed, trace=self.trace)
        self.ledgers: Dict[ProcessId, _Ledger] = {}
        self.processes: Dict[ProcessId, Any] = {}
        for pid in self.config.all_members:
            gid = self.config.group_of(pid)
            self.ledgers[pid] = _Ledger(gid, num_groups, self.opening)
            self.processes[pid] = self.sim.add_process(
                pid,
                lambda rt, p=pid: protocol_cls(
                    p, self.config, rt, options=protocol_options
                ),
            )
        #: Serving replicas: every member answers read-only ``balance()``
        #: queries through the serving layer's READ path.
        self.replicas = attach_bank_replicas(self.processes, num_groups, self.opening)
        self.probe = _Probe()
        self.sim.add_process(self.client_pid, lambda rt: self.probe)
        self.trace.attach(_LedgerApplier(self.ledgers))
        self._seq = 0
        self._rid = 0

    def transfer(self, src: str, dst: str, amount: int) -> AmcastMessage:
        t = Transfer(src, dst, amount)
        dests = frozenset(
            {shard_of(src, self.config.num_groups), shard_of(dst, self.config.num_groups)}
        )
        self._seq += 1
        m = make_message(
            self.client_pid,
            self._seq,
            dests,
            payload=t,
            footprint=BANK_CONFLICT.footprint(t),
        )
        self.sim.record_multicast(self.client_pid, m)
        msg = MulticastMsg(m)
        for gid in sorted(dests):
            self.sim.schedule(
                0.0,
                lambda g=gid, mm=msg: self.sim.transmit(
                    self.client_pid, self.config.default_leader(g), mm
                ),
            )
        return m

    def settle(self) -> None:
        self.sim.run()

    # -- read path ------------------------------------------------------------

    def balance(self, account: str, replica_index: int = 0) -> int:
        """Read-only balance query, routed through the serving READ path.

        The chosen replica answers from its :class:`BankServingStore` —
        the same local read-at-watermark machinery the KV front end uses
        (an unfenced probe: ``min_index`` 0, so it is always fresh).
        """
        from ..serving.messages import ReadMsg

        gid = shard_of(account, self.config.num_groups)
        pid = self.config.members(gid)[replica_index]
        self._rid += 1
        rid = self._rid
        msg = ReadMsg(rid, gid, (account,), 0, ())
        self.sim.schedule(
            0.0, lambda: self.sim.transmit(self.client_pid, pid, msg)
        )
        self.sim.run()
        reply = self.probe.replies.pop(rid)
        return reply.items[0][1]

    def ledger_balance(self, account: str, replica_index: int = 0) -> int:
        """Direct in-memory ledger read (bypasses the serving path)."""
        gid = shard_of(account, self.config.num_groups)
        pid = self.config.members(gid)[replica_index]
        return self.ledgers[pid].balances.get(account, 0)

    # -- verification ---------------------------------------------------------

    def total_balance(self) -> int:
        """Sum over one replica of every shard."""
        total = 0
        for gid in self.config.group_ids:
            pid = self.config.members(gid)[0]
            total += sum(self.ledgers[pid].balances.values())
        return total

    def conserved(self) -> bool:
        return self.total_balance() == sum(self.opening.values())

    def replicas_converged(self) -> bool:
        for gid in self.config.group_ids:
            members = self.config.members(gid)
            reference = self.ledgers[members[0]]
            for pid in members[1:]:
                other = self.ledgers[pid]
                if (
                    other.balances != reference.balances
                    or other.applied != reference.applied
                ):
                    return False
        return True


class _LedgerApplier:
    def __init__(self, ledgers: Dict[ProcessId, _Ledger]) -> None:
        self._ledgers = ledgers

    def on_deliver(self, t: float, pid: ProcessId, m: AmcastMessage) -> None:
        ledger = self._ledgers.get(pid)
        if ledger is not None:
            ledger.apply(m)


class _Probe:
    """A client process that captures serving READ_REPLY frames by rid."""

    def __init__(self) -> None:
        self.replies: Dict[int, Any] = {}

    def on_message(self, sender, msg):
        rid = getattr(msg, "rid", None)
        if rid is not None:
            self.replies[rid] = msg
