"""A partitioned, replicated key-value store on atomic multicast.

Keys are hash-partitioned across the cluster's groups; each group member
maintains a full replica of its partition.  Commands are multicast to the
partitions they touch: a single-key put goes to one group, a multi-put
spanning partitions goes to all of them *atomically* — every involved
group applies it at the same point of the global total order, which is
exactly the consistency argument of Section I of the paper.

The store is deliberately simple (last-writer-wins by delivery order); the
interesting property is that replicas of a partition converge and that
cross-partition commands are never interleaved inconsistently.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..config import ClusterConfig
from ..conflict import ConflictSpec
from ..protocols import WbCastProcess
from ..protocols.base import MulticastMsg
from ..sim import ConstantDelay, Simulator, Trace
from ..types import AmcastMessage, GroupId, MessageId, ProcessId, make_message


@dataclass(frozen=True, slots=True)
class KvCommand:
    """A store command carried as a multicast payload.

    ``op`` is ``"put"`` or ``"delete"``; ``items`` holds (key, value)
    pairs (values ignored for deletes).
    """

    op: str
    items: Tuple[Tuple[str, Any], ...]


def _kv_keys(payload: Any):
    """Keys a KV payload touches (``None``: unknown — fences)."""
    if isinstance(payload, KvCommand):
        return [key for key, _ in payload.items]
    # Fallback reads (serving KvReadCommand) read their requested keys.
    keys = getattr(payload, "keys", None)
    if keys is not None and not callable(keys):
        return list(keys)
    return None


#: Conflict declaration of the KV store: commands conflict iff they touch
#: a common key.  Disjoint-key puts commute — the dominant case under
#: uniform or Zipf-tail traffic — which is what ``conflict="keys"``
#: delivery exploits.
KV_CONFLICT = ConflictSpec("kv", _kv_keys)


def partition_of(key: str, num_groups: int) -> GroupId:
    """Stable hash partitioning (crc32; Python's hash() is randomised)."""
    return zlib.crc32(key.encode()) % num_groups


class ReplicaStore:
    """One member's replica of its group's partition."""

    def __init__(self, gid: GroupId, num_groups: int) -> None:
        self.gid = gid
        self.num_groups = num_groups
        self.data: Dict[str, Any] = {}
        self.applied: List[MessageId] = []  # order of applied commands
        #: Applied delivery index: counts *every* delivery this replica saw
        #: (non-KV payloads included), matching the coordinate the serving
        #: layer's watermark tokens and read replies are expressed in.
        self.index = 0
        #: Per-key version stamp: the delivery index of the last write that
        #: touched the key (0: never written) — what makes read replies
        #: checkable against the group's delivery order.
        self.versions: Dict[str, int] = {}

    def apply(self, m: AmcastMessage) -> None:
        self.index += 1
        cmd = m.payload
        if not isinstance(cmd, KvCommand):
            return
        self.applied.append(m.mid)
        for key, value in cmd.items:
            if partition_of(key, self.num_groups) != self.gid:
                continue  # another partition's share of the command
            if cmd.op == "put":
                self.data[key] = value
                self.versions[key] = self.index
            elif cmd.op == "delete":
                self.data.pop(key, None)
                self.versions[key] = self.index


class KvStoreCluster:
    """A simulated store cluster with a synchronous client API.

    Writes are submitted asynchronously; ``sync()`` drains the simulation
    so every in-flight command lands; reads are served from a replica of
    the key's partition.
    """

    def __init__(
        self,
        num_groups: int = 3,
        group_size: int = 3,
        protocol_cls=WbCastProcess,
        protocol_options: Any = None,
        delta: float = 0.001,
        seed: int = 0,
    ) -> None:
        self.config = ClusterConfig.build(num_groups, group_size, num_clients=1)
        self.client_pid = self.config.clients[0]
        self.trace = Trace(record_sends=False)
        self.sim = Simulator(ConstantDelay(delta), seed=seed, trace=self.trace)
        self.stores: Dict[ProcessId, ReplicaStore] = {}
        self.processes: Dict[ProcessId, Any] = {}
        for pid in self.config.all_members:
            gid = self.config.group_of(pid)
            self.stores[pid] = ReplicaStore(gid, num_groups)
            self.processes[pid] = self.sim.add_process(
                pid,
                lambda rt, p=pid: protocol_cls(
                    p, self.config, rt, options=protocol_options
                ),
            )
        self.sim.add_process(self.client_pid, lambda rt: _NullClient())
        self.trace.attach(_StoreApplier(self.stores))
        self._seq = 0

    # -- write path ---------------------------------------------------------

    def put(self, key: str, value: Any) -> AmcastMessage:
        return self._submit(KvCommand("put", ((key, value),)))

    def delete(self, key: str) -> AmcastMessage:
        return self._submit(KvCommand("delete", ((key, None),)))

    def multi_put(self, mapping: Dict[str, Any]) -> AmcastMessage:
        """Atomically write keys that may span several partitions."""
        items = tuple(sorted(mapping.items()))
        return self._submit(KvCommand("put", items))

    def _submit(self, cmd: KvCommand) -> AmcastMessage:
        dests = frozenset(
            partition_of(key, self.config.num_groups) for key, _ in cmd.items
        )
        self._seq += 1
        m = make_message(
            self.client_pid,
            self._seq,
            dests,
            payload=cmd,
            footprint=KV_CONFLICT.footprint(cmd),
        )
        self.sim.record_multicast(self.client_pid, m)
        msg = MulticastMsg(m)
        for gid in sorted(dests):
            self.sim.schedule(
                0.0,
                lambda g=gid, mm=msg: self.sim.transmit(
                    self.client_pid, self.config.default_leader(g), mm
                ),
            )
        return m

    # -- read path --------------------------------------------------------------

    def sync(self) -> None:
        """Drain the simulation: all submitted commands are applied after."""
        self.sim.run()

    def get(self, key: str, replica_index: int = 0) -> Any:
        gid = partition_of(key, self.config.num_groups)
        pid = self.config.members(gid)[replica_index]
        return self.stores[pid].data.get(key)

    def get_versioned(self, key: str, replica_index: int = 0) -> Tuple[Any, int]:
        """``(value, version stamp)`` — version 0 means never written."""
        gid = partition_of(key, self.config.num_groups)
        pid = self.config.members(gid)[replica_index]
        store = self.stores[pid]
        return store.data.get(key), store.versions.get(key, 0)

    # -- verification ----------------------------------------------------------------

    def replicas_converged(self) -> bool:
        """Every member of each group holds the same data, version stamps
        and applied command sequence."""
        for gid in self.config.group_ids:
            members = self.config.members(gid)
            reference = self.stores[members[0]]
            for pid in members[1:]:
                other = self.stores[pid]
                if (
                    other.data != reference.data
                    or other.applied != reference.applied
                    or other.versions != reference.versions
                ):
                    return False
        return True


class _StoreApplier:
    """Trace monitor applying delivered commands to the replica stores."""

    def __init__(self, stores: Dict[ProcessId, ReplicaStore]) -> None:
        self._stores = stores

    def on_deliver(self, t: float, pid: ProcessId, m: AmcastMessage) -> None:
        store = self._stores.get(pid)
        if store is not None:
            store.apply(m)


class _NullClient:
    def on_message(self, sender, msg):
        pass
