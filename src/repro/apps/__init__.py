"""Example applications built on the atomic multicast API.

These are the paper's motivating use case (Section I): a service
partitioned across process groups, each group replicated for fault
tolerance, kept consistent by delivering commands through atomic
multicast — single-partition commands to one group, cross-partition
transactions to several, all in one total order.

* :mod:`repro.apps.kvstore` — a partitioned, replicated key-value store
  with atomic cross-partition multi-puts;
* :mod:`repro.apps.bank` — cross-shard transfers whose invariant (money
  is conserved) only holds if the multicast really is atomic and ordered.
"""

from .kvstore import KvCommand, KvStoreCluster, ReplicaStore
from .bank import BankCluster, Transfer
from .replicated_log import ReplicatedLog

__all__ = [
    "BankCluster",
    "ReplicatedLog",
    "KvCommand",
    "KvStoreCluster",
    "ReplicaStore",
    "Transfer",
]
