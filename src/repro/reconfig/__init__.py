"""Dynamic reconfiguration: epoch-based membership and topology changes.

The white-box insight, applied to reconfiguration itself: a configuration
change is an ordinary atomic multicast addressed to every group whose
payload is a :mod:`~repro.reconfig.commands` command.  The delivery total
order *is* the epoch boundary — every member of every group activates the
successor :class:`~repro.config.ClusterConfig` at the same position of
the delivery sequence, with no auxiliary consensus.

Subsystem map:

* :mod:`.commands` — the command payloads and the deterministic
  config-transition function;
* :mod:`.manager` — the per-member :class:`ReconfigManager`: epoch
  activation at the delivery point, joiner state transfer, stale-epoch
  fencing;
* :mod:`.member` — :class:`JoiningMember`, the process that bootstraps
  itself from ``JOIN_STATE`` snapshots (NEWLEADER/NEW_STATE, extended);
* :mod:`.messages` — the (few) wire messages: state transfer and fences;
* :mod:`.checking` — epoch-aware restatements of the four properties plus
  joiner-coverage assertions;
* :mod:`.harness` — ``run_elastic_workload``: scripted join / leave /
  reweight / reshard under closed-loop load in the simulator (imported
  explicitly; it pulls in the workload stack).
"""

from .commands import (
    ConfigCommand,
    JoinCmd,
    LeaveCmd,
    SetLaneWeightsCmd,
    SetPlacementCmd,
    SetShardsCmd,
    apply_command,
    is_config_command,
)
from .manager import EpochActivation, ReconfigManager
from .member import JoiningMember
from .messages import (
    EpochFenceMsg,
    JoinInstalledMsg,
    JoinRequestMsg,
    JoinStateMsg,
)

__all__ = [
    "ConfigCommand",
    "JoinCmd",
    "LeaveCmd",
    "SetLaneWeightsCmd",
    "SetPlacementCmd",
    "SetShardsCmd",
    "apply_command",
    "is_config_command",
    "EpochActivation",
    "ReconfigManager",
    "JoiningMember",
    "EpochFenceMsg",
    "JoinInstalledMsg",
    "JoinRequestMsg",
    "JoinStateMsg",
]
