"""Epoch-aware verification of reconfigured runs.

The black-box checkers of :mod:`repro.checking` assume one immutable
membership.  A reconfigured run has several: a joiner legitimately starts
delivering mid-history, a leaver legitimately stops, and the genuineness
participant sets grow with the group.  This module re-states the four
properties against the *epoch chain*:

* **Validity** — a delivery is valid if the deliverer was a member of a
  destination group in *some* epoch of the run (membership is monotone
  per process here: a pid joins one group and never migrates).
* **Integrity / Ordering** — unchanged: at-most-once and a global total
  order are epoch-independent statements, and they are exactly where a
  botched epoch boundary (two members flipping at different delivery
  indices) shows up, as a cross-member order inversion.
* **Termination** — the liveness obligation is scoped to *core* members:
  processes that were members in both the first and last epoch.  Joiners
  owe nothing before their state transfer; leavers owe nothing after
  retiring (their delivery obligation ends at the leave, like a crash's).
  Joiner coverage is asserted separately from the managers' activation
  indices (see :func:`check_joiner_coverage`), which is *stronger* than a
  termination clause: it pins the exact suffix the joiner owes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..checking.genuineness import GenuinenessMonitor
from ..checking.history import History
from ..checking.properties import (
    CheckResult,
    check_integrity,
    check_ordering,
    check_termination,
)
from ..config import ClusterConfig
from ..types import GroupId, MessageId, ProcessId
from .commands import apply_command, is_config_command
from .manager import ReconfigManager


def epoch_chain(initial: ClusterConfig, manager: ReconfigManager) -> List[ClusterConfig]:
    """The run's configuration sequence, reconstructed from one member's
    activation log (all members observe the same command sequence)."""
    chain = [initial]
    for act in manager.activations:
        chain.append(apply_command(chain[-1], act.command))
    return chain


def reference_manager(
    managers: Dict[ProcessId, ReconfigManager],
    joiners: Iterable[ProcessId] = (),
) -> ReconfigManager:
    """The manager with the most complete activation log.

    A leaver's log truncates at its own leave and a joiner's starts at
    its snapshot seed, so 'lowest pid' is not a safe choice — picking the
    longest log (ties to the lowest pid) always yields the full chain:
    at least one member survives every epoch.
    """
    skip = set(joiners)
    pid, manager = max(
        ((p, m) for p, m in managers.items() if p not in skip),
        key=lambda item: (len(item[1].activations), -item[0]),
    )
    return manager


def union_membership(epochs: Iterable[ClusterConfig]) -> Dict[ProcessId, GroupId]:
    """pid → gid over every epoch (pids never migrate between groups)."""
    out: Dict[ProcessId, GroupId] = {}
    for config in epochs:
        for gid in config.group_ids:
            for pid in config.members(gid):
                out.setdefault(pid, gid)
    return out


def core_members(epochs: Sequence[ClusterConfig]) -> Set[ProcessId]:
    """Members of both the first and the last epoch (no joiners/leavers)."""
    return set(epochs[0].all_members) & set(epochs[-1].all_members)


def check_elastic_validity(
    history: History, epochs: Sequence[ClusterConfig]
) -> CheckResult:
    membership = union_membership(epochs)
    violations: List[str] = []
    for pid, recs in history.deliveries.items():
        gid = membership.get(pid)
        if gid is None:
            violations.append(f"never-member {pid} delivered a message")
            continue
        for _, m in recs:
            if m.mid not in history.multicasts:
                violations.append(f"{pid} delivered never-multicast {m.mid}")
            elif gid not in m.dests:
                violations.append(
                    f"{pid} in group {gid} delivered {m.mid} not addressed to it"
                )
    return CheckResult("validity[elastic]", not violations, violations)


def check_elastic(
    history: History,
    epochs: Sequence[ClusterConfig],
    quiescent: bool = True,
) -> List[CheckResult]:
    """The four properties, restated against the epoch chain."""
    results = [
        check_elastic_validity(history, epochs),
        check_integrity(history),
        check_ordering(history),
    ]
    if quiescent:
        core = core_members(epochs)
        scoped = History(
            config=epochs[0],
            multicasts=history.multicasts,
            deliveries={
                pid: recs
                for pid, recs in history.deliveries.items()
                if pid in core
            },
            crashed=set(history.crashed) | (set(epochs[0].all_members) - core),
        )
        term = check_termination(scoped)
        results.append(
            CheckResult("termination[core]", term.ok, term.violations)
        )
    return results


def check_joiner_coverage(
    joiner_manager: ReconfigManager,
    mate_manager: ReconfigManager,
    join_epoch: int,
) -> List[str]:
    """The joiner's delivery obligation, pinned by activation indices.

    Everything a core group-mate delivered *after* the join activated must
    be visible at the joiner — either delivered by it post-install or
    seeded by its state transfer — and everything before must be readable
    via the transferred application log.
    """
    violations: List[str] = []
    joiner_seen = set(joiner_manager.delivered_mids())
    owed = [
        mid
        for mid in mate_manager.mids_after_activation(join_epoch)
        if not is_config_command(mate_manager.read(mid).payload)
    ]
    for mid in owed:
        if mid not in joiner_seen:
            violations.append(f"joiner missed post-join message {mid}")
    idx = mate_manager.activation_index(join_epoch)
    pre_join = [] if idx is None else mate_manager.app_log[:idx]
    for m in pre_join:
        if joiner_manager.read(m.mid) is None:
            violations.append(f"joiner cannot read pre-join message {m.mid}")
    return violations


class ElasticGenuinenessMonitor(GenuinenessMonitor):
    """Genuineness against the epoch chain's union membership.

    A joiner ordering messages addressed to its group is not a minimality
    violation — it *is* a destination-group member, just of a later
    epoch.  Control traffic (state transfer, fences, join requests) stays
    out of scope exactly as before: it carries no message attribution.
    """

    def __init__(self, config: ClusterConfig) -> None:
        super().__init__(config)
        self._extra_members: Dict[GroupId, Set[ProcessId]] = {}

    def note_member(self, pid: ProcessId, gid: GroupId) -> None:
        self._extra_members.setdefault(gid, set()).add(pid)

    def note_epochs(self, epochs: Iterable[ClusterConfig]) -> None:
        for pid, gid in union_membership(epochs).items():
            self.note_member(pid, gid)

    def _allowed(self, mid: MessageId) -> Set[ProcessId]:
        allowed = super()._allowed(mid)
        for gid in self.dests.get(mid, frozenset()):
            allowed.update(self._extra_members.get(gid, ()))
        return allowed
