"""Configuration commands: membership and topology changes as payloads.

A reconfiguration is an ordinary atomic multicast addressed to *every*
group whose payload is one of the command dataclasses below.  Delivering
the command through the protocol's own total order is the entire trick:
every member of every group delivers it at the same position of the
delivery sequence, so "apply the command here" yields a consistent epoch
boundary without any auxiliary consensus — the white-box insight applied
to reconfiguration itself.

Commands are pure data; :func:`apply_command` is the (deterministic)
transition function from one :class:`~repro.config.ClusterConfig` to its
successor.  Every member applies the same function to the same config at
the same delivery index, hence computes the same successor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..config import ClusterConfig
from ..errors import ConfigError
from ..placement import PlacementPolicy
from ..types import GroupId, ProcessId


@dataclass(frozen=True, slots=True)
class JoinCmd:
    """``join(g, p)``: process ``p`` becomes a member of group ``g``.

    Quorum arithmetic includes the joiner from activation on, but the
    joiner only *counts* once its state-transfer snapshot (sent by the
    group's lane leaders at activation) lets it acknowledge anything —
    until then the old members must supply the quorums by themselves.

    ``site`` optionally places the joiner in the config's placement
    policy's site map (ignored when the config carries no policy), so a
    site-affine lane deal can hand the joiner co-sited lanes from the
    epoch boundary on.
    """

    gid: GroupId
    pid: ProcessId
    site: Optional[int] = None


@dataclass(frozen=True, slots=True)
class LeaveCmd:
    """``leave(p)``: process ``p`` leaves its group.

    The leaver retires at its own activation point (a graceful crash);
    quorums shrink only once the epoch activates, and any lane the leaver
    led is handed off by an epoch-triggered election at its successor.
    """

    pid: ProcessId


@dataclass(frozen=True, slots=True)
class SetLaneWeightsCmd:
    """``set_lane_weights(w)``: re-deal ordering lanes proportionally.

    ``weights`` is a ``((pid, weight), ...)`` map; members absent from it
    keep weight 1.  Lanes whose leader moves under the new deal are handed
    off via the ordinary NEWLEADER / NEW_STATE rounds at activation, so
    their in-flight messages drain instead of dropping.
    """

    weights: Tuple[Tuple[ProcessId, int], ...]


@dataclass(frozen=True, slots=True)
class SetShardsCmd:
    """``set_shards(n)``: dial the active ordering lanes per group.

    ``n`` must stay within the build-time lane capacity
    (``shards_per_group``), which keeps the timestamp tie-break encoding
    stable across epochs.  Changing the active count changes the fresh-id
    lane hash, so this is the one command that relies on epoch fencing:
    every group must admit a given message id in the same epoch, or its
    lanes would diverge across groups.
    """

    shards: int


@dataclass(frozen=True, slots=True)
class SetPlacementCmd:
    """``set_placement(p)``: replace (or drop) the placement policy.

    Flips a live cluster between the flat and site-affine lane deals.
    Lanes whose leader moves under the new deal are handed off via the
    ordinary NEWLEADER / NEW_STATE rounds at activation, exactly as for a
    lane re-weighting; the fresh-id lane hash may change with the policy,
    so like ``set_shards`` this command relies on epoch fencing to keep
    admission lanes consistent across groups.
    """

    placement: Optional[PlacementPolicy]


ConfigCommand = Union[JoinCmd, LeaveCmd, SetLaneWeightsCmd, SetShardsCmd, SetPlacementCmd]

_COMMAND_TYPES = (JoinCmd, LeaveCmd, SetLaneWeightsCmd, SetShardsCmd, SetPlacementCmd)


def is_config_command(payload: object) -> bool:
    """Whether a delivered payload is a reconfiguration command."""
    return isinstance(payload, _COMMAND_TYPES)


def apply_command(config: ClusterConfig, cmd: ConfigCommand) -> ClusterConfig:
    """The deterministic epoch transition: ``config`` + ``cmd`` → successor."""
    if isinstance(cmd, JoinCmd):
        return config.with_join(cmd.gid, cmd.pid, cmd.site)
    if isinstance(cmd, LeaveCmd):
        return config.with_leave(cmd.pid)
    if isinstance(cmd, SetLaneWeightsCmd):
        return config.with_lane_weights(cmd.weights)
    if isinstance(cmd, SetShardsCmd):
        if cmd.shards > config.shards_per_group:
            raise ConfigError(
                f"set_shards({cmd.shards}) exceeds the lane capacity "
                f"{config.shards_per_group} fixed at build time"
            )
        return config.with_active_shards(cmd.shards)
    if isinstance(cmd, SetPlacementCmd):
        return config.with_placement(cmd.placement)
    raise ConfigError(f"unknown config command {cmd!r}")


def validate_command(config: ClusterConfig, cmd: ConfigCommand) -> None:
    """Raise :class:`ConfigError` if ``cmd`` cannot apply to ``config``."""
    apply_command(config, cmd)  # the transforms carry the validation
