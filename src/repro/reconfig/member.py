"""The joining member: a process that bootstraps itself by state transfer.

A :class:`JoiningMember` is registered in the hosting runtime *before* the
join command is submitted (a real deployment boots the binary first and
reconfigures second).  Until the join activates, the cluster ignores it
and it pesters nobody except a periodic ``JOIN_REQUEST`` no member answers
before activation.  Once the group's lane leaders ship their
``JOIN_STATE`` snapshots it:

1. buffers all other incoming traffic (the snapshots for different lanes
   are cut at different instants — replaying the buffered interval closes
   the gap between the earliest and latest cut);
2. constructs the real protocol process from the snapshot's activated
   config (the lane capacity, membership and deal all come from there);
3. installs every lane's replicated state exactly as a NEW_STATE round
   would (status FOLLOWER, cballot, records, clock floor, dedup table,
   delivery watermark), seeds the cross-lane merge with the shipped
   backlogs, and seeds its application log so pre-join reads work;
4. replays the buffered traffic through the installed process (duplicate
   DELIVERs fall to the ``max_delivered_gts`` dedup) and from then on is
   a transparent proxy in front of an ordinary member.

Quorum safety never depends on any of this: the joiner acknowledges
nothing before installation, so it simply does not count until it can.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..config import ClusterConfig
from ..protocols.base import ProtocolProcess
from ..runtime import Runtime
from ..types import AmcastMessage, GroupId, MessageId, ProcessId
from .manager import ReconfigManager
from .messages import JoinInstalledMsg, JoinRequestMsg, JoinStateMsg

#: Upper bound on buffered pre-install messages (backstop, not a tunable).
_BUFFER_CAP = 100_000


class JoiningMember(ProtocolProcess):
    """A not-yet-member process waiting for (then proxying) its group role."""

    def __init__(
        self,
        pid: ProcessId,
        base_config: ClusterConfig,
        runtime: Runtime,
        gid: GroupId,
        protocol_cls,
        options: Any = None,
        request_interval: float = 0.02,
    ) -> None:
        # Deliberately NOT AtomicMulticastProcess: this pid is no member of
        # the base config; the inner process built at install time is.
        super().__init__(pid, base_config, runtime)
        self.gid = gid
        self.protocol_cls = protocol_cls
        self.options = options
        self.request_interval = request_interval
        #: The real protocol process once installed (monitors introspect it).
        self.protocol: Optional[Any] = None
        self.reconfig: Optional[ReconfigManager] = None
        self.installed = False
        self.retired = False
        self._lane_states: Dict[int, JoinStateMsg] = {}
        self._buffer: Deque[Tuple[ProcessId, Any]] = deque(maxlen=_BUFFER_CAP)

    # -- wiring -------------------------------------------------------------

    def on_start(self) -> None:
        self._request_tick()

    def _request_tick(self) -> None:
        if self.installed:
            return
        for member in self.config.members(self.gid):
            self.send(member, JoinRequestMsg(self.gid))
        self.runtime.set_timer(self.request_interval, self._request_tick)

    def on_message(self, sender: ProcessId, msg: Any) -> None:
        if isinstance(msg, JoinStateMsg):
            self._on_join_state(sender, msg)
            return
        if self.installed:
            self.protocol.on_message(sender, msg)
            return
        # Pre-install protocol traffic: buffer for the post-install replay.
        self._buffer.append((sender, msg))

    # -- state transfer --------------------------------------------------------

    def _on_join_state(self, sender: ProcessId, msg: JoinStateMsg) -> None:
        if self.installed:
            return  # late duplicate (a re-requested snapshot raced install)
        prev = self._lane_states.get(msg.lane)
        if prev is None or msg.cballot >= prev.cballot:
            self._lane_states[msg.lane] = msg
        expected = self._expected_lanes(msg.config)
        if all(lane in self._lane_states for lane in range(expected)):
            self._install()

    def _expected_lanes(self, config: ClusterConfig) -> int:
        if getattr(self.protocol_cls, "SUPPORTS_SHARDING", False):
            return config.shards_per_group
        return 1

    def _latest_config(self) -> ClusterConfig:
        return max(
            (s.config for s in self._lane_states.values()), key=lambda c: c.epoch
        )

    def _install(self) -> None:
        from ..protocols.wbcast.state import Status, snapshot_copy

        config = self._latest_config()
        proc = self.protocol_cls(self.pid, config, self.runtime, options=self.options)
        lanes = proc.lanes if hasattr(proc, "lanes") else [proc]
        # Seed the application state from the freshest snapshot (all
        # members of one group share the delivery sequence, so any
        # snapshot's log is a prefix of any fresher one).
        app_log = max((s.app_log for s in self._lane_states.values()), key=len)
        app_seen = {m.mid for m in app_log}
        manager = ReconfigManager(proc, config)
        manager.seed(list(app_log), len(app_log))
        proc.reconfig = manager
        for lane_proc in lanes:
            lane_proc.reconfig = manager
        merge = getattr(proc, "merge", None)
        for lane_proc in lanes:
            state = self._lane_states[getattr(lane_proc, "lane", 0)]
            lane_proc.status = Status.FOLLOWER
            lane_proc.ballot = state.cballot
            lane_proc.cballot = state.cballot
            lane_proc.records = snapshot_copy(state.records)
            lane_proc.max_delivered_gts = state.max_delivered_gts
            lane_proc.delivered_ids.update(state.delivered)
            lane_proc.clock = max(lane_proc.clock, state.clock)
            lane_proc.cur_leader[self.gid] = state.cballot.leader()
            if merge is not None:
                lane = lane_proc.lane
                if state.max_delivered_gts is not None:
                    # The cut is a floor: future lane DELIVERs are above it.
                    merge.advance(lane, state.max_delivered_gts)
                for m, gts in state.merge_backlog:
                    if m.mid not in app_seen:
                        merge.push(lane, m, gts)
        self.protocol = proc
        self.reconfig = manager
        self.config = config
        self.installed = True
        proc.on_start()
        # Replay the buffered pre-install interval; duplicates fall to the
        # per-lane max_delivered_gts dedup, gaps between unevenly-timed
        # lane cuts are filled.
        buffered, self._buffer = list(self._buffer), deque(maxlen=_BUFFER_CAP)
        for sender, msg in buffered:
            proc.on_message(sender, msg)
        if merge is not None:
            proc._drain_merge()
        # If the activated deal already names us a lane leader (a weighted
        # join), stand for election now that we can.
        for lane_proc in lanes:
            if (
                config.lane_leader(self.gid, getattr(lane_proc, "lane", 0)) == self.pid
                and not lane_proc.is_leader()
            ):
                self.runtime.set_timer(0.0, lane_proc.recover)
        for member in config.members(self.gid):
            if member != self.pid:
                self.send(member, JoinInstalledMsg(self.gid, self.pid))

    # -- introspection (delegated to the installed process) ---------------------

    def is_leader(self) -> bool:
        return self.protocol is not None and self.protocol.is_leader()

    def read(self, mid: MessageId) -> Optional[AmcastMessage]:
        """Serve a read of a delivered message (pre-join history included)."""
        if self.reconfig is None:
            return None
        return self.reconfig.read(mid)

    def delivered_mids(self) -> List[MessageId]:
        return [] if self.reconfig is None else self.reconfig.delivered_mids()

    def __getattr__(self, name: str):
        # Post-install, unknown attributes resolve against the real member
        # (records, lane_for, cballot, ... — whatever monitors ask for).
        protocol = self.__dict__.get("protocol")
        if protocol is not None:
            return getattr(protocol, name)
        raise AttributeError(name)
