"""The per-member reconfiguration manager: epoch boundaries in the order.

One :class:`ReconfigManager` attaches to each group member (and, on
sharded members, is shared with every lane).  It observes the member's
application deliveries; when a delivered payload is a
:mod:`~repro.reconfig.commands` command it computes the successor
configuration and activates it *at that delivery index* — the same index
on every member of every group, because the command rode the multicast
total order.  Everything else the subsystem does hangs off that boundary:

* the member's :meth:`apply_epoch` refreshes membership-derived state,
  retires leavers, drops un-completable stale-lane proposals and stands
  for election on lanes the new deal hands it (the per-lane epoch
  handoff);
* leaders of the joined group cut and ship state-transfer snapshots
  (:class:`~repro.reconfig.messages.JoinStateMsg`) to the joiner;
* stale-epoch client submissions are fenced with a config refresh
  (:class:`~repro.reconfig.messages.EpochFenceMsg`).

The manager also keeps the member's *application log* (delivered messages
in order).  That log is what a joiner's snapshot seeds from — the joiner
can then serve reads of messages delivered before it existed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from ..config import ClusterConfig
from ..errors import ConfigError
from ..types import AmcastMessage, MessageId, ProcessId
from .commands import ConfigCommand, JoinCmd, apply_command, is_config_command
from .messages import (
    EpochFenceMsg,
    JoinInstalledMsg,
    JoinRequestMsg,
    JoinStateMsg,
)


@dataclass(frozen=True, slots=True)
class EpochActivation:
    """One epoch flip as observed by one member."""

    epoch: int
    delivery_index: int  # position in this member's delivery sequence (1-based)
    command: ConfigCommand


#: Message types routed to the manager instead of the protocol handlers.
_MANAGED = (JoinRequestMsg, JoinInstalledMsg)


class ReconfigManager:
    """Epoch state, activation hooks and joiner state transfer for one member.

    ``app_log_retain`` bounds the application log (None: keep everything —
    the joiner-read guarantee then covers the whole history; a bound keeps
    long-lived members' memory and state-transfer sizes O(retain), at the
    cost of pre-join reads only reaching that far back).
    """

    def __init__(
        self,
        member: Any,
        config: ClusterConfig,
        app_log_retain: Optional[int] = None,
    ) -> None:
        self.member = member
        self.config = config
        self.epoch = config.epoch
        self.app_log_retain = app_log_retain
        #: Delivered application messages, in this member's delivery order
        #: (the retained suffix, when a bound is set).
        self.app_log: List[AmcastMessage] = []
        self._app_index: Dict[MessageId, AmcastMessage] = {}
        #: Epoch flips observed here, in order.
        self.activations: List[EpochActivation] = []
        #: Commands delivered but rejected by their precondition (e.g. a
        #: reordered concurrent script); rejection is deterministic — all
        #: members evaluate the same command against the same config at
        #: the same delivery index, so all reject identically.
        self.rejected: List[ConfigCommand] = []
        #: Joiners that reported full installation (informational).
        self.installed_joiners: Set[ProcessId] = set()
        self._deliveries = 0

    # -- wiring ------------------------------------------------------------

    @staticmethod
    def attach(member: Any, config: ClusterConfig) -> "ReconfigManager":
        """Create a manager and attach it to ``member`` (and its lanes)."""
        manager = ReconfigManager(member, config)
        member.reconfig = manager
        for lane_proc in ReconfigManager._lanes_of(member):
            lane_proc.reconfig = manager
        return manager

    @staticmethod
    def _lanes_of(member: Any):
        return member.lanes if hasattr(member, "lanes") else [member]

    def handles(self, msg_type: type) -> bool:
        """Whether a wire message type is consumed by the manager."""
        return msg_type in _MANAGED

    # -- the epoch boundary --------------------------------------------------

    def on_local_deliver(self, proc: Any, m: AmcastMessage) -> None:
        """Hook run at every application delivery of the member.

        Non-command deliveries only extend the application log.  A command
        delivery is the epoch boundary: compute the successor config,
        apply it to the member, and (for joins) ship the state-transfer
        snapshots from whichever lanes this member leads.
        """
        self._deliveries += 1
        self.app_log.append(m)
        self._app_index[m.mid] = m
        retain = self.app_log_retain
        if retain is not None and len(self.app_log) > retain:
            evicted = self.app_log[: len(self.app_log) - retain]
            del self.app_log[: len(self.app_log) - retain]
            for old in evicted:
                self._app_index.pop(old.mid, None)
        payload = m.payload
        if not is_config_command(payload):
            return
        try:
            new_config = apply_command(self.config, payload)
        except ConfigError:
            # Precondition failed against the *delivered* order (two
            # concurrent commands arrived in an order the script never
            # validated, or a duplicate).  Deterministic at every member
            # — same command, same config, same index — so everyone
            # rejects it and the epoch does not advance.
            self.rejected.append(payload)
            return
        self.config = new_config
        self.epoch = new_config.epoch
        self.activations.append(
            EpochActivation(new_config.epoch, self._deliveries, payload)
        )
        self.member.apply_epoch(new_config)
        if isinstance(payload, JoinCmd) and not self.member.retired:
            if payload.gid == self.member.gid:
                self.send_join_state(payload.pid)

    # -- joiner state transfer ------------------------------------------------

    def send_join_state(self, joiner: ProcessId) -> None:
        """Ship a snapshot of every lane this member currently leads.

        Sent bare (no lane envelope): the receiving joiner is not a lane
        host yet.  ``max_delivered_gts`` marks the snapshot cut; DELIVERs
        sent after the cut follow it on the same FIFO channel.
        """
        member = self.member
        merge = getattr(member, "merge", None)
        app_log_sent = False
        for lane_proc in self._lanes_of(member):
            if not lane_proc.is_leader():
                continue
            lane = getattr(lane_proc, "lane", 0)
            backlog: Tuple = ()
            if merge is not None:
                backlog = tuple(merge.lane_snapshot(lane))
            # The application log is member-level (one delivery sequence),
            # so a member leading several lanes ships it once — the
            # joiner's install takes the longest log it received anyway.
            app_log = () if app_log_sent else tuple(self.app_log)
            app_log_sent = True
            snap = JoinStateMsg(
                gid=member.gid,
                lane=lane,
                epoch=self.epoch,
                config=self.config,
                cballot=lane_proc.cballot,
                clock=lane_proc.clock,
                records=dict(lane_proc.records),  # records are immutable
                max_delivered_gts=lane_proc.max_delivered_gts,
                delivered=lane_proc.delivered_ids.snapshot(),
                app_log=app_log,
                merge_backlog=backlog,
            )
            member.runtime.send(joiner, snap)
            self._resend_boundary_delivers(lane_proc, joiner)

    def _resend_boundary_delivers(self, lane_proc: Any, joiner: ProcessId) -> None:
        """Re-send DELIVERs broadcast just before the epoch boundary.

        A DELIVER the leader broadcast *before* activating the join went to
        the old membership; if the leader has not yet handled its own copy
        (so the message sits above the snapshot cut), the joiner would
        never see it.  Recovery's answer — re-deliver, let
        ``max_delivered_gts`` deduplicate — applies, scoped to the joiner:
        every COMMITTED record above the cut whose delivery decision has
        already left the queue is re-sent in gts order, on the same FIFO
        channel as (hence behind) the snapshot.  Still-queued commits need
        nothing: their broadcast happens post-activation to the new
        membership.
        """
        from ..protocols.wbcast.messages import DeliverMsg, LaneMsg
        from ..protocols.wbcast.state import Phase

        cut = lane_proc.max_delivered_gts
        boundary = sorted(
            (
                rec
                for rec in lane_proc.records.values()
                if rec.phase is Phase.COMMITTED
                and rec.gts is not None
                and (cut is None or cut < rec.gts)
                and not lane_proc.queue.is_committed(rec.mid)
            ),
            key=lambda rec: rec.gts,
        )
        sharded = getattr(lane_proc, "_shard_host", None) is not None
        for rec in boundary:
            deliver = DeliverMsg(rec.m, lane_proc.cballot, rec.lts, rec.gts)
            if sharded:
                self.member.runtime.send(joiner, LaneMsg(lane_proc.lane, deliver))
            else:
                self.member.runtime.send(joiner, deliver)

    def on_member_message(self, proc: Any, sender: ProcessId, msg: Any) -> None:
        """Handle manager-routed wire messages arriving at the member."""
        if isinstance(msg, JoinRequestMsg):
            if msg.gid != self.member.gid:
                return
            if sender not in self.config.members(msg.gid):
                return  # the join has not activated here yet: not ours to seed
            self.send_join_state(sender)
        elif isinstance(msg, JoinInstalledMsg):
            self.installed_joiners.add(msg.pid)

    # -- epoch fencing ---------------------------------------------------------

    def fence(self, proc: Any, sender: ProcessId, msg: Any) -> None:
        """Answer a stale-epoch submission with a config refresh.

        A submission *ahead* of us (the command is still in flight to this
        member) is dropped without an answer — we have nothing newer to
        teach, and the client's retry outlives our catch-up.  Forwarded
        submissions resolve the refresh target to the origin session
        embedded in the message ids (the ``_ack_submission`` rule).
        """
        epoch = getattr(msg, "epoch", None)
        if epoch is None or epoch >= self.epoch:
            return
        mids_fn = getattr(msg, "mids", None)
        fenced = tuple(mids_fn()) if callable(mids_fn) else (msg.m.mid,)
        target = sender
        if target in proc.ever_members or proc.config.is_member(target):
            origin = fenced[0][0]
            if origin in proc.ever_members or proc.config.is_member(origin):
                return  # member-originated (protocol-internal): no fence
            target = origin
        self.member.runtime.send(
            target, EpochFenceMsg(self.member.gid, self.epoch, self.config, fenced)
        )

    # -- seeding (joiner side) -------------------------------------------------

    def seed(self, app_log: List[AmcastMessage], deliveries: int) -> None:
        """Initialise from a state-transfer snapshot (joiner install)."""
        self.app_log = list(app_log)
        self._app_index = {m.mid: m for m in self.app_log}
        self._deliveries = deliveries

    # -- reads / introspection --------------------------------------------------

    def read(self, mid: MessageId) -> Optional[AmcastMessage]:
        """The delivered message ``mid``, from this member's app log (state
        transfer included) — the "joiner serves pre-join reads" API."""
        return self._app_index.get(mid)

    def delivered_mids(self) -> List[MessageId]:
        return [m.mid for m in self.app_log]

    def activation_index(self, epoch: int) -> Optional[int]:
        """This member's delivery index at which ``epoch`` activated."""
        for act in self.activations:
            if act.epoch == epoch:
                return act.delivery_index
        return None

    def mids_after_activation(self, epoch: int) -> List[MessageId]:
        """Application mids this member delivered after ``epoch`` activated."""
        idx = self.activation_index(epoch)
        if idx is None:
            return []
        return [m.mid for m in self.app_log[idx:]]
