"""Wire messages of the reconfiguration subsystem.

Deliberately few: the epoch *boundary* itself needs no messages (it rides
the delivery total order of an ordinary multicast), so what remains is
joiner state transfer — an extension of the NEWLEADER / NEW_STATE shape —
and the stale-epoch fence that refreshes client sessions.

None of these expose ``m`` / ``mid`` / ``mids`` attribution, so the
genuineness monitor classifies them as group-local state transfer /
control traffic, outside the minimality definition — correctly, because
state transfer only ever flows between members of one group (plus its
joiner) and fences flow leader→client.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..config import ClusterConfig
from ..types import AmcastMessage, Ballot, GroupId, ProcessId, Timestamp


@dataclass(frozen=True, slots=True)
class EpochFenceMsg:
    """``EPOCH_FENCE(g, e, config)``: a leader of group ``g`` at epoch
    ``e`` rejected a stale-epoch submission; ``config`` is the active
    configuration the client session should adopt before retrying (the
    ``SUBMIT_REDIRECT`` idea, applied to configuration instead of
    leadership).  ``fenced`` lists the affected submission ids so the
    session can re-drive them immediately instead of waiting out its
    retry timer — the difference between a millisecond epoch blip and a
    retry-interval throughput hole."""

    gid: GroupId
    epoch: int
    config: ClusterConfig
    fenced: Tuple = ()


@dataclass(frozen=True, slots=True)
class JoinRequestMsg:
    """``JOIN_REQUEST(g)``: a joining process asks group ``g``'s members
    for its state-transfer snapshot(s).

    The normal path is proactive — lane leaders ship snapshots the moment
    the join activates — so this is the retry/fallback: a snapshot lost to
    a crash, or a lane that was mid-election at activation, is re-requested
    until the joiner is fully installed.  Members that have not activated
    the join yet simply ignore it.
    """

    gid: GroupId


@dataclass(frozen=True, slots=True)
class JoinStateMsg:
    """``JOIN_STATE``: one lane's state-transfer snapshot for a joiner.

    The NEWLEADER_ACK / NEW_STATE payload shape extended with everything a
    fresh member needs that recovery's peers already share out-of-band:

    * ``config`` / ``epoch`` — the activated configuration the snapshot
      was cut under (the joiner builds its protocol processes from it);
    * ``cballot`` / ``clock`` / ``records`` / ``max_delivered_gts`` /
      ``delivered`` — the lane's replicated protocol state, exactly as a
      NEW_STATE round would push it to a follower;
    * ``app_log`` — the sender's delivered application messages (in
      delivery order), so the joiner can serve reads of pre-join messages
      it will never see DELIVERs for.

    ``max_delivered_gts`` doubles as the snapshot cut: DELIVERs the lane
    leader sends after cutting the snapshot arrive behind it on the same
    FIFO channel and are applied normally; everything at or below the cut
    is deduplicated.

    ``merge_backlog`` closes the sharded cut-consistency gap: entries the
    sending member's lane had delivered (so the cut covers them) but its
    cross-lane merge had not yet released to the application (so they are
    absent from ``app_log``).  The joiner seeds its own merge with them;
    without this, a message ordered after the join but lane-delivered
    before the cut would be invisible to the joiner forever.
    """

    gid: GroupId
    lane: int
    epoch: int
    config: ClusterConfig
    cballot: Ballot
    clock: int
    records: dict
    max_delivered_gts: Optional[Timestamp]
    delivered: object  # DeliveredLog snapshot
    app_log: Tuple[AmcastMessage, ...] = ()
    merge_backlog: Tuple[Tuple[AmcastMessage, Timestamp], ...] = ()


@dataclass(frozen=True, slots=True)
class JoinInstalledMsg:
    """``JOIN_INSTALLED(g, p)``: the joiner finished installing every
    lane's snapshot and now participates fully (purely informational —
    quorum arithmetic never depends on it; useful for drivers that want to
    wait for a "healthy" cluster before the next reconfiguration)."""

    gid: GroupId
    pid: ProcessId
