"""Run one workload *through* a scripted reconfiguration (simulator).

The elastic counterpart of :func:`repro.bench.harness.run_workload`: wires
a cluster whose members carry :class:`~repro.reconfig.manager.ReconfigManager`s,
pre-registers the joiners of the script (a process boots before it is
configured in), drives closed-loop load clients, and submits the script's
join / leave / reweight / reshard commands through an ordinary client
session — the commands travel the multicast total order like any other
message, which is the entire reconfiguration mechanism.

Returns an :class:`ElasticRunResult` extending the standard
:class:`~repro.bench.harness.RunResult` with the epoch chain, the joiner
processes (for pre-join read assertions) and epoch-aware verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bench.harness import RunResult, apply_batching
from ..checking import History
from ..client import AmcastClient, AmcastClientOptions, SubmitHandle
from ..config import BatchingOptions, ClusterConfig
from ..errors import ConfigError, SimulationError
from ..sim import ConstantDelay, CpuModel, Simulator, Trace
from ..sim.faults import (
    FaultPlan,
    JoinSpec,
    LaneWeightSpec,
    LeaveSpec,
    ReconfigPlan,
    ReconfigSpec,
    ShardSpec,
)
from ..sim.network import DelayModel
from ..types import ProcessId
from ..workload import (
    ClientOptions,
    ClosedLoopClient,
    DeliveryTracker,
    DestinationChooser,
    RandomKGroups,
)
from .checking import (
    ElasticGenuinenessMonitor,
    check_elastic,
    check_joiner_coverage,
    epoch_chain,
    reference_manager,
)
from .commands import ConfigCommand, JoinCmd
from .manager import ReconfigManager
from .member import JoiningMember


def command_of(config: ClusterConfig, spec: ReconfigSpec) -> ConfigCommand:
    """The wire command a script event denotes (allocating a join pid when
    the spec left it to us: one above every currently configured process)."""
    from .commands import JoinCmd, LeaveCmd, SetLaneWeightsCmd, SetShardsCmd

    if isinstance(spec, JoinSpec):
        pid = spec.pid if spec.pid is not None else max(config.all_processes) + 1
        return JoinCmd(spec.gid, pid)
    if isinstance(spec, LeaveSpec):
        return LeaveCmd(spec.pid)
    if isinstance(spec, LaneWeightSpec):
        return SetLaneWeightsCmd(spec.weights)
    if isinstance(spec, ShardSpec):
        return SetShardsCmd(spec.shards)
    raise ConfigError(f"unknown reconfig spec {spec!r}")


def resolve_plan(
    config: ClusterConfig, plan: ReconfigPlan, first_free_pid: ProcessId
) -> List[Tuple[float, ConfigCommand]]:
    """Concrete (time, command) pairs with joiner pids allocated densely
    from ``first_free_pid``."""
    from .commands import JoinCmd

    out: List[Tuple[float, ConfigCommand]] = []
    next_pid = first_free_pid
    for spec in plan.sorted_events():
        if isinstance(spec, JoinSpec) and spec.pid is None:
            out.append((spec.at, JoinCmd(spec.gid, next_pid)))
            next_pid += 1
        else:
            out.append((spec.at, command_of(config, spec)))
    return out


class ReconfigDriver(AmcastClient):
    """The operator console: submits scripted config commands to all groups."""

    def __init__(
        self,
        pid: ProcessId,
        config: ClusterConfig,
        runtime,
        protocol_cls,
        tracker,
        schedule: Sequence[Tuple[float, ConfigCommand]],
        retry_timeout: float,
    ) -> None:
        super().__init__(
            pid,
            config,
            runtime,
            protocol_cls,
            tracker,
            AmcastClientOptions(
                window=None,
                retry_timeout=retry_timeout,
                fence_epoch=True,
                retain_completed=None,
            ),
        )
        self.schedule = list(schedule)
        self.handles: List[SubmitHandle] = []

    def on_start(self) -> None:
        all_groups = frozenset(self.config.group_ids)
        for at, cmd in self.schedule:
            self.runtime.set_timer(
                at, lambda c=cmd, d=all_groups: self.handles.append(self.submit(d, c))
            )

    @property
    def done(self) -> bool:
        return len(self.handles) == len(self.schedule) and all(
            h.completed for h in self.handles
        )


@dataclass
class ElasticRunResult(RunResult):
    """A reconfigured run: everything RunResult has, plus the epoch view."""

    plan: Optional[ReconfigPlan] = None
    driver: Optional[ReconfigDriver] = None
    joiners: Dict[ProcessId, JoiningMember] = field(default_factory=dict)
    managers: Dict[ProcessId, ReconfigManager] = field(default_factory=dict)
    genuineness: Optional[ElasticGenuinenessMonitor] = None

    def epochs(self) -> List[ClusterConfig]:
        """The run's configuration chain, from the most complete manager
        (a leaver's log truncates at its own leave)."""
        return epoch_chain(
            self.config, reference_manager(self.managers, self.joiners)
        )

    def check_elastic(self, quiescent: bool = True) -> List:
        return check_elastic(self.history(), self.epochs(), quiescent=quiescent)

    def check(self, quiescent: bool = True) -> List:
        # The epoch-aware restatement replaces the fixed-membership checks.
        return self.check_elastic(quiescent=quiescent)

    def joiner_coverage_violations(self) -> List[str]:
        """Joiner read/delivery obligations, per join epoch (see
        :func:`repro.reconfig.checking.check_joiner_coverage`)."""
        violations: List[str] = []
        chain = self.epochs()
        for epoch_idx in range(1, len(chain)):
            config = chain[epoch_idx]
            prev = chain[epoch_idx - 1]
            fresh = set(config.all_members) - set(prev.all_members)
            for pid in fresh:
                joiner = self.joiners.get(pid)
                if joiner is None or joiner.reconfig is None:
                    violations.append(f"joiner {pid} never installed")
                    continue
                gid = config.group_of(pid)
                mate = next(
                    self.managers[p]
                    for p in config.members(gid)
                    if p in self.managers and p not in self.joiners
                )
                violations.extend(
                    check_joiner_coverage(joiner.reconfig, mate, config.epoch)
                )
        return violations


def run_elastic_workload(
    protocol_cls,
    config: ClusterConfig,
    plan: ReconfigPlan,
    messages_per_client: int = 8,
    dest_k: int = 2,
    network: Optional[DelayModel] = None,
    seed: int = 0,
    cpu: Optional[CpuModel] = None,
    protocol_options: Any = None,
    client_options: Optional[ClientOptions] = None,
    chooser_factory: Optional[Any] = None,
    fault_plan: Optional[FaultPlan] = None,
    monitors: Sequence[Any] = (),
    attach_genuineness: bool = False,
    attach_fd: bool = False,
    fd_options: Any = None,
    batching: Optional[BatchingOptions] = None,
    client_retry: float = 0.05,
    driver_retry: float = 0.05,
    drain_grace: float = 0.1,
    max_events: int = 50_000_000,
    max_time: float = 30.0,
) -> ElasticRunResult:
    """Run closed-loop clients through the scripted reconfiguration.

    The workload sessions run epoch-fenced with retransmission (both are
    required for liveness across epoch flips: the fence is what teaches a
    session the new config, the retry is what re-drives fenced
    submissions).  ``max_time`` is a hard virtual-time stop so a wedged
    reconfiguration fails the run instead of hanging it.

    Scripts that overlap *crashes* with reconfiguration should pass
    ``attach_fd=True``: epoch handoffs only cover deal-driven leadership
    moves, so a lane whose crash-elected leader later leaves needs the
    failure detector to re-elect around the (dead) deal leader.
    """
    plan.validate(config)
    if batching is not None:
        protocol_options = apply_batching(protocol_cls, protocol_options, batching)
    if network is None:
        network = ConstantDelay(0.001)
    trace = Trace()
    sim = Simulator(network, seed=seed, trace=trace, cpu=cpu)
    tracker = DeliveryTracker(config, sim=sim)
    trace.attach(tracker)
    genuineness = None
    if attach_genuineness:
        genuineness = ElasticGenuinenessMonitor(config)
        trace.attach(genuineness)
    for monitor in monitors:
        trace.attach(monitor)

    # Joiner pids first (densely above every configured process), then the
    # operator console's pid.
    first_free = max(config.all_processes) + 1
    schedule = resolve_plan(config, plan, first_free)
    joiner_cmds = [cmd for _, cmd in schedule if isinstance(cmd, JoinCmd)]
    driver_pid = max(
        [first_free - 1] + [cmd.pid for cmd in joiner_cmds]
    ) + 1

    members: Dict[int, Any] = {}
    managers: Dict[int, ReconfigManager] = {}
    for gid in config.group_ids:
        for pid in config.members(gid):
            proc = sim.add_process(
                pid,
                lambda rt, p=pid: protocol_cls(p, config, rt, options=protocol_options),
            )
            members[pid] = proc
            managers[pid] = ReconfigManager.attach(proc, config)
            if attach_fd:
                from ..failure.detector import attach_monitor

                attach_monitor(proc, fd_options)

    joiners: Dict[int, JoiningMember] = {}
    for cmd in joiner_cmds:
        joiner = sim.add_process(
            cmd.pid,
            lambda rt, c=cmd: JoiningMember(
                c.pid, config, rt, c.gid, protocol_cls, options=protocol_options
            ),
        )
        joiners[cmd.pid] = joiner
        members[cmd.pid] = joiner
        tracker.note_member(cmd.pid, cmd.gid)
        if genuineness is not None:
            genuineness.note_member(cmd.pid, cmd.gid)

    clients: List[ClosedLoopClient] = []
    copts = client_options or ClientOptions(
        num_messages=messages_per_client, retry_timeout=client_retry
    )
    changes = {"fence_epoch": True}
    if copts.retry_timeout is None:
        # Retransmission is the liveness driver across epoch flips: a
        # fenced submission is only re-driven by its retry timer.
        changes["retry_timeout"] = client_retry
    copts = ClientOptions(**{**copts.__dict__, **changes})
    for i, pid in enumerate(config.clients):
        chooser = (
            chooser_factory(config, i)
            if chooser_factory is not None
            else RandomKGroups(config, dest_k)
        )
        client = sim.add_process(
            pid,
            lambda rt, p=pid, ch=chooser: ClosedLoopClient(
                p, config, rt, protocol_cls, tracker, ch, copts
            ),
        )
        clients.append(client)

    driver = sim.add_process(
        driver_pid,
        lambda rt: ReconfigDriver(
            driver_pid, config, rt, protocol_cls, tracker, schedule, driver_retry
        ),
    )

    for monitor in monitors:
        binder = getattr(monitor, "bind_processes", None)
        if callable(binder):
            binder(members)

    if fault_plan is not None:
        fault_plan.validate(config)
        fault_plan.apply(sim)

    expected = sum(c.options.num_messages for c in clients)
    steps = 0
    while True:
        if (
            all(c.done for c in clients)
            and driver.done
            and all(j.installed for j in joiners.values())
        ):
            break
        if not sim.step():
            break
        steps += 1
        if steps > max_events:
            raise SimulationError(f"run exceeded {max_events} events before completing")
        if sim.now > max_time:
            break
    end_of_load = sim.now
    if drain_grace > 0:
        sim.run(until=sim.now + drain_grace)

    result = ElasticRunResult(
        config=config,
        sim=sim,
        trace=trace,
        tracker=tracker,
        clients=clients,
        members=members,
        duration=end_of_load,
        completed=tracker.completed_count,
        expected=expected + len(schedule),
        plan=plan,
        driver=driver,
        joiners=joiners,
        managers=managers,
        genuineness=genuineness,
    )
    if genuineness is not None and managers:
        genuineness.note_epochs(
            epoch_chain(config, reference_manager(managers, joiners))
        )
    # Post-install the joiners' managers join the introspection map.
    for pid, joiner in joiners.items():
        if joiner.reconfig is not None:
            managers[pid] = joiner.reconfig
    return result
