"""Figure 7 reproduction: LAN performance with increasing client counts.

The paper: 10 groups × 3 replicas on CloudLab (0.1 ms RTT), clients
multicasting 20-byte messages to a fixed number of destination groups;
WbCast beats FastCast and fault-tolerant Skeen on both latency and
throughput — by 70–150% at 1000 clients — and FastCast trails Skeen
slightly in LAN (its parallel execution paths cost more than they save
when δ is tiny).

Run ``python -m repro.bench.figure7`` for the default grid; set
``REPRO_BENCH_FULL=1`` for the larger one.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import ClusterConfig
from ..protocols import FastCastProcess, FtSkeenProcess, WbCastProcess
from .sweep import (
    SweepConfig,
    SweepPoint,
    format_sweep,
    full_sweep_enabled,
    headline_comparison,
    run_sweep,
)
from .topologies import lan_testbed

PROTOCOLS: Dict[str, type] = {
    "wbcast": WbCastProcess,
    "fastcast": FastCastProcess,
    "ftskeen": FtSkeenProcess,
}


def default_sweep() -> SweepConfig:
    if full_sweep_enabled():
        return SweepConfig(
            client_counts=(50, 100, 200, 500, 1000),
            dest_ks=(1, 2, 4, 6, 10),
            messages_per_client=10,
        )
    return SweepConfig(
        num_groups=6,
        client_counts=(20, 100, 300),
        dest_ks=(2, 4),
        messages_per_client=6,
    )


def run_figure7(sweep: Optional[SweepConfig] = None) -> List[SweepPoint]:
    sweep = sweep or default_sweep()

    def topology(config: ClusterConfig):
        return lan_testbed(config, jitter=sweep.network_jitter)

    return run_sweep(PROTOCOLS, topology, sweep)


def main() -> None:
    points = run_figure7()
    print(format_sweep(points, "Figure 7 (LAN): latency & throughput vs clients"))
    print()
    print(headline_comparison(points))


if __name__ == "__main__":
    main()
