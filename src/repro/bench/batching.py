"""Batching ablation: throughput scaling vs. batch size (Fig. 7 topology).

The paper's protocols issue per-message rounds — WbCast one ACCEPT quorum
round trip per multicast, FtSkeen/FastCast one or two consensus commands —
so Figs. 7–8 saturate on per-message handling cost.  The protocol-agnostic
:class:`~repro.protocols.batching.Batcher` amortises that cost for all
three implementations, which lets this ablation attribute throughput to
the *protocol* rather than to who happens to batch: every (protocol,
linger mode, batch size, client count) grid cell runs the identical
Fig. 7 LAN testbed (same CPU model, client loop and topology), so the
only varying factors are the batching knobs.

Acceptance bars: batched WbCast ≥2x its per-message peak at batch 16;
batched FtSkeen and FastCast ≥1.5x theirs.

Run ``python -m repro.bench.batching`` (or ``python -m repro
bench-batching``) for the default grid.  ``--protocol`` narrows the
protocol axis, ``--linger-mode adaptive``/``both`` adds the adaptive
linger axis, ``--ingress-batch 1,16`` adds the client-side ingress
coalescing axis (AmcastClient sessions batching their submissions per
destination leader — the remaining per-message saturation term after the
leader-side batching of PRs 1–2), ``--client-window`` widens the
closed-loop window so ingress batches have company to coalesce with,
``--quick`` runs a CI-sized smoke grid, and ``REPRO_BENCH_FULL=1``
enables the paper-scale grid.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, replace
from dataclasses import replace as dataclass_replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import BatchingOptions
from ..protocols import BATCHING_PROTOCOLS, PROTOCOLS
from .report import render_table
from .sweep import DEFAULT_CPU_COST, SweepConfig, full_sweep_enabled
from .sweep import run_point as sweep_run_point
from .topologies import LAN_ONE_WAY, lan_testbed

#: Batch sizes swept by default; 1 is the paper's per-message protocol.
BATCH_SIZES = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class BatchingPoint:
    """One (protocol, linger mode, batch, ingress, shards, clients) point."""

    protocol: str
    linger_mode: str
    batch: int
    ingress: int
    clients: int
    throughput: float
    mean_latency: float
    p95_latency: float
    completed: int
    #: Ordering lanes per group (sharded multi-leader groups; 1 = paper).
    shards: int = 1
    #: Lane/leader placement policy: "flat" (topology-blind deal) or
    #: "site" (site-affine deal + tree overlay + geo-spread clients).
    placement: str = "flat"
    #: Delivery ordering granularity this cell ran under ("total" or
    #: "keys"; non-WbCast protocols always record "total").
    conflict: str = "total"
    #: SUBMIT_ACK-driven latency split: launch→acked and acked→delivered.
    mean_ack_latency: float = float("nan")
    mean_post_ack_latency: float = float("nan")


@dataclass
class BatchingSweepConfig:
    protocols: Sequence[str] = BATCHING_PROTOCOLS
    linger_modes: Sequence[str] = ("fixed",)
    batch_sizes: Sequence[int] = BATCH_SIZES
    #: Client-side ingress coalescing axis (1 = one MULTICAST per message,
    #: the paper's ingress; >1 lets AmcastClient sessions coalesce
    #: submissions per destination leader, amortising the leader's
    #: per-message ingress CPU — the remaining saturation term after PR 2).
    ingress_batches: Sequence[int] = (1,)
    #: Sharded multi-leader axis: ordering lanes per group (1 = the
    #: paper's single leader per group, the saturation term left after
    #: PR 3's ingress batching).
    shards: Sequence[int] = (1,)
    client_counts: Sequence[int] = (100, 300)
    num_groups: int = 6
    group_size: int = 3
    dest_k: int = 2
    messages_per_client: int = 6
    cpu_cost: float = DEFAULT_CPU_COST
    cpu_jitter: float = 0.1
    network_jitter: float = 0.05
    #: Linger several LAN one-way delays so batches fill under load (0.5 ms
    #: against a ~5 ms saturated mean latency: cheap for what it buys).
    max_linger: float = 10 * LAN_ONE_WAY
    pipeline_depth: int = 4
    #: Outstanding multicasts per client; >1 sustains per-leader pressure.
    client_window: int = 4
    seed: int = 42
    #: Testbed: ``"lan"`` (Fig. 7 CloudLab analogue) or ``"wan"`` (the
    #: Fig. 8 three-data-centre analogue) — the WAN axis is what the
    #: ROADMAP's paper-scale *sharded WAN grid* records: lanes spread the
    #: per-message leader work even when δ, not CPU, dominates latency.
    topology: str = "lan"
    #: Placement axis for the sharded points: "flat" keeps the recorded
    #: topology-blind deal; "site" attaches a site-affine placement
    #: policy (co-located lane leaders, geo-spread clients, tree-overlay
    #: ACCEPT dissemination) — the WAN-regression fix.  Single-leader
    #: (shards=1) points always run flat: with one lane the site deal
    #: degenerates to the legacy one, so a separate row would only
    #: duplicate the baseline.
    placements: Sequence[str] = ("flat",)
    #: Adaptive-linger floor threaded into the batching knobs (0 keeps
    #: the LAN-calibrated default).  On the WAN grid this is derived from
    #: the delay matrix (:func:`repro.placement.lane_timings`) so the
    #: adaptive mode cannot flush far below what the network can carry.
    min_linger: float = 0.0
    #: Delivery ordering granularity: "total" (the paper) or "keys"
    #: (conflict-aware delivery — commuting disjoint-key messages skip
    #: the cross-lane merge wait).  Only WbCast has the conflict layer;
    #: other protocols in the grid keep running total so the rows stay
    #: comparable.
    conflict: str = "total"
    #: Key-universe size for the synthetic single-key footprints clients
    #: stamp in keys mode (unfootprinted messages would all be fences).
    key_universe: int = 64


def default_sweep() -> BatchingSweepConfig:
    if full_sweep_enabled():
        return BatchingSweepConfig(
            client_counts=(100, 300, 600, 1000),
            num_groups=10,
            messages_per_client=10,
        )
    return BatchingSweepConfig()


def quick_sweep() -> BatchingSweepConfig:
    """A CI-smoke grid: per-message vs. one batched point per protocol."""
    return BatchingSweepConfig(
        batch_sizes=(1, 8),
        client_counts=(100,),
        messages_per_client=4,
    )


def batching_options(
    sweep: BatchingSweepConfig, batch: int, linger_mode: str = "fixed"
) -> BatchingOptions:
    """The knob settings for one swept batch size (1 = batching off)."""
    if batch <= 1:
        return BatchingOptions()
    return BatchingOptions(
        max_batch=batch,
        max_linger=sweep.max_linger,
        pipeline_depth=sweep.pipeline_depth,
        linger_mode=linger_mode,
        min_linger=min(sweep.min_linger, sweep.max_linger),
    )


def ingress_options(
    sweep: BatchingSweepConfig, ingress: int
) -> Optional[BatchingOptions]:
    """Client-session coalescing knobs for one swept ingress batch size."""
    if ingress <= 1:
        return None
    return BatchingOptions(max_batch=ingress, max_linger=sweep.max_linger)


def wan_protocol_options(protocol: str, placement: str = "flat"):
    """Topology-derived protocol tunables for the WAN grid.

    The WbCast defaults are LAN-calibrated: a 0.1 ms probe re-arm against
    a ~100 ms WAN watermark round is a probe storm.  Deriving the pacing
    from the delay matrix fixes the distortion for *every* WAN point —
    S=1 baseline and sharded alike — so speedup ratios compare protocols,
    not calibration accidents.  Non-WbCast protocols have no lane
    machinery to pace; they return None (protocol defaults).
    """
    if protocol != "wbcast":
        return None
    from ..placement import lane_timings
    from ..protocols.wbcast import WbCastOptions
    from ..sim.network import WAN_ONE_WAY

    timings = lane_timings(WAN_ONE_WAY)
    probe = (
        timings.site_probe_delay if placement == "site" else timings.lane_probe_delay
    )
    return WbCastOptions(
        lane_probe_delay=probe,
        lane_advance_interval=timings.lane_advance_interval,
    )


def _wan_config_hook(placement: str):
    """Config hook attaching the site-affine policy ("site" placement)."""
    if placement != "site":
        return None
    from ..placement import PlacementPolicy
    from .topologies import wan_site_map

    def hook(config):
        sites = wan_site_map(config)
        return dataclass_replace(config, placement=PlacementPolicy.site_affine(sites))

    return hook


def run_point(
    sweep: BatchingSweepConfig,
    protocol: str,
    batch: int,
    clients: int,
    linger_mode: str = "fixed",
    ingress: int = 1,
    shards: int = 1,
    placement: str = "flat",
) -> BatchingPoint:
    # One measurement = one point of the generic sweep harness; only the
    # protocol and the batching/sharding/placement knobs vary between
    # grid cells.
    protocol_options = None
    config_hook = None
    if sweep.topology == "wan":
        from .topologies import wan_site_map, wan_testbed

        protocol_options = wan_protocol_options(protocol, placement)
        config_hook = _wan_config_hook(placement)
        # Same network geometry for flat and site placements: only the
        # lane deal (and the overlay it enables) differs between the rows.
        topology = lambda config: wan_testbed(  # noqa: E731
            config,
            jitter=sweep.network_jitter,
            site_map=wan_site_map(config),
        )
    else:
        topology = lambda config: lan_testbed(config, jitter=sweep.network_jitter)  # noqa: E731
    # Only WbCast carries the conflict-relation layer; other protocols in
    # the grid silently keep the total order so their rows stay comparable.
    conflict = sweep.conflict if protocol == "wbcast" else "total"
    point = sweep_run_point(
        PROTOCOLS[protocol],
        topology,
        SweepConfig(
            num_groups=sweep.num_groups,
            group_size=sweep.group_size,
            messages_per_client=sweep.messages_per_client,
            cpu_cost=sweep.cpu_cost,
            cpu_jitter=sweep.cpu_jitter,
            network_jitter=sweep.network_jitter,
            seed=sweep.seed,
            batching=batching_options(sweep, batch, linger_mode),
            client_window=sweep.client_window,
            ingress=ingress_options(sweep, ingress),
            shards_per_group=shards,
            protocol_options=protocol_options,
            config_hook=config_hook,
            conflict=conflict,
            key_universe=sweep.key_universe,
        ),
        dest_k=sweep.dest_k,
        clients=clients,
    )
    return BatchingPoint(
        protocol=protocol,
        linger_mode=linger_mode if batch > 1 else "-",
        batch=batch,
        ingress=ingress,
        clients=clients,
        throughput=point.throughput,
        mean_latency=point.mean_latency,
        p95_latency=point.p95_latency,
        completed=point.completed,
        shards=shards,
        placement=placement,
        conflict=conflict,
        mean_ack_latency=point.mean_ack_latency,
        mean_post_ack_latency=point.mean_post_ack_latency,
    )


def run_batching(
    sweep: Optional[BatchingSweepConfig] = None,
    profiler=None,
) -> List[BatchingPoint]:
    """Run the grid; ``profiler`` (a :class:`~repro.obs.PhaseProfiler`)
    attributes CPU per (protocol, batch) phase so hot spots in the
    simulated protocol path show up with their real stack."""
    sweep = sweep or default_sweep()
    points: List[BatchingPoint] = []
    for protocol in sweep.protocols:
        sharding = getattr(PROTOCOLS[protocol], "SUPPORTS_SHARDING", False)
        shard_counts = tuple(sweep.shards) if sharding else (1,)
        for batch in sweep.batch_sizes:
            modes = ("fixed",) if batch <= 1 else tuple(sweep.linger_modes)
            for mode in modes:
                for ingress in sweep.ingress_batches:
                    for shards in shard_counts:
                        # Placement only differentiates sharded points on
                        # the WAN; everything else runs the flat deal once.
                        if shards > 1 and sharding and sweep.topology == "wan":
                            placements = tuple(dict.fromkeys(sweep.placements))
                        else:
                            placements = ("flat",)
                        for placement in placements:
                            for clients in sweep.client_counts:
                                if profiler is not None:
                                    with profiler.phase(f"{protocol}/batch{batch}"):
                                        point = run_point(
                                            sweep, protocol, batch, clients,
                                            mode, ingress, shards, placement,
                                        )
                                else:
                                    point = run_point(
                                        sweep, protocol, batch, clients, mode,
                                        ingress, shards, placement,
                                    )
                                points.append(point)
    return points


def peak_throughputs(
    points: List[BatchingPoint],
    protocol: Optional[str] = None,
    linger_mode: Optional[str] = None,
    ingress: Optional[int] = None,
    shards: Optional[int] = None,
    placement: Optional[str] = None,
) -> Dict[int, float]:
    """Best throughput per batch size across client counts.

    ``protocol`` filters to one protocol; ``linger_mode`` to one mode
    (the batch-1 per-message baseline, recorded with mode ``"-"``, always
    passes the mode filter so speedups stay comparable); ``ingress`` to
    one client-side ingress batch size; ``shards`` to one lane count;
    ``placement`` to one lane-placement policy (single-leader points are
    always recorded flat and always pass, so site-placement speedups keep
    the same baseline).  ``None`` keeps the all-points behaviour.
    """
    peaks: Dict[int, float] = {}
    for p in points:
        if protocol is not None and p.protocol != protocol:
            continue
        if linger_mode is not None and p.linger_mode not in ("-", linger_mode):
            continue
        if ingress is not None and p.ingress != ingress:
            continue
        if shards is not None and p.shards != shards:
            continue
        if placement is not None and p.shards > 1 and p.placement != placement:
            continue
        peaks[p.batch] = max(peaks.get(p.batch, 0.0), p.throughput)
    return peaks


def shard_speedup(
    points: List[BatchingPoint],
    shards: int,
    batch: int = 16,
    ingress: int = 16,
    protocol: Optional[str] = None,
    placement: Optional[str] = None,
) -> float:
    """Peak-throughput ratio of ``shards`` lanes over the single-leader
    protocol at the same batching knobs (the sharding acceptance bar).

    ``placement`` picks which lane deal the sharded side ran under; the
    single-leader base is placement-agnostic by construction.
    """
    base = peak_throughputs(points, protocol=protocol, ingress=ingress, shards=1)
    sharded = peak_throughputs(
        points, protocol=protocol, ingress=ingress, shards=shards,
        placement=placement,
    )
    if base.get(batch, 0.0) <= 0:
        return float("nan")
    return sharded.get(batch, 0.0) / base[batch]


def peak_speedup(
    points: List[BatchingPoint],
    batch: int = 16,
    protocol: Optional[str] = None,
    linger_mode: Optional[str] = None,
) -> float:
    """Peak-throughput ratio of ``batch`` over the per-message protocol."""
    peaks = peak_throughputs(points, protocol=protocol, linger_mode=linger_mode)
    base = peaks.get(1, 0.0)
    if base <= 0:
        return float("nan")
    return peaks.get(batch, 0.0) / base


def batching_table(points: List[BatchingPoint], topology: str = "lan") -> str:
    testbed = "Fig. 8 WAN" if topology == "wan" else "Fig. 7 LAN"
    if any(p.conflict == "keys" for p in points):
        testbed += ", conflict=keys"
    rows = [
        (
            p.protocol,
            p.linger_mode,
            p.batch,
            p.ingress,
            p.shards,
            p.placement,
            p.clients,
            p.throughput,
            p.mean_latency * 1000,
            p.mean_ack_latency * 1000,
            p.mean_post_ack_latency * 1000,
            p.p95_latency * 1000,
            p.completed,
        )
        for p in points
    ]
    return render_table(
        [
            "protocol",
            "linger",
            "batch",
            "ingress",
            "shards",
            "placement",
            "clients",
            "msgs/s",
            "mean lat (ms)",
            "ack leg (ms)",
            "order leg (ms)",
            "p95 lat (ms)",
            "completed",
        ],
        rows,
        title=f"Batching ablation — throughput vs batch size per protocol ({testbed})",
    )


def headline(points: List[BatchingPoint]) -> str:
    # One line per (protocol, batch size); when several linger modes,
    # ingress batch sizes or shard counts were swept, one line per
    # combination too — merging them would silently credit whichever axis
    # won the peak.
    modes = [m for m in dict.fromkeys(p.linger_mode for p in points) if m != "-"]
    ingresses = sorted({p.ingress for p in points})
    shard_counts = sorted({p.shards for p in points})
    placements = list(dict.fromkeys(p.placement for p in points if p.shards > 1)) or ["flat"]
    lines = []
    for protocol in dict.fromkeys(p.protocol for p in points):
        for mode in modes or [None]:
            for ingress in ingresses:
                for shards in shard_counts:
                    for placement in placements if shards > 1 else ["flat"]:
                        peaks = peak_throughputs(
                            points, protocol=protocol, linger_mode=mode,
                            ingress=ingress, shards=shards, placement=placement,
                        )
                        base = peaks.get(1, 0.0)
                        tag = f" [{mode}]" if len(modes) > 1 else ""
                        itag = f" ingress={ingress}" if len(ingresses) > 1 else ""
                        stag = f" shards={shards}" if len(shard_counts) > 1 else ""
                        ptag = (
                            f" place={placement}"
                            if len(placements) > 1 and shards > 1
                            else ""
                        )
                        for batch in sorted(peaks):
                            if batch == 1 or base <= 0:
                                continue
                            lines.append(
                                f"{protocol}{tag}{itag}{stag}{ptag} batch={batch}: "
                                f"peak {peaks[batch]:,.0f} msgs/s "
                                f"({peaks[batch] / base:.2f}x over per-message)"
                            )
    # The sharding acceptance bar: lanes vs the single leader at the same
    # (largest) batching knobs, one line per placement policy swept.
    if len(shard_counts) > 1:
        batch = max(p.batch for p in points)
        ingress = max(ingresses)
        for protocol in dict.fromkeys(p.protocol for p in points):
            for shards in shard_counts:
                if shards == 1:
                    continue
                for placement in placements:
                    ratio = shard_speedup(
                        points, shards, batch=batch, ingress=ingress,
                        protocol=protocol, placement=placement,
                    )
                    ptag = f" [{placement}]" if len(placements) > 1 else ""
                    if ratio == ratio:  # skip NaN (protocol without sharding)
                        lines.append(
                            f"{protocol} shards={shards}{ptag}: "
                            f"{ratio:.2f}x peak over single-leader "
                            f"(batch {batch}, ingress {ingress})"
                        )
    return "\n".join(lines)


def _int_list(text: str) -> Tuple[int, ...]:
    """Parse a comma-separated list of positive ints (e.g. ``1,16``)."""
    try:
        values = tuple(int(part) for part in text.split(","))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {text!r}") from exc
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(f"values must be >= 1, got {text!r}")
    return values


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """The ablation's options — shared with the ``repro`` CLI subcommand
    so the two entry points can never drift."""
    parser.add_argument(
        "--protocol",
        choices=(*BATCHING_PROTOCOLS, "all"),
        default="all",
        help="protocol axis (default: all batching-capable protocols)",
    )
    parser.add_argument(
        "--linger-mode",
        choices=("fixed", "adaptive", "both"),
        default="fixed",
        help="linger mode axis: fixed max_linger, adaptive (EWMA of "
        "inter-arrival times, bounded by min/max linger), or both",
    )
    parser.add_argument(
        "--ingress-batch",
        type=_int_list,
        default=None,
        metavar="N[,N...]",
        help="client-side ingress coalescing axis: AmcastClient batch "
        "sizes to sweep, e.g. '1,16' (default: 1 — one MULTICAST per "
        "message, the paper's ingress)",
    )
    parser.add_argument(
        "--client-window",
        type=int,
        default=None,
        metavar="N",
        help="outstanding multicasts per closed-loop client (default: 4; "
        "raise it to give ingress batches company to coalesce with)",
    )
    parser.add_argument(
        "--shards",
        type=_int_list,
        default=None,
        metavar="N[,N...]",
        help="sharded multi-leader axis: ordering lanes per group to "
        "sweep, e.g. '1,4' (default: 1 — the paper's single leader per "
        "group; applies to protocols with sharding support, today WbCast)",
    )
    parser.add_argument(
        "--group-size",
        type=int,
        default=None,
        metavar="N",
        help="members per group (odd, default 3; the sharding ablation "
        "uses 5 so four lanes deal onto four distinct members)",
    )
    parser.add_argument(
        "--clients",
        type=_int_list,
        default=None,
        metavar="N[,N...]",
        help="client-count axis override (default: 100,300; peaks need "
        "deeper saturation, e.g. '300,600,1000')",
    )
    parser.add_argument(
        "--batch-sizes",
        type=_int_list,
        default=None,
        metavar="N[,N...]",
        help="batch-size axis override (default: 1,2,4,8,16)",
    )
    parser.add_argument(
        "--placement",
        choices=("flat", "site", "both"),
        default="flat",
        help="lane/leader placement axis for sharded WAN points: flat "
        "(topology-blind deal, the recorded baseline), site (site-affine "
        "lane leaders + geo-spread clients + tree-overlay dissemination), "
        "or both (ignored off the WAN / at shards=1)",
    )
    parser.add_argument(
        "--topology",
        choices=("lan", "wan"),
        default="lan",
        help="testbed: the Fig. 7 LAN (default) or the Fig. 8 "
        "three-data-centre WAN (sharded WAN grid)",
    )
    parser.add_argument(
        "--conflict",
        choices=("total", "keys"),
        default="total",
        help="delivery ordering granularity: total (the paper's atomic "
        "multicast, default) or keys (conflict-aware delivery — commuting "
        "disjoint-key messages skip the cross-lane merge wait; WbCast "
        "only, other protocols in the grid keep running total)",
    )
    parser.add_argument(
        "--key-universe",
        type=int,
        default=None,
        metavar="N",
        help="key universe for the synthetic single-key footprints "
        "clients stamp in keys mode (default: 64)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke grid (per-message vs one batched point)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="cProfile each (protocol, batch) phase and print per-phase "
        "CPU attribution ('-' or no value: stdout; FILE: write there)",
    )


def sweep_from_args(args: argparse.Namespace) -> BatchingSweepConfig:
    sweep = quick_sweep() if args.quick else default_sweep()
    if args.protocol != "all":
        sweep = replace(sweep, protocols=(args.protocol,))
    if args.linger_mode == "both":
        sweep = replace(sweep, linger_modes=("fixed", "adaptive"))
    else:
        sweep = replace(sweep, linger_modes=(args.linger_mode,))
    if args.ingress_batch is not None:
        sweep = replace(sweep, ingress_batches=args.ingress_batch)
    if args.client_window is not None:
        sweep = replace(sweep, client_window=max(1, args.client_window))
    if args.shards is not None:
        sweep = replace(sweep, shards=args.shards)
    if args.group_size is not None:
        sweep = replace(sweep, group_size=args.group_size)
    if args.clients is not None:
        sweep = replace(sweep, client_counts=args.clients)
    if args.batch_sizes is not None:
        sweep = replace(sweep, batch_sizes=args.batch_sizes)
    if getattr(args, "placement", "flat") == "both":
        sweep = replace(sweep, placements=("flat", "site"))
    else:
        sweep = replace(sweep, placements=(getattr(args, "placement", "flat"),))
    if getattr(args, "conflict", "total") != "total":
        sweep = replace(sweep, conflict=args.conflict)
    if getattr(args, "key_universe", None) is not None:
        sweep = replace(sweep, key_universe=max(1, args.key_universe))
    if args.topology != "lan":
        # WAN: one-way delays are ~1000x LAN, so the linger window that
        # lets batches fill scales with them (0.5 ms would be invisible
        # against a 65 ms hop), and the adaptive-linger floor comes from
        # the delay matrix rather than the LAN calibration.
        from ..placement import lane_timings
        from ..sim.network import WAN_ONE_WAY
        from .topologies import WAN_MAX_LINGER

        sweep = replace(
            sweep,
            topology=args.topology,
            max_linger=WAN_MAX_LINGER,
            min_linger=lane_timings(WAN_ONE_WAY).min_linger,
        )
    return sweep


def run_main(args: argparse.Namespace) -> None:
    """Run the ablation for an already-parsed argument namespace."""
    sweep = sweep_from_args(args)
    profiler = None
    if getattr(args, "profile", None) is not None:
        from ..obs import PhaseProfiler

        profiler = PhaseProfiler()
    points = run_batching(sweep, profiler=profiler)
    print(batching_table(points, topology=sweep.topology))
    print()
    print(headline(points))
    if profiler is not None:
        if args.profile == "-":
            print()
            print(profiler.report())
        else:
            profiler.write(args.profile)
            print(f"\nwrote profile to {args.profile}")


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro bench-batching",
        description="batch-size throughput ablation across protocols",
    )
    add_arguments(parser)
    run_main(parser.parse_args(argv))


if __name__ == "__main__":
    main()
