"""Batching ablation: throughput scaling vs. batch size (Fig. 7 topology).

The paper's protocol issues one ACCEPT quorum round trip per multicast, so
Figs. 7–8 saturate on per-message handling cost.  Leader-side batching
(``BatchingOptions``) amortises that cost: the leader replicates up to
``max_batch`` local-timestamp assignments per ``AcceptBatchMsg``, followers
ack whole batches, and consecutive DELIVER decisions share one wire
message.  This ablation sweeps the batch size on the Fig. 7 LAN testbed
(identical CPU model, client loop and topology for every point, so the
only varying factor is the batch size) and reports the peak throughput
scaling — the acceptance bar is ≥2× at batch 16 vs. the per-message
protocol.

Run ``python -m repro.bench.batching`` (or ``python -m repro
bench-batching``) for the default grid; ``REPRO_BENCH_FULL=1`` enables the
paper-scale one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import BatchingOptions
from ..protocols import WbCastProcess
from .report import render_table
from .sweep import DEFAULT_CPU_COST, SweepConfig, full_sweep_enabled
from .sweep import run_point as sweep_run_point
from .topologies import LAN_ONE_WAY, lan_testbed

#: Batch sizes swept by default; 1 is the paper's per-message protocol.
BATCH_SIZES = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class BatchingPoint:
    """One (batch size, client count) measurement."""

    batch: int
    clients: int
    throughput: float
    mean_latency: float
    p95_latency: float
    completed: int


@dataclass
class BatchingSweepConfig:
    batch_sizes: Sequence[int] = BATCH_SIZES
    client_counts: Sequence[int] = (100, 300)
    num_groups: int = 6
    group_size: int = 3
    dest_k: int = 2
    messages_per_client: int = 6
    cpu_cost: float = DEFAULT_CPU_COST
    cpu_jitter: float = 0.1
    network_jitter: float = 0.05
    #: Linger several LAN one-way delays so batches fill under load (0.5 ms
    #: against a ~5 ms saturated mean latency: cheap for what it buys).
    max_linger: float = 10 * LAN_ONE_WAY
    pipeline_depth: int = 4
    #: Outstanding multicasts per client; >1 sustains per-leader pressure.
    client_window: int = 4
    seed: int = 42


def default_sweep() -> BatchingSweepConfig:
    if full_sweep_enabled():
        return BatchingSweepConfig(
            client_counts=(100, 300, 600, 1000),
            num_groups=10,
            messages_per_client=10,
        )
    return BatchingSweepConfig()


def batching_options(sweep: BatchingSweepConfig, batch: int) -> BatchingOptions:
    """The knob settings for one swept batch size (1 = batching off)."""
    if batch <= 1:
        return BatchingOptions()
    return BatchingOptions(
        max_batch=batch,
        max_linger=sweep.max_linger,
        pipeline_depth=sweep.pipeline_depth,
    )


def run_point(sweep: BatchingSweepConfig, batch: int, clients: int) -> BatchingPoint:
    # One measurement = one point of the generic sweep harness; only the
    # batching knobs vary between grid cells.
    point = sweep_run_point(
        WbCastProcess,
        lambda config: lan_testbed(config, jitter=sweep.network_jitter),
        SweepConfig(
            num_groups=sweep.num_groups,
            group_size=sweep.group_size,
            messages_per_client=sweep.messages_per_client,
            cpu_cost=sweep.cpu_cost,
            cpu_jitter=sweep.cpu_jitter,
            network_jitter=sweep.network_jitter,
            seed=sweep.seed,
            batching=batching_options(sweep, batch),
            client_window=sweep.client_window,
        ),
        dest_k=sweep.dest_k,
        clients=clients,
    )
    return BatchingPoint(
        batch=batch,
        clients=clients,
        throughput=point.throughput,
        mean_latency=point.mean_latency,
        p95_latency=point.p95_latency,
        completed=point.completed,
    )


def run_batching(sweep: Optional[BatchingSweepConfig] = None) -> List[BatchingPoint]:
    sweep = sweep or default_sweep()
    points: List[BatchingPoint] = []
    for batch in sweep.batch_sizes:
        for clients in sweep.client_counts:
            points.append(run_point(sweep, batch, clients))
    return points


def peak_throughputs(points: List[BatchingPoint]) -> Dict[int, float]:
    """Best throughput per batch size across the swept client counts."""
    peaks: Dict[int, float] = {}
    for p in points:
        peaks[p.batch] = max(peaks.get(p.batch, 0.0), p.throughput)
    return peaks


def peak_speedup(points: List[BatchingPoint], batch: int = 16) -> float:
    """Peak-throughput ratio of ``batch`` over the per-message protocol."""
    peaks = peak_throughputs(points)
    base = peaks.get(1, 0.0)
    if base <= 0:
        return float("nan")
    return peaks.get(batch, 0.0) / base


def batching_table(points: List[BatchingPoint]) -> str:
    rows = [
        (
            p.batch,
            p.clients,
            p.throughput,
            p.mean_latency * 1000,
            p.p95_latency * 1000,
            p.completed,
        )
        for p in points
    ]
    return render_table(
        ["batch", "clients", "msgs/s", "mean lat (ms)", "p95 lat (ms)", "completed"],
        rows,
        title="Batching ablation — WbCast throughput vs batch size (Fig. 7 LAN)",
    )


def headline(points: List[BatchingPoint]) -> str:
    peaks = peak_throughputs(points)
    base = peaks.get(1, 0.0)
    lines = []
    for batch in sorted(peaks):
        if batch == 1 or base <= 0:
            continue
        lines.append(
            f"batch={batch}: peak {peaks[batch]:,.0f} msgs/s "
            f"({peaks[batch] / base:.2f}x over per-message)"
        )
    return "\n".join(lines)


def main() -> None:
    points = run_batching()
    print(batching_table(points))
    print()
    print(headline(points))


if __name__ == "__main__":
    main()
