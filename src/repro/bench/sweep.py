"""Shared client-sweep machinery for the Fig. 7 / Fig. 8 reproductions.

One *point* = (protocol, number of destination groups, number of clients):
closed-loop clients multicast to ``dest_k`` uniformly random groups over a
given topology, with a per-process CPU service-time model providing the
saturation behaviour of the paper's figures.  We report mean latency and
throughput per point, plus the paper's headline comparison: WbCast's
improvement over FastCast at the largest client count.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..config import BatchingOptions, ClusterConfig
from ..sim import UniformCpu
from ..sim.network import DelayModel
from ..workload import ClientOptions
from .harness import run_workload
from .metrics import summarize_latencies
from .report import render_table

#: Default CPU service time per handled message, calibrated so a 10-group
#: LAN cluster saturates around 10^3 clients (the region Fig. 7 reports).
DEFAULT_CPU_COST = 0.000008  # 8 µs


@dataclass(frozen=True)
class SweepPoint:
    protocol: str
    dest_k: int
    clients: int
    mean_latency: float
    p95_latency: float
    throughput: float
    completed: int
    #: SUBMIT_ACK-driven split of the end-to-end latency: launch → fully
    #: acked, and acked → first delivery everywhere (NaN when unmeasured).
    mean_ack_latency: float = float("nan")
    mean_post_ack_latency: float = float("nan")


@dataclass
class SweepConfig:
    num_groups: int = 10
    group_size: int = 3
    client_counts: Sequence[int] = (50, 200, 500, 1000)
    dest_ks: Sequence[int] = (2, 6)
    messages_per_client: int = 10
    cpu_cost: float = DEFAULT_CPU_COST
    cpu_jitter: float = 0.1
    network_jitter: float = 0.05
    seed: int = 42
    #: Leader-side batching knobs, applied to protocols that support them
    #: (None: the paper's per-message protocol everywhere).
    batching: Optional[BatchingOptions] = None
    #: Outstanding multicasts per closed-loop client (1 = paper's loop).
    client_window: int = 1
    #: Client-side ingress coalescing knobs (None: one MULTICAST per
    #: message, the paper's wire protocol).
    ingress: Optional[BatchingOptions] = None
    #: Ordering lanes per group (1 = the paper's single leader; honoured
    #: by protocols declaring SUPPORTS_SHARDING, ignored by the rest).
    shards_per_group: int = 1
    #: Pre-built protocol options instance (e.g. a ``WbCastOptions`` with
    #: topology-derived probe/advance pacing); the harness folds
    #: ``batching`` on top, so both knobs compose.  None: the protocol's
    #: defaults.
    protocol_options: Optional[object] = None
    #: Post-build hook on the cluster config (e.g. attaching a placement
    #: policy whose site map must match the topology factory's).
    config_hook: Optional[Callable[[ClusterConfig], ClusterConfig]] = None
    #: Delivery ordering granularity: "total" (the paper) or "keys"
    #: (conflict-aware delivery — commuting messages skip the cross-lane
    #: merge wait; wbcast only).
    conflict: str = "total"
    #: With conflict="keys": clients stamp each submission with one key
    #: drawn uniformly from a universe of this size (0: no footprints —
    #: every message is a fence and keys mode degenerates to total).
    key_universe: int = 0


def full_sweep_enabled() -> bool:
    """Opt into the larger parameter grid via REPRO_BENCH_FULL=1."""
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


# -- serving-tier axes (bench-serving) ---------------------------------------
#
# The serving bench sweeps read-ratio x skew x tenants; the axes live here
# next to the client-sweep machinery so every bench parses and bounds them
# the same way (--quick stays a fixed small grid, never a user-sized one).

SERVING_READ_RATIOS = (0.5, 0.9, 0.99)
SERVING_SKEWS = (0.0, 0.99)
SERVING_TENANTS = (1, 4)
QUICK_SERVING_READ_RATIOS = (0.9,)
QUICK_SERVING_SKEWS = (0.0, 0.99)
QUICK_SERVING_TENANTS = (2,)


def float_list(text: str) -> tuple:
    """argparse type: comma-separated floats (``0.5,0.9,0.99``)."""
    import argparse

    try:
        return tuple(float(part) for part in text.split(","))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"not a comma-separated float list: {text!r}"
        ) from exc


def int_list(text: str) -> tuple:
    """argparse type: comma-separated positive ints (``1,4``)."""
    import argparse

    try:
        values = tuple(int(part) for part in text.split(","))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"not a comma-separated int list: {text!r}"
        ) from exc
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(f"values must be >= 1, got {text!r}")
    return values


def add_serving_axes(parser) -> None:
    """The read-ratio / skew / tenants axis options, shared by benches."""
    parser.add_argument(
        "--read-ratio",
        type=float_list,
        default=None,
        metavar="R[,R...]",
        help=f"read-fraction axis (default: {','.join(map(str, SERVING_READ_RATIOS))})",
    )
    parser.add_argument(
        "--skew",
        type=float_list,
        default=None,
        metavar="S[,S...]",
        help="Zipf-exponent axis; 0 is uniform, 0.99 the classic hot-key "
        f"setting (default: {','.join(map(str, SERVING_SKEWS))})",
    )
    parser.add_argument(
        "--tenants",
        type=int_list,
        default=None,
        metavar="N[,N...]",
        help="tenant-count axis: tenants carry DRR weights and admission "
        f"caps (default: {','.join(map(str, SERVING_TENANTS))})",
    )


def serving_axes_from_args(args, quick: bool = False):
    """Resolve the three serving axes: explicit flags beat the grid default."""
    read_ratios = args.read_ratio or (
        QUICK_SERVING_READ_RATIOS if quick else SERVING_READ_RATIOS
    )
    skews = args.skew if args.skew is not None else (
        QUICK_SERVING_SKEWS if quick else SERVING_SKEWS
    )
    tenants = args.tenants or (QUICK_SERVING_TENANTS if quick else SERVING_TENANTS)
    return read_ratios, skews, tenants


def run_point(
    protocol_cls,
    topology_factory: Callable[[ClusterConfig], DelayModel],
    sweep: SweepConfig,
    dest_k: int,
    clients: int,
) -> SweepPoint:
    config = ClusterConfig.build(
        sweep.num_groups,
        sweep.group_size,
        clients,
        shards_per_group=sweep.shards_per_group,
        conflict=sweep.conflict,
    )
    if sweep.config_hook is not None:
        config = sweep.config_hook(config)
    network = topology_factory(config)
    cpu = UniformCpu(sweep.cpu_cost, jitter=sweep.cpu_jitter)
    result = run_workload(
        protocol_cls,
        config=config,
        messages_per_client=sweep.messages_per_client,
        dest_k=dest_k,
        network=network,
        seed=sweep.seed,
        cpu=cpu,
        protocol_options=sweep.protocol_options,
        client_options=ClientOptions(
            num_messages=sweep.messages_per_client,
            window=sweep.client_window,
            ingress=sweep.ingress,
            key_universe=sweep.key_universe if sweep.conflict == "keys" else 0,
        ),
        batching=sweep.batching,
        record_sends=False,
        drain_grace=0.0,
    )
    summary = summarize_latencies(result.latencies())
    from .metrics import mean_split

    ack_mean, post_ack_mean = mean_split(result.latency_split())
    return SweepPoint(
        protocol=protocol_cls.__name__,
        dest_k=dest_k,
        clients=clients,
        mean_latency=summary.mean if summary else float("nan"),
        p95_latency=summary.p95 if summary else float("nan"),
        throughput=result.throughput(),
        completed=result.completed,
        mean_ack_latency=ack_mean,
        mean_post_ack_latency=post_ack_mean,
    )


def run_sweep(
    protocols: Dict[str, type],
    topology_factory: Callable[[ClusterConfig], DelayModel],
    sweep: Optional[SweepConfig] = None,
) -> List[SweepPoint]:
    sweep = sweep or SweepConfig()
    points: List[SweepPoint] = []
    for name, cls in protocols.items():
        for dest_k in sweep.dest_ks:
            for clients in sweep.client_counts:
                points.append(run_point(cls, topology_factory, sweep, dest_k, clients))
    return points


def format_sweep(points: List[SweepPoint], title: str) -> str:
    rows = [
        (
            p.protocol.replace("Process", ""),
            p.dest_k,
            p.clients,
            p.mean_latency * 1000,
            p.p95_latency * 1000,
            p.throughput,
        )
        for p in points
    ]
    return render_table(
        ["protocol", "dests", "clients", "mean lat (ms)", "p95 lat (ms)", "msgs/s"],
        rows,
        title=title,
    )


def headline_comparison(points: List[SweepPoint]) -> str:
    """WbCast-vs-FastCast improvement at the largest client count per
    destination-group count — the paper's 70–150% (LAN) / 47–124% (WAN)."""
    lines: List[str] = []
    by_key: Dict[tuple, SweepPoint] = {
        (p.protocol, p.dest_k, p.clients): p for p in points
    }
    dest_ks = sorted({p.dest_k for p in points})
    max_clients = max((p.clients for p in points), default=0)
    for dest_k in dest_ks:
        wb = by_key.get(("WbCastProcess", dest_k, max_clients))
        fc = by_key.get(("FastCastProcess", dest_k, max_clients))
        if not wb or not fc or wb.mean_latency == 0 or wb.throughput == 0:
            continue
        lat_gain = (fc.mean_latency / wb.mean_latency - 1.0) * 100
        thr_gain = (wb.throughput / fc.throughput - 1.0) * 100
        lines.append(
            f"dests={dest_k} @ {max_clients} clients: WbCast vs FastCast — "
            f"latency {lat_gain:+.0f}%, throughput {thr_gain:+.0f}%"
        )
    return "\n".join(lines)
