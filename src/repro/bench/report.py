"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)
