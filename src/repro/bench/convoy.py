"""Figure 2 reproduction: the convoy effect in Skeen's protocol.

The scenario of the paper's Fig. 2: message ``m`` to groups {g1, g2} is
about to commit at g1 when a conflicting ``m'`` arrives over a near-zero
link, taking a local timestamp below m's global timestamp.  m's delivery
then waits for m' to commit — up to 2δ more, doubling the collision-free
latency from 2δ to 4δ.

We sweep the arrival offset of m' and report m's delivery latency at each
offset, showing the characteristic step: 2δ without interference, rising
towards 4δ as m' arrives ever closer to m's commit point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Type

from ..protocols.skeen import SkeenProcess
from .latency_table import DELTA, _FastLink, _build
from .report import render_table


@dataclass(frozen=True)
class ConvoyPoint:
    offset_delta: float  # when m' was injected, in δ after m
    latency_delta: float  # m's delivery latency, in δ


def run_convoy(
    protocol_cls: Optional[Type] = None,
    delta: float = DELTA,
    offsets: Optional[List[float]] = None,
) -> List[ConvoyPoint]:
    protocol_cls = protocol_cls or SkeenProcess
    if offsets is None:
        offsets = [i * 0.25 for i in range(0, 17)]  # 0δ .. 4δ
    t0 = 20 * delta
    warmup = [(i * delta, (1,)) for i in range(5)]  # skew group 1's clock
    points: List[ConvoyPoint] = []
    for off in offsets:
        tau = off * delta
        sim, config, trace, tracker, clients = _build(
            protocol_cls,
            _FastLink(delta, fast_src=None, fast_dst=None, eps=delta / 1000),
            [warmup, [(t0, (0, 1))], [(t0 + tau, (0, 1))]],
        )
        # The fast link races m' from its client to group 0's leader.
        network = _FastLink(delta, fast_src=config.clients[2], fast_dst=0, eps=delta / 1000)
        sim.network = network
        sim.run()
        mid = clients[1].sent[0]
        latency = tracker.latency(mid)
        points.append(ConvoyPoint(off, latency / delta if latency else float("nan")))
    return points


def format_convoy(points: List[ConvoyPoint], protocol_name: str = "Skeen") -> str:
    return render_table(
        ["m' offset (δ)", "latency of m (δ)"],
        [(p.offset_delta, round(p.latency_delta, 3)) for p in points],
        title=(
            f"Figure 2 — convoy effect in {protocol_name}: delivery latency of m "
            "vs arrival offset of conflicting m'"
        ),
    )


def main() -> None:
    points = run_convoy()
    print(format_convoy(points))
    worst = max(p.latency_delta for p in points)
    base = min(p.latency_delta for p in points)
    print(f"\ncollision-free: {base:.2f}δ, worst under collision: {worst:.2f}δ "
          f"(paper: 2δ → 4δ)")


if __name__ == "__main__":
    main()
