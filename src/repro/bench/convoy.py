"""Figure 2 reproduction: the convoy effect in Skeen's protocol.

The scenario of the paper's Fig. 2: message ``m`` to groups {g1, g2} is
about to commit at g1 when a conflicting ``m'`` arrives over a near-zero
link, taking a local timestamp below m's global timestamp.  m's delivery
then waits for m' to commit — up to 2δ more, doubling the collision-free
latency from 2δ to 4δ.

We sweep the arrival offset of m' and report m's delivery latency at each
offset, showing the characteristic step: 2δ without interference, rising
towards 4δ as m' arrives ever closer to m's commit point.

Beyond the paper: :func:`run_convoy` takes batching and sharding knobs,
and :func:`run_convoy_ablation` sweeps them — *does batching widen the
convoy window C?*  A leader lingering a proposal for co-batched company
delays its commit point by up to the linger, which extends the interval
in which a conflicting ``m'`` can still sneak under ``m``'s global
timestamp; sharding instead routes ``m`` and ``m'`` to hash-chosen lanes,
so the collision only forms when they share one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Type

from ..config import BatchingOptions
from ..protocols.skeen import SkeenProcess
from .harness import apply_batching
from .latency_table import DELTA, _FastLink, _build
from .report import render_table


@dataclass(frozen=True)
class ConvoyPoint:
    offset_delta: float  # when m' was injected, in δ after m
    latency_delta: float  # m's delivery latency, in δ


def run_convoy(
    protocol_cls: Optional[Type] = None,
    delta: float = DELTA,
    offsets: Optional[List[float]] = None,
    batching: Optional[BatchingOptions] = None,
    shards: int = 1,
) -> List[ConvoyPoint]:
    protocol_cls = protocol_cls or SkeenProcess
    options = (
        apply_batching(protocol_cls, None, batching) if batching is not None else None
    )
    if offsets is None:
        offsets = [i * 0.25 for i in range(0, 17)]  # 0δ .. 4δ
    t0 = 20 * delta
    warmup = [(i * delta, (1,)) for i in range(5)]  # skew group 1's clock
    points: List[ConvoyPoint] = []
    for off in offsets:
        tau = off * delta
        sim, config, trace, tracker, clients = _build(
            protocol_cls,
            _FastLink(delta, fast_src=None, fast_dst=None, eps=delta / 1000),
            [warmup, [(t0, (0, 1))], [(t0 + tau, (0, 1))]],
            options=options,
            shards_per_group=shards,
        )
        # The fast link races m' from its client to group 0's leader.
        network = _FastLink(delta, fast_src=config.clients[2], fast_dst=0, eps=delta / 1000)
        sim.network = network
        sim.run()
        mid = clients[1].sent[0]
        latency = tracker.latency(mid)
        points.append(ConvoyPoint(off, latency / delta if latency else float("nan")))
    return points


def convoy_window(points: List[ConvoyPoint], tolerance: float = 0.05) -> float:
    """The convoy window C in δ: the widest injection offset still
    observed inflating m's latency beyond the collision-free baseline.

    When even the sweep's largest offset is inflated, the window never
    closed within the sweep — the honest answer is ``inf`` (right-
    censored), not the sweep edge masquerading as a measurement.
    """
    finite = [p for p in points if p.latency_delta == p.latency_delta]
    if not finite:
        return float("nan")
    base = min(p.latency_delta for p in finite)
    inflated = [p.offset_delta for p in finite if p.latency_delta > base + tolerance]
    if not inflated:
        return 0.0
    if max(inflated) >= max(p.offset_delta for p in finite):
        return float("inf")
    return max(inflated)


@dataclass(frozen=True)
class ConvoyVariant:
    """One row of the batching/sharding convoy ablation."""

    label: str
    protocol_cls: Type
    batching: Optional[BatchingOptions] = None
    shards: int = 1


@dataclass(frozen=True)
class ConvoyAblationRow:
    label: str
    base_delta: float  # collision-free latency (δ)
    worst_delta: float  # worst latency under the adversarial m' (δ)
    window_delta: float  # convoy window C (δ)


def run_convoy_ablation(
    variants: Sequence[ConvoyVariant],
    delta: float = DELTA,
    sweep_to: float = 8.0,
    step: float = 0.25,
) -> List[ConvoyAblationRow]:
    offsets = [i * step for i in range(int(sweep_to / step) + 1)]
    rows: List[ConvoyAblationRow] = []
    for v in variants:
        points = run_convoy(
            v.protocol_cls, delta, offsets, batching=v.batching, shards=v.shards
        )
        finite = [p.latency_delta for p in points if p.latency_delta == p.latency_delta]
        rows.append(
            ConvoyAblationRow(
                label=v.label,
                base_delta=min(finite) if finite else float("nan"),
                worst_delta=max(finite) if finite else float("nan"),
                window_delta=convoy_window(points),
            )
        )
    return rows


def format_convoy_ablation(rows: List[ConvoyAblationRow]) -> str:
    def window(value: float) -> str:
        if value == float("inf"):
            return "unclosed in sweep"
        return str(round(value, 3))

    return render_table(
        ["variant", "collision-free (δ)", "worst (δ)", "window C (δ)"],
        [
            (r.label, round(r.base_delta, 3), round(r.worst_delta, 3),
             window(r.window_delta))
            for r in rows
        ],
        title=(
            "Convoy ablation — does batching widen the convoy window C? "
            "(adversarial m' offset sweep, Fig. 2 construction)"
        ),
    )


def format_convoy(points: List[ConvoyPoint], protocol_name: str = "Skeen") -> str:
    return render_table(
        ["m' offset (δ)", "latency of m (δ)"],
        [(p.offset_delta, round(p.latency_delta, 3)) for p in points],
        title=(
            f"Figure 2 — convoy effect in {protocol_name}: delivery latency of m "
            "vs arrival offset of conflicting m'"
        ),
    )


def add_arguments(parser) -> None:
    """The sweep's options — shared with the ``repro convoy`` subcommand
    so the two entry points can never drift."""
    from ..protocols import PROTOCOLS

    def positive_int(text):
        import argparse

        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    def nonneg_float(text):
        import argparse

        value = float(text)
        if value < 0:
            raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
        return value

    parser.add_argument("--protocol", choices=sorted(PROTOCOLS), default="skeen")
    parser.add_argument("--batch-size", type=positive_int, default=1, metavar="N",
                        help="leader-side batch size (1: per-message protocol)")
    parser.add_argument("--batch-linger", type=nonneg_float, default=0.0,
                        metavar="SECS",
                        help="leader-side linger; the knob that widens C")
    parser.add_argument("--shards", type=positive_int, default=1, metavar="S",
                        help="ordering lanes per group (wbcast)")


def run_main(args) -> None:
    """Run the sweep for an already-parsed argument namespace."""
    import sys

    from ..protocols import PROTOCOLS

    protocol_cls = PROTOCOLS[args.protocol]
    batches = getattr(protocol_cls, "SUPPORTS_BATCHING", False)
    shards_supported = getattr(protocol_cls, "SUPPORTS_SHARDING", False)
    batching = None
    if args.batch_size > 1 or args.batch_linger > 0:
        if batches:
            batching = BatchingOptions(
                max_batch=max(1, args.batch_size), max_linger=args.batch_linger
            )
        else:
            print(
                f"note: --batch-size/--batch-linger have no effect on "
                f"{args.protocol} (no batching support)",
                file=sys.stderr,
            )
    shards = args.shards
    if shards > 1 and not shards_supported:
        print(
            f"note: --shards has no effect on {args.protocol} "
            "(no sharding support)",
            file=sys.stderr,
        )
        shards = 1
    points = run_convoy(protocol_cls, batching=batching, shards=shards)
    # Label only the knobs that actually applied, so a recorded table
    # never claims a configuration the run did not execute.
    name = args.protocol
    if batching is not None:
        name += f" batch={args.batch_size} linger={args.batch_linger}s"
    if shards > 1:
        name += f" shards={shards}"
    print(format_convoy(points, name))
    finite = [p.latency_delta for p in points if p.latency_delta == p.latency_delta]
    print(f"\ncollision-free: {min(finite):.2f}δ, worst under collision: "
          f"{max(finite):.2f}δ, window C: {convoy_window(points):.2f}δ "
          f"(paper, Skeen per-message: 2δ → 4δ)")


def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro convoy",
        description="Fig. 2 convoy-effect sweep (with batching/sharding axes)",
    )
    add_arguments(parser)
    run_main(parser.parse_args(argv))


if __name__ == "__main__":
    main()
