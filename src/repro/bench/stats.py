"""Per-message-type traffic census of a run.

Breaks a trace's wire traffic down by protocol message type and by role
(leader vs follower vs client), normalised per completed multicast — the
view that explains where each protocol's CPU budget goes in Figs. 7–8.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..config import ClusterConfig
from .report import render_table


@dataclass(frozen=True)
class TrafficCensus:
    """Counts of wire messages by type and by receiving role."""

    by_type: Dict[str, int]
    by_receiver_role: Dict[str, int]
    total: int
    completed_multicasts: int

    def per_multicast(self, name: str) -> float:
        if self.completed_multicasts == 0:
            return float("nan")
        return self.by_type.get(name, 0) / self.completed_multicasts


def census(trace, config: ClusterConfig, completed: int,
           leaders: Tuple[int, ...] = ()) -> TrafficCensus:
    """Build a census from a trace with send recording enabled."""
    leader_set = set(leaders) if leaders else {
        config.default_leader(g) for g in config.group_ids
    }
    by_type: Counter = Counter()
    by_role: Counter = Counter()
    for rec in trace.sends:
        name = type(rec.msg).__name__
        by_type[name] += 1
        if rec.dst in leader_set:
            by_role["leader"] += 1
        elif config.is_member(rec.dst):
            by_role["follower"] += 1
        else:
            by_role["client"] += 1
    return TrafficCensus(
        by_type=dict(by_type),
        by_receiver_role=dict(by_role),
        total=sum(by_type.values()),
        completed_multicasts=completed,
    )


def census_table(label: str, c: TrafficCensus) -> str:
    rows: List[Tuple[str, int, float]] = [
        (name, count, count / max(1, c.completed_multicasts))
        for name, count in sorted(c.by_type.items(), key=lambda kv: -kv[1])
    ]
    rows.append(("TOTAL", c.total, c.total / max(1, c.completed_multicasts)))
    return render_table(
        ["message type", "count", "per multicast"],
        rows,
        title=f"Traffic census — {label} "
              f"({c.completed_multicasts} multicasts; leader-bound: "
              f"{c.by_receiver_role.get('leader', 0)}, follower-bound: "
              f"{c.by_receiver_role.get('follower', 0)})",
    )
