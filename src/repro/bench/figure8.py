"""Figure 8 reproduction: WAN performance with increasing client counts.

The paper: the same 10 groups replicated across three Google Cloud regions
(Oregon / N. Virginia / England; RTTs 60 / 75 / 130 ms), each region
holding a full copy of the data.  WbCast outperforms FastCast by 47–124%
at 1000 clients and sustains higher throughput at high client counts; in
WAN the ordering FastCast < Skeen of the LAN flips — speculation pays when
δ dominates CPU cost.

Run ``python -m repro.bench.figure8``; set ``REPRO_BENCH_FULL=1`` for the
larger grid.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import ClusterConfig
from .sweep import (
    SweepConfig,
    SweepPoint,
    format_sweep,
    full_sweep_enabled,
    headline_comparison,
    run_sweep,
)
from .figure7 import PROTOCOLS
from .topologies import wan_testbed


def default_sweep() -> SweepConfig:
    if full_sweep_enabled():
        return SweepConfig(
            client_counts=(50, 100, 200, 500, 1000),
            dest_ks=(1, 2, 4, 6, 10),
            messages_per_client=6,
        )
    return SweepConfig(
        num_groups=6,
        client_counts=(20, 100, 300),
        dest_ks=(2, 4),
        messages_per_client=4,
    )


def run_figure8(sweep: Optional[SweepConfig] = None) -> List[SweepPoint]:
    sweep = sweep or default_sweep()

    def topology(config: ClusterConfig):
        return wan_testbed(config, jitter=sweep.network_jitter)

    return run_sweep(PROTOCOLS, topology, sweep)


def main() -> None:
    points = run_figure8()
    print(format_sweep(points, "Figure 8 (WAN): latency & throughput vs clients"))
    print()
    print(headline_comparison(points))


if __name__ == "__main__":
    main()
