"""Empirical reproduction of the paper's latency table (Theorems 3–4, §VI).

Collision-free latency (CFL): one message, constant one-way delay δ, no
interference; we report the delay until first delivery in every destination
group (the paper's metric — reached at the leaders) and until *all* correct
members delivered (the followers' extra DELIVER hop).

Failure-free latency (FFL): the convoy-effect worst case.  A conflicting
message m' is aimed to arrive at one destination leader *just* before that
leader's clock passes m's global timestamp, over an adversarially fast
link (δ is only an upper bound on delays, so a near-zero link is fair
game — exactly the Fig. 2 construction).  m then waits for m' to commit.
Sweeping the injection offset and taking the worst observed latency of m
reproduces Equation (4): FFL = CFL + C, where C is the protocol's
clock-advance lag.

Expected (paper):  Skeen 2δ/4δ · WbCast 3δ/5δ · FastCast 4δ/8δ ·
FT-Skeen 6δ/12δ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import ClusterConfig
from ..sim import ConstantDelay, Simulator, Trace
from ..sim.network import DelayModel
from ..types import ProcessId
from ..workload import ClientOptions, DeliveryTracker, OneShotClient
from .report import render_table

#: Theoretical (collision-free, failure-free) latencies in δ units (§VI).
PAPER_LATENCIES: Dict[str, Tuple[int, int]] = {
    "skeen": (2, 4),
    "wbcast": (3, 5),
    "fastcast": (4, 8),
    "ftskeen": (6, 12),
}

DELTA = 0.001  # one δ of simulated time (1 ms)


class _FastLink(DelayModel):
    """Constant δ everywhere except one adversarially fast (src, dst) link."""

    def __init__(self, delta: float, fast_src: ProcessId, fast_dst: ProcessId,
                 eps: float) -> None:
        self._delta = delta
        self._fast = (fast_src, fast_dst)
        self._eps = eps

    def delay(self, src, dst, size, now, rng) -> float:
        if src == dst:
            return 0.0
        if (src, dst) == self._fast:
            return self._eps
        return self._delta

    def bound(self) -> float:
        return self._delta


def _group_size_for(protocol_cls) -> int:
    return 1 if protocol_cls.__name__ == "SkeenProcess" else 3


def _build(
    protocol_cls,
    network,
    schedules,
    num_groups: int = 2,
    options=None,
    shards_per_group: int = 1,
):
    """One simulator with OneShot clients following ``schedules``."""
    group_size = _group_size_for(protocol_cls)
    config = ClusterConfig.build(
        num_groups, group_size, len(schedules), shards_per_group=shards_per_group
    )
    trace = Trace()
    sim = Simulator(network, seed=0, trace=trace)
    tracker = DeliveryTracker(config, sim=sim)
    trace.attach(tracker)
    for pid in config.all_members:
        sim.add_process(
            pid, lambda rt, p=pid: protocol_cls(p, config, rt, options=options)
        )
    clients = []
    for pid, schedule in zip(config.clients, schedules):
        clients.append(
            sim.add_process(
                pid,
                lambda rt, p=pid, s=schedule: OneShotClient(
                    p, config, rt, protocol_cls, tracker, s, ClientOptions()
                ),
            )
        )
    return sim, config, trace, tracker, clients


def measure_cfl(protocol_cls, delta: float = DELTA) -> Tuple[float, float]:
    """(leader CFL, all-members CFL) in δ units for one isolated message."""
    sim, config, trace, tracker, clients = _build(
        protocol_cls, ConstantDelay(delta), [[(0.0, (0, 1))]]
    )
    sim.run()
    mid = clients[0].sent[0]
    leader_latency = tracker.latency(mid)
    all_latency = max(
        rec.t for rec in trace.deliveries if rec.m.mid == mid
    ) - tracker.multicast_time[mid]
    return leader_latency / delta, all_latency / delta


def measure_ffl(
    protocol_cls,
    delta: float = DELTA,
    sweep_to: float = 8.0,
    step: float = 0.125,
) -> float:
    """Worst observed latency (in δ units) of a message under one
    adversarially timed conflicting message, over an offset sweep.

    The scenario generalises Fig. 2: warm-up traffic addressed only to
    group 1 skews its clock ahead of group 0's, so message ``m`` (to both
    groups) gets a high global timestamp while group 0's leader still has
    a low clock.  The conflicting ``m'`` then races over a near-zero link
    to group 0's leader; arriving before that leader's clock passes m's
    global timestamp, it takes a lower local timestamp and blocks m until
    m' itself commits — which takes m's full commit pipeline again.
    """
    worst = 0.0
    group_size = _group_size_for(protocol_cls)
    fast_dst = 0  # the adversarial fast link targets the leader of group 0
    t0 = 20 * delta  # m is multicast well after the warm-up has quiesced
    warmup = [(i * delta, (1,)) for i in range(5)]
    offsets = [delta * step * i for i in range(int(sweep_to / step) + 1)]
    for tau in offsets:
        config = ClusterConfig.build(2, group_size, 3)
        fast_src = config.clients[2]
        network = _FastLink(delta, fast_src, fast_dst, eps=delta / 1000)
        sim, config, trace, tracker, clients = _build(
            protocol_cls,
            network,
            [warmup, [(t0, (0, 1))], [(t0 + tau, (0, 1))]],
        )
        sim.run()
        mid = clients[1].sent[0]
        latency = tracker.latency(mid)
        if latency is not None and latency > worst:
            worst = latency
    return worst / delta


@dataclass(frozen=True)
class LatencyRow:
    protocol: str
    cfl_leader: float
    cfl_all: float
    ffl: float
    paper_cfl: int
    paper_ffl: int


def build_latency_table(protocols: Optional[Dict[str, type]] = None) -> List[LatencyRow]:
    if protocols is None:
        from ..protocols import PROTOCOLS

        protocols = {k: v for k, v in PROTOCOLS.items() if k in PAPER_LATENCIES}
    rows: List[LatencyRow] = []
    for name, cls in protocols.items():
        cfl_leader, cfl_all = measure_cfl(cls)
        ffl = measure_ffl(cls)
        paper_cfl, paper_ffl = PAPER_LATENCIES[name]
        rows.append(LatencyRow(name, cfl_leader, cfl_all, ffl, paper_cfl, paper_ffl))
    return rows


def format_latency_table(rows: List[LatencyRow]) -> str:
    return render_table(
        ["protocol", "CFL (δ) leader", "CFL (δ) all", "FFL (δ) measured",
         "paper CFL", "paper FFL"],
        [
            (r.protocol, round(r.cfl_leader, 3), round(r.cfl_all, 3),
             round(r.ffl, 3), r.paper_cfl, r.paper_ffl)
            for r in rows
        ],
        title="Latency in message delays (δ): measured vs paper (Thms 3-4, §VI)",
    )


def main() -> None:
    print(format_latency_table(build_latency_table()))


if __name__ == "__main__":
    main()
