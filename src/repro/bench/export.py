"""CSV export of sweep results, for plotting outside the terminal.

``pytest benchmarks/`` writes human tables to ``results/``; this module
writes the same data as machine-readable CSV so the figures can be
re-plotted (gnuplot, matplotlib, spreadsheets) without re-running.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Any, Iterable, List, Union

from .sweep import SweepPoint


def sweep_to_csv(points: Iterable[SweepPoint]) -> str:
    """Render sweep points as CSV text (header + one row per point)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["protocol", "dest_k", "clients", "mean_latency_s",
         "p95_latency_s", "throughput_msgs_s", "completed"]
    )
    for p in points:
        writer.writerow(
            [p.protocol.replace("Process", ""), p.dest_k, p.clients,
             f"{p.mean_latency:.9f}", f"{p.p95_latency:.9f}",
             f"{p.throughput:.3f}", p.completed]
        )
    return buffer.getvalue()


def write_csv(points: Iterable[SweepPoint], path: Union[str, pathlib.Path]) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(sweep_to_csv(points))
    return path


def write_json(payload: Any, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write a machine-readable bench artifact (``BENCH_*.json``).

    Deterministic rendering (sorted keys, trailing newline) so re-running
    an unchanged bench produces a byte-identical artifact.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def read_json(path: Union[str, pathlib.Path]) -> Any:
    """Read a ``BENCH_*.json`` artifact back."""
    return json.loads(pathlib.Path(path).read_text())


def read_csv(path: Union[str, pathlib.Path]) -> List[dict]:
    """Read an exported CSV back into dict rows (numbers parsed)."""
    rows: List[dict] = []
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            rows.append(
                {
                    "protocol": row["protocol"],
                    "dest_k": int(row["dest_k"]),
                    "clients": int(row["clients"]),
                    "mean_latency_s": float(row["mean_latency_s"]),
                    "p95_latency_s": float(row["p95_latency_s"]),
                    "throughput_msgs_s": float(row["throughput_msgs_s"]),
                    "completed": int(row["completed"]),
                }
            )
    return rows
