"""Observability overhead gate: telemetry must cost <= 3% throughput.

The telemetry subsystem's contract is "low-overhead": with
:class:`~repro.obs.ObsOptions` disabled every hook is one ``is None``
check, and with it enabled the span stamps and registry updates must not
meaningfully slow the pipeline.  Two measurements back that claim, both
over the *same* seeded virtual workload (byte-identical deliveries by
the differential test) with obs off and on:

* **deterministic work overhead** — the gated metric.  The simulator is
  a seeded discrete-event loop, so the number of function calls a run
  executes is exactly reproducible; the relative growth in profiled
  call count with telemetry on is a machine-independent proxy for its
  CPU cost.  It over-counts the true cost (telemetry's extra calls are
  mostly trivial C calls — ``list.append``, ``bisect`` — cheaper than
  the pipeline average), which makes the gate conservative.
* **wall-clock overhead** — reported for context: interleaved off/on
  pairs, CPU time with the GC pinned, median of per-pair ratios.  On a
  shared host this estimator carries several percent of noise either
  way (the repo's CI runners show +-10% swings run to run), which is
  exactly why it is not the gated number.

``python -m repro.bench.obs_overhead --out results/obs_overhead.txt``
records the standard results block; ``--gate 0.03`` (the default) makes
the exit code assert the acceptance bar, which is how CI runs it.
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import pstats
import statistics
import sys
import time
from typing import List, Optional, Sequence, Tuple

from ..config import ClusterConfig
from ..obs import ObsOptions
from ..protocols import PROTOCOLS
from .harness import run_workload

OBS_ON = ObsOptions(enabled=True)


def _run(obs: Optional[ObsOptions], messages: int, seed: int):
    config = ClusterConfig.build(3, 3, 4, obs=obs)
    result = run_workload(
        PROTOCOLS["wbcast"],
        config=config,
        messages_per_client=messages,
        dest_k=2,
        seed=seed,
    )
    assert result.all_done, "overhead run must complete to be a measurement"
    return result


def measure_work(messages: int = 120, seed: int = 9) -> Tuple[int, int, float]:
    """Deterministic profiled call counts -> (calls_off, calls_on, overhead).

    Same seed, same virtual workload: the call count is a pure function
    of the code, so this number is stable across runs and machines.
    """

    def calls(obs: Optional[ObsOptions]) -> int:
        prof = cProfile.Profile()
        prof.enable()
        _run(obs, messages, seed)
        prof.disable()
        return pstats.Stats(prof).total_calls

    calls_off = calls(None)
    calls_on = calls(OBS_ON)
    overhead = (calls_on - calls_off) / calls_off if calls_off else 0.0
    return calls_off, calls_on, overhead


def _timed_run(obs: Optional[ObsOptions], messages: int, seed: int) -> float:
    """CPU seconds for one run, GC quiesced outside the timed window."""
    gc.collect()
    gc.disable()
    try:
        t0 = time.process_time()
        _run(obs, messages, seed)
        return time.process_time() - t0
    finally:
        gc.enable()


def measure_wall(
    repeats: int = 15, messages: int = 60, seed: int = 9
) -> Tuple[float, float, float]:
    """Interleaved off/on timings -> (median_off, median_on, overhead).

    Alternating pair order spreads scheduler / frequency drift over both
    arms; the median of per-pair ratios then discards the heavy tail a
    shared host adds to either side.  Still noisy — informational only.
    """
    _timed_run(None, messages, seed)
    _timed_run(OBS_ON, messages, seed)
    off: List[float] = []
    on: List[float] = []
    ratios: List[float] = []
    for i in range(repeats):
        if i % 2 == 0:
            a = _timed_run(None, messages, seed)
            b = _timed_run(OBS_ON, messages, seed)
        else:
            b = _timed_run(OBS_ON, messages, seed)
            a = _timed_run(None, messages, seed)
        off.append(a)
        on.append(b)
        ratios.append(b / a)
    return (
        statistics.median(off),
        statistics.median(on),
        statistics.median(ratios) - 1.0,
    )


def results_block(
    calls_off: int,
    calls_on: int,
    work_overhead: float,
    median_off: float,
    median_on: float,
    wall_overhead: float,
    repeats: int,
    messages: int,
    gate: float,
) -> str:
    verdict = "PASS" if work_overhead <= gate else "FAIL"
    return "\n".join(
        [
            "# Observability overhead (bench: repro.bench.obs_overhead)",
            "# Same seeded sim workload (3 groups x 3, 4 clients, wbcast), "
            "obs off vs on.",
            "# Gated metric: deterministic work overhead (profiled function"
            " calls of the",
            "# seeded run; exactly reproducible, conservative for telemetry's"
            " cheap C calls).",
            "# Wall-clock medians attached for context; on shared hosts that"
            " estimator is",
            "# noisy either way, which is why it is not the gated number.",
            "# cli: python -m repro.bench.obs_overhead --out "
            "results/obs_overhead.txt",
            "",
            f"work off: {calls_off:10d} calls/run",
            f"work on : {calls_on:10d} calls/run",
            f"overhead: {work_overhead * 100:+.2f}% throughput cost with "
            "telemetry enabled (deterministic)",
            f"wall    : {median_off * 1000:.1f} -> {median_on * 1000:.1f} "
            f"ms/run ({wall_overhead * 100:+.2f}% median of {repeats} "
            f"interleaved pairs, {messages} msgs/client)",
            f"gate    : <= {gate * 100:.0f}% -> {verdict}",
            "",
        ]
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.obs_overhead",
        description="measure the telemetry subsystem's throughput cost",
    )
    parser.add_argument("--repeats", type=int, default=15, metavar="N",
                        help="timed off/on pairs for the wall-clock context "
                        "number (default 15)")
    parser.add_argument("--messages", type=int, default=120, metavar="N",
                        help="messages per client in the gated deterministic "
                        "workload (default 120)")
    parser.add_argument("--gate", type=float, default=0.03, metavar="FRAC",
                        help="max acceptable overhead fraction (default 0.03; "
                        "exceeding it fails the exit code)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the results block to FILE")
    args = parser.parse_args(argv)
    messages = max(1, args.messages)
    calls_off, calls_on, work_overhead = measure_work(messages=messages)
    median_off, median_on, wall_overhead = measure_wall(
        repeats=max(1, args.repeats), messages=max(1, messages // 2)
    )
    block = results_block(
        calls_off, calls_on, work_overhead,
        median_off, median_on, wall_overhead,
        max(1, args.repeats), max(1, messages // 2), args.gate,
    )
    print(block, end="")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(block)
        print(f"wrote {args.out}")
    return 0 if work_overhead <= args.gate else 1


if __name__ == "__main__":
    sys.exit(main())
