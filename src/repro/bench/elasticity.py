"""Elasticity benchmark: throughput dip and recovery across a live scale-out.

The reconfiguration subsystem's performance claim is not peak throughput —
it is that a membership change under live load costs a bounded, short dip
instead of a restart.  This benchmark measures exactly that: closed-loop
clients drive a sharded WbCast cluster at a saturating rate; mid-run the
script joins a member (scale-out) and optionally re-deals the ordering
lanes toward it; completed-multicast throughput is bucketed over virtual
time and the profile around each event is reported:

* **baseline** — mean bucket throughput before the first event;
* **dip** — the lowest bucket inside the post-event settling window,
  as a fraction of baseline;
* **recovery** — virtual time from the event to the first bucket back at
  ≥ ``RECOVERY_BAR`` of baseline (staying there for the next bucket too).

Run ``python -m repro bench-elasticity`` (results land on stdout; the
committed profile lives in ``results/elasticity.txt``).  ``--quick``
shrinks the run for CI smoke.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import ClusterConfig
from ..protocols import PROTOCOLS
from ..sim import UniformCpu
from ..sim.faults import JoinSpec, LaneWeightSpec, ReconfigPlan
from ..workload import ClientOptions
from .sweep import DEFAULT_CPU_COST
from .topologies import LAN_ONE_WAY

#: A bucket counts recoveries once throughput holds at this baseline share.
RECOVERY_BAR = 0.95


@dataclass(frozen=True)
class ElasticityProfile:
    """The throughput profile of one reconfiguration event."""

    label: str
    at: float
    baseline: float  # msgs/s before the event
    dip_fraction: float  # lowest settling-window bucket / baseline
    recovery_time: Optional[float]  # seconds to regain RECOVERY_BAR


@dataclass(frozen=True)
class ElasticityResult:
    buckets: Tuple[Tuple[float, float], ...]  # (bucket start, msgs/s)
    bucket_width: float
    profiles: Tuple[ElasticityProfile, ...]
    completed: int
    expected: int
    checks_ok: bool


def _bucket_throughput(
    partial_times: Sequence[float], bucket: float, horizon: float
) -> List[Tuple[float, float]]:
    out = []
    t = 0.0
    while t < horizon:
        count = sum(1 for pt in partial_times if t <= pt < t + bucket)
        out.append((t, count / bucket))
        t += bucket
    return out


def profile_events(
    buckets: Sequence[Tuple[float, float]],
    events: Sequence[Tuple[str, float]],
    bucket: float,
    settle_window: float,
) -> List[ElasticityProfile]:
    profiles = []
    ordered = sorted(events, key=lambda e: e[1])
    for i, (label, at) in enumerate(ordered):
        # Baseline: steady buckets before this event, excluding any
        # earlier event's dip-and-settle window (otherwise the second
        # event's baseline is depressed by the first event's hole).
        floor_t = 0.0
        if i > 0:
            floor_t = ordered[i - 1][1] + settle_window
        before = [
            r for t, r in buckets if floor_t <= t and t + bucket <= at
        ]
        if not before:
            # Events closer together than the settle window: fall back to
            # everything before this event rather than an empty window.
            before = [r for t, r in buckets if t + bucket <= at]
        baseline = sum(before) / len(before) if before else 0.0
        window = [(t, r) for t, r in buckets if at <= t < at + settle_window]
        dip = (
            min(r for _, r in window) / baseline
            if window and baseline > 0
            else float("nan")
        )
        recovery: Optional[float] = None
        if baseline > 0 and window:
            # Scan for recovery from the dip bucket, not the event time:
            # the command's own delivery latency can lag the event by a
            # bucket or more, and scanning from `at` would report ~0 ms
            # off the still-at-baseline buckets before the dip.
            t_dip = min(window, key=lambda tr: tr[1])[0]
            after = [(t, r) for t, r in buckets if t >= t_dip]
            for i, (t, r) in enumerate(after):
                nxt = after[i + 1][1] if i + 1 < len(after) else r
                if r >= RECOVERY_BAR * baseline and nxt >= RECOVERY_BAR * baseline:
                    recovery = t - at
                    break
        profiles.append(ElasticityProfile(label, at, baseline, dip, recovery))
    return profiles


def run_elasticity(
    num_groups: int = 2,
    group_size: int = 3,
    shards: int = 2,
    num_clients: int = 40,
    messages_per_client: int = 400,
    join_at: float = 0.15,
    reweight_at: Optional[float] = 0.3,
    bucket: float = 0.025,
    settle_window: float = 0.1,
    seed: int = 42,
    cpu_cost: float = DEFAULT_CPU_COST,
) -> ElasticityResult:
    from ..protocols.wbcast import WbCastOptions, WbCastProcess
    from ..reconfig.harness import run_elastic_workload
    from ..sim.network import lan_topology

    config = ClusterConfig.build(
        num_groups, group_size, num_clients, shards_per_group=shards
    )
    joiner_pid = max(config.all_processes) + 1
    driver_pid = joiner_pid + 1  # the harness's operator-console session
    network = lan_topology(
        tuple(config.all_processes) + (joiner_pid, driver_pid),
        one_way=LAN_ONE_WAY,
    )
    events: List = [JoinSpec(join_at, 0, joiner_pid)]
    labels = [("join", join_at)]
    if reweight_at is not None:
        # Re-deal lanes toward the joiner once it is in: the scale-out is
        # only real once the new member carries ordering work.
        weights = tuple((pid, 1) for pid in config.members(0)) + ((joiner_pid, 2),)
        events.append(LaneWeightSpec(reweight_at, weights))
        labels.append(("reweight", reweight_at))
    plan = ReconfigPlan(events=events)
    res = run_elastic_workload(
        WbCastProcess,
        config,
        plan,
        messages_per_client=messages_per_client,
        dest_k=min(2, num_groups),
        network=network,
        seed=seed,
        cpu=UniformCpu(cpu_cost, jitter=0.1),
        protocol_options=WbCastOptions(retry_interval=0.05),
        client_options=ClientOptions(
            num_messages=messages_per_client, window=4, retry_timeout=0.05
        ),
        max_time=60.0,
    )
    horizon = max(res.tracker.partial_time.values()) if res.tracker.partial_time else 0.0
    buckets = _bucket_throughput(
        list(res.tracker.partial_time.values()), bucket, horizon
    )
    profiles = profile_events(buckets, labels, bucket, settle_window)
    checks_ok = all(c.ok for c in res.check_elastic(quiescent=False))
    return ElasticityResult(
        buckets=tuple(buckets),
        bucket_width=bucket,
        profiles=tuple(profiles),
        completed=res.completed,
        expected=res.expected,
        checks_ok=checks_ok,
    )


def render(result: ElasticityResult) -> str:
    lines = [
        "Elasticity: live scale-out under closed-loop load (virtual time)",
        f"completed {result.completed}/{result.expected}; "
        f"properties {'OK' if result.checks_ok else 'VIOLATED'}",
        "",
        f"{'event':<10} {'at':>7} {'baseline':>12} {'dip':>7} {'recovery':>10}",
    ]
    for p in result.profiles:
        rec = f"{p.recovery_time * 1000:.1f} ms" if p.recovery_time is not None else "n/a"
        lines.append(
            f"{p.label:<10} {p.at:>6.2f}s {p.baseline:>9,.0f}/s "
            f"{p.dip_fraction:>6.0%} {rec:>10}"
        )
    lines.append("")
    lines.append(
        f"bucketed throughput ({result.bucket_width * 1000:.0f} ms buckets):"
    )
    for t, r in result.buckets:
        bar = "#" * int(r / 2000)
        lines.append(f"  {t:>6.2f}s {r:>9,.0f}/s {bar}")
    return "\n".join(lines)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--groups", type=int, default=2)
    parser.add_argument("--group-size", type=int, default=3)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--clients", type=int, default=40)
    parser.add_argument("--messages", type=int, default=400)
    parser.add_argument("--join-at", type=float, default=0.15)
    parser.add_argument("--no-reweight", action="store_true")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")


def run_main(args: argparse.Namespace) -> int:
    kwargs = dict(
        num_groups=args.groups,
        group_size=args.group_size,
        shards=args.shards,
        num_clients=args.clients,
        messages_per_client=args.messages,
        join_at=args.join_at,
        reweight_at=None if args.no_reweight else 2 * args.join_at,
        seed=args.seed,
    )
    if args.quick:
        kwargs.update(
            num_clients=16,
            messages_per_client=200,
            join_at=0.03,
            reweight_at=None if args.no_reweight else 0.06,
            bucket=0.01,
            settle_window=0.04,
        )
    result = run_elasticity(**kwargs)
    print(render(result))
    # Non-zero on any property violation or an incomplete (wedged) run,
    # so the CI smoke step actually gates on correctness.
    return 0 if (result.checks_ok and result.completed >= result.expected) else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_arguments(parser)
    return run_main(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
