"""Benchmark harness reproducing the paper's evaluation (Section VI).

* :mod:`repro.bench.harness` — build-and-run one workload configuration;
* :mod:`repro.bench.topologies` — the paper's LAN and WAN testbeds;
* :mod:`repro.bench.metrics` — latency/throughput summaries;
* :mod:`repro.bench.latency_table` — the δ-unit latency table (Thms 3–4);
* :mod:`repro.bench.convoy` — the Fig. 2 convoy-effect scenario;
* :mod:`repro.bench.figure7` / :mod:`repro.bench.figure8` — the LAN / WAN
  client sweeps of Figs. 7 and 8;
* :mod:`repro.bench.report` — ASCII tables for terminal output.
"""

from .harness import RunResult, run_workload
from .metrics import LatencySummary, summarize_latencies
from .topologies import lan_testbed, wan_testbed

__all__ = [
    "LatencySummary",
    "RunResult",
    "lan_testbed",
    "run_workload",
    "summarize_latencies",
    "wan_testbed",
]
