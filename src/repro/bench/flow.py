"""Render a message's protocol exchange as a text sequence diagram.

Given a run trace and a message id, produce the Fig. 5-style view: every
wire message attributable to that multicast, in time order, with lanes
for the processes involved — a debugging view the white-box approach
deserves.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..checking.genuineness import extract_mids
from ..types import MessageId


def flow_events(trace, mid: MessageId) -> List[Any]:
    """All send records attributable to ``mid``, in send order."""
    events = []
    for rec in trace.sends:
        if mid in extract_mids(rec.msg):
            events.append(rec)
    return events


def flow_report(trace, mid: MessageId, delta: Optional[float] = None) -> str:
    """A chronological hop table for one message (times in δ if given)."""
    events = flow_events(trace, mid)
    unit = "δ" if delta else "s"
    scale = delta if delta else 1.0
    lines = [f"message {mid}: {len(events)} protocol messages"]
    header = f"{'sent':>8} {'arrives':>8}  {'src':>4} -> {'dst':<4} message"
    lines.append(header)
    lines.append("-" * len(header))
    for rec in events:
        name = type(rec.msg).__name__.replace("Msg", "")
        lines.append(
            f"{rec.t_send / scale:8.2f} {rec.t_arrive / scale:8.2f}  "
            f"{rec.src:>4} -> {rec.dst:<4} {name}"
        )
    deliveries = [d for d in trace.deliveries if d.m.mid == mid]
    for d in sorted(deliveries, key=lambda d: d.t):
        lines.append(f"{d.t / scale:8.2f} {'':>8}  {'':>4}    {d.pid:<4} deliver(m)")
    lines.append(f"(times in {unit})")
    return "\n".join(lines)


def lane_diagram(trace, mid: MessageId, delta: float) -> str:
    """A compact lane view: one column per process, one row per δ step."""
    events = flow_events(trace, mid)
    if not events:
        return f"message {mid}: no traffic recorded"
    pids = sorted({rec.src for rec in events} | {rec.dst for rec in events})
    col = {pid: i for i, pid in enumerate(pids)}
    width = 8
    lines = ["".join(f"p{pid:<{width - 1}}" for pid in pids)]
    by_step: dict = {}
    for rec in events:
        step = round(rec.t_arrive / delta, 2)
        name = type(rec.msg).__name__.replace("Msg", "")[:6]
        by_step.setdefault(step, []).append((rec.src, rec.dst, name))
    for step in sorted(by_step):
        cells = [" " * width] * len(pids)
        for src, dst, name in by_step[step]:
            cells[col[dst]] = f"<{name:<{width - 2}} "[:width]
        lines.append("".join(cells) + f"  t={step}δ")
    return "\n".join(lines)
