"""Latency and throughput summaries for benchmark output.

Besides the end-to-end (submit → partial delivery) summaries, the module
splits client-perceived latency at the ``SUBMIT_ACK`` boundary: the
*ack* leg (launch → every ingress leader acknowledged the submission)
prices the ingress path — wire hops, leader inbox queueing, dedup — while
the *post-ack* leg (ack → first delivery in every destination group)
prices the ordering machinery itself.  Under batching the split shows
where a linger knob buys its throughput: client-side coalescing stretches
the ack leg, leader-side batching the post-ack leg.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple


@dataclass(frozen=True)
class LatencySummary:
    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def scaled(self, factor: float) -> "LatencySummary":
        """Express the summary in different units (e.g. multiples of δ)."""
        return LatencySummary(
            count=self.count,
            mean=self.mean * factor,
            p50=self.p50 * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            max=self.max * factor,
        )


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile on an already sorted sequence."""
    if not sorted_values:
        return math.nan
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = max(0, min(len(sorted_values) - 1, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[rank]


def summarize_latencies(latencies: Sequence[float]) -> Optional[LatencySummary]:
    values = sorted(latencies)
    if not values:
        return None
    return LatencySummary(
        count=len(values),
        mean=sum(values) / len(values),
        p50=percentile(values, 0.50),
        p95=percentile(values, 0.95),
        p99=percentile(values, 0.99),
        max=values[-1],
    )


def in_delta_units(seconds: float, delta: float) -> float:
    """Convert a latency to multiples of the one-way delay δ."""
    return seconds / delta if delta > 0 else math.nan


@dataclass(frozen=True)
class LatencySplit:
    """End-to-end latency split at the ``SUBMIT_ACK`` boundary.

    ``ack`` summarises launch → fully acked; ``post_ack`` acked → first
    delivery in every destination group.  Either side may be ``None``
    when no handle carried the corresponding stamps (e.g. a run whose
    handles never resolved an ack before completing).
    """

    ack: Optional[LatencySummary]
    post_ack: Optional[LatencySummary]


def split_latencies(handles: Iterable) -> LatencySplit:
    """Split completed :class:`~repro.client.SubmitHandle` latencies.

    Handles that completed without ever being fully acked (every ack
    outran by the deliveries, or the acking leader died) contribute to
    neither leg — the split reports what the ack traffic actually
    measured rather than guessing.
    """
    ack: list = []
    post_ack: list = []
    for h in handles:
        if h.completed_at is None or h.launched_at is None:
            continue
        if h.acked_at is None:
            continue
        ack.append(h.acked_at - h.launched_at)
        post_ack.append(max(0.0, h.completed_at - h.acked_at))
    return LatencySplit(
        ack=summarize_latencies(ack), post_ack=summarize_latencies(post_ack)
    )


def mean_split(split: LatencySplit) -> Tuple[float, float]:
    """(mean ack leg, mean post-ack leg) in seconds; NaN when unmeasured."""
    return (
        split.ack.mean if split.ack else math.nan,
        split.post_ack.mean if split.post_ack else math.nan,
    )
