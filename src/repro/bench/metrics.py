"""Latency and throughput summaries for benchmark output."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class LatencySummary:
    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def scaled(self, factor: float) -> "LatencySummary":
        """Express the summary in different units (e.g. multiples of δ)."""
        return LatencySummary(
            count=self.count,
            mean=self.mean * factor,
            p50=self.p50 * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            max=self.max * factor,
        )


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile on an already sorted sequence."""
    if not sorted_values:
        return math.nan
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = max(0, min(len(sorted_values) - 1, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[rank]


def summarize_latencies(latencies: Sequence[float]) -> Optional[LatencySummary]:
    values = sorted(latencies)
    if not values:
        return None
    return LatencySummary(
        count=len(values),
        mean=sum(values) / len(values),
        p50=percentile(values, 0.50),
        p95=percentile(values, 0.95),
        p99=percentile(values, 0.99),
        max=values[-1],
    )


def in_delta_units(seconds: float, delta: float) -> float:
    """Convert a latency to multiples of the one-way delay δ."""
    return seconds / delta if delta > 0 else math.nan
