"""Build and run one complete workload configuration.

This is the single entry point used by the test suite, the example scripts
and every benchmark: it wires a cluster, a protocol, clients, a delivery
tracker and optional monitors into a simulator, runs until the clients
finish (plus a drain grace period so followers catch up), and returns a
:class:`RunResult` exposing the history, checker verdicts and metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..checking import History, check_all
from ..checking.genuineness import GenuinenessMonitor
from ..config import BatchingOptions, ClusterConfig
from ..errors import SimulationError
from ..sim import ConstantDelay, CpuModel, Simulator, Trace
from ..sim.faults import FaultPlan
from ..sim.network import DelayModel
from ..workload import (
    ClientOptions,
    ClosedLoopClient,
    DeliveryTracker,
    DestinationChooser,
    RandomKGroups,
)


@dataclass
class RunResult:
    """Everything observable about one finished run."""

    config: ClusterConfig
    sim: Simulator
    trace: Trace
    tracker: DeliveryTracker
    clients: List[ClosedLoopClient]
    members: Dict[int, Any]
    duration: float
    completed: int
    expected: int
    #: repro.obs.Telemetry of the run, or None when observability is off.
    telemetry: Optional[Any] = None

    def history(self) -> History:
        return History.from_trace(self.config, self.trace)

    def check(self, quiescent: bool = True) -> List:
        return check_all(self.history(), quiescent=quiescent)

    def latencies(self) -> List[float]:
        return sorted(self.tracker.latencies().values())

    def completed_handles(self) -> List[Any]:
        """Every completed :class:`~repro.client.SubmitHandle` still
        retained by the sessions (all of them, at bench retention)."""
        handles = []
        for client in self.clients:
            for mid, _ in client.completed:
                h = client.handle_of(mid)
                if h is not None:
                    handles.append(h)
        return handles

    def latency_split(self):
        """End-to-end latency split at the SUBMIT_ACK boundary (see
        :func:`repro.bench.metrics.split_latencies`)."""
        from .metrics import split_latencies

        return split_latencies(self.completed_handles())

    def throughput(self) -> float:
        """Completed multicasts per second of virtual time."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    @property
    def all_done(self) -> bool:
        return self.completed >= self.expected


def _default_protocol_options(protocol_cls, client_retry: Optional[float]):
    return None


def apply_batching(protocol_cls, protocol_options: Any, batching: BatchingOptions) -> Any:
    """Fold a ``batching`` knob into the protocol options, where supported.

    Protocols that don't understand batching (Skeen, the sequencer)
    silently ignore the knob, so sweeps can pass one ``batching`` value
    across a heterogeneous protocol grid.  Supporting protocols declare
    ``SUPPORTS_BATCHING`` plus their options dataclass as ``OPTIONS_CLS``
    (WbCast, FtSkeen and FastCast today).  Public: the CLI's net runtime
    folds options through it too.
    """
    if protocol_options is not None and hasattr(protocol_options, "batching"):
        return replace(protocol_options, batching=batching)
    if protocol_options is None and getattr(protocol_cls, "SUPPORTS_BATCHING", False):
        # AttributeError here means a protocol declared SUPPORTS_BATCHING
        # without naming its options dataclass — fail loudly, don't guess.
        return protocol_cls.OPTIONS_CLS(batching=batching)
    return protocol_options


def run_workload(
    protocol_cls,
    num_groups: int = 2,
    group_size: int = 3,
    num_clients: int = 2,
    messages_per_client: int = 5,
    dest_k: int = 2,
    network: Optional[DelayModel] = None,
    seed: int = 0,
    cpu: Optional[CpuModel] = None,
    protocol_options: Any = None,
    client_options: Optional[ClientOptions] = None,
    chooser_factory: Optional[Callable[[ClusterConfig, int], DestinationChooser]] = None,
    fault_plan: Optional[FaultPlan] = None,
    monitors: Sequence[Any] = (),
    attach_genuineness: bool = False,
    attach_fd: bool = False,
    fd_options: Any = None,
    record_sends: bool = True,
    drain_grace: float = 0.05,
    max_events: int = 50_000_000,
    max_time: Optional[float] = None,
    config: Optional[ClusterConfig] = None,
    batching: Optional[BatchingOptions] = None,
    obs: Optional[Any] = None,
) -> RunResult:
    """Run ``num_clients`` closed-loop clients against ``protocol_cls``.

    Returns once every client finished all its messages (or ``max_time`` /
    ``max_events`` was hit), after an extra ``drain_grace`` of virtual time
    so in-flight DELIVERs reach followers and the run is quiescent.

    ``batching`` folds leader-side batching knobs into the protocol options
    for protocols that support them (ignored by the rest).
    """
    if config is None:
        config = ClusterConfig.build(num_groups, group_size, num_clients)
    if batching is not None:
        protocol_options = apply_batching(protocol_cls, protocol_options, batching)
    if network is None:
        network = ConstantDelay(0.001)
    trace = Trace(record_sends=record_sends)
    sim = Simulator(network, seed=seed, trace=trace, cpu=cpu)
    from ..obs import Telemetry

    telemetry = Telemetry.create(obs if obs is not None else config.obs,
                                 now=lambda: sim.now, time_source=sim)
    if telemetry is not None:
        span_monitor = telemetry.trace_monitor()
        if span_monitor is not None:
            trace.attach(span_monitor)
    tracker = DeliveryTracker(config, sim=sim)
    trace.attach(tracker)
    genuineness = None
    if attach_genuineness:
        genuineness = GenuinenessMonitor(config)
        trace.attach(genuineness)
    for monitor in monitors:
        trace.attach(monitor)

    members: Dict[int, Any] = {}
    for gid in config.group_ids:
        for pid in config.members(gid):
            proc = sim.add_process(
                pid,
                lambda rt, p=pid: protocol_cls(p, config, rt, options=protocol_options),
            )
            members[pid] = proc
            if telemetry is not None:
                proc.attach_obs(telemetry)
            if attach_fd:
                from ..failure.detector import attach_monitor

                attach_monitor(proc, fd_options)

    clients: List[ClosedLoopClient] = []
    copts = client_options or ClientOptions(num_messages=messages_per_client)
    for i, pid in enumerate(config.clients):
        chooser = (
            chooser_factory(config, i)
            if chooser_factory is not None
            else RandomKGroups(config, dest_k)
        )
        client = sim.add_process(
            pid,
            lambda rt, p=pid, ch=chooser: ClosedLoopClient(
                p, config, rt, protocol_cls, tracker, ch, copts
            ),
        )
        clients.append(client)

    for monitor in monitors:
        binder = getattr(monitor, "bind_processes", None)
        if callable(binder):
            binder(members)

    if fault_plan is not None:
        fault_plan.validate(config)
        fault_plan.apply(sim)

    expected = sum(c.options.num_messages for c in clients)
    steps = 0
    while tracker.completed_count < expected:
        if not sim.step():
            break  # queue drained before completion (e.g. lost messages, no retry)
        steps += 1
        if steps > max_events:
            raise SimulationError(f"run exceeded {max_events} events before completing")
        if max_time is not None and sim.now > max_time:
            break
    end_of_load = sim.now
    if drain_grace > 0:
        sim.run(until=sim.now + drain_grace)
    if telemetry is not None:
        from ..obs import collect_process_stats

        collect_process_stats(telemetry, members)

    result = RunResult(
        config=config,
        sim=sim,
        trace=trace,
        tracker=tracker,
        clients=clients,
        members=members,
        duration=end_of_load,
        completed=tracker.completed_count,
        expected=expected,
        telemetry=telemetry,
    )
    if genuineness is not None:
        result.genuineness = genuineness  # type: ignore[attr-defined]
    return result
