"""The paper's two testbeds as simulator topologies.

LAN (Fig. 7): CloudLab — 10 groups × 3 replicas on 30 machines plus client
machines, 2 Gb links, ≈0.1 ms round trip.  We model each process on its own
site with a 0.05 ms one-way delay.

WAN (Fig. 8): Google Cloud — three data centres (Oregon, N. Virginia,
England) with round trips of 60/75/130 ms; every group has one replica per
data centre, so each data centre holds a complete copy of the data.  We
place member ``i`` of every group in data centre ``i``, every group's
initial leader in data centre 0, and the clients in data centre 0 (the
paper does not state client placement; co-locating clients with leaders
gives the cleanest view of the protocols' own latencies — noted in
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import ClusterConfig
from ..sim.network import SiteTopology, WAN_ONE_WAY, lan_topology
from ..types import ProcessId

#: One-way LAN latency (the paper reports ~0.1 ms RTT).
LAN_ONE_WAY = 0.00005

#: Batching linger used on the WAN testbed: a few ms against the 30-65 ms
#: one-way delays — long enough to fill batches, invisible in the latency.
WAN_MAX_LINGER = 0.005


def lan_testbed(config: ClusterConfig, jitter: float = 0.0) -> SiteTopology:
    """Every process on its own machine; uniform 0.05 ms one-way delay."""
    return lan_topology(config.all_processes, one_way=LAN_ONE_WAY, jitter=jitter)


def wan_site_map(
    config: ClusterConfig,
    client_site: int = 0,
    spread_leaders: bool = False,
    spread_clients: bool = False,
) -> Dict[ProcessId, int]:
    """The WAN testbed's process → data-centre map (members and clients).

    Shared between the delay model (:func:`wan_testbed`) and the placement
    policy attached to the :class:`~repro.config.ClusterConfig`, so the
    simulated network and the lane deal agree about who lives where.

    ``spread_clients`` round-robins clients over the data centres,
    modelling a geo-distributed user base (used by the placement test
    battery to exercise remote-client ingress).  The default keeps every
    client in DC ``client_site`` — the recorded baseline, and the
    geometry under which the site-affine deal anchors every lane beside
    the ingress.
    """
    placement: Dict[ProcessId, int] = {}
    for gid in config.group_ids:
        offset = gid if spread_leaders else 0
        for i, pid in enumerate(config.members(gid)):
            placement[pid] = (i + offset) % 3
    sites = sorted(set(placement.values()))
    for i, pid in enumerate(config.clients):
        placement[pid] = sites[i % len(sites)] if spread_clients else client_site
    return placement


def wan_testbed(
    config: ClusterConfig,
    jitter: float = 0.0,
    client_site: int = 0,
    intra_site: float = LAN_ONE_WAY,
    spread_leaders: bool = False,
    site_map: Optional[Dict[ProcessId, int]] = None,
) -> SiteTopology:
    """Three data centres; replica ``i`` of each group lives in DC ``i``.

    With ``spread_leaders`` the placement is rotated per group so initial
    leaders land in different data centres; leader-to-leader exchanges
    (FastCast's PROPOSE/CONFIRM, Skeen's PROPOSE) then pay real WAN
    round trips instead of intra-DC ones.  ``site_map`` overrides the
    whole process placement (see :func:`wan_site_map`).
    """
    placement = (
        dict(site_map)
        if site_map is not None
        else wan_site_map(config, client_site=client_site, spread_leaders=spread_leaders)
    )
    return SiteTopology(placement, WAN_ONE_WAY, intra_site=intra_site, jitter=jitter)
