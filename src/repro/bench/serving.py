"""Serving-tier sweep: read-at-watermark measured against the submit path.

Every read in the repo used to ride the full multicast submit path; the
serving layer answers them locally at the watermark instead.  This bench
records the two headline claims on real runs:

* **zero ordering traffic for reads** — on the watermark arm of each
  grid cell the :class:`~repro.serving.monitor.ReadPathMonitor` counts
  every ordering-plane message attributable to a read; the 90%-read
  headline cell asserts that count is exactly zero.
* **throughput** — each cell also runs a control arm with
  ``prefer_local=False`` (every read routed through the submit path, the
  pre-serving behaviour) on the same seed and mix; the headline compares
  the two (acceptance: >= 3x at the 90% read mix).

The grid is read-ratio x skew x tenants (axes shared with
:mod:`repro.bench.sweep`), swept on the simulator; ``--runtime net``
adds a TCP smoke cell driving :class:`~repro.serving.session.ServingSession`
over :class:`~repro.net.LocalCluster` sockets.  Every simulated history —
including a lane-leader-crash run — is put through the linearizability
checker; a run that fails it is not a measurement.

Run ``python -m repro.bench.serving`` (or ``python -m repro
bench-serving``); ``--quick`` is the CI smoke grid, ``--out FILE``
writes the standard results block and ``--json FILE`` the machine-
readable ``BENCH_serving.json`` via :mod:`repro.bench.export`.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..protocols import PROTOCOLS
from ..serving import TenantSpec, run_serving_workload
from .metrics import summarize_latencies
from .report import render_table
from .sweep import (
    QUICK_SERVING_READ_RATIOS,
    QUICK_SERVING_SKEWS,
    QUICK_SERVING_TENANTS,
    SERVING_READ_RATIOS,
    SERVING_SKEWS,
    SERVING_TENANTS,
    add_serving_axes,
    serving_axes_from_args,
)

#: Admission cap per tenant in multi-tenant cells (writes in flight).
TENANT_CAP = 8


@dataclass(frozen=True)
class ServingPoint:
    """One measured (runtime, read_ratio, skew, tenants) grid cell."""

    runtime: str
    protocol: str
    read_ratio: float
    skew: float
    tenants: int
    sessions: int
    ops: int
    reads_local: int
    reads_fallback: int
    writes: int
    throughput: float
    #: Control arm: same mix with every read routed through the submit
    #: path (NaN when the control arm was skipped).
    submit_throughput: float
    speedup: float
    #: Ordering-plane messages attributable to reads on the watermark arm
    #: (None: unmeasured — the net runtime records no trace).
    read_ordering: Optional[int]
    mean_read_ms: float
    p95_read_ms: float
    checks_ok: bool
    linearizable: bool
    #: Delivery ordering granularity this cell ran under ("total" or
    #: "keys"; the net smoke cell always runs total).
    conflict: str = "total"


@dataclass
class ServingSweepConfig:
    protocol: str = "wbcast"
    read_ratios: Sequence[float] = SERVING_READ_RATIOS
    skews: Sequence[float] = SERVING_SKEWS
    tenant_counts: Sequence[int] = SERVING_TENANTS
    num_groups: int = 2
    group_size: int = 3
    sessions: int = 4
    ops_per_session: int = 120
    window: int = 2
    num_keys: int = 64
    shards_per_group: int = 1
    #: Read fallback timer; generous against the WAN grid's ordering
    #: rounds so it only ever fires for genuinely silent replicas.
    read_timeout: float = 0.5
    #: Run the submit-path control arm per cell (the >=3x comparison).
    compare_submit: bool = True
    runtime: str = "sim"
    #: Net smoke cell size (wall-clock runs stay small).
    net_sessions: int = 2
    net_ops: int = 40
    seed: int = 42
    #: Delivery ordering granularity for the sim grid: "total" (the
    #: paper) or "keys" (conflict-aware delivery — single-key reads gate
    #: on their key's conflict domain instead of the global watermark).
    #: The net smoke cell always runs total.
    conflict: str = "total"
    #: Instrument sim cells with the telemetry registry and report
    #: per-tenant read/write latency histograms and SLO breach counts.
    obs: bool = False
    #: Per-tenant latency targets in seconds (None: no SLO accounting).
    read_slo: Optional[float] = None
    write_slo: Optional[float] = None


def default_sweep() -> ServingSweepConfig:
    return ServingSweepConfig()


def quick_sweep() -> ServingSweepConfig:
    """CI smoke: the 90%-read headline mix, uniform + hot-key skew."""
    return ServingSweepConfig(
        read_ratios=QUICK_SERVING_READ_RATIOS,
        skews=QUICK_SERVING_SKEWS,
        tenant_counts=QUICK_SERVING_TENANTS,
        ops_per_session=40,
        net_ops=20,
    )


def tenant_specs(
    count: int,
    read_slo: Optional[float] = None,
    write_slo: Optional[float] = None,
) -> Tuple[TenantSpec, ...]:
    """The tenant axis: one anonymous uncapped tenant, or ``count``
    weighted tenants each carrying an admission cap (and, when given,
    per-op latency SLO targets)."""
    if count <= 1:
        return ()
    return tuple(
        TenantSpec(
            f"t{i}", weight=i + 1, max_outstanding=TENANT_CAP,
            read_slo=read_slo, write_slo=write_slo,
        )
        for i in range(count)
    )


def _serving_config(sweep: ServingSweepConfig):
    """The grid's deployment geometry: the WAN testbed with site placement.

    Sessions are spread over the three data centres and the cluster
    config carries a site :class:`~repro.placement.PlacementPolicy`, so
    every session reads its co-sited replica (intra-DC hop) while the
    submit path pays real WAN ordering rounds — the Benz-et-al. global
    serving shape the read-at-watermark path exists for.
    """
    import dataclasses

    from ..config import ClusterConfig
    from ..placement import PlacementPolicy
    from .topologies import wan_site_map, wan_testbed

    config = ClusterConfig.build(
        sweep.num_groups,
        sweep.group_size,
        sweep.sessions,
        shards_per_group=sweep.shards_per_group,
        conflict=sweep.conflict,
    )
    sites = wan_site_map(config, spread_clients=True)
    config = dataclasses.replace(
        config,
        placement=PlacementPolicy(
            mode="site", sites=tuple(sorted(sites.items())), overlay="direct"
        ),
    )
    return config, wan_testbed(config, site_map=sites)


def _run_arm(
    sweep: ServingSweepConfig,
    read_ratio: float,
    skew: float,
    tenants: int,
    prefer_local: bool,
):
    config, network = _serving_config(sweep)
    obs = None
    if sweep.obs and prefer_local:
        # Only the measured arm is instrumented; the control arm stays
        # bare so its throughput is the uninstrumented reference.
        from ..obs import ObsOptions

        obs = ObsOptions(enabled=True)
    return run_serving_workload(
        PROTOCOLS[sweep.protocol],
        config=config,
        network=network,
        num_sessions=sweep.sessions,
        ops_per_session=sweep.ops_per_session,
        read_ratio=read_ratio,
        skew=skew,
        num_keys=sweep.num_keys,
        tenants=tenant_specs(tenants, sweep.read_slo, sweep.write_slo),
        obs=obs,
        window=sweep.window,
        prefer_local=prefer_local,
        read_timeout=sweep.read_timeout,
        # Park not-yet-fresh reads at the replica past a WAN round: the
        # covering delivery is already in flight, so no fallback fires
        # and the read path stays at zero ordering messages.
        hold_stale=sweep.read_timeout / 2 if sweep.read_timeout else None,
        seed=sweep.seed,
        drain_grace=0.5,
        attach_genuineness=True,
    )


def run_sim_point(
    sweep: ServingSweepConfig,
    read_ratio: float,
    skew: float,
    tenants: int,
    telemetries: Optional[List[Tuple[str, Any]]] = None,
) -> ServingPoint:
    result = _run_arm(sweep, read_ratio, skew, tenants, prefer_local=True)
    if telemetries is not None and result.telemetry is not None:
        telemetries.append(
            (
                f"reads={read_ratio:.2f} skew={skew:.2f} tenants={tenants}",
                result.telemetry,
            )
        )
    checks = result.check() + result.genuineness.check()
    lin = result.check_serving()
    summary = summarize_latencies(result.read_latencies())
    submit_throughput = float("nan")
    speedup = float("nan")
    if sweep.compare_submit:
        control = _run_arm(sweep, read_ratio, skew, tenants, prefer_local=False)
        submit_throughput = control.throughput()
        if submit_throughput > 0:
            speedup = result.throughput() / submit_throughput
    return ServingPoint(
        runtime="sim",
        protocol=sweep.protocol,
        read_ratio=read_ratio,
        skew=skew,
        tenants=tenants,
        sessions=sweep.sessions,
        ops=result.ops_completed,
        reads_local=result.reads_local,
        reads_fallback=result.reads_fallback,
        writes=result.writes_completed,
        throughput=result.throughput(),
        submit_throughput=submit_throughput,
        speedup=speedup,
        read_ordering=result.monitor.fallback_ordering_messages,
        mean_read_ms=summary.mean * 1000 if summary else float("nan"),
        p95_read_ms=summary.p95 * 1000 if summary else float("nan"),
        checks_ok=all(c.ok for c in checks),
        linearizable=all(c.ok for c in lin),
        conflict=sweep.conflict,
    )


def run_crash_point(sweep: ServingSweepConfig) -> Dict[str, Any]:
    """Lane-leader crash under a sharded 90%-read mix: reads must fall
    back (never return stale data) and the full history must still pass
    the linearizability checker — the acceptance criterion's crash run."""
    from ..config import ClusterConfig
    from ..failure.detector import MonitorOptions
    from ..sim.faults import CrashSpec, FaultPlan

    config = ClusterConfig.build(
        sweep.num_groups,
        sweep.group_size,
        sweep.sessions,
        shards_per_group=max(2, sweep.shards_per_group),
        conflict=sweep.conflict,
    )
    victim = config.lane_leader(0, 0)
    result = run_serving_workload(
        PROTOCOLS[sweep.protocol],
        config=config,
        num_sessions=sweep.sessions,
        ops_per_session=max(20, sweep.ops_per_session // 3),
        read_ratio=0.9,
        skew=0.0,
        num_keys=sweep.num_keys,
        window=1,
        read_timeout=0.02,
        retry_timeout=0.05,
        seed=sweep.seed,
        fault_plan=FaultPlan(crashes=[CrashSpec(victim, 0.03)]),
        attach_fd=True,
        fd_options=MonitorOptions(
            heartbeat_interval=0.005, suspect_timeout=0.02,
            stagger=0.01, max_timeout=0.3,
        ),
        max_time=60.0,
    )
    checks = result.check(quiescent=False)
    lin = result.check_serving()
    return {
        "crashed_pid": victim,
        "shards_per_group": config.shards_per_group,
        "ops": result.ops_completed,
        "reads_local": result.reads_local,
        "reads_fallback": result.reads_fallback,
        "checks_ok": all(c.ok for c in checks),
        "linearizable": all(c.ok for c in lin),
        "failed_checks": [c.describe() for c in checks + lin if not c.ok],
    }


def run_net_point(sweep: ServingSweepConfig, read_ratio: float) -> ServingPoint:
    """TCP smoke cell: serving sessions over LocalCluster sockets."""
    import asyncio
    import random
    import time

    from ..checking import check_all
    from ..checking.linearizability import check_linearizability, serving_records
    from ..client import AmcastClientOptions
    from ..config import ClusterConfig
    from ..net import LocalCluster
    from ..serving import ServingSession, ZipfianKeys, attach_kv_replicas

    config = ClusterConfig.build(
        sweep.num_groups, sweep.group_size, sweep.net_sessions
    )
    chooser = ZipfianKeys(sweep.num_keys, 0.0)

    def session_factory(pid, cfg, runtime, protocol_cls, tracker, options):
        return ServingSession(
            pid, cfg, runtime, protocol_cls, tracker, options,
            read_timeout=2.0, prefer_local=True,
        )

    async def drive(session, rng: random.Random) -> None:
        for _ in range(sweep.net_ops):
            if rng.random() < read_ratio:
                handle = session.read((chooser.choose(rng),))
                while not handle.done:
                    await asyncio.sleep(0.001)
            else:
                handle = session.put(chooser.choose(rng), (session.pid, rng.random()))
                while not handle.completed:
                    await asyncio.sleep(0.001)

    async def scenario():
        cluster = LocalCluster(
            config,
            PROTOCOLS[sweep.protocol],
            seed=sweep.seed,
            client_options=AmcastClientOptions(retry_timeout=1.0),
            num_sessions=sweep.net_sessions,
            session_factory=session_factory,
        )
        await cluster.start()
        try:
            attach_kv_replicas(cluster.processes, config.num_groups)
            t0 = time.monotonic()
            await asyncio.gather(
                *(
                    drive(s, random.Random(sweep.seed * 31 + i))
                    for i, s in enumerate(cluster.sessions)
                )
            )
            elapsed = time.monotonic() - t0
            history = cluster.history()
            checks = check_all(history, quiescent=False)
            reads, writes = serving_records(cluster.sessions)
            lin = check_linearizability(history, reads, writes)
            return cluster.sessions, elapsed, checks, lin
        finally:
            await cluster.stop()

    sessions, elapsed, checks, lin = asyncio.run(scenario())
    reads = [r for s in sessions for r in s.reads if r.done]
    lats = sorted(r.completed_at - r.invoked_at for r in reads)
    summary = summarize_latencies(lats)
    total_ops = sweep.net_sessions * sweep.net_ops
    return ServingPoint(
        runtime="net",
        protocol=sweep.protocol,
        read_ratio=read_ratio,
        skew=0.0,
        tenants=1,
        sessions=sweep.net_sessions,
        ops=total_ops,
        reads_local=sum(1 for r in reads if r.path == "local"),
        reads_fallback=sum(1 for r in reads if r.path == "submit"),
        writes=total_ops - len(reads),
        throughput=total_ops / elapsed if elapsed > 0 else 0.0,
        submit_throughput=float("nan"),
        speedup=float("nan"),
        read_ordering=None,  # no trace on the net runtime
        mean_read_ms=summary.mean * 1000 if summary else float("nan"),
        p95_read_ms=summary.p95 * 1000 if summary else float("nan"),
        checks_ok=all(c.ok for c in checks),
        linearizable=all(c.ok for c in lin),
    )


def run_serving(
    sweep: Optional[ServingSweepConfig] = None,
    telemetries: Optional[List[Tuple[str, Any]]] = None,
) -> List[ServingPoint]:
    sweep = sweep or default_sweep()
    points: List[ServingPoint] = []
    if sweep.runtime in ("sim", "both"):
        for read_ratio in sweep.read_ratios:
            for skew in sweep.skews:
                for tenants in sweep.tenant_counts:
                    points.append(
                        run_sim_point(
                            sweep, read_ratio, skew, tenants,
                            telemetries=telemetries,
                        )
                    )
    if sweep.runtime in ("net", "both"):
        for read_ratio in sweep.read_ratios:
            points.append(run_net_point(sweep, read_ratio))
    return points


# -- reporting ----------------------------------------------------------------


def serving_table(points: List[ServingPoint]) -> str:
    rows = [
        (
            p.runtime,
            f"{p.read_ratio:.2f}",
            f"{p.skew:.2f}",
            p.tenants,
            f"{p.reads_local}/{p.reads_fallback}",
            p.writes,
            p.throughput,
            p.submit_throughput,
            f"{p.speedup:.1f}x" if p.speedup == p.speedup else "-",
            "-" if p.read_ordering is None else p.read_ordering,
            p.mean_read_ms,
            p.p95_read_ms,
            "ok" if p.checks_ok and p.linearizable else "FAIL",
        )
        for p in points
    ]
    return render_table(
        [
            "runtime",
            "reads",
            "skew",
            "tenants",
            "local/fallback",
            "writes",
            "ops/s",
            "submit ops/s",
            "speedup",
            "read-order msgs",
            "mean read (ms)",
            "p95 read (ms)",
            "checks",
        ],
        rows,
        title="Serving sweep — read-at-watermark vs submit-path reads"
        + (
            " (conflict=keys)"
            if any(p.conflict == "keys" for p in points)
            else ""
        ),
    )


def tenant_report(telemetries: List[Tuple[str, Any]]) -> str:
    """Per-tenant read/write latency and SLO-breach table (the ROADMAP's
    per-tenant SLO accounting, first leg), one block per instrumented
    multi-tenant grid cell."""
    blocks = []
    for label, telemetry in telemetries:
        reg = telemetry.registry
        reads = {dict(h.labels)["tenant"]: h
                 for h in reg.histograms("tenant_read_latency_seconds")}
        writes = {dict(h.labels)["tenant"]: h
                  for h in reg.histograms("tenant_write_latency_seconds")}
        names = sorted(set(reads) | set(writes))
        if not names:
            continue
        rows = []
        for t in names:
            r, w = reads.get(t), writes.get(t)
            rows.append(
                (
                    t,
                    r.count if r else 0,
                    r.quantile(0.5) * 1000 if r else float("nan"),
                    r.quantile(0.95) * 1000 if r else float("nan"),
                    w.count if w else 0,
                    w.quantile(0.5) * 1000 if w else float("nan"),
                    w.quantile(0.95) * 1000 if w else float("nan"),
                    reg.counter_total("tenant_slo_breaches_total",
                                      tenant=t, op="read"),
                    reg.counter_total("tenant_slo_breaches_total",
                                      tenant=t, op="write"),
                )
            )
        blocks.append(
            render_table(
                [
                    "tenant",
                    "reads",
                    "read p50 (ms)",
                    "read p95 (ms)",
                    "writes",
                    "write p50 (ms)",
                    "write p95 (ms)",
                    "read SLO misses",
                    "write SLO misses",
                ],
                rows,
                title=f"Per-tenant latency / SLO — {label}",
            )
        )
    return "\n\n".join(blocks)


def headline_point(points: List[ServingPoint]) -> Optional[ServingPoint]:
    """The acceptance cell: the sim point nearest a 90% read mix (ties
    broken toward uniform keys and a single tenant)."""
    sim = [p for p in points if p.runtime == "sim"]
    if not sim:
        return None
    return min(sim, key=lambda p: (abs(p.read_ratio - 0.9), p.skew, p.tenants))


def headline(points: List[ServingPoint]) -> str:
    lines = []
    p = headline_point(points)
    if p is not None:
        lines.append(
            f"read-at-watermark @ {p.read_ratio:.0%} reads: "
            f"{p.reads_local}/{p.reads_local + p.reads_fallback} reads served "
            f"locally, {p.read_ordering} ordering messages attributable to "
            f"reads, {p.speedup:.1f}x throughput vs submit-path routing "
            f"({p.throughput:,.0f} vs {p.submit_throughput:,.0f} ops/s)"
        )
        lines.append(
            "linearizability: "
            + (
                "all recorded histories pass"
                if all(q.linearizable for q in points)
                else "FAILED on some history"
            )
        )
    return "\n".join(lines)


def results_block(
    sweep: ServingSweepConfig,
    points: List[ServingPoint],
    crash: Optional[Dict[str, Any]],
) -> str:
    header = [
        "# Serving sweep (bench-serving): read-at-watermark local reads vs "
        "submit-path reads",
        f"# topology: {sweep.num_groups} groups x {sweep.group_size} members "
        "on the WAN testbed (3 DCs, site placement, sessions spread over DCs), "
        f"{sweep.sessions} sessions x window {sweep.window}, "
        f"{sweep.ops_per_session} ops/session, {sweep.num_keys} keys",
        f"# axes: read_ratio={list(sweep.read_ratios)} skew={list(sweep.skews)} "
        f"tenants={list(sweep.tenant_counts)} (tenant cap {TENANT_CAP})",
        f"# cli: python -m repro bench-serving --runtime {sweep.runtime}",
        "",
    ]
    block = "\n".join(header) + serving_table(points) + "\n\n" + headline(points)
    if crash is not None:
        verdict = (
            "linearizable" if crash["linearizable"] and crash["checks_ok"] else "FAILED"
        )
        block += (
            f"\nlane-leader crash (pid {crash['crashed_pid']}, "
            f"{crash['shards_per_group']} lanes/group): "
            f"{crash['reads_local']} local / {crash['reads_fallback']} fallback "
            f"reads, history {verdict}"
        )
    return block + "\n"


def json_payload(
    sweep: ServingSweepConfig,
    points: List[ServingPoint],
    crash: Optional[Dict[str, Any]],
) -> Dict[str, Any]:
    """The BENCH_serving.json artifact (NaNs rendered as None)."""

    def clean(value: Any) -> Any:
        if isinstance(value, float) and value != value:
            return None
        return value

    head = headline_point(points)
    return {
        "bench": "serving",
        "grid": {
            "protocol": sweep.protocol,
            "num_groups": sweep.num_groups,
            "group_size": sweep.group_size,
            "sessions": sweep.sessions,
            "ops_per_session": sweep.ops_per_session,
            "window": sweep.window,
            "num_keys": sweep.num_keys,
            "read_ratios": list(sweep.read_ratios),
            "skews": list(sweep.skews),
            "tenant_counts": list(sweep.tenant_counts),
            "tenant_cap": TENANT_CAP,
            "seed": sweep.seed,
            "conflict": sweep.conflict,
        },
        "points": [
            {k: clean(v) for k, v in asdict(p).items()} for p in points
        ],
        "crash_run": crash,
        "headline": None
        if head is None
        else {
            "read_ratio": head.read_ratio,
            "reads_local": head.reads_local,
            "reads_fallback": head.reads_fallback,
            "read_ordering_messages": head.read_ordering,
            "speedup_vs_submit": clean(head.speedup),
            "throughput": head.throughput,
            "submit_throughput": clean(head.submit_throughput),
            "linearizable": all(p.linearizable for p in points)
            and (crash is None or crash["linearizable"]),
        },
    }


def acceptance_failures(
    points: List[ServingPoint], crash: Optional[Dict[str, Any]]
) -> List[str]:
    """The recorded-run gates: zero read-attributable ordering traffic at
    the headline mix, >=3x over the submit path, every history linearizable."""
    failures: List[str] = []
    head = headline_point(points)
    if head is not None:
        if head.read_ordering:
            failures.append(
                f"headline cell leaked {head.read_ordering} ordering messages"
            )
        if head.speedup == head.speedup and head.speedup < 3.0:
            failures.append(f"headline speedup {head.speedup:.2f}x < 3x")
    for p in points:
        if not p.checks_ok:
            failures.append(f"amcast checks failed: {p.runtime} cell {p.read_ratio}")
        if not p.linearizable:
            failures.append(
                f"linearizability failed: {p.runtime} cell {p.read_ratio}"
            )
    if crash is not None and not (crash["linearizable"] and crash["checks_ok"]):
        failures.append(f"crash run failed: {crash['failed_checks']}")
    return failures


# -- CLI ----------------------------------------------------------------------


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """The sweep's options — shared with the ``repro`` CLI subcommand."""
    add_serving_axes(parser)
    parser.add_argument(
        "--protocol",
        choices=sorted(
            name
            for name, cls in PROTOCOLS.items()
            if getattr(cls, "SUPPORTS_SHARDING", False) or name == "wbcast"
        ),
        default="wbcast",
        help="protocol under the serving tier (default: wbcast)",
    )
    parser.add_argument(
        "--runtime",
        choices=("sim", "net", "both"),
        default="sim",
        help="'sim' sweeps the grid on the simulator; 'net' drives serving "
        "sessions over localhost TCP sockets; 'both' runs both",
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=None,
        metavar="N",
        help="concurrent serving sessions (default: 4 sim, 2 net)",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=None,
        metavar="N",
        help="ops per session (default: 120; 40 with --quick)",
    )
    parser.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the submit-path control arm (no speedup column)",
    )
    parser.add_argument(
        "--no-crash",
        action="store_true",
        help="skip the lane-leader-crash linearizability run",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the standard results block to FILE",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="also write the machine-readable BENCH_serving.json to FILE",
    )
    parser.add_argument(
        "--conflict",
        choices=("total", "keys"),
        default="total",
        help="delivery ordering granularity for the sim grid: total (the "
        "paper, default) or keys (conflict-aware delivery — single-key "
        "reads gate on their key's conflict domain; the net smoke cell "
        "always runs total)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="workload seed (default: 42)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke grid (90%% reads, two skews, one tenant pair)",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="instrument sim cells with the telemetry registry and print "
        "per-tenant read/write latency histograms plus SLO-breach counts "
        "(the control arm stays uninstrumented)",
    )
    parser.add_argument(
        "--read-slo",
        type=float,
        default=None,
        metavar="SECS",
        help="per-tenant read latency SLO target in seconds; completions "
        "above it count as breaches in the per-tenant report",
    )
    parser.add_argument(
        "--write-slo",
        type=float,
        default=None,
        metavar="SECS",
        help="per-tenant write latency SLO target in seconds",
    )


def sweep_from_args(args: argparse.Namespace) -> ServingSweepConfig:
    sweep = quick_sweep() if args.quick else default_sweep()
    read_ratios, skews, tenants = serving_axes_from_args(args, quick=args.quick)
    sweep = replace(
        sweep,
        protocol=args.protocol,
        read_ratios=read_ratios,
        skews=skews,
        tenant_counts=tenants,
        runtime=args.runtime,
        compare_submit=not args.no_compare,
        conflict=getattr(args, "conflict", "total"),
        obs=getattr(args, "obs", False)
        or getattr(args, "read_slo", None) is not None
        or getattr(args, "write_slo", None) is not None,
        read_slo=getattr(args, "read_slo", None),
        write_slo=getattr(args, "write_slo", None),
    )
    if args.sessions is not None:
        sweep = replace(
            sweep,
            sessions=max(1, args.sessions),
            net_sessions=max(1, args.sessions),
        )
    if args.ops is not None:
        sweep = replace(
            sweep,
            ops_per_session=max(1, args.ops),
            net_ops=max(1, args.ops),
        )
    if args.seed is not None:
        sweep = replace(sweep, seed=args.seed)
    return sweep


def run_main(args: argparse.Namespace) -> int:
    sweep = sweep_from_args(args)
    telemetries: Optional[List[Tuple[str, Any]]] = [] if sweep.obs else None
    points = run_serving(sweep, telemetries=telemetries)
    crash = None
    if not args.no_crash and sweep.runtime in ("sim", "both"):
        crash = run_crash_point(sweep)
    print(serving_table(points))
    print()
    print(headline(points))
    if telemetries:
        report = tenant_report(telemetries)
        if report:
            print()
            print(report)
    if crash is not None:
        verdict = (
            "linearizable" if crash["linearizable"] and crash["checks_ok"] else "FAILED"
        )
        print(
            f"lane-leader crash (pid {crash['crashed_pid']}): "
            f"{crash['reads_local']} local / {crash['reads_fallback']} "
            f"fallback reads, history {verdict}"
        )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(results_block(sweep, points, crash))
        print(f"\nwrote {args.out}")
    if args.json:
        from .export import write_json

        write_json(json_payload(sweep, points, crash), args.json)
        print(f"wrote {args.json}")
    failures = acceptance_failures(points, crash)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench-serving",
        description="serving-tier sweep: read-at-watermark local reads vs "
        "submit-path reads (read-ratio x skew x tenants)",
    )
    add_arguments(parser)
    return run_main(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
