"""Message-complexity analysis: what the latency of Fig. 5 costs in traffic.

The white-box protocol buys its 3δ by fanning ACCEPTs from every
destination leader to *every process of every destination group* and
collecting acks back at every leader — Θ(k²·n) messages for k destination
groups of n members, versus Θ(k·n + k²) for the consensus-as-a-black-box
designs.  The paper does not tabulate this; we measure it because it is
the mechanism behind the one divergence our CPU model shows from Fig. 7
(see EXPERIMENTS.md §4).

One isolated multicast per configuration; we count every wire message
(client submission included) and the critical-path depth in δ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Type

from ..config import ClusterConfig
from ..sim import ConstantDelay, Simulator, Trace
from ..workload import ClientOptions, DeliveryTracker, OneShotClient
from .latency_table import DELTA, _group_size_for
from .report import render_table


@dataclass(frozen=True)
class ComplexityPoint:
    protocol: str
    dest_k: int
    group_size: int
    messages: int
    messages_excl_self: int
    leader_delivery_delta: float


def measure_complexity(
    protocol_cls: Type, dest_k: int, num_groups: int = 4
) -> ComplexityPoint:
    group_size = _group_size_for(protocol_cls)
    config = ClusterConfig.build(num_groups, group_size, 1)
    trace = Trace()
    sim = Simulator(ConstantDelay(DELTA), seed=0, trace=trace)
    tracker = DeliveryTracker(config, sim=sim)
    trace.attach(tracker)
    for pid in config.all_members:
        sim.add_process(pid, lambda rt, p=pid: protocol_cls(p, config, rt, options=None))
    dests = tuple(range(dest_k))
    client = sim.add_process(
        config.clients[0],
        lambda rt: OneShotClient(
            config.clients[0], config, rt, protocol_cls, tracker,
            [(0.0, dests)], ClientOptions(),
        ),
    )
    sim.run()
    mid = client.sent[0]
    latency = tracker.latency(mid)
    non_self = sum(1 for r in trace.sends if r.src != r.dst)
    return ComplexityPoint(
        protocol=protocol_cls.__name__.replace("Process", ""),
        dest_k=dest_k,
        group_size=group_size,
        messages=trace.send_count,
        messages_excl_self=non_self,
        leader_delivery_delta=(latency / DELTA) if latency else float("nan"),
    )


def complexity_table(dest_ks=(1, 2, 4)) -> List[ComplexityPoint]:
    from ..protocols import FastCastProcess, FtSkeenProcess, SkeenProcess, WbCastProcess

    points: List[ComplexityPoint] = []
    for cls in (SkeenProcess, WbCastProcess, FastCastProcess, FtSkeenProcess):
        for k in dest_ks:
            points.append(measure_complexity(cls, k))
    return points


def format_complexity(points: List[ComplexityPoint]) -> str:
    return render_table(
        ["protocol", "dests k", "2f+1", "wire msgs", "excl. loopback", "commit (δ)"],
        [
            (p.protocol, p.dest_k, p.group_size, p.messages,
             p.messages_excl_self, p.leader_delivery_delta)
            for p in points
        ],
        title=(
            "Message complexity per multicast (one isolated message; "
            "latency-for-traffic trade-off behind Fig. 5)"
        ),
    )


def main() -> None:
    print(format_complexity(complexity_table()))


if __name__ == "__main__":
    main()
