"""Conflict-aware delivery: total-order vs keys-mode delivery latency.

The conflict-relation layer (``ClusterConfig.conflict = "keys"``) lets a
committed/stable message deliver as soon as no *conflicting* message can
be ordered before it: messages on disjoint conflict domains commute, so
they skip the cross-lane merge wait (sharded groups) or the head-of-line
wait behind unrelated pending messages (single-leader groups).  This
bench records the claim on the WAN grid: a disjoint-key Zipfian workload
is run under ``conflict=total`` and ``conflict=keys`` on the same seed,
geometry and placement, and the delivery-latency distributions are
compared cell by cell.

Every cell's history goes through the full checker stack — the classic
total-order checks for the total cells, the partial-order
conflict-ordering / domain-agreement checks for the keys cells, and the
serving linearizability checker for both — plus a keys-mode
lane-leader-crash run; a run that fails any of them is not a
measurement.

Run ``python -m repro.bench.conflict`` (or ``python -m repro
bench-conflict``); ``--quick`` shrinks the grid for CI, ``--out FILE``
writes the standard results block (``results/conflict.txt``).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence

from ..protocols import PROTOCOLS
from ..serving import run_serving_workload
from .metrics import summarize_latencies
from .report import render_table

#: Zipf exponents swept by default: mildly skewed traffic is mostly
#: disjoint-key (the commuting case keys mode exploits); the hot-key
#: setting shows the degenerate limit where most messages conflict.
CONFLICT_SKEWS = (0.6,)
#: Lanes per group swept by default: the single leader and a sharded
#: deployment (where total order additionally pays the cross-lane merge).
CONFLICT_SHARDS = (1, 3)


@dataclass(frozen=True)
class ConflictPoint:
    """One measured (arm, conflict mode, shards, skew) grid cell.

    The *delivery* arm runs cross-group closed-loop multicasts (dest_k=2,
    Zipfian single-key footprints) — the workload where total order pays
    the convoy: one slow-committing multicast blocks every later message,
    while keys mode only blocks the conflicting ones.  The *serving* arm
    runs the read/write session mix so the linearizability checker has
    real reads to verify per cell.
    """

    arm: str
    conflict: str
    shards: int
    skew: float
    ops: int
    reads_local: int
    reads_fallback: int
    p50_delivery_ms: float
    mean_delivery_ms: float
    p95_delivery_ms: float
    checks_ok: bool
    linearizable: bool


@dataclass
class ConflictSweepConfig:
    protocol: str = "wbcast"
    shard_counts: Sequence[int] = CONFLICT_SHARDS
    skews: Sequence[float] = CONFLICT_SKEWS
    num_groups: int = 3
    group_size: int = 3
    #: Delivery arm: closed-loop cross-group multicast clients.
    clients: int = 6
    messages_per_client: int = 30
    dest_k: int = 2
    window: int = 4
    #: Serving arm: session mix sizing (linearizability coverage).
    sessions: int = 4
    ops_per_session: int = 40
    serving_window: int = 2
    num_keys: int = 64
    #: Serving arm mix: write-heavy, so the per-domain freshness gates
    #: and the linearizability checker both get real work.
    read_ratio: float = 0.25
    read_timeout: float = 0.5
    seed: int = 42


def default_sweep() -> ConflictSweepConfig:
    return ConflictSweepConfig()


def quick_sweep() -> ConflictSweepConfig:
    """CI smoke: one sharded cell pair at the default skew."""
    return ConflictSweepConfig(
        shard_counts=(3,),
        clients=4,
        messages_per_client=12,
        sessions=3,
        ops_per_session=20,
    )


def _wan_config(sweep: ConflictSweepConfig, shards: int, conflict: str, clients: int):
    """The WAN grid geometry: 3 DCs, site placement, geo-spread sessions.

    Identical for the total and keys arms of a cell — the conflict mode
    is the only thing that varies, so the latency delta is attributable
    to delivery granularity alone.
    """
    import dataclasses

    from ..config import ClusterConfig
    from ..placement import PlacementPolicy
    from .topologies import wan_site_map, wan_testbed

    config = ClusterConfig.build(
        sweep.num_groups,
        sweep.group_size,
        clients,
        shards_per_group=shards,
        conflict=conflict,
    )
    sites = wan_site_map(config, spread_clients=True)
    config = dataclasses.replace(
        config,
        placement=PlacementPolicy(
            mode="site", sites=tuple(sorted(sites.items())), overlay="direct"
        ),
    )
    return config, wan_testbed(config, site_map=sites)


def _wbcast_wan_options(sweep: ConflictSweepConfig):
    """WAN-paced lane probe/advance tunables (see bench.batching)."""
    if sweep.protocol != "wbcast":
        return None
    from .batching import wan_protocol_options

    return wan_protocol_options(sweep.protocol, "site")


def delivery_latencies(result) -> List[float]:
    """Launch → partial-delivery latency of every completed multicast."""
    history = result.history()
    out: List[float] = []
    for mid, (_, t0, _m) in history.multicasts.items():
        done = history.partial_delivery_time(mid)
        if done is not None:
            out.append(done - t0)
    return sorted(out)


def run_delivery_cell(
    sweep: ConflictSweepConfig, shards: int, skew: float, conflict: str
) -> ConflictPoint:
    """Cross-group multicast latency under one conflict mode.

    The geometry is the convoy-prone one: group leaders spread over the
    three data centres (``spread_leaders``), so the Skeen gather between
    a message's destination leaders pays a *pair-dependent* WAN round —
    60/75/130 ms RTT depending on which DCs the destinations' leaders
    landed in.  A message gathering over the slow pair holds a smaller
    proposed timestamp while it straggles, and in total order every
    later-timestamped committed message behind it waits; keys mode lets
    the disjoint-key ones through.  The median-delivery-latency delta is
    exactly that skipped wait.  Sharded cells keep the topology-blind
    (flat) lane deal for the same reason: lanes land on different DCs,
    so the cross-lane merge costs real probe rounds.
    """
    from ..checking import check_all
    from ..config import ClusterConfig
    from ..workload import ClientOptions
    from .batching import wan_protocol_options
    from .harness import run_workload
    from .topologies import wan_site_map, wan_testbed

    config = ClusterConfig.build(
        sweep.num_groups,
        sweep.group_size,
        sweep.clients,
        shards_per_group=shards,
        conflict=conflict,
    )
    sites = wan_site_map(config, spread_leaders=True, spread_clients=True)
    network = wan_testbed(config, jitter=0.05, site_map=sites)
    result = run_workload(
        PROTOCOLS[sweep.protocol],
        config=config,
        messages_per_client=sweep.messages_per_client,
        dest_k=sweep.dest_k,
        network=network,
        seed=sweep.seed,
        protocol_options=wan_protocol_options(sweep.protocol, "flat"),
        client_options=ClientOptions(
            num_messages=sweep.messages_per_client,
            window=sweep.window,
            key_universe=sweep.num_keys,
            key_skew=skew,
        ),
        record_sends=False,
        # Keys-mode lane floors converge via LANE_PROBE rounds, so the
        # post-load drain must cover a WAN round trip for the quiescent
        # termination check to hold.
        drain_grace=1.0,
    )
    checks = check_all(result.history())
    summary = summarize_latencies(result.latencies())
    return ConflictPoint(
        arm="delivery",
        conflict=conflict,
        shards=shards,
        skew=skew,
        ops=result.completed,
        reads_local=0,
        reads_fallback=0,
        p50_delivery_ms=summary.p50 * 1000 if summary else float("nan"),
        mean_delivery_ms=summary.mean * 1000 if summary else float("nan"),
        p95_delivery_ms=summary.p95 * 1000 if summary else float("nan"),
        checks_ok=all(c.ok for c in checks),
        linearizable=True,  # no serving reads on this arm
    )


def run_serving_cell(
    sweep: ConflictSweepConfig, shards: int, skew: float, conflict: str
) -> ConflictPoint:
    """Serving session mix under one conflict mode: real reads for the
    linearizability checker, per-domain freshness gates exercised."""
    config, network = _wan_config(sweep, shards, conflict, sweep.sessions)
    result = run_serving_workload(
        PROTOCOLS[sweep.protocol],
        config=config,
        network=network,
        num_sessions=sweep.sessions,
        ops_per_session=sweep.ops_per_session,
        read_ratio=sweep.read_ratio,
        skew=skew,
        num_keys=sweep.num_keys,
        window=sweep.serving_window,
        read_timeout=sweep.read_timeout,
        hold_stale=sweep.read_timeout / 2,
        protocol_options=_wbcast_wan_options(sweep),
        seed=sweep.seed,
        drain_grace=0.5,
        attach_genuineness=True,
    )
    checks = result.check() + result.genuineness.check()
    lin = result.check_serving()
    summary = summarize_latencies(delivery_latencies(result))
    return ConflictPoint(
        arm="serving",
        conflict=conflict,
        shards=shards,
        skew=skew,
        ops=result.ops_completed,
        reads_local=result.reads_local,
        reads_fallback=result.reads_fallback,
        p50_delivery_ms=summary.p50 * 1000 if summary else float("nan"),
        mean_delivery_ms=summary.mean * 1000 if summary else float("nan"),
        p95_delivery_ms=summary.p95 * 1000 if summary else float("nan"),
        checks_ok=all(c.ok for c in checks),
        linearizable=all(c.ok for c in lin),
    )


def run_crash_cell(sweep: ConflictSweepConfig) -> Dict[str, Any]:
    """Keys-mode lane-leader crash: the partial-order checkers and the
    linearizability checker must hold through a lane takeover too."""
    from ..config import ClusterConfig
    from ..failure.detector import MonitorOptions
    from ..sim.faults import CrashSpec, FaultPlan

    shards = max(2, max(sweep.shard_counts))
    config = ClusterConfig.build(
        sweep.num_groups,
        sweep.group_size,
        sweep.sessions,
        shards_per_group=shards,
        conflict="keys",
    )
    victim = config.lane_leader(0, 0)
    result = run_serving_workload(
        PROTOCOLS[sweep.protocol],
        config=config,
        num_sessions=sweep.sessions,
        ops_per_session=max(20, sweep.ops_per_session // 3),
        read_ratio=sweep.read_ratio,
        skew=max(sweep.skews),
        num_keys=sweep.num_keys,
        window=1,
        read_timeout=0.02,
        retry_timeout=0.05,
        seed=sweep.seed,
        fault_plan=FaultPlan(crashes=[CrashSpec(victim, 0.03)]),
        attach_fd=True,
        fd_options=MonitorOptions(
            heartbeat_interval=0.005, suspect_timeout=0.02,
            stagger=0.01, max_timeout=0.3,
        ),
        max_time=60.0,
    )
    checks = result.check(quiescent=False)
    lin = result.check_serving()
    return {
        "crashed_pid": victim,
        "shards_per_group": shards,
        "writes": result.writes_completed,
        "reads_local": result.reads_local,
        "reads_fallback": result.reads_fallback,
        "checks_ok": all(c.ok for c in checks),
        "linearizable": all(c.ok for c in lin),
        "failed_checks": [c.describe() for c in checks + lin if not c.ok],
    }


def run_conflict(sweep: Optional[ConflictSweepConfig] = None) -> List[ConflictPoint]:
    sweep = sweep or default_sweep()
    points: List[ConflictPoint] = []
    for shards in sweep.shard_counts:
        for skew in sweep.skews:
            for conflict in ("total", "keys"):
                points.append(run_delivery_cell(sweep, shards, skew, conflict))
                points.append(run_serving_cell(sweep, shards, skew, conflict))
    return points


# -- reporting ----------------------------------------------------------------


def conflict_table(points: List[ConflictPoint]) -> str:
    rows = [
        (
            p.arm,
            p.conflict,
            p.shards,
            f"{p.skew:.2f}",
            p.ops,
            f"{p.reads_local}/{p.reads_fallback}" if p.arm == "serving" else "-",
            p.p50_delivery_ms,
            p.mean_delivery_ms,
            p.p95_delivery_ms,
            "ok" if p.checks_ok and p.linearizable else "FAIL",
        )
        for p in points
    ]
    return render_table(
        [
            "arm",
            "conflict",
            "shards",
            "skew",
            "ops",
            "local/fallback",
            "p50 dlv (ms)",
            "mean dlv (ms)",
            "p95 dlv (ms)",
            "checks",
        ],
        rows,
        title="Conflict-aware delivery — total vs keys on the WAN grid",
    )


def headline(points: List[ConflictPoint]) -> str:
    """Median-delivery-latency delta, keys vs total, per (shards, skew) —
    measured on the delivery arm (cross-group multicasts)."""
    delivery = [p for p in points if p.arm == "delivery"]
    by_key = {(p.conflict, p.shards, p.skew): p for p in delivery}
    lines: List[str] = []
    for shards in sorted({p.shards for p in delivery}):
        for skew in sorted({p.skew for p in delivery}):
            total = by_key.get(("total", shards, skew))
            keys = by_key.get(("keys", shards, skew))
            if not total or not keys or total.p50_delivery_ms != total.p50_delivery_ms:
                continue
            delta = (1.0 - keys.p50_delivery_ms / total.p50_delivery_ms) * 100
            lines.append(
                f"shards={shards} skew={skew:.2f}: median delivery "
                f"{keys.p50_delivery_ms:.1f} ms (keys) vs "
                f"{total.p50_delivery_ms:.1f} ms (total) — {delta:+.0f}% lower"
            )
    ok = all(p.checks_ok and p.linearizable for p in points)
    lines.append(
        "checkers: "
        + ("all cells pass" if ok else "FAILED on some cell")
        + " (total cells: total-order; keys cells: conflict-ordering + "
        "domain-agreement; all cells: linearizability)"
    )
    return "\n".join(lines)


def results_block(
    sweep: ConflictSweepConfig,
    points: List[ConflictPoint],
    crash: Optional[Dict[str, Any]],
) -> str:
    header = [
        "# Conflict-aware delivery (bench-conflict): total-order vs keys-mode "
        "delivery latency",
        f"# topology: {sweep.num_groups} groups x {sweep.group_size} members "
        "on the WAN testbed (3 DCs, clients spread over DCs)",
        f"# delivery arm: spread leaders + flat lane deal (pair-dependent "
        f"60/75/130 ms gather RTTs), {sweep.clients} closed-loop clients x "
        f"window {sweep.window}, {sweep.messages_per_client} msgs/client, "
        f"dest_k={sweep.dest_k}, Zipfian single-key footprints over "
        f"{sweep.num_keys} keys",
        f"# serving arm: site placement, {sweep.sessions} sessions x window "
        f"{sweep.serving_window}, {sweep.ops_per_session} ops/session, "
        f"read ratio {sweep.read_ratio} (linearizability coverage)",
        f"# axes: shards={list(sweep.shard_counts)} skew={list(sweep.skews)} "
        "x conflict={total,keys}",
        "# cli: python -m repro bench-conflict",
        "",
    ]
    block = "\n".join(header) + conflict_table(points) + "\n\n" + headline(points)
    if crash is not None:
        verdict = (
            "pass" if crash["linearizable"] and crash["checks_ok"] else "FAILED"
        )
        block += (
            f"\nkeys-mode lane-leader crash (pid {crash['crashed_pid']}, "
            f"{crash['shards_per_group']} lanes/group): "
            f"{crash['writes']} writes, {crash['reads_local']} local / "
            f"{crash['reads_fallback']} fallback reads, checkers {verdict}"
        )
    return block + "\n"


def acceptance_failures(
    points: List[ConflictPoint], crash: Optional[Dict[str, Any]]
) -> List[str]:
    """The recorded-run gates: every cell's checkers pass and keys beats
    total on median delivery latency in at least one sharded cell."""
    failures: List[str] = []
    for p in points:
        if not p.checks_ok:
            failures.append(
                f"amcast checks failed: {p.arm} conflict={p.conflict} "
                f"shards={p.shards}"
            )
        if not p.linearizable:
            failures.append(
                f"linearizability failed: {p.arm} conflict={p.conflict} "
                f"shards={p.shards}"
            )
    by_key = {
        (p.conflict, p.shards, p.skew): p for p in points if p.arm == "delivery"
    }
    wins = [
        keys.p50_delivery_ms < total.p50_delivery_ms
        for (conflict, shards, skew), total in by_key.items()
        if conflict == "total"
        for keys in [by_key.get(("keys", shards, skew))]
        if keys is not None
    ]
    if wins and not any(wins):
        failures.append("keys mode never beat total on median delivery latency")
    if crash is not None and not (crash["linearizable"] and crash["checks_ok"]):
        failures.append(f"crash run failed: {crash['failed_checks']}")
    return failures


# -- CLI ----------------------------------------------------------------------


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """The bench's options — shared with the ``repro`` CLI subcommand."""
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="single lane-count override for the shards axis "
        f"(default axis: {','.join(map(str, CONFLICT_SHARDS))})",
    )
    parser.add_argument(
        "--skew",
        type=float,
        default=None,
        metavar="S",
        help="single Zipf-exponent override for the skew axis "
        f"(default axis: {','.join(map(str, CONFLICT_SKEWS))})",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=None,
        metavar="N",
        help="ops per session (default: 60; 24 with --quick)",
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=None,
        metavar="N",
        help="concurrent sessions (default: 6; 4 with --quick)",
    )
    parser.add_argument(
        "--no-crash",
        action="store_true",
        help="skip the keys-mode lane-leader-crash run",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the standard results block to FILE",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="workload seed (default: 42)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke grid (one sharded total/keys cell pair)",
    )


def sweep_from_args(args: argparse.Namespace) -> ConflictSweepConfig:
    sweep = quick_sweep() if args.quick else default_sweep()
    if args.shards is not None:
        sweep = replace(sweep, shard_counts=(max(1, args.shards),))
    if args.skew is not None:
        sweep = replace(sweep, skews=(args.skew,))
    if args.ops is not None:
        sweep = replace(sweep, ops_per_session=max(1, args.ops))
    if args.sessions is not None:
        sweep = replace(sweep, sessions=max(1, args.sessions))
    if args.seed is not None:
        sweep = replace(sweep, seed=args.seed)
    return sweep


def run_main(args: argparse.Namespace) -> int:
    sweep = sweep_from_args(args)
    points = run_conflict(sweep)
    crash = None if args.no_crash else run_crash_cell(sweep)
    print(conflict_table(points))
    print()
    print(headline(points))
    if crash is not None:
        verdict = (
            "pass" if crash["linearizable"] and crash["checks_ok"] else "FAILED"
        )
        print(
            f"keys-mode lane-leader crash (pid {crash['crashed_pid']}): "
            f"{crash['reads_local']} local / {crash['reads_fallback']} "
            f"fallback reads, checkers {verdict}"
        )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(results_block(sweep, points, crash))
        print(f"\nwrote {args.out}")
    failures = acceptance_failures(points, crash)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench-conflict",
        description="conflict-aware delivery: total vs keys delivery "
        "latency on the WAN grid (Zipfian disjoint-key workload)",
    )
    add_arguments(parser)
    return run_main(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
