"""Ablation studies beyond the paper's own evaluation.

* **Speculative clock advance** (Fig. 4 line 14): the white-box trick that
  replicates the clock update inside the ACCEPT round trip.  Disabling it
  (the clock then only advances on DELIVER) widens the convoy window from
  2δ to 3δ — failure-free latency degrades from 5δ to 6δ while the
  collision-free 3δ stays, isolating exactly what the optimisation buys.
* **Genuineness**: WbCast against the non-genuine sequencer baseline on
  *disjoint* destination pairs — the workload genuine multicast exists
  for.  The sequencer group serialises everything and becomes the
  bottleneck; WbCast's throughput scales with the number of pairs.
* **Group size**: how the 2f+1 quorum size affects latency (it should
  not, in the failure-free case: quorums are gathered in parallel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..config import ClusterConfig
from ..protocols import SequencerProcess, WbCastProcess
from ..protocols.wbcast import WbCastOptions
from ..sim import ConstantDelay, Simulator, Trace, UniformCpu
from ..workload import (
    ClientOptions,
    DeliveryTracker,
    DisjointPairs,
    OneShotClient,
)
from .harness import run_workload
from .latency_table import DELTA, _FastLink
from .metrics import summarize_latencies
from .report import render_table


# -- ablation A: the speculative clock advance ------------------------------


def measure_ffl_with_options(
    options: WbCastOptions,
    delta: float = DELTA,
    sweep_to: float = 5.0,
    step: float = 0.25,
) -> float:
    """measure_ffl specialised to WbCast with explicit options."""
    from ..workload import ClientOptions as CO
    from .latency_table import _build

    worst = 0.0
    t0 = 20 * delta
    warmup = [(i * delta, (1,)) for i in range(5)]
    offsets = [delta * step * i for i in range(int(sweep_to / step) + 1)]
    for tau in offsets:
        config = ClusterConfig.build(2, 3, 3)
        network = _FastLink(delta, config.clients[2], 0, eps=delta / 1000)
        trace = Trace()
        sim = Simulator(network, seed=0, trace=trace)
        tracker = DeliveryTracker(config, sim=sim)
        trace.attach(tracker)
        for pid in config.all_members:
            sim.add_process(
                pid, lambda rt, p=pid: WbCastProcess(p, config, rt, options=options)
            )
        schedules = [warmup, [(t0, (0, 1))], [(t0 + tau, (0, 1))]]
        clients = []
        for pid, schedule in zip(config.clients, schedules):
            clients.append(
                sim.add_process(
                    pid,
                    lambda rt, p=pid, s=schedule: OneShotClient(
                        p, config, rt, WbCastProcess, tracker, s, CO()
                    ),
                )
            )
        sim.run()
        latency = tracker.latency(clients[1].sent[0])
        if latency is not None and latency > worst:
            worst = latency
    return worst / delta


def speculation_table() -> str:
    rows = []
    for label, options in (
        ("speculative clock ON (paper)", WbCastOptions()),
        ("speculative clock OFF", WbCastOptions(speculative_clock=False)),
    ):
        ffl = measure_ffl_with_options(options)
        rows.append((label, 3.0, round(ffl, 2)))
    return render_table(
        ["variant", "CFL (δ)", "FFL (δ)"],
        rows,
        title="Ablation A — what the white-box clock advance buys",
    )


# -- ablation B: genuine vs sequencer on disjoint destinations ----------------


@dataclass(frozen=True)
class GenuinenessPoint:
    protocol: str
    pairs: int
    throughput: float
    mean_latency: float


def genuineness_scaling(
    pair_counts=(1, 2, 4),
    clients_per_pair: int = 8,
    messages_per_client: int = 20,
    cpu_cost: float = 0.0001,
    seed: int = 0,
) -> List[GenuinenessPoint]:
    """Several clients per disjoint group pair; scale the number of pairs.

    Genuine multicast orders disjoint pairs in parallel, so aggregate
    throughput grows with the pair count; the sequencer funnels every
    message through group 0's leader, which saturates and flatlines.
    """
    points: List[GenuinenessPoint] = []
    for pairs in pair_counts:
        num_groups = 2 * pairs
        for name, cls in (("wbcast", WbCastProcess), ("sequencer", SequencerProcess)):
            result = run_workload(
                cls,
                num_groups=num_groups,
                group_size=3,
                num_clients=pairs * clients_per_pair,
                messages_per_client=messages_per_client,
                network=ConstantDelay(DELTA),
                seed=seed,
                cpu=UniformCpu(cpu_cost),
                chooser_factory=lambda config, i: DisjointPairs(config, i),
                client_options=ClientOptions(num_messages=messages_per_client),
                record_sends=False,
                drain_grace=0.0,
            )
            summary = summarize_latencies(result.latencies())
            points.append(
                GenuinenessPoint(
                    protocol=name,
                    pairs=pairs,
                    throughput=result.throughput(),
                    mean_latency=summary.mean if summary else float("nan"),
                )
            )
    return points


def genuineness_table(points: List[GenuinenessPoint]) -> str:
    return render_table(
        ["protocol", "disjoint pairs", "msgs/s", "mean lat (ms)"],
        [
            (p.protocol, p.pairs, p.throughput, p.mean_latency * 1000)
            for p in points
        ],
        title="Ablation B — genuine (WbCast) vs non-genuine (sequencer), disjoint destinations",
    )


# -- ablation C: group size -----------------------------------------------------


def group_size_latency(sizes=(3, 5, 7)) -> List[tuple]:
    """Collision-free leader latency as the replication degree grows."""
    rows = []
    for size in sizes:

        class _Sized(WbCastProcess):
            pass

        config = ClusterConfig.build(2, size, 1)
        # measure via harness for uniformity
        result = run_workload(
            WbCastProcess,
            config=config,
            messages_per_client=5,
            dest_k=2,
            network=ConstantDelay(DELTA),
            seed=0,
        )
        lats = result.latencies()
        rows.append((size, round(min(lats) / DELTA, 3), round(max(lats) / DELTA, 3)))
    return rows


def group_size_table(rows) -> str:
    return render_table(
        ["group size (2f+1)", "min lat (δ)", "max lat (δ)"],
        rows,
        title="Ablation C — latency is independent of group size (parallel quorums)",
    )


def main() -> None:
    print(speculation_table())
    print()
    print(genuineness_table(genuineness_scaling()))
    print()
    print(group_size_table(group_size_latency()))


if __name__ == "__main__":
    main()
